#!/usr/bin/env python3
"""Documentation quality gate: docstring coverage + doc reference check.

Two complementary checks, both stdlib-only so CI can run them without
installing the scientific stack:

1. **Docstring coverage** — every public module, class, function and
   method under ``src/repro`` must carry a non-empty docstring (the
   same contract as ruff's D1/D419 rules, mirrored here so it can run
   without ruff and cover a few extra surfaces: ``examples/``,
   ``benchmarks/`` and ``tools/`` must at least have module
   docstrings, and every ``examples/`` docstring must state its
   expected runtime and what it produces).

2. **Reference check** — every repo path (``src/...``,
   ``benchmarks/...py``, ``examples/...py``, ...) and every dotted
   module/attribute reference (``repro.radio.generator``,
   ``station.active.run_active_campaign``) named in ``README.md`` or
   ``ARCHITECTURE.md`` must actually exist, so the docs cannot rot
   silently when modules move.

Exit status is non-zero when any check fails; findings are printed one
per line as ``<file>: <problem>``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = ("README.md", "ARCHITECTURE.md")
PACKAGES = (
    "sim",
    "radio",
    "uav",
    "uwb",
    "wifi",
    "link",
    "station",
    "core",
    "serve",
    "analysis",
)

#: Repo-relative path references worth existence-checking.
_PATH_RE = re.compile(
    r"\b((?:src|benchmarks|examples|tests|tools|\.github)/[\w./-]+\.(?:py|yml|json|md)"
    r"|BENCH_\w+\.json|[A-Z][A-Z_]+\.md|ARCHITECTURE\.md|README\.md)\b"
)

#: Dotted module/attribute references (optionally without the repro
#: prefix when they start with a known package name).
_DOTTED_RE = re.compile(r"`(repro(?:\.\w+)+|(?:%s)(?:\.\w+)+)`" % "|".join(PACKAGES))


def _iter_public_defs(tree: ast.Module):
    """Yield (lineno, qualified name) of public defs missing docstrings."""

    def walk(node, prefix, public):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                is_public = public and not child.name.startswith("_")
                doc = ast.get_docstring(child)
                if is_public and not (doc and doc.strip()):
                    yield child.lineno, f"{prefix}{child.name}"
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, f"{prefix}{child.name}.", is_public)

    yield from walk(tree, "", True)


def check_docstrings() -> list:
    """Docstring coverage over the library, examples, benches and tools."""
    problems = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(REPO)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        doc = ast.get_docstring(tree)
        if not (doc and doc.strip()):
            problems.append(f"{rel}: missing module docstring")
        problems.extend(
            f"{rel}:{lineno}: public `{name}` has no docstring"
            for lineno, name in _iter_public_defs(tree)
        )
    for directory in ("examples", "benchmarks", "tools"):
        for path in sorted((REPO / directory).glob("*.py")):
            rel = path.relative_to(REPO)
            doc = ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))
            if not (doc and doc.strip()):
                problems.append(f"{rel}: missing module docstring")
            elif directory == "examples" and path.name != "__init__.py":
                lowered = doc.lower()
                if "runtime" not in lowered:
                    problems.append(
                        f"{rel}: example docstring must state its expected runtime"
                    )
                if not any(
                    word in lowered
                    for word in ("produces", "prints", "writes", "emits")
                ):
                    problems.append(
                        f"{rel}: example docstring must state what it produces"
                    )
    return problems


def _module_file(dotted: str):
    """The source file of the longest importable prefix of ``dotted``.

    Returns ``(path, remainder)`` where ``remainder`` holds the
    attribute segments that are not part of the module path, or
    ``(None, dotted)`` when even the top package does not resolve.
    """
    parts = dotted.split(".")
    if parts[0] != "repro":
        parts = ["repro", *parts]
    for split in range(len(parts), 0, -1):
        base = REPO / "src" / Path(*parts[:split])
        if (base.with_suffix(".py")).exists():
            return base.with_suffix(".py"), parts[split:]
        if (base / "__init__.py").exists():
            return base / "__init__.py", parts[split:]
    return None, parts[1:]


def check_references() -> list:
    """Every path/module named in the doc files must exist."""
    problems = []
    for doc_name in DOC_FILES:
        doc_path = REPO / doc_name
        if not doc_path.exists():
            problems.append(f"{doc_name}: file missing")
            continue
        text = doc_path.read_text(encoding="utf-8")
        for match in sorted(set(_PATH_RE.findall(text))):
            if not (REPO / match).exists():
                problems.append(f"{doc_name}: referenced path {match!r} not found")
        for dotted in sorted(set(_DOTTED_RE.findall(text))):
            module_path, attrs = _module_file(dotted)
            if module_path is None:
                problems.append(f"{doc_name}: module {dotted!r} not found")
                continue
            if not attrs:
                continue
            # One trailing attribute: accept any module-level def/class/
            # assignment with that name, or (for packages) a re-export —
            # the name standing alone in an import list or __all__.
            attr = attrs[0]
            source = module_path.read_text(encoding="utf-8")
            escaped = re.escape(attr)
            if not re.search(
                rf"^(?:def|class)\s+{escaped}\b|^{escaped}\s*[:=]"
                rf"|^\s*\"?{escaped}\"?,?$|\bimport\s+{escaped}\b",
                source,
                re.MULTILINE,
            ):
                problems.append(
                    f"{doc_name}: {dotted!r} — no `{attr}` in "
                    f"{module_path.relative_to(REPO)}"
                )
    return problems


def main() -> int:
    """Run both checks; print findings and return the exit status."""
    problems = check_docstrings() + check_references()
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print("docs OK: docstring coverage and doc references are clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
