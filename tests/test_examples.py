"""Smoke tests: the example scripts must run end to end.

The slow examples (full grid search / long Monte-Carlo) are exercised
through their underlying APIs elsewhere; here we run the fast ones as a
user would.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, argv=()):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / f"{name}.py"), *argv]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart")
        out = capsys.readouterr().out
        assert "test RMSE" in out
        assert "strongest AP" in out

    def test_interference_survey(self, capsys):
        _run_example("interference_survey")
        out = capsys.readouterr().out
        assert "radio off" in out
        assert "lost" in out

    def test_fleet_campaign(self, tmp_path, capsys):
        output = tmp_path / "samples.csv"
        _run_example("fleet_campaign", ["--quick", str(output)])
        assert output.exists()
        out = capsys.readouterr().out
        assert "2-drone fleet" in out
        assert "round 0: tours" in out
        assert "K=1 fleet ≡ active campaign: True" in out
        assert "archived" in out

    def test_rem_planning(self, capsys):
        _run_example("rem_planning")
        out = capsys.readouterr().out
        assert "dark" in out

    def test_multi_technology(self, capsys):
        _run_example("multi_technology")
        out = capsys.readouterr().out
        assert "BLE" in out
        assert "§II-A holds" in out

    def test_online_mapping(self, capsys):
        _run_example("online_mapping")
        out = capsys.readouterr().out
        assert "holdout RMSE" in out

    def test_rem_server(self, capsys):
        _run_example("rem_server", ["--quick"])
        out = capsys.readouterr().out
        assert "cache hit = True" in out
        assert "healthz : ok" in out
        assert "served ≡ direct" in out
        assert "cluster : 2 workers" in out
        assert "worker exit codes [0, 0]" in out
        assert "servers stopped" in out

    def test_generated_city(self, capsys):
        _run_example("generated_city", ["--quick"])
        out = capsys.readouterr().out
        assert "generated:room-grid" in out
        assert "generated:corridor-spine" in out
        assert "generated:open-plan" in out
        assert "REM" in out
        assert "reproduce any of these worlds" in out
