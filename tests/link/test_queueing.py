"""Unit tests for the bounded firmware queue."""

import pytest

from repro.link import BoundedQueue


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = BoundedQueue(4)
        for item in (1, 2, 3):
            assert queue.offer(item)
        assert queue.poll() == 1
        assert queue.poll() == 2

    def test_rejects_when_full(self):
        queue = BoundedQueue(2)
        assert queue.offer("a")
        assert queue.offer("b")
        assert not queue.offer("c")
        assert queue.stats.dropped == 1
        assert len(queue) == 2

    def test_drop_then_room_again(self):
        queue = BoundedQueue(1)
        queue.offer("a")
        queue.offer("b")  # dropped
        queue.poll()
        assert queue.offer("c")
        assert queue.poll() == "c"

    def test_poll_empty_returns_none(self):
        assert BoundedQueue(1).poll() is None

    def test_drain_all_and_limited(self):
        queue = BoundedQueue(8)
        for i in range(5):
            queue.offer(i)
        assert queue.drain(limit=2) == [0, 1]
        assert queue.drain() == [2, 3, 4]
        assert queue.empty

    def test_stats_accounting(self):
        queue = BoundedQueue(2)
        queue.offer(1)
        queue.offer(2)
        queue.offer(3)  # drop
        queue.drain()
        stats = queue.stats
        assert stats.enqueued == 2
        assert stats.dropped == 1
        assert stats.dequeued == 2
        assert stats.high_watermark == 2

    def test_clear(self):
        queue = BoundedQueue(4)
        for i in range(3):
            queue.offer(i)
        assert queue.clear() == 3
        assert queue.empty

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)
