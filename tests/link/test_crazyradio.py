"""Unit tests for the Crazyradio and link transport."""

import pytest

from repro.link import Crazyradio, CrazyradioLink, CrtpPacket, CrtpPort, RadioConfig
from repro.radio import AccessPoint, IndoorEnvironment, LinkBudget
from repro.sim import Simulator


@pytest.fixture()
def environment():
    ap = AccessPoint("aa:aa:aa:aa:aa:01", "net", 6, (5.0, 0.0, 0.0))
    return IndoorEnvironment([], [ap], budget=LinkBudget(), seed=1)


@pytest.fixture()
def radio(environment):
    return Crazyradio(environment, RadioConfig(freq_mhz=2475.0))


def packet(tag=b"x"):
    return CrtpPacket(port=CrtpPort.APP, channel=0, payload=tag)


class TestCrazyradio:
    def test_interference_registered_while_on(self, radio, environment):
        assert environment.interference_sources == ()
        radio.turn_on()
        assert len(environment.interference_sources) == 1
        assert environment.interference_sources[0].freq_mhz == 2475.0
        radio.turn_off()
        assert environment.interference_sources == ()

    def test_retune_while_on_updates_source(self, radio, environment):
        radio.turn_on()
        radio.set_frequency(2412.0)
        assert environment.interference_sources[0].freq_mhz == 2412.0

    def test_channel_mapping(self, radio):
        radio.set_channel(80)
        assert radio.freq_mhz == 2480.0
        assert radio.nrf24_channel == 80

    def test_frequency_validation(self, radio, environment):
        with pytest.raises(ValueError):
            radio.set_frequency(2600.0)
        with pytest.raises(ValueError):
            Crazyradio(environment, RadioConfig(freq_mhz=2300.0))

    def test_transition_counter(self, radio):
        radio.turn_on()
        radio.turn_on()  # idempotent
        radio.turn_off()
        assert radio.on_off_transitions == 2


class TestCrazyradioLink:
    def test_uplink_requires_radio_on(self, radio):
        sim = Simulator()
        link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=16)
        received = []
        link.attach_uav(received.append)
        assert not link.station_send(packet())
        assert link.uplink_lost == 1
        radio.turn_on()
        assert link.station_send(packet())
        sim.run()
        assert len(received) == 1

    def test_uplink_has_latency(self, radio):
        sim = Simulator()
        link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=16)
        arrival = []
        link.attach_uav(lambda p: arrival.append(sim.now))
        radio.turn_on()
        link.station_send(packet())
        sim.run()
        assert arrival[0] == pytest.approx(radio.config.uplink_latency_s)

    def test_downlink_buffers_while_off(self, radio):
        sim = Simulator()
        link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=4)
        for i in range(3):
            assert link.uav_send(packet(bytes([i])))
        # Radio off: polling yields nothing but the queue holds packets.
        assert link.station_poll() == []
        assert len(link.uav_tx_queue) == 3
        radio.turn_on()
        drained = link.station_poll()
        assert [p.payload for p in drained] == [b"\x00", b"\x01", b"\x02"]

    def test_downlink_drops_beyond_capacity(self, radio):
        sim = Simulator()
        link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=2)
        assert link.uav_send(packet(b"a"))
        assert link.uav_send(packet(b"b"))
        assert not link.uav_send(packet(b"c"))
        assert link.uav_tx_queue.stats.dropped == 1
