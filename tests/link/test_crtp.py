"""Unit tests for CRTP packets."""

import pytest

from repro.link import MAX_PAYLOAD_BYTES, CrtpPacket, CrtpPort


class TestCrtpPacket:
    def test_header_byte_layout(self):
        packet = CrtpPacket(port=CrtpPort.COMMANDER, channel=2, payload=b"xy")
        assert packet.header_byte == (0x03 << 4) | 0x02

    def test_size_includes_header(self):
        packet = CrtpPacket(port=CrtpPort.APP, channel=0, payload=b"abc")
        assert packet.size_bytes == 4

    def test_payload_limit_enforced(self):
        CrtpPacket(port=CrtpPort.APP, channel=0, payload=b"x" * MAX_PAYLOAD_BYTES)
        with pytest.raises(ValueError):
            CrtpPacket(
                port=CrtpPort.APP, channel=0, payload=b"x" * (MAX_PAYLOAD_BYTES + 1)
            )

    def test_channel_range_enforced(self):
        with pytest.raises(ValueError):
            CrtpPacket(port=CrtpPort.APP, channel=4)

    def test_empty_payload_allowed(self):
        assert CrtpPacket(port=CrtpPort.LINK).size_bytes == 1
