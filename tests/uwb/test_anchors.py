"""Unit tests for anchor layouts."""

import numpy as np
import pytest

from repro.radio import Cuboid
from repro.uwb import Anchor, AnchorLayout, corner_layout


@pytest.fixture()
def volume():
    return Cuboid((0.0, 0.0, 0.0), (3.74, 3.20, 2.10))


class TestCornerLayout:
    def test_eight_anchors_on_corners(self, volume):
        layout = corner_layout(volume)
        assert len(layout) == 8
        corners = {tuple(c) for c in volume.corners()}
        assert {a.position for a in layout} == corners

    def test_every_prefix_supports_3d(self, volume):
        layout = corner_layout(volume)
        for count in range(4, 9):
            assert layout.subset(count).supports_3d()

    def test_subset_bounds(self, volume):
        layout = corner_layout(volume)
        with pytest.raises(ValueError):
            layout.subset(3)
        with pytest.raises(ValueError):
            layout.subset(9)


class TestAnchorLayout:
    def test_duplicate_ids_rejected(self):
        a = Anchor(0, (0, 0, 0))
        b = Anchor(0, (1, 1, 1))
        with pytest.raises(ValueError):
            AnchorLayout([a, b])

    def test_coplanar_layout_not_3d(self):
        anchors = [
            Anchor(i, (float(x), float(y), 0.0))
            for i, (x, y) in enumerate([(0, 0), (1, 0), (0, 1), (1, 1)])
        ]
        assert not AnchorLayout(anchors).supports_3d()

    def test_in_range_filtering(self, volume):
        layout = corner_layout(volume)
        center = volume.center
        assert len(layout.in_range(center, max_range=10.0)) == 8
        assert len(layout.in_range(center, max_range=0.5)) == 0

    def test_positions_shape(self, volume):
        assert corner_layout(volume).positions.shape == (8, 3)
