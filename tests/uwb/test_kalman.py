"""Unit tests for the position/velocity EKF."""

import numpy as np
import pytest

from repro.uwb import EkfConfig, PositionVelocityEkf


class TestPredict:
    def test_position_propagates_with_velocity(self):
        ekf = PositionVelocityEkf((0, 0, 0), initial_velocity=(1.0, 0.0, 0.0))
        ekf.predict(2.0)
        assert np.allclose(ekf.position, [2.0, 0.0, 0.0])

    def test_uncertainty_grows(self):
        ekf = PositionVelocityEkf((0, 0, 0))
        before = np.trace(ekf.P)
        ekf.predict(1.0)
        assert np.trace(ekf.P) > before

    def test_zero_dt_noop(self):
        ekf = PositionVelocityEkf((1, 2, 3))
        p_before = ekf.P.copy()
        ekf.predict(0.0)
        assert np.allclose(ekf.P, p_before)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            PositionVelocityEkf((0, 0, 0)).predict(-0.1)


class TestRangeUpdate:
    def test_update_reduces_uncertainty(self):
        ekf = PositionVelocityEkf((0.5, 0.5, 0.5))
        before = np.trace(ekf.P[:3, :3])
        accepted = ekf.update_range((0.0, 0.0, 0.0), 0.9, sigma_m=0.1)
        assert accepted
        assert np.trace(ekf.P[:3, :3]) < before

    def test_converges_to_true_position(self, rng):
        anchors = np.array(
            [[0, 0, 0], [4, 0, 0], [0, 3, 0], [0, 0, 2], [4, 3, 2], [4, 0, 2]],
            dtype=float,
        )
        truth = np.array([1.5, 1.0, 1.0])
        ekf = PositionVelocityEkf((0.1, 0.1, 0.1))
        for _ in range(120):
            ekf.predict(0.02)
            for anchor in anchors:
                measured = np.linalg.norm(truth - anchor) + rng.normal(0, 0.05)
                ekf.update_range(anchor, measured, sigma_m=0.05)
        assert np.linalg.norm(ekf.position - truth) < 0.08

    def test_gate_rejects_gross_outlier(self):
        config = EkfConfig(gate_sigma=3.0)
        ekf = PositionVelocityEkf((1.0, 1.0, 1.0), config)
        # Converge tightly first.
        for _ in range(50):
            ekf.predict(0.02)
            ekf.update_range((0, 0, 0), np.sqrt(3.0), sigma_m=0.02)
        rejected_before = ekf.rejected_updates
        accepted = ekf.update_range((0, 0, 0), 50.0, sigma_m=0.02)
        assert not accepted
        assert ekf.rejected_updates == rejected_before + 1

    def test_covariance_stays_symmetric_psd(self, rng):
        ekf = PositionVelocityEkf((0, 0, 0))
        for _ in range(200):
            ekf.predict(0.05)
            anchor = rng.uniform(-3, 3, size=3)
            measured = max(float(rng.normal(3.0, 0.5)), 0.1)
            ekf.update_range(anchor, measured, sigma_m=0.1)
            assert np.allclose(ekf.P, ekf.P.T, atol=1e-10)
            eigenvalues = np.linalg.eigvalsh(ekf.P)
            assert eigenvalues.min() > -1e-9


class TestTdoaUpdate:
    def test_accepts_consistent_measurement(self):
        ekf = PositionVelocityEkf((1.0, 1.0, 1.0))
        a, b = (0.0, 0.0, 0.0), (4.0, 0.0, 0.0)
        truth = np.array([1.0, 1.0, 1.0])
        diff = np.linalg.norm(truth - np.array(b)) - np.linalg.norm(truth - np.array(a))
        assert ekf.update_tdoa(a, b, diff, sigma_m=0.2)

    def test_converges_with_tdoa_only(self, rng):
        anchors = np.array(
            [
                [0, 0, 0],
                [4, 0, 0],
                [0, 3, 0],
                [0, 0, 2],
                [4, 3, 2],
                [4, 0, 2],
                [0, 3, 2],
                [4, 3, 0],
            ],
            dtype=float,
        )
        truth = np.array([2.0, 1.5, 1.0])
        ekf = PositionVelocityEkf((1.8, 1.4, 0.9))
        for _ in range(200):
            ekf.predict(0.04)
            for a, b in zip(anchors, np.roll(anchors, -1, axis=0)):
                diff = (
                    np.linalg.norm(truth - b)
                    - np.linalg.norm(truth - a)
                    + rng.normal(0, 0.1)
                )
                ekf.update_tdoa(a, b, diff, sigma_m=0.1)
        assert np.linalg.norm(ekf.position - truth) < 0.12

    def test_position_std_shrinks_with_updates(self, rng):
        ekf = PositionVelocityEkf((2.0, 1.5, 1.0))
        std_before = ekf.position_std().mean()
        for _ in range(50):
            ekf.predict(0.04)
            ekf.update_range((0, 0, 0), 2.7, sigma_m=0.1)
            ekf.update_range((4, 3, 2), 2.5, sigma_m=0.1)
            ekf.update_range((4, 0, 0), 2.7, sigma_m=0.1)
            ekf.update_range((0, 3, 2), 2.5, sigma_m=0.1)
        assert ekf.position_std().mean() < std_before
