"""Unit tests for TWR/TDoA measurement models."""

import numpy as np
import pytest

from repro.radio import Cuboid
from repro.uwb import RangingConfig, TdoaRanging, TwrRanging, corner_layout


@pytest.fixture()
def layout():
    return corner_layout(Cuboid((0.0, 0.0, 0.0), (4.0, 3.0, 2.0)))


def clean_config(**kwargs):
    defaults = dict(nlos_probability=0.0)
    defaults.update(kwargs)
    return RangingConfig(**defaults)


class TestTwr:
    def test_one_range_per_anchor(self, layout, rng):
        twr = TwrRanging(layout, clean_config())
        measurements = twr.measure_all((2.0, 1.5, 1.0), rng)
        assert len(measurements) == 8

    def test_range_noise_statistics(self, layout, rng):
        twr = TwrRanging(layout, clean_config(twr_sigma_m=0.1))
        position = np.array([2.0, 1.5, 1.0])
        errors = []
        for _ in range(300):
            for m in twr.measure_all(position, rng):
                truth = np.linalg.norm(m.anchor.position_array - position)
                errors.append(m.range_m - truth)
        errors = np.asarray(errors)
        assert abs(errors.mean()) < 0.01
        assert errors.std() == pytest.approx(0.1, rel=0.1)

    def test_nlos_bias_is_positive(self, layout, rng):
        twr = TwrRanging(
            layout,
            clean_config(nlos_probability=1.0, nlos_bias_max_m=0.3, twr_sigma_m=0.0),
        )
        position = np.array([2.0, 1.5, 1.0])
        for m in twr.measure_all(position, rng):
            truth = np.linalg.norm(m.anchor.position_array - position)
            assert m.range_m >= truth - 1e-9

    def test_out_of_range_anchors_skipped(self, layout, rng):
        twr = TwrRanging(layout, clean_config(max_range_m=0.5))
        assert twr.measure_all((100.0, 100.0, 100.0), rng) == []

    def test_rate(self, layout):
        assert TwrRanging(layout, clean_config(twr_cycle_hz=8.0)).rate_hz() == 8.0


class TestTdoa:
    def test_one_difference_per_anchor_pair(self, layout, rng):
        tdoa = TdoaRanging(layout, clean_config())
        measurements = tdoa.measure_all((2.0, 1.5, 1.0), rng)
        assert len(measurements) == 8  # consecutive pairs, wrap-around

    def test_difference_statistics(self, layout, rng):
        tdoa = TdoaRanging(layout, clean_config(tdoa_sigma_m=0.18))
        position = np.array([1.0, 1.0, 1.0])
        errors = []
        for _ in range(300):
            for m in tdoa.measure_all(position, rng):
                da = np.linalg.norm(m.anchor_a.position_array - position)
                db = np.linalg.norm(m.anchor_b.position_array - position)
                errors.append(m.difference_m - (db - da))
        errors = np.asarray(errors)
        assert abs(errors.mean()) < 0.02
        assert errors.std() == pytest.approx(0.18, rel=0.1)

    def test_needs_two_anchors(self, layout, rng):
        tdoa = TdoaRanging(layout, clean_config(max_range_m=0.0))
        assert tdoa.measure_all((2.0, 1.5, 1.0), rng) == []
