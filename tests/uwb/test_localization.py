"""Unit tests for the position estimator and accuracy harness."""

import numpy as np
import pytest

from repro.radio import Cuboid
from repro.uwb import (
    LocalizationMode,
    PositionEstimator,
    RangingConfig,
    corner_layout,
    evaluate_hovering_accuracy,
    multilaterate,
)


@pytest.fixture()
def layout():
    return corner_layout(Cuboid((0.0, 0.0, 0.0), (3.74, 3.20, 2.10)))


class TestMultilateration:
    def test_recovers_noiseless_position(self, layout):
        truth = np.array([1.2, 2.0, 0.7])
        ranges = np.linalg.norm(layout.positions - truth, axis=1)
        estimate = multilaterate(layout.positions, ranges)
        assert np.allclose(estimate, truth, atol=1e-6)

    def test_requires_four_ranges(self, layout):
        with pytest.raises(ValueError):
            multilaterate(layout.positions[:3], np.ones(3))

    def test_mismatched_inputs_rejected(self, layout):
        with pytest.raises(ValueError):
            multilaterate(layout.positions, np.ones(3))


class TestPositionEstimator:
    def test_invalid_mode_rejected(self, layout):
        with pytest.raises(ValueError):
            PositionEstimator(layout, mode="gps")

    def test_tracks_hovering_tag(self, layout, rng):
        estimator = PositionEstimator(
            layout,
            mode=LocalizationMode.TDOA,
            initial_position=(1.87, 1.6, 1.0),
            ranging_config=RangingConfig(nlos_probability=0.0),
        )
        truth = np.array([1.87, 1.6, 1.0])
        dt = 1.0 / estimator.update_rate_hz
        for _ in range(100):
            estimator.step(dt, truth, rng)
        assert estimator.error_m(truth) < 0.15

    def test_tracks_moving_tag(self, layout, rng):
        estimator = PositionEstimator(
            layout,
            mode=LocalizationMode.TWR,
            initial_position=(0.5, 0.5, 0.5),
            ranging_config=RangingConfig(nlos_probability=0.0),
        )
        dt = 1.0 / estimator.update_rate_hz
        position = np.array([0.5, 0.5, 0.5])
        for _ in range(200):
            position = position + np.array([0.01, 0.005, 0.002])
            estimator.step(dt, position, rng)
        assert estimator.error_m(position) < 0.25


class TestHoveringAccuracy:
    def test_paper_level_accuracy_with_six_anchors(self, layout, rng):
        result = evaluate_hovering_accuracy(
            layout.subset(6), LocalizationMode.TWR, (1.87, 1.6, 1.0), rng
        )
        # §II-B: ~9 cm hovering accuracy with 6 anchors.
        assert 0.03 < result.mean_error_m < 0.15

    def test_more_anchors_do_not_hurt(self, layout, rng):
        four = evaluate_hovering_accuracy(
            layout.subset(4), LocalizationMode.TWR, (1.87, 1.6, 1.0), rng,
            duration_s=15.0,
        )
        eight = evaluate_hovering_accuracy(
            layout, LocalizationMode.TWR, (1.87, 1.6, 1.0), rng, duration_s=15.0
        )
        assert eight.mean_error_m <= four.mean_error_m * 1.25

    def test_result_fields(self, layout, rng):
        result = evaluate_hovering_accuracy(
            layout, LocalizationMode.TDOA, (1.0, 1.0, 1.0), rng, duration_s=5.0
        )
        assert result.anchor_count == 8
        assert result.mode == LocalizationMode.TDOA
        assert result.rmse_m >= result.mean_error_m * 0.8
        assert result.p95_error_m >= result.mean_error_m
