"""Batched TDoA ingestion: ranging arrays and the joint EKF update."""

import numpy as np
import pytest

from repro.radio.geometry import Cuboid
from repro.uwb import PositionVelocityEkf
from repro.uwb.anchors import corner_layout
from repro.uwb.ranging import RangingConfig, TdoaRanging


def clean_config(**kwargs):
    defaults = dict(nlos_probability=0.0)
    defaults.update(kwargs)
    return RangingConfig(**defaults)


@pytest.fixture()
def layout():
    return corner_layout(Cuboid((0.0, 0.0, 0.0), (3.74, 3.20, 2.10)))


class TestMeasureStacked:
    def test_matches_measure_all(self, layout):
        tdoa = TdoaRanging(layout, clean_config())
        position = (1.5, 1.2, 1.0)
        stacked, diffs = tdoa.measure_stacked(position, np.random.default_rng(7))
        records = tdoa.measure_all(position, np.random.default_rng(7))
        m = len(records)
        assert len(diffs) == m
        assert stacked.shape == (2 * m, 3)
        for i, record in enumerate(records):
            assert np.allclose(stacked[i], record.anchor_a.position)
            assert np.allclose(stacked[m + i], record.anchor_b.position)
            assert diffs[i] == pytest.approx(record.difference_m, abs=1e-12)

    def test_out_of_range_returns_empty(self, layout):
        tdoa = TdoaRanging(layout, clean_config(max_range_m=1.0))
        stacked, diffs = tdoa.measure_stacked(
            (100.0, 100.0, 100.0), np.random.default_rng(0)
        )
        assert len(diffs) == 0
        assert stacked.shape == (0, 3)

    def test_partial_visibility_pairs_wrap_around(self, layout):
        # A corner position with a short range keeps only nearby anchors.
        tdoa = TdoaRanging(layout, clean_config(max_range_m=4.0))
        stacked, diffs = tdoa.measure_stacked(
            (0.2, 0.2, 0.2), np.random.default_rng(3)
        )
        m = len(diffs)
        assert 2 <= m < len(layout)
        # b-side rows are the a-side rows rotated by one (wrap-around).
        assert np.allclose(stacked[m:-1], stacked[1:m])
        assert np.allclose(stacked[-1], stacked[0])


class TestJointTdoaUpdate:
    def test_single_row_matches_scalar_update(self, layout):
        a, b = (0.0, 0.0, 0.0), (3.74, 3.20, 2.10)
        joint = PositionVelocityEkf((1.0, 1.5, 1.0))
        scalar = PositionVelocityEkf((1.0, 1.5, 1.0))
        accepted = joint.update_tdoa_batch(
            np.array([a]), np.array([b]), np.array([0.4]), 0.2
        )
        assert accepted == 1
        assert scalar.update_tdoa(a, b, 0.4, 0.2)
        np.testing.assert_allclose(joint.x, scalar.x, atol=1e-12)
        np.testing.assert_allclose(joint.P, scalar.P, atol=1e-12)

    def test_burst_reduces_uncertainty_and_counts(self, layout):
        tdoa = TdoaRanging(layout, clean_config())
        ekf = PositionVelocityEkf((1.8, 1.6, 1.0))
        rng = np.random.default_rng(11)
        before = float(np.trace(ekf.P[:3, :3]))
        stacked, diffs = tdoa.measure_stacked((1.8, 1.6, 1.0), rng)
        accepted = ekf.update_tdoa_stacked(stacked, diffs, 0.18)
        assert accepted == len(diffs)
        assert ekf.accepted_updates == accepted
        assert float(np.trace(ekf.P[:3, :3])) < before

    def test_outlier_rows_are_gated(self, layout):
        tdoa = TdoaRanging(layout, clean_config())
        ekf = PositionVelocityEkf((1.8, 1.6, 1.0))
        stacked, diffs = tdoa.measure_stacked(
            (1.8, 1.6, 1.0), np.random.default_rng(2)
        )
        diffs = diffs.copy()
        diffs[0] += 50.0  # an impossible range difference
        accepted = ekf.update_tdoa_stacked(stacked, diffs, 0.18)
        assert accepted == len(diffs) - 1
        assert ekf.rejected_updates == 1

    def test_empty_burst_is_a_noop(self):
        ekf = PositionVelocityEkf((1.0, 1.0, 1.0))
        x_before = ekf.x.copy()
        assert ekf.update_tdoa_stacked(np.zeros((0, 3)), np.zeros(0), 0.2) == 0
        np.testing.assert_array_equal(ekf.x, x_before)

    def test_filter_converges_on_static_tag(self, layout):
        tdoa = TdoaRanging(layout, clean_config())
        truth = np.array([2.0, 1.0, 1.2])
        ekf = PositionVelocityEkf((1.0, 2.0, 0.5))
        rng = np.random.default_rng(5)
        for _ in range(200):
            ekf.predict(0.04)
            stacked, diffs = tdoa.measure_stacked(truth, rng)
            ekf.update_tdoa_stacked(stacked, diffs, 0.18)
        assert np.linalg.norm(ekf.position - truth) < 0.12

    def test_covariance_stays_psd_over_long_run(self, layout):
        """The joint downdate must not erode PSD-ness under roundoff."""
        tdoa = TdoaRanging(layout, RangingConfig())  # NLoS outliers on
        ekf = PositionVelocityEkf((1.8, 1.6, 1.0))
        rng = np.random.default_rng(17)
        for step in range(2000):
            ekf.predict(0.04)
            stacked, diffs = tdoa.measure_stacked((1.8, 1.6, 1.0), rng)
            ekf.update_tdoa_stacked(stacked, diffs, 0.18)
            if step % 100 == 0:
                assert np.allclose(ekf.P, ekf.P.T, atol=1e-12)
                assert np.linalg.eigvalsh(ekf.P).min() > -1e-9
