"""Unit tests for the Lighthouse positioning extension (§IV future work)."""

import numpy as np
import pytest

from repro.radio import Cuboid
from repro.uwb import (
    LighthouseBaseStation,
    LighthouseConfig,
    LighthouseEstimator,
    LocalizationMode,
    corner_layout,
    default_base_stations,
    evaluate_hovering_accuracy,
    evaluate_lighthouse_hovering,
)
from repro.uwb.lighthouse import _wrap_angle


@pytest.fixture()
def volume():
    return Cuboid((0.0, 0.0, 0.0), (3.74, 3.20, 2.10))


class TestSetup:
    def test_two_default_base_stations_in_upper_corners(self, volume):
        stations = default_base_stations(volume)
        assert len(stations) == 2
        for station in stations:
            assert station.position[2] > volume.max_corner[2]

    def test_needs_two_stations(self, volume):
        with pytest.raises(ValueError):
            LighthouseEstimator([default_base_stations(volume)[0]])


class TestAngleWrap:
    def test_wrap(self):
        assert _wrap_angle(0.1) == pytest.approx(0.1)
        assert _wrap_angle(2 * np.pi + 0.1) == pytest.approx(0.1)
        assert _wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)


class TestTracking:
    def test_converges_while_hovering(self, volume, rng):
        estimator = LighthouseEstimator(
            default_base_stations(volume),
            LighthouseConfig(occlusion_probability=0.0),
            initial_position=(1.5, 1.5, 1.0),
        )
        truth = np.array([1.87, 1.6, 1.0])
        for _ in range(150):
            estimator.step(1.0 / 30.0, truth, rng)
        assert estimator.error_m(truth) < 0.05

    def test_tracks_translation(self, volume, rng):
        estimator = LighthouseEstimator(
            default_base_stations(volume),
            initial_position=(0.5, 0.5, 0.5),
        )
        position = np.array([0.5, 0.5, 0.5])
        for _ in range(200):
            position = position + np.array([0.008, 0.006, 0.003])
            estimator.step(1.0 / 30.0, position, rng)
        assert estimator.error_m(position) < 0.12

    def test_out_of_range_stations_ignored(self, volume, rng):
        distant = [
            LighthouseBaseStation(0, (100.0, 0.0, 2.0)),
            LighthouseBaseStation(1, (0.0, 100.0, 2.0)),
        ]
        estimator = LighthouseEstimator(distant, initial_position=(1.0, 1.0, 1.0))
        before = estimator.position.copy()
        estimator.step(1.0 / 30.0, (2.0, 2.0, 1.0), rng)
        # No update possible; only the predict step ran.
        assert np.allclose(estimator.position, before, atol=1e-6)


class TestFutureWorkClaims:
    def test_comparable_precision_with_fewer_anchors(self, volume, rng):
        """§IV: 'comparable precision, while requiring less anchors'."""
        lighthouse_error = evaluate_lighthouse_hovering(
            volume, (1.87, 1.6, 1.0), rng
        )
        uwb = evaluate_hovering_accuracy(
            corner_layout(volume).subset(6),
            LocalizationMode.TWR,
            (1.87, 1.6, 1.0),
            rng,
        )
        # Two optical base stations vs six UWB anchors: at least as good.
        assert lighthouse_error < uwb.mean_error_m
        assert lighthouse_error < 0.06

    def test_no_rf_interference_registered(self, volume, rng):
        """The optical system must not touch the 2.4 GHz environment."""
        from repro.radio import build_demo_scenario

        scenario = build_demo_scenario(seed=5)
        estimator = LighthouseEstimator(
            default_base_stations(scenario.flight_volume),
            initial_position=(1.0, 1.0, 1.0),
        )
        estimator.step(1.0 / 30.0, (1.0, 1.0, 1.0), rng)
        assert scenario.environment.interference_sources == ()
