"""CLI figure-regeneration paths (the campaign-backed subcommands)."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("figure", ["7", "8"])
def test_cli_figure_commands(figure, capsys):
    assert main(["figures", "--figure", figure]) == 0
    out = capsys.readouterr().out
    assert f"Figure {figure}" in out
    if figure == "7":
        assert "0.5 m bin" in out
    else:
        assert "dBm" in out


def test_cli_density(capsys):
    assert main(["density", "--counts", "6,30"]) == 0
    out = capsys.readouterr().out
    assert "locations" in out
    assert "knee" in out
