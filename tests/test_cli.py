"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["campaign"],
            ["campaign", "--output", "x.csv"],
            ["figures", "--figure", "5"],
            ["endurance"],
            ["localization"],
            ["density", "--counts", "3,6"],
            ["rem", "--resolution", "0.5"],
            ["--seed", "7", "campaign"],
        ):
            args = parser.parse_args(argv)
            assert args.command

    def test_bad_figure_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "9"])

    def test_active_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--active", "--budget", "24", "--target-rmse", "4.5"]
        )
        assert args.active
        assert args.budget == 24
        assert args.target_rmse == pytest.approx(4.5)
        assert args.batch == 6  # default

    def test_active_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert not args.active
        assert args.budget == 72
        assert args.target_rmse is None

    def test_fleet_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--fleet", "3", "--separation", "1.2"]
        )
        assert args.fleet == 3
        assert args.separation == pytest.approx(1.2)

    def test_fleet_defaults_off(self):
        args = build_parser().parse_args(["campaign"])
        assert args.fleet == 0
        assert args.separation == pytest.approx(0.5)


class TestCommands:
    def test_campaign_with_csv(self, tmp_path, capsys):
        output = tmp_path / "samples.csv"
        code = main(["campaign", "--output", str(output)])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "total samples" in out
        assert "distinct MACs" in out

    def test_campaign_active(self, tmp_path, capsys):
        output = tmp_path / "active.csv"
        code = main(
            [
                "campaign",
                "--active",
                "--budget",
                "10",
                "--batch",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "active sampling" in out
        assert "stopped: budget" in out
        assert "final holdout RMSE" in out

    def test_campaign_active_bad_budget(self, capsys):
        assert main(["campaign", "--active", "--budget", "0"]) == 2

    def test_campaign_fleet(self, tmp_path, capsys):
        output = tmp_path / "fleet.csv"
        code = main(
            [
                "campaign",
                "--fleet",
                "2",
                "--budget",
                "12",
                "--batch",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "2-drone" in out
        assert "round 0: tours" in out
        assert "stopped: budget" in out
        assert "fleet makespan" in out
        assert "final holdout RMSE" in out

    def test_campaign_fleet_bad_flags(self, capsys):
        assert main(["campaign", "--fleet", "-1"]) == 2
        assert main(["campaign", "--fleet", "2", "--budget", "0"]) == 2
        assert main(["campaign", "--fleet", "2", "--batch", "0"]) == 2

    def test_figure5(self, capsys):
        assert main(["figures", "--figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "off" in out

    def test_endurance(self, capsys):
        assert main(["endurance"]) == 0
        out = capsys.readouterr().out
        assert "scans in" in out

    def test_localization(self, capsys):
        assert main(["localization"]) == 0
        out = capsys.readouterr().out
        assert "anchors" in out
        assert "twr" in out and "tdoa" in out

    def test_rem_export(self, tmp_path, capsys):
        output = tmp_path / "rem.json"
        code = main(["rem", "--output", str(output), "--resolution", "0.6"])
        assert code == 0
        data = json.loads(output.read_text())
        assert data["resolution_m"] == 0.6
        assert data["fields"]

    def test_rem_export_npz_suffix_dispatch(self, tmp_path, capsys):
        from repro.core.rem import RadioEnvironmentMap

        output = tmp_path / "rem.npz"
        code = main(["rem", "--out", str(output), "--resolution", "0.6"])
        assert code == 0
        assert output.exists()
        rem = RadioEnvironmentMap.load_npz(output)
        assert rem.grid.resolution_m == 0.6
        assert rem.macs


class TestScenariosCommand:
    def test_parser_accepts_subcommands(self):
        parser = build_parser()
        for argv in (
            ["scenarios", "list"],
            ["scenarios", "list", "--json"],
            ["scenarios", "describe", "condo"],
            ["scenarios", "generate", "--template", "open-plan"],
            ["scenarios", "generate", "--set", "floors=3", "--out", "x.json"],
        ):
            args = parser.parse_args(argv)
            assert args.scenarios_command

    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_list_names_registry_and_templates(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("condo", "office-tower", "room-grid", "corridor-spine"):
            assert name in out

    def test_list_json(self, capsys):
        assert main(["scenarios", "list", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        record = envelope["result"]
        assert "condo" in record["registered"]
        assert "open-plan" in record["templates"]
        assert "office-tower" in record["generated_presets"]

    def test_describe_registry_name(self, capsys):
        assert main(["scenarios", "describe", "warehouse"]) == 0
        out = capsys.readouterr().out
        assert "walls" in out
        assert "flight volume" in out

    def test_describe_generated_name_json(self, capsys):
        code = main(
            [
                "scenarios",
                "describe",
                "generated:room-grid?floors=2&seed=5",
                "--json",
            ]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        record = envelope["result"]
        assert record["generated"]["floors"] == 2
        assert record["n_walls"] > 0

    def test_generate_emits_canonical_spec(self, capsys):
        code = main(
            [
                "scenarios",
                "generate",
                "--template",
                "corridor-spine",
                "--set",
                "floors=4",
            ]
        )
        assert code == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["template"] == "corridor-spine"
        assert spec["floors"] == 4

    def test_generate_spec_file_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "spec.json"
        assert (
            main(
                [
                    "--seed",
                    "9",
                    "scenarios",
                    "generate",
                    "--set",
                    "floors=2",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        spec = json.loads(out_path.read_text())
        assert spec["seed"] == 9  # global --seed feeds the spec
        capsys.readouterr()
        assert main(["scenarios", "describe", str(out_path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)["result"]
        assert record["generated"]["spec"]["floors"] == 2

    def test_generate_bad_set_syntax_exits(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "generate", "--set", "floors"])

    def test_generate_set_overrides_compose_onto_spec_file(
        self, tmp_path, capsys
    ):
        spec_path = tmp_path / "spec.json"
        assert (
            main(
                [
                    "scenarios",
                    "generate",
                    "--set",
                    "floors=2",
                    "--out",
                    str(spec_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["scenarios", "generate", "--spec", str(spec_path), "--set", "floors=5"]
        )
        assert code == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["floors"] == 5  # --set wins over the file

    def test_generate_template_conflicts_with_spec_file(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text('{"template": "open-plan"}')
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                [
                    "scenarios",
                    "generate",
                    "--spec",
                    str(spec_path),
                    "--template",
                    "room-grid",
                ]
            )

    def test_campaign_runs_in_generated_scenario(self, capsys):
        code = main(
            [
                "--scenario",
                "generated:room-grid?floors=1&width_m=12&depth_m=9&seed=4",
                "campaign",
                "--active",
                "--budget",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "active sampling" in out


class TestJobsAndServeCommands:
    def test_jobs_and_serve_parse(self):
        parser = build_parser()
        for argv in (
            ["jobs", "run"],
            ["jobs", "run", "spec.json", "--store", "s", "--json"],
            ["jobs", "run", "--set", "seed=7"],
            ["jobs", "list", "--store", "s"],
            ["serve", "--port", "0", "--capacity", "2"],
        ):
            args = parser.parse_args(argv)
            assert args.command in ("jobs", "serve")

    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])

    TINY_JOB = [
        "--set",
        "acquisition=active",
        "--set",
        'active={"seed_waypoints":6,"batch_size":6,"budget_waypoints":6}',
        "--set",
        "tune=false",
        "--set",
        "min_samples_per_mac=2",
        "--set",
        "resolution_m=0.8",
    ]

    def test_jobs_run_builds_then_hits_cache(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["jobs", "run", "--store", store, *self.TINY_JOB]) == 0
        assert "(built)" in capsys.readouterr().out
        assert main(["jobs", "run", "--store", store, *self.TINY_JOB]) == 0
        out = capsys.readouterr().out
        assert "(cache hit)" in out
        assert "APs mapped" in out

    def test_jobs_run_spec_file_and_json_record(self, tmp_path, capsys):
        from repro.serve import RemJobSpec

        spec = RemJobSpec(
            acquisition="active",
            active={
                "seed_waypoints": 6,
                "batch_size": 6,
                "budget_waypoints": 6,
            },
            tune=False,
            min_samples_per_mac=2,
            resolution_m=0.8,
        )
        spec_path = tmp_path / "job.json"
        spec_path.write_text(spec.to_json())
        store = str(tmp_path / "artifacts")
        code = main(
            ["jobs", "run", str(spec_path), "--store", store, "--json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        record = envelope["result"]
        assert record["digest"] == spec.digest()
        assert record["provenance"]["samples"] > 0

        capsys.readouterr()
        assert main(["jobs", "list", "--store", store, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)["result"]
        assert [r["digest"] for r in records] == [spec.digest()]

    def test_jobs_list_empty_store(self, tmp_path, capsys):
        assert main(["jobs", "list", "--store", str(tmp_path / "empty")]) == 0
        assert "no artifacts" in capsys.readouterr().out

    def test_jobs_run_bad_spec_fails(self, tmp_path, capsys):
        code = main(
            [
                "jobs",
                "run",
                "--store",
                str(tmp_path),
                "--set",
                "acquisition=psychic",
            ]
        )
        assert code == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_jobs_run_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["jobs", "run", "--store", str(tmp_path), "--set", "scenario=nope"]
        )
        assert code == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_jobs_run_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["jobs", "run", str(tmp_path / "absent.json"), "--store", str(tmp_path)]
        )
        assert code == 2
        assert "bad job spec" in capsys.readouterr().err


class TestSweepAndReportCommands:
    TINY_SWEEP = [
        "--set",
        "seeds=[1,2]",
        "--set",
        'predictors=["idw","baseline"]',
        "--set",
        'acquisitions=["active"]',
        "--set",
        "resolutions=[0.8]",
        "--set",
        (
            'base={"active":{"seed_waypoints":6,"batch_size":6,'
            '"budget_waypoints":6},"min_samples_per_mac":2,'
            '"with_uncertainty":false}'
        ),
    ]

    def test_sweep_and_report_parse(self):
        parser = build_parser()
        for argv in (
            ["jobs", "sweep"],
            ["jobs", "sweep", "set.json", "--workers", "0", "--json"],
            ["jobs", "sweep", "--timeout", "5", "--max-failures", "2"],
            ["report", "--store", "s", "--csv", "rows.csv", "--out", "r.md"],
            ["report", "--by", "scenario", "--value", "wall_time_s", "--json"],
        ):
            args = parser.parse_args(argv)
            assert args.command in ("jobs", "report")

    def test_sweep_builds_then_resume_hits_cache(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        base = ["jobs", "sweep", "--store", store, "--workers", "0"]
        assert main([*base, *self.TINY_SWEEP]) == 0
        out = capsys.readouterr().out
        assert "4 built, 0 cached" in out

        assert main([*base, "--json", *self.TINY_SWEEP]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        summary = envelope["result"]
        assert summary["cached"] == 4 and summary["built"] == 0
        assert {r["status"] for r in summary["records"]} == {"cached"}

    def test_all_cached_sweep_prints_cached_summary(self, tmp_path, capsys):
        # Regression: a fully-cached resume used to report the generic
        # built/failed/skipped line with no usable rate or ETA; it now
        # states the cache hit count and the elapsed wall and exits 0.
        store = str(tmp_path / "artifacts")
        base = ["jobs", "sweep", "--store", store, "--workers", "0"]
        assert main([*base, *self.TINY_SWEEP]) == 0
        capsys.readouterr()

        assert main([*base, *self.TINY_SWEEP]) == 0
        out = capsys.readouterr().out
        assert "cached 4/4" in out
        assert "all jobs already in the store" in out
        # The final tick resolves to a zero ETA, not "unknown".
        assert "eta 0s" in out

    def test_sweep_spec_file_and_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        from repro.serve import JobSetSpec

        jobset = JobSetSpec(
            seeds=(5,),
            predictors=("baseline",),
            acquisitions=("active",),
            resolutions=(0.8,),
            base={
                "active": {
                    "seed_waypoints": 6,
                    "batch_size": 6,
                    "budget_waypoints": 6,
                },
                "min_samples_per_mac": 2,
                "with_uncertainty": False,
            },
        )
        spec_path = tmp_path / "set.json"
        store = str(tmp_path / "artifacts")
        spec_path.write_text(jobset.to_json())
        code = main(
            [
                "jobs",
                "sweep",
                str(spec_path),
                "--store",
                store,
                "--workers",
                "0",
                "--json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)["result"]
        assert summary["jobset_digest"] == jobset.digest()
        assert summary["built"] == 1

        monkeypatch.setattr("sys.stdin", io.StringIO(jobset.to_json()))
        code = main(
            ["jobs", "sweep", "-", "--store", store, "--workers", "0", "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["result"]["cached"] == 1

    def test_sweep_bad_spec_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "jobs",
                "sweep",
                "--store",
                str(tmp_path),
                "--set",
                'predictors=["psychic"]',
            ]
        )
        assert code == 2
        assert "bad job-set spec" in capsys.readouterr().err

    def test_report_end_to_end_from_sidecars_alone(
        self, tmp_path, capsys, monkeypatch
    ):
        store = str(tmp_path / "artifacts")
        assert (
            main(
                [
                    "jobs",
                    "sweep",
                    "--store",
                    store,
                    "--workers",
                    "0",
                    *self.TINY_SWEEP,
                ]
            )
            == 0
        )
        capsys.readouterr()
        # The report must come from the JSON sidecars alone — no
        # re-simulation and not a single artifact/tensor load.
        from repro.serve import ArtifactStore

        def _no_loads(self, *args, **kwargs):
            raise AssertionError("report stage must not load artifacts")

        monkeypatch.setattr(ArtifactStore, "load", _no_loads)
        csv_path = tmp_path / "rows.csv"
        md_path = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--store",
                store,
                "--csv",
                str(csv_path),
                "--out",
                str(md_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test_rmse_dbm by predictor" in out
        assert "idw" in out and "baseline" in out

        header, *rows = csv_path.read_text().strip().splitlines()
        assert header.startswith("digest,scenario,seed,predictor")
        assert len(rows) == 4
        report = md_path.read_text()
        assert "#" in report  # the bar chart rendered

    def test_report_json_envelope(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert (
            main(
                [
                    "jobs",
                    "sweep",
                    "--store",
                    store,
                    "--workers",
                    "0",
                    *self.TINY_SWEEP,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", "--store", store, "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        result = envelope["result"]
        assert len(result["rows"]) == 4
        assert set(result["stats"]) == {"idw", "baseline"}
        for stats in result["stats"].values():
            assert stats["n"] == 2

    def test_generate_json_envelope(self, capsys):
        code = main(
            [
                "scenarios",
                "generate",
                "--template",
                "open-plan",
                "--set",
                "floors=2",
                "--json",
            ]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        assert envelope["result"]["spec"]["floors"] == 2
        assert envelope["result"]["metadata"]["n_walls"] > 0
