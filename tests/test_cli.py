"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["campaign"],
            ["campaign", "--output", "x.csv"],
            ["figures", "--figure", "5"],
            ["endurance"],
            ["localization"],
            ["density", "--counts", "3,6"],
            ["rem", "--resolution", "0.5"],
            ["--seed", "7", "campaign"],
        ):
            args = parser.parse_args(argv)
            assert args.command

    def test_bad_figure_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "9"])

    def test_active_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--active", "--budget", "24", "--target-rmse", "4.5"]
        )
        assert args.active
        assert args.budget == 24
        assert args.target_rmse == pytest.approx(4.5)
        assert args.batch == 6  # default

    def test_active_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert not args.active
        assert args.budget == 72
        assert args.target_rmse is None


class TestCommands:
    def test_campaign_with_csv(self, tmp_path, capsys):
        output = tmp_path / "samples.csv"
        code = main(["campaign", "--output", str(output)])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "total samples" in out
        assert "distinct MACs" in out

    def test_campaign_active(self, tmp_path, capsys):
        output = tmp_path / "active.csv"
        code = main(
            [
                "campaign",
                "--active",
                "--budget",
                "10",
                "--batch",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "active sampling" in out
        assert "stopped: budget" in out
        assert "final holdout RMSE" in out

    def test_campaign_active_bad_budget(self, capsys):
        assert main(["campaign", "--active", "--budget", "0"]) == 2

    def test_figure5(self, capsys):
        assert main(["figures", "--figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "off" in out

    def test_endurance(self, capsys):
        assert main(["endurance"]) == 0
        out = capsys.readouterr().out
        assert "scans in" in out

    def test_localization(self, capsys):
        assert main(["localization"]) == 0
        out = capsys.readouterr().out
        assert "anchors" in out
        assert "twr" in out and "tdoa" in out

    def test_rem_export(self, tmp_path, capsys):
        output = tmp_path / "rem.json"
        code = main(["rem", "--output", str(output), "--resolution", "0.6"])
        assert code == 0
        data = json.loads(output.read_text())
        assert data["resolution_m"] == 0.6
        assert data["fields"]
