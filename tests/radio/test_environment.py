"""Unit tests for the composed environment and the demo scenario."""

import numpy as np
import pytest

from repro.radio import (
    AccessPoint,
    DemoScenarioConfig,
    IndoorEnvironment,
    LinkBudget,
    build_demo_scenario,
    crazyradio_source,
)


def tiny_environment(fading=0.0):
    aps = [
        AccessPoint("aa:aa:aa:aa:aa:01", "one", 1, (5.0, 0.0, 0.0), tx_power_dbm=17.0),
        AccessPoint("aa:aa:aa:aa:aa:02", "two", 6, (0.0, 5.0, 0.0), tx_power_dbm=17.0),
    ]
    budget = LinkBudget(shadowing_sigma_db=0.0, fading_sigma_db=fading)
    return IndoorEnvironment([], aps, budget=budget, seed=1)


class TestIndoorEnvironment:
    def test_mean_rss_deterministic(self):
        env = tiny_environment()
        ap = env.access_points[0]
        assert env.mean_rss_dbm(ap, (1, 1, 1)) == env.mean_rss_dbm(ap, (1, 1, 1))

    def test_mean_rss_decreases_with_distance(self):
        env = tiny_environment()
        ap = env.access_points[0]
        near = env.mean_rss_dbm(ap, (4.0, 0.0, 0.0))
        far = env.mean_rss_dbm(ap, (-4.0, 0.0, 0.0))
        assert near > far

    def test_sample_rss_adds_fading(self, rng):
        env = tiny_environment(fading=3.0)
        ap = env.access_points[0]
        draws = [env.sample_rss_dbm(ap, (1, 1, 1), rng) for _ in range(500)]
        assert np.std(draws) == pytest.approx(3.0, rel=0.2)

    def test_duplicate_mac_rejected(self):
        ap = AccessPoint("aa:aa:aa:aa:aa:01", "x", 1, (0, 0, 0))
        with pytest.raises(ValueError):
            IndoorEnvironment([], [ap, ap])

    def test_interference_lifecycle(self):
        env = tiny_environment()
        thermal = env.thermal_floor_dbm()
        assert env.interference_duty_cycle() == 0.0
        env.set_interference_sources([crazyradio_source(2412.0)])
        assert env.interference_duty_cycle() > 0.0
        assert env.interference_floor_dbm(1) > thermal
        env.clear_interference()
        assert env.interference_floor_dbm(1) == pytest.approx(thermal)

    def test_aps_on_channel(self):
        env = tiny_environment()
        assert [ap.channel for ap in env.aps_on_channel(1)] == [1]
        assert env.aps_on_channel(11) == []

    def test_channel_map_covers_population_once(self):
        env = tiny_environment()
        grouped = env.channel_map()
        assert grouped is env.channel_map()  # built once, reused
        flattened = [ap for aps in grouped.values() for ap in aps]
        assert sorted(ap.mac for ap in flattened) == sorted(
            ap.mac for ap in env.access_points
        )

    def test_ap_lookup(self):
        env = tiny_environment()
        assert env.ap_by_mac("aa:aa:aa:aa:aa:02").ssid == "two"
        with pytest.raises(KeyError):
            env.ap_by_mac("ff:ff:ff:ff:ff:ff")


class TestDemoScenario:
    def test_build_is_deterministic(self):
        a = build_demo_scenario(seed=5)
        b = build_demo_scenario(seed=5)
        assert [ap.mac for ap in a.access_points] == [ap.mac for ap in b.access_points]
        assert np.allclose(
            [ap.position for ap in a.access_points],
            [ap.position for ap in b.access_points],
        )

    def test_flight_volume_dimensions(self, demo_scenario):
        assert demo_scenario.flight_volume.size == pytest.approx((3.74, 3.20, 2.10))

    def test_eight_corner_anchors(self, demo_scenario):
        assert demo_scenario.anchor_positions.shape == (8, 3)

    def test_population_statistics(self, demo_scenario):
        config = demo_scenario.config
        assert len(demo_scenario.access_points) == config.n_aps
        assert len({ap.ssid for ap in demo_scenario.access_points}) == config.n_ssids

    def test_aps_outside_flight_volume(self, demo_scenario):
        volume = demo_scenario.flight_volume
        for ap in demo_scenario.access_points:
            assert not volume.contains(ap.position)

    def test_walls_exist(self, demo_scenario):
        assert len(demo_scenario.environment.walls) > 10

    def test_config_seed_override(self):
        config = DemoScenarioConfig(seed=1)
        scenario = build_demo_scenario(seed=2, config=config)
        assert scenario.config.seed == 2
