"""Unit tests for the 2.4 GHz spectrum model."""

import pytest

from repro.radio import (
    BandSegment,
    band_overlap_mhz,
    nrf24_band,
    nrf24_channel_center_mhz,
    nrf24_channel_for_mhz,
    overlap_fraction,
    overlapping_wifi_channels,
    wifi_band,
    wifi_channel_center_mhz,
)


class TestChannelFrequencies:
    def test_known_centers(self):
        assert wifi_channel_center_mhz(1) == 2412.0
        assert wifi_channel_center_mhz(6) == 2437.0
        assert wifi_channel_center_mhz(11) == 2462.0
        assert wifi_channel_center_mhz(13) == 2472.0

    def test_invalid_channel_rejected(self):
        for channel in (0, 14, -1):
            with pytest.raises(ValueError):
                wifi_channel_center_mhz(channel)

    def test_nrf24_centers(self):
        assert nrf24_channel_center_mhz(0) == 2400.0
        assert nrf24_channel_center_mhz(125) == 2525.0

    def test_nrf24_roundtrip(self):
        for channel in (0, 50, 125):
            assert nrf24_channel_for_mhz(nrf24_channel_center_mhz(channel)) == channel

    def test_nrf24_out_of_range(self):
        with pytest.raises(ValueError):
            nrf24_channel_center_mhz(126)
        with pytest.raises(ValueError):
            nrf24_channel_for_mhz(2600.0)


class TestOverlap:
    def test_full_containment(self):
        inner = BandSegment(2412.0, 2.0)
        outer = BandSegment(2412.0, 22.0)
        assert overlap_fraction(inner, outer) == 1.0

    def test_no_overlap(self):
        a = BandSegment(2400.0, 2.0)
        b = BandSegment(2472.0, 22.0)
        assert band_overlap_mhz(a, b) == 0.0
        assert overlap_fraction(a, b) == 0.0

    def test_overlap_symmetric_in_width(self):
        a = BandSegment(2410.0, 10.0)
        b = BandSegment(2415.0, 10.0)
        assert band_overlap_mhz(a, b) == band_overlap_mhz(b, a) == 5.0

    def test_partial_fraction(self):
        interferer = BandSegment(2423.0, 2.0)  # 2422-2424
        victim = wifi_band(1)  # 2401-2423
        assert overlap_fraction(interferer, victim) == pytest.approx(0.5)

    def test_adjacent_wifi_channels_overlap(self):
        # Channels 1 and 2 are 5 MHz apart with 22 MHz width: big overlap.
        assert band_overlap_mhz(wifi_band(1), wifi_band(2)) == pytest.approx(17.0)
        # Channels 1 and 6 are the classic non-overlapping pair.
        assert band_overlap_mhz(wifi_band(1), wifi_band(6)) == 0.0


class TestOverlappingChannels:
    def test_radio_at_2412_hits_channel_1(self):
        channels = overlapping_wifi_channels(2412.0)
        assert 1 in channels
        assert 13 not in channels

    def test_radio_at_2525_hits_nothing(self):
        assert overlapping_wifi_channels(2525.0) == []
