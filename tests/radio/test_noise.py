"""Unit tests for noise and fading models."""

import numpy as np
import pytest

from repro.radio import (
    GaussianFading,
    NoiseModel,
    RicianFading,
    db_to_linear,
    linear_to_db,
    power_sum_dbm,
    thermal_noise_dbm,
)


class TestThermalNoise:
    def test_20mhz_floor(self):
        # kTB for 20 MHz ≈ -100.8 dBm; +6 dB NF ≈ -94.8 dBm.
        assert thermal_noise_dbm(20e6, 6.0) == pytest.approx(-94.8, abs=0.5)

    def test_bandwidth_scaling(self):
        # 10x bandwidth = +10 dB noise.
        delta = thermal_noise_dbm(10e6) - thermal_noise_dbm(1e6)
        assert delta == pytest.approx(10.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)


class TestDbConversions:
    def test_roundtrip(self):
        for value in (-90.0, 0.0, 17.0):
            assert linear_to_db(db_to_linear(value)) == pytest.approx(value)

    def test_zero_power_is_minus_inf(self):
        assert linear_to_db(0.0) == float("-inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            linear_to_db(-1.0)


class TestPowerSum:
    def test_equal_powers_add_3db(self):
        assert power_sum_dbm([-90.0, -90.0]) == pytest.approx(-86.99, abs=0.01)

    def test_dominant_term_wins(self):
        assert power_sum_dbm([-50.0, -120.0]) == pytest.approx(-50.0, abs=0.01)

    def test_ignores_minus_inf(self):
        assert power_sum_dbm([-80.0, float("-inf")]) == pytest.approx(-80.0)


class TestGaussianFading:
    def test_statistics(self, rng):
        fading = GaussianFading(sigma_db=2.5)
        draws = np.array([fading.sample_db(rng) for _ in range(4000)])
        assert draws.std() == pytest.approx(2.5, rel=0.1)
        assert abs(draws.mean()) < 0.15

    def test_zero_sigma(self, rng):
        assert GaussianFading(sigma_db=0.0).sample_db(rng) == 0.0


class TestRicianFading:
    def test_mean_power_near_unity(self, rng):
        fading = RicianFading(k_db=6.0)
        draws_db = np.array([fading.sample_db(rng) for _ in range(6000)])
        mean_power = np.mean(10 ** (draws_db / 10.0))
        assert mean_power == pytest.approx(1.0, rel=0.1)

    def test_high_k_less_variance(self, rng):
        low = np.std([RicianFading(k_db=0.0).sample_db(rng) for _ in range(3000)])
        high = np.std([RicianFading(k_db=15.0).sample_db(rng) for _ in range(3000)])
        assert high < low


class TestNoiseModel:
    def test_floor_property(self):
        model = NoiseModel(bandwidth_hz=20e6, noise_figure_db=6.0)
        assert model.floor_dbm == thermal_noise_dbm(20e6, 6.0)
