"""Tests for the scenario registry and the non-demo scenario builders."""

import numpy as np
import pytest

from repro.radio import (
    DemoScenario,
    available_scenarios,
    build_scenario,
    build_office_scenario,
    build_warehouse_scenario,
    get_scenario,
    register_scenario,
)
from repro.radio.scenarios import _SCENARIOS, build_demo_scenario


class TestRegistry:
    def test_builtins_registered(self):
        names = available_scenarios()
        for name in ("condo", "demo", "office", "warehouse"):
            assert name in names

    def test_get_scenario_resolves(self):
        assert get_scenario("condo") is build_demo_scenario
        assert get_scenario("office") is build_office_scenario
        assert get_scenario("warehouse") is build_warehouse_scenario

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("atlantis")

    def test_register_direct_and_decorator(self):
        try:
            register_scenario("tmp-direct", build_demo_scenario)
            assert get_scenario("tmp-direct") is build_demo_scenario

            @register_scenario("tmp-decorated")
            def build_tmp(seed=63, config=None):
                return build_demo_scenario(seed=seed, config=config)

            assert get_scenario("tmp-decorated") is build_tmp
        finally:
            _SCENARIOS.pop("tmp-direct", None)
            _SCENARIOS.pop("tmp-decorated", None)

    def test_build_scenario_passes_seed(self):
        scenario = build_scenario("condo", seed=7)
        assert scenario.config.seed == 7

    def test_duplicate_registration_raises(self):
        def build_other(seed=63, config=None):
            return build_demo_scenario(seed=seed, config=config)

        with pytest.raises(ValueError, match="already registered"):
            register_scenario("condo", build_other)
        # The original registration is untouched.
        assert get_scenario("condo") is build_demo_scenario

    def test_duplicate_registration_raises_as_decorator(self):
        with pytest.raises(ValueError, match="overwrite=True"):

            @register_scenario("condo")
            def build_other(seed=63, config=None):
                return build_demo_scenario(seed=seed, config=config)

    def test_same_builder_reregisters_silently(self):
        # Repeated module imports re-register identical builders; that
        # must stay a no-op rather than an error.
        register_scenario("condo", build_demo_scenario)
        assert get_scenario("condo") is build_demo_scenario

    def test_overwrite_flag_replaces(self):
        def build_other(seed=63, config=None):
            return build_demo_scenario(seed=seed, config=config)

        try:
            register_scenario("condo", build_other, overwrite=True)
            assert get_scenario("condo") is build_other
        finally:
            register_scenario("condo", build_demo_scenario, overwrite=True)


class TestOfficeScenario:
    def test_builds_complete_world(self):
        scenario = build_office_scenario(seed=11)
        assert isinstance(scenario, DemoScenario)
        assert scenario.environment.name == "office_floor"
        assert len(scenario.environment.access_points) == 36
        # Few corporate SSIDs, many BSSIDs.
        ssids = {ap.ssid for ap in scenario.access_points}
        assert len(ssids) <= 7
        assert scenario.flight_volume.size == (6.4, 5.0, 2.2)
        assert scenario.anchor_positions.shape == (8, 3)

    def test_deterministic_per_seed(self):
        a = build_office_scenario(seed=5)
        b = build_office_scenario(seed=5)
        c = build_office_scenario(seed=6)
        macs_a = [ap.mac for ap in a.access_points]
        macs_b = [ap.mac for ap in b.access_points]
        macs_c = [ap.mac for ap in c.access_points]
        assert macs_a == macs_b
        assert macs_a != macs_c

    def test_aps_inside_building(self):
        scenario = build_office_scenario(seed=3)
        for ap in scenario.access_points:
            assert scenario.building.contains(ap.position, tol=1e-6)


class TestWarehouseScenario:
    def test_builds_complete_world(self):
        scenario = build_warehouse_scenario(seed=11)
        assert scenario.environment.name == "warehouse"
        assert len(scenario.environment.access_points) == 14
        # High-power units near the roof.
        powers = [ap.tx_power_dbm for ap in scenario.access_points]
        assert min(powers) >= 20.0
        assert scenario.flight_volume.size == (9.0, 6.0, 3.5)

    def test_detectable_signal_in_volume(self):
        # The sparse high-power population must still be measurable from
        # inside the flight volume (otherwise campaigns collect nothing).
        scenario = build_warehouse_scenario(seed=11)
        env = scenario.environment
        center = tuple(scenario.flight_volume.center)
        best = max(env.mean_rss_dbm(ap, center) for ap in env.access_points)
        assert best > -85.0

    def test_walls_attenuate_across_divider(self):
        scenario = build_warehouse_scenario(seed=11)
        env = scenario.environment
        fx = scenario.config.flight_volume_size[0]
        inside = np.array([fx / 2, 2.0, 1.5])
        # An AP beyond the +x concrete divider loses wall attenuation
        # relative to free space at the same distance.
        from repro.radio import crossed_walls

        far_ap = max(
            env.access_points, key=lambda ap: ap.position[0]
        )
        crossings = crossed_walls(
            np.asarray(far_ap.position), inside, env.walls
        )
        assert len(crossings) >= 1
