"""Tests for the procedural building generator.

Covers the spec (validation, JSON and name round-trips), the generated
geometry (slabs, stairwells, shell, frame convention), AP placement
policies, exact reproducibility, registry integration, and the
acceptance round-trip: generated buildings flow through the complete
toolchain (active campaign -> online model -> REM) for every template.
"""

import numpy as np
import pytest

from repro.core import build_rem
from repro.core.predictors import KnnRegressor
from repro.radio import (
    AP_POLICIES,
    GENERATED_PRESETS,
    TEMPLATES,
    BuildingSpec,
    GeneratedScenario,
    available_scenarios,
    build_scenario,
    generate_building,
)
from repro.station import ActiveSamplingConfig, run_active_campaign

#: The acceptance matrix: every template, two seeds each.
TEMPLATE_SEEDS = [(template, seed) for template in TEMPLATES for seed in (3, 11)]

#: Small, fast spec per template (keeps the toolchain round-trip cheap).
_SMALL = {
    "room-grid": dict(width_m=12.0, depth_m=9.0, floors=2),
    "corridor-spine": dict(width_m=14.0, depth_m=10.0, floors=2),
    "open-plan": dict(width_m=12.0, depth_m=9.0, floors=1, ap_policy="ceiling-grid"),
}


def small_spec(template: str, seed: int, **extra) -> BuildingSpec:
    return BuildingSpec(template=template, seed=seed, **{**_SMALL[template], **extra})


class TestBuildingSpec:
    def test_defaults_are_valid(self):
        spec = BuildingSpec()
        assert spec.template in TEMPLATES

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(template="igloo"),
            dict(palette="marble"),
            dict(ap_policy="drone-mounted"),
            dict(floors=0),
            dict(scan_floor=2, floors=2),
            dict(width_m=3.0),
            dict(room_m=1.0),
            dict(ap_room_probability=1.5),
            dict(ap_power_dbm=(20.0, 14.0)),
            dict(clutter_per_floor=-1),
        ],
    )
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(ValueError):
            BuildingSpec(**kwargs)

    def test_json_round_trip(self):
        spec = BuildingSpec(
            template="corridor-spine", floors=4, palette="commercial", seed=9
        )
        assert BuildingSpec.from_json(spec.to_json()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown BuildingSpec fields"):
            BuildingSpec.from_dict({"floors": 2, "basements": 1})

    def test_name_round_trip_only_encodes_overrides(self):
        spec = BuildingSpec(template="open-plan", floors=3, seed=5)
        name = spec.to_name()
        assert name.startswith("generated:open-plan?")
        assert "floors=3" in name and "seed=5" in name
        assert "width_m" not in name  # defaults stay out of the name
        assert BuildingSpec.from_name(name) == spec

    def test_default_spec_name_has_no_query(self):
        assert BuildingSpec().to_name() == "generated:room-grid"

    def test_name_coerces_query_types(self):
        spec = BuildingSpec.from_name(
            "generated:room-grid?floors=3&width_m=14.5&ap_power_dbm=12,18"
        )
        assert spec.floors == 3
        assert spec.width_m == pytest.approx(14.5)
        assert spec.ap_power_dbm == (12.0, 18.0)

    def test_name_round_trips_full_float_precision(self):
        spec = BuildingSpec(width_m=12.3456789, seed=2)
        rebuilt = BuildingSpec.from_name(spec.to_name())
        assert rebuilt == spec  # repr formatting: no precision loss

    def test_corridor_envelope_validated_at_spec_time(self):
        with pytest.raises(ValueError, match="corridor-spine needs"):
            BuildingSpec(template="corridor-spine", depth_m=6.0, corridor_m=3.0)

    def test_bad_names_raise(self):
        with pytest.raises(KeyError, match="unknown generated template"):
            BuildingSpec.from_name("generated:castle?floors=2")
        with pytest.raises(ValueError, match="duplicate query field"):
            BuildingSpec.from_name("generated:room-grid?floors=2&floors=3")


class TestGeneratedGeometry:
    def test_frame_convention(self):
        scenario = generate_building(small_spec("room-grid", 7))
        assert scenario.flight_volume.min_corner == (0.0, 0.0, 0.0)
        assert scenario.building.contains(scenario.flight_volume.min_corner)
        assert scenario.building.contains(scenario.flight_volume.max_corner)

    def test_flight_volume_inside_scan_room(self):
        scenario = generate_building(small_spec("corridor-spine", 7))
        for corner in scenario.flight_volume.corners():
            assert scenario.room.contains(corner, tol=1e-6)

    def test_corridor_never_hosts_the_scan_volume(self):
        # Even when the corridor is wider than a room cell, campaigns
        # fly in a proper room (the corridor is not a scan candidate).
        spec = BuildingSpec(
            template="corridor-spine",
            room_m=2.4,
            corridor_m=2.5,
            width_m=24.0,
            depth_m=12.0,
            seed=7,
        )
        scenario = generate_building(spec)
        # The corridor spans the full 24 m width and is 2.5 m deep; a
        # side room is one room_m cell wide and (depth - corridor)/2 deep.
        assert scenario.room.size[0] <= spec.room_m + 1e-9
        assert scenario.room.size[1] > spec.corridor_m

    def test_aps_inside_building(self):
        for template, seed in TEMPLATE_SEEDS:
            scenario = generate_building(small_spec(template, seed))
            for ap in scenario.access_points:
                assert scenario.building.contains(ap.position, tol=1e-6)

    def test_slab_count_and_stairwell(self):
        spec = small_spec("room-grid", 5, floors=3)
        scenario = generate_building(spec)
        slabs = [w for w in scenario.environment.walls if w.axis == 2]
        # Ground + roof are solid (1 piece); the 2 interior slabs are
        # split into up to 4 pieces around the stairwell.
        solid = [w for w in slabs if "/" not in w.name]
        pierced = [w for w in slabs if "/" in w.name]
        assert len(solid) == 2
        assert 2 * 2 <= len(pierced) <= 2 * 4
        assert scenario.metadata["stairwell"] is not None

    def test_single_storey_has_no_stairwell(self):
        scenario = generate_building(small_spec("open-plan", 5))
        assert scenario.metadata["stairwell"] is None

    def test_clutter_and_no_fly_are_generated(self):
        spec = small_spec("room-grid", 13, clutter_per_floor=2, no_fly_zones=2)
        scenario = generate_building(spec)
        assert len(scenario.metadata["clutter"]) >= 1
        clutter_walls = [
            w for w in scenario.environment.walls if w.name.startswith("clutter")
        ]
        assert len(clutter_walls) == 4 * len(scenario.metadata["clutter"])
        assert len(scenario.no_fly) == 2
        for zone in scenario.no_fly:
            for corner in zone.corners():
                assert scenario.flight_volume.contains(corner, tol=1e-6)

    def test_more_floors_means_more_walls(self):
        low = generate_building(small_spec("room-grid", 5, floors=1))
        high = generate_building(small_spec("room-grid", 5, floors=4))
        assert len(high.environment.walls) > len(low.environment.walls)
        assert high.metadata["n_aps"] > low.metadata["n_aps"]


class TestApPolicies:
    @pytest.mark.parametrize("policy", AP_POLICIES)
    def test_every_policy_populates(self, policy):
        spec = small_spec("room-grid", 9, ap_policy=policy)
        scenario = generate_building(spec)
        assert len(scenario.access_points) >= 1
        macs = [ap.mac for ap in scenario.access_points]
        assert len(set(macs)) == len(macs)

    def test_ceiling_grid_is_denser_with_smaller_spacing(self):
        sparse = generate_building(
            small_spec("room-grid", 9, ap_policy="ceiling-grid", ap_spacing_m=8.0)
        )
        dense = generate_building(
            small_spec("room-grid", 9, ap_policy="ceiling-grid", ap_spacing_m=3.0)
        )
        assert len(dense.access_points) > len(sparse.access_points)

    def test_ssid_budget_respected(self):
        scenario = generate_building(small_spec("room-grid", 9, n_ssids=2))
        assert len({ap.ssid for ap in scenario.access_points}) <= 2


class TestReproducibility:
    @pytest.mark.parametrize(("template", "seed"), TEMPLATE_SEEDS)
    def test_same_spec_rebuilds_identical_world(self, template, seed):
        spec = small_spec(template, seed)
        a = generate_building(spec)
        b = generate_building(BuildingSpec.from_json(spec.to_json()))
        # Identical geometry...
        assert len(a.environment.walls) == len(b.environment.walls)
        for wall_a, wall_b in zip(a.environment.walls, b.environment.walls):
            assert wall_a.axis == wall_b.axis
            assert wall_a.offset == wall_b.offset
            assert wall_a.bounds == wall_b.bounds
        # ...identical AP placement...
        assert [ap.mac for ap in a.access_points] == [
            ap.mac for ap in b.access_points
        ]
        assert [ap.position for ap in a.access_points] == [
            ap.position for ap in b.access_points
        ]
        # ...and an identical RSS field (trend + frozen shadowing).
        points = a.flight_volume.grid(4, 3, 2)
        macs = [ap.mac for ap in a.access_points]
        rss_a = a.environment.mean_rss_dbm_many(macs, points)
        rss_b = b.environment.mean_rss_dbm_many(macs, points)
        np.testing.assert_allclose(rss_a, rss_b, atol=1e-9, rtol=0.0)

    def test_different_seeds_differ(self):
        a = generate_building(small_spec("room-grid", 3))
        b = generate_building(small_spec("room-grid", 4))
        assert [ap.mac for ap in a.access_points] != [
            ap.mac for ap in b.access_points
        ]


class TestRegistryIntegration:
    def test_generated_name_builds(self):
        scenario = build_scenario("generated:room-grid?floors=2&seed=7")
        assert isinstance(scenario, GeneratedScenario)
        assert scenario.spec.floors == 2
        assert scenario.spec.seed == 7

    def test_pinned_seed_wins_over_argument(self):
        scenario = build_scenario("generated:room-grid?seed=7", seed=99)
        assert scenario.spec.seed == 7

    def test_unpinned_seed_comes_from_argument(self):
        scenario = build_scenario("generated:room-grid", seed=99)
        assert scenario.spec.seed == 99

    def test_presets_registered(self):
        names = available_scenarios()
        for preset in GENERATED_PRESETS:
            assert preset in names

    def test_preset_builds_generated_scenario(self):
        scenario = build_scenario("residential-block", seed=4)
        assert isinstance(scenario, GeneratedScenario)
        assert scenario.spec.seed == 4

    def test_metadata_matches_environment(self):
        scenario = build_scenario("generated:corridor-spine?floors=2&seed=5")
        assert scenario.metadata["n_walls"] == len(scenario.environment.walls)
        assert scenario.metadata["n_aps"] == len(scenario.access_points)
        assert scenario.metadata["name"] == scenario.spec.to_name()


class TestToolchainRoundTrip:
    """The acceptance criterion: generate -> active campaign -> REM."""

    @pytest.mark.parametrize(("template", "seed"), TEMPLATE_SEEDS)
    def test_full_toolchain(self, template, seed):
        scenario = generate_building(small_spec(template, seed))
        active = ActiveSamplingConfig(
            seed_waypoints=6,
            batch_size=6,
            budget_waypoints=12,
            predictor_factory=lambda: KnnRegressor(
                n_neighbors=3, weights="distance"
            ),
        )
        result = run_active_campaign(scenario=scenario, active=active)
        assert result.waypoints_flown == 12
        assert len(result.log) > 0, "campaign collected no samples"
        builder = result.builder
        assert builder.ready
        rem = build_rem(
            builder.model,
            builder.dataset(),
            scenario.flight_volume,
            resolution_m=0.5,
        )
        assert len(rem.macs) >= 1
        # The map answers queries inside the generated volume.
        center = tuple(scenario.flight_volume.center)
        mac, rss = rem.strongest_ap(center)
        assert mac in rem.macs
        assert np.isfinite(rss)
