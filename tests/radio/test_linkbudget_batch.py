"""Batched↔scalar equivalence of the vectorized link-budget engine.

The batched engine (``WallSet.crossing_matrix`` →
``MultiWallPathLoss.path_loss_db_many`` →
``IndoorEnvironment.mean_rss_dbm_many``) must agree with the scalar
reference path at 1e-9 everywhere — across every registered scenario —
plus hold the geometric edge cases the broadcast tests could plausibly
get wrong (touching endpoints, empty wall sets, zero-sigma shadowing).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import (
    BRICK,
    CONCRETE,
    DRYWALL,
    GLASS,
    AccessPoint,
    Cuboid,
    IndoorEnvironment,
    LinkBudget,
    Wall,
    WallSet,
    available_scenarios,
    build_scenario,
    crossed_walls,
)
from repro.radio.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
)
from repro.radio.shadowing import ShadowingModel

finite_coord = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
point = st.tuples(finite_coord, finite_coord, finite_coord)


def random_walls(rng, count=12):
    materials = (DRYWALL, BRICK, CONCRETE, GLASS)
    walls = []
    for i in range(count):
        lo = sorted(rng.uniform(-8.0, 8.0, size=2))
        hi = sorted(rng.uniform(-8.0, 8.0, size=2))
        walls.append(
            Wall(
                axis=int(rng.integers(0, 3)),
                offset=float(rng.uniform(-6.0, 6.0)),
                bounds=((lo[0], lo[1]), (hi[0], hi[1])),
                material=materials[i % len(materials)],
            )
        )
    return walls


class TestCrossingMatrix:
    def test_matches_scalar_crossed_walls(self):
        rng = np.random.default_rng(11)
        walls = random_walls(rng, count=18)
        wall_set = WallSet(walls)
        tx = rng.uniform(-7.0, 7.0, size=(9, 3))
        rx = rng.uniform(-7.0, 7.0, size=(23, 3))
        matrix = wall_set.crossing_matrix(tx, rx)
        for i in range(len(tx)):
            for j in range(len(rx)):
                expected = sum(
                    w.material.attenuation_db
                    for w in crossed_walls(tx[i], rx[j], walls)
                )
                assert matrix[i, j] == pytest.approx(expected, abs=1e-12)

    def test_counts_match_scalar(self):
        rng = np.random.default_rng(3)
        walls = random_walls(rng, count=10)
        wall_set = WallSet(walls)
        tx = rng.uniform(-7.0, 7.0, size=(4, 3))
        rx = rng.uniform(-7.0, 7.0, size=(6, 3))
        counts = wall_set.crossing_counts(tx, rx)
        for i in range(len(tx)):
            for j in range(len(rx)):
                assert counts[i, j] == len(crossed_walls(tx[i], rx[j], walls))

    def test_chunking_is_invisible(self):
        rng = np.random.default_rng(8)
        walls = random_walls(rng, count=6)
        wall_set = WallSet(walls)
        tx = rng.uniform(-7.0, 7.0, size=(3, 3))
        rx = rng.uniform(-7.0, 7.0, size=(40, 3))
        whole = wall_set.crossing_matrix(tx, rx)
        wall_set._BLOCK_ELEMENTS = 7  # force many tiny point blocks
        assert np.array_equal(wall_set.crossing_matrix(tx, rx), whole)

    def test_empty_wall_set_is_all_zero(self):
        wall_set = WallSet(())
        matrix = wall_set.crossing_matrix(
            np.zeros((3, 3)), np.ones((5, 3))
        )
        assert matrix.shape == (3, 5)
        assert not matrix.any()

    def test_empty_points_shapes(self):
        wall_set = WallSet(random_walls(np.random.default_rng(0)))
        assert wall_set.crossing_matrix(np.zeros((0, 3)), np.ones((4, 3))).shape == (
            0,
            4,
        )
        assert wall_set.crossing_matrix(np.zeros((2, 3)), np.ones((0, 3))).shape == (
            2,
            0,
        )

    @given(offset=finite_coord, rx=point)
    @settings(max_examples=50, deadline=None)
    def test_touching_endpoint_never_crosses(self, offset, rx):
        """A TX mounted *on* a wall plane is not attenuated by it."""
        wall = Wall(0, offset, ((-1e3, 1e3), (-1e3, 1e3)), DRYWALL)
        wall_set = WallSet([wall])
        tx = np.array([[offset, 0.0, 0.0]])
        matrix = wall_set.crossing_matrix(tx, np.array([rx], dtype=float))
        assert matrix[0, 0] == 0.0

    @given(tx=point, rx=point)
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_scalar_on_arbitrary_segments(self, tx, rx):
        walls = [
            Wall(axis, off, ((-20.0, 20.0), (-20.0, 20.0)), BRICK)
            for axis in (0, 1, 2)
            for off in (-10.0, 0.0, 10.0)
        ]
        wall_set = WallSet(walls)
        expected = sum(
            w.material.attenuation_db for w in crossed_walls(tx, rx, walls)
        )
        matrix = wall_set.crossing_matrix(
            np.array([tx], dtype=float), np.array([rx], dtype=float)
        )
        assert matrix[0, 0] == pytest.approx(expected, abs=1e-12)


class TestBatchedPathLoss:
    def test_multiwall_many_matches_scalar(self):
        rng = np.random.default_rng(21)
        model = MultiWallPathLoss(random_walls(rng))
        tx = rng.uniform(-6.0, 6.0, size=(5, 3))
        rx = rng.uniform(-6.0, 6.0, size=(11, 3))
        matrix = model.path_loss_db_many(tx, rx)
        for i in range(len(tx)):
            for j in range(len(rx)):
                assert matrix[i, j] == pytest.approx(
                    model.path_loss_db(tx[i], rx[j]), abs=1e-9
                )

    def test_scalar_only_base_falls_back(self):
        class ScalarOnly:
            def path_loss_db(self, tx, rx):
                return 40.0 + float(np.linalg.norm(np.subtract(rx, tx)))

        model = MultiWallPathLoss((), base=ScalarOnly())
        tx = np.zeros((2, 3))
        rx = np.array([[3.0, 0.0, 0.0], [0.0, 4.0, 0.0], [0.0, 0.0, 5.0]])
        matrix = model.path_loss_db_many(tx, rx)
        np.testing.assert_allclose(
            matrix, [[43.0, 44.0, 45.0], [43.0, 44.0, 45.0]], atol=1e-12
        )

    def test_free_space_many_matches_scalar(self):
        rng = np.random.default_rng(4)
        model = FreeSpacePathLoss()
        tx = rng.uniform(-5, 5, size=(3, 3))
        rx = rng.uniform(-5, 5, size=(7, 3))
        matrix = model.path_loss_db_many(tx, rx)
        for i in range(3):
            for j in range(7):
                assert matrix[i, j] == pytest.approx(
                    model.path_loss_db(tx[i], rx[j]), abs=1e-9
                )

    def test_log_distance_clamps_like_scalar(self):
        model = LogDistancePathLoss()
        tx = np.zeros((1, 3))
        rx = np.array([[0.01, 0.0, 0.0]])  # inside the 10 cm clamp
        assert model.path_loss_db_many(tx, rx)[0, 0] == pytest.approx(
            model.path_loss_db(tx[0], rx[0]), abs=1e-12
        )


class TestBatchedShadowing:
    def test_many_matches_scalar_samples(self):
        model = ShadowingModel(sigma_db=3.0, correlation_distance_m=2.0, seed=9)
        pts = np.random.default_rng(2).uniform(-5, 5, size=(17, 3))
        many = model.loss_db_many("aa:bb", pts)
        for j, p in enumerate(pts):
            assert many[j] == pytest.approx(model.loss_db("aa:bb", p), abs=1e-9)

    @given(pts=st.lists(point, min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_zero_sigma_is_exactly_zero(self, pts):
        model = ShadowingModel(sigma_db=0.0, seed=1)
        assert not model.loss_db_many("any", np.array(pts, dtype=float)).any()


class TestBatchedEnvironment:
    @pytest.mark.parametrize("name", sorted(set(available_scenarios())))
    def test_mean_rss_many_matches_scalar_in_every_scenario(self, name):
        scenario = build_scenario(name, seed=17)
        env = scenario.environment
        rng = np.random.default_rng(5)
        lo = np.asarray(scenario.flight_volume.min_corner)
        hi = np.asarray(scenario.flight_volume.max_corner)
        points = rng.uniform(lo - 1.0, hi + 1.0, size=(7, 3))
        macs = [ap.mac for ap in env.access_points[::9]]
        many = env.mean_rss_dbm_many(macs, points)
        for i, mac in enumerate(macs):
            ap = env.ap_by_mac(mac)
            for j, p in enumerate(points):
                assert many[i, j] == pytest.approx(
                    env.mean_rss_dbm(ap, p), abs=1e-9
                )

    def test_unknown_mac_raises(self):
        env = build_scenario("demo").environment
        with pytest.raises(KeyError):
            env.mean_rss_dbm_many(["not:a:mac"], np.zeros((1, 3)))

    def test_sample_many_is_mean_plus_fading(self):
        ap = AccessPoint("aa:aa:aa:aa:aa:01", "one", 1, (5.0, 0.0, 0.0))
        budget = LinkBudget(shadowing_sigma_db=0.0, fading_sigma_db=2.0)
        env = IndoorEnvironment([], [ap], budget=budget, seed=2)
        points = np.random.default_rng(0).uniform(-3, 3, size=(64, 3))
        mean = env.mean_rss_dbm_many([ap.mac], points)
        sampled = env.sample_rss_dbm_many(
            [ap.mac], points, np.random.default_rng(12)
        )
        expected = mean + np.random.default_rng(12).normal(
            0.0, 2.0, size=mean.shape
        )
        np.testing.assert_allclose(sampled, expected, atol=1e-9, rtol=0.0)

    def test_zero_fading_samples_do_not_consume_rng(self):
        ap = AccessPoint("aa:aa:aa:aa:aa:01", "one", 1, (5.0, 0.0, 0.0))
        budget = LinkBudget(shadowing_sigma_db=0.0, fading_sigma_db=0.0)
        env = IndoorEnvironment([], [ap], budget=budget)
        rng = np.random.default_rng(8)
        before = rng.bit_generator.state["state"]["state"]
        env.sample_rss_dbm_many([ap.mac], np.zeros((5, 3)), rng)
        assert rng.bit_generator.state["state"]["state"] == before

    def test_wall_cache_reuses_blocks_and_stays_correct(self):
        scenario = build_scenario("demo", seed=3)
        env = scenario.environment
        macs = [ap.mac for ap in env.access_points[:6]]
        points = scenario.flight_volume.grid(4, 4, 3)
        first = env.mean_rss_dbm_many(macs, points)
        assert len(env._wall_cache) == len(macs)
        second = env.mean_rss_dbm_many(macs, points)
        assert len(env._wall_cache) == len(macs)
        np.testing.assert_array_equal(first, second)

    def test_tiny_blocks_bypass_cache(self):
        env = build_scenario("demo", seed=3).environment
        env.mean_rss_dbm_many(
            [env.access_points[0].mac], np.zeros((2, 3))
        )
        assert not env._wall_cache

    def test_cache_evicts_by_element_budget(self):
        env = build_scenario("demo", seed=3).environment
        env._CACHE_MAX_ELEMENTS = 64  # two 32-point rows
        mac = env.access_points[0].mac
        points = np.tile(np.arange(32, dtype=float)[:, None], (1, 3))
        for shift in range(4):
            env.mean_rss_dbm_many([mac], points + shift)
        assert len(env._wall_cache) == 2
        assert env._wall_cache_elements == 64


class TestContainsMany:
    @given(pts=st.lists(point, min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_contains(self, pts):
        box = Cuboid((-2.0, -1.0, 0.0), (3.0, 4.0, 2.5))
        mask = box.contains_many(np.array(pts, dtype=float))
        assert list(mask) == [box.contains(p) for p in pts]
