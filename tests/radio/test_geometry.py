"""Unit tests for geometry primitives."""

import numpy as np
import pytest

from repro.radio import BRICK, DRYWALL, Cuboid, Wall, crossed_walls
from repro.radio.geometry import segment_plane_intersection


def wall_x(offset, material=DRYWALL):
    return Wall(0, offset, ((-10.0, 10.0), (-10.0, 10.0)), material)


class TestSegmentPlaneIntersection:
    def test_crossing_detected(self):
        p = np.array([0.0, 0.0, 0.0])
        q = np.array([2.0, 0.0, 0.0])
        point = segment_plane_intersection(p, q, 0, 1.0)
        assert point is not None
        assert np.allclose(point, [1.0, 0.0, 0.0])

    def test_no_crossing_same_side(self):
        p = np.array([0.0, 0.0, 0.0])
        q = np.array([0.5, 0.0, 0.0])
        assert segment_plane_intersection(p, q, 0, 1.0) is None

    def test_endpoint_on_plane_is_not_a_crossing(self):
        p = np.array([1.0, 0.0, 0.0])
        q = np.array([2.0, 0.0, 0.0])
        assert segment_plane_intersection(p, q, 0, 1.0) is None

    def test_interpolates_other_axes(self):
        p = np.array([0.0, 0.0, 0.0])
        q = np.array([2.0, 4.0, 6.0])
        point = segment_plane_intersection(p, q, 0, 1.0)
        assert np.allclose(point, [1.0, 2.0, 3.0])


class TestCrossedWalls:
    def test_counts_walls_between_points(self):
        walls = [wall_x(1.0), wall_x(2.0), wall_x(5.0)]
        hits = crossed_walls([0, 0, 0], [3, 0, 0], walls)
        assert {w.offset for w in hits} == {1.0, 2.0}

    def test_direction_symmetric(self):
        walls = [wall_x(1.0), wall_x(2.0)]
        forward = crossed_walls([0, 0, 0], [3, 0, 0], walls)
        backward = crossed_walls([3, 0, 0], [0, 0, 0], walls)
        assert {w.offset for w in forward} == {w.offset for w in backward}

    def test_bounded_wall_missed_outside_extent(self):
        narrow = Wall(0, 1.0, ((0.0, 1.0), (0.0, 1.0)), BRICK)
        # Path crosses the x=1 plane at y=5 — outside the wall rectangle.
        assert crossed_walls([0, 5, 0.5], [2, 5, 0.5], [narrow]) == []
        # And through the rectangle it hits.
        assert len(crossed_walls([0, 0.5, 0.5], [2, 0.5, 0.5], [narrow])) == 1


class TestWallValidation:
    def test_bad_axis_rejected(self):
        with pytest.raises(ValueError):
            Wall(3, 0.0, ((0, 1), (0, 1)), DRYWALL)

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Wall(0, 0.0, ((1.0, 0.0), (0.0, 1.0)), DRYWALL)

    def test_in_plane_axes(self):
        assert Wall(1, 0.0, ((0, 1), (0, 1)), DRYWALL).in_plane_axes == (0, 2)


class TestCuboid:
    def test_size_center_volume(self):
        box = Cuboid((0.0, 0.0, 0.0), (2.0, 4.0, 6.0))
        assert box.size == (2.0, 4.0, 6.0)
        assert np.allclose(box.center, [1.0, 2.0, 3.0])
        assert box.volume == 48.0

    def test_contains(self):
        box = Cuboid((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        assert box.contains((0.5, 0.5, 0.5))
        assert box.contains((0.0, 0.0, 0.0))
        assert not box.contains((1.5, 0.5, 0.5))

    def test_corners_count_and_extremes(self):
        box = Cuboid((0.0, 0.0, 0.0), (1.0, 2.0, 3.0))
        corners = box.corners()
        assert corners.shape == (8, 3)
        assert {tuple(c) for c in corners} == {
            (x, y, z) for x in (0.0, 1.0) for y in (0.0, 2.0) for z in (0.0, 3.0)
        }

    def test_grid_counts_and_margin(self):
        box = Cuboid((0.0, 0.0, 0.0), (3.74, 3.20, 2.10))
        grid = box.grid(6, 4, 3, margin=0.25)
        assert grid.shape == (72, 3)
        assert grid[:, 0].min() == pytest.approx(0.25)
        assert grid[:, 0].max() == pytest.approx(3.49)
        assert grid[:, 2].min() == pytest.approx(0.25)

    def test_grid_excessive_margin_rejected(self):
        box = Cuboid((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            box.grid(2, 2, 2, margin=0.6)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Cuboid((1.0, 0.0, 0.0), (0.0, 1.0, 1.0))
