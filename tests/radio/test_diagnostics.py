"""Unit tests for scenario diagnostics."""

import pytest

from repro.radio import build_demo_scenario
from repro.radio.diagnostics import diagnose_scenario


@pytest.fixture(scope="module")
def diagnostics(demo_scenario):
    return diagnose_scenario(demo_scenario)


class TestDemoScenarioDiagnostics:
    def test_default_world_is_paper_shaped(self, diagnostics):
        assert diagnostics.paper_shape_warnings() == []

    def test_counts_in_expected_band(self, diagnostics):
        assert 25 <= diagnostics.mean_aps_per_scan <= 50
        assert 2000 <= diagnostics.samples_projected_72_waypoints <= 3300

    def test_gradients_positive(self, diagnostics):
        assert diagnostics.x_gradient_ratio > 1.0
        assert diagnostics.y_gradient_ratio > 1.0

    def test_distinct_macs_near_paper(self, diagnostics):
        assert 55 <= diagnostics.distinct_macs_seen <= 90


class TestWarningPaths:
    def test_dead_world_raises_warnings(self):
        from dataclasses import replace

        from repro.radio import DemoScenarioConfig

        config = DemoScenarioConfig(seed=63)
        # Kill all transmitters: everything below sensitivity.
        config = replace(config, ap_tx_power_range_dbm=(-60.0, -50.0))
        scenario = build_demo_scenario(seed=63, config=config)
        diagnostics = diagnose_scenario(scenario)
        warnings = diagnostics.paper_shape_warnings()
        assert warnings
        assert any("APs per scan" in w for w in warnings)
