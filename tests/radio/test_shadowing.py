"""Unit tests for the correlated shadowing model."""

import numpy as np
import pytest

from repro.radio import GaussianRandomField, ShadowingModel


class TestGaussianRandomField:
    def test_deterministic_given_rng_seed(self):
        a = GaussianRandomField(3.0, 2.0, np.random.default_rng(7))
        b = GaussianRandomField(3.0, 2.0, np.random.default_rng(7))
        point = (1.0, 2.0, 0.5)
        assert a.sample(point) == b.sample(point)

    def test_marginal_std_close_to_sigma(self):
        field = GaussianRandomField(
            3.0, 2.0, np.random.default_rng(3), n_components=256
        )
        rng = np.random.default_rng(11)
        points = rng.uniform(-50, 50, size=(4000, 3))
        values = field.sample_many(points)
        assert values.std() == pytest.approx(3.0, rel=0.15)
        assert abs(values.mean()) < 0.3

    def test_nearby_points_correlated_far_points_not(self):
        field = GaussianRandomField(
            3.0, 2.0, np.random.default_rng(5), n_components=256
        )
        rng = np.random.default_rng(13)
        base = rng.uniform(-30, 30, size=(800, 3))
        near = base + rng.normal(0, 0.1, size=base.shape)
        far = base + 50.0
        v0 = field.sample_many(base)
        corr_near = np.corrcoef(v0, field.sample_many(near))[0, 1]
        corr_far = np.corrcoef(v0, field.sample_many(far))[0, 1]
        assert corr_near > 0.9
        assert abs(corr_far) < 0.2

    def test_sample_many_matches_scalar_sample(self):
        field = GaussianRandomField(2.0, 1.5, np.random.default_rng(1))
        points = np.array([[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]])
        many = field.sample_many(points)
        assert many[0] == pytest.approx(field.sample(points[0]))
        assert many[1] == pytest.approx(field.sample(points[1]))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianRandomField(-1.0, 2.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            GaussianRandomField(1.0, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            GaussianRandomField(1.0, 1.0, np.random.default_rng(0)).sample_many(
                np.zeros((3, 2))
            )


class TestShadowingModel:
    def test_fields_keyed_and_cached(self):
        model = ShadowingModel(sigma_db=2.0, seed=4)
        assert model.field_for("aa") is model.field_for("aa")
        assert model.field_for("aa") is not model.field_for("bb")

    def test_loss_deterministic_per_key_and_point(self):
        a = ShadowingModel(sigma_db=2.0, seed=4)
        b = ShadowingModel(sigma_db=2.0, seed=4)
        assert a.loss_db("mac", (1, 2, 3)) == b.loss_db("mac", (1, 2, 3))

    def test_zero_sigma_shortcut(self):
        model = ShadowingModel(sigma_db=0.0, seed=4)
        assert model.loss_db("mac", (5, 5, 5)) == 0.0

    def test_different_keys_decorrelated(self):
        model = ShadowingModel(sigma_db=3.0, seed=4)
        rng = np.random.default_rng(2)
        points = rng.uniform(-20, 20, size=(500, 3))
        va = model.field_for("a").sample_many(points)
        vb = model.field_for("b").sample_many(points)
        assert abs(np.corrcoef(va, vb)[0, 1]) < 0.25
