"""Unit tests for building materials."""

import pytest

from repro.radio import BRICK, CONCRETE, DRYWALL, MATERIALS, Material


class TestMaterials:
    def test_registry_complete(self):
        assert {
            "drywall",
            "brick",
            "concrete",
            "reinforced_concrete",
            "glass",
            "wood",
        } <= set(
            MATERIALS
        )

    def test_attenuations_ordered_by_heaviness(self):
        assert DRYWALL.attenuation_db < BRICK.attenuation_db < CONCRETE.attenuation_db

    def test_scaled_doubles_with_thickness(self):
        thick = BRICK.scaled(BRICK.thickness_m * 2)
        assert thick.attenuation_db == pytest.approx(2 * BRICK.attenuation_db)
        assert thick.thickness_m == pytest.approx(2 * BRICK.thickness_m)

    def test_scaled_name_annotated(self):
        assert "0.40" in BRICK.scaled(0.4).name

    def test_scaled_invalid_thickness(self):
        with pytest.raises(ValueError):
            BRICK.scaled(0.0)
        with pytest.raises(ValueError):
            BRICK.scaled(-1.0)

    def test_materials_frozen(self):
        with pytest.raises(AttributeError):
            DRYWALL.attenuation_db = 99.0  # type: ignore[misc]

    def test_custom_material(self):
        metal = Material("metal", attenuation_db=30.0, thickness_m=0.02)
        assert metal.scaled(0.04).attenuation_db == pytest.approx(60.0)
