"""Unit tests for path-loss models."""

import numpy as np
import pytest

from repro.radio import (
    BRICK,
    DRYWALL,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
    Wall,
    fspl_db,
)


class TestFspl:
    def test_known_value_at_1m_2442mhz(self):
        # 20 log10(4 pi d f / c): ~40.2 dB at 1 m in the ISM band.
        assert fspl_db(1.0, 2442.0) == pytest.approx(40.2, abs=0.3)

    def test_doubles_distance_adds_6db(self):
        assert fspl_db(20.0, 2442.0) - fspl_db(10.0, 2442.0) == pytest.approx(
            6.02, abs=0.01
        )

    def test_clamps_tiny_distance(self):
        assert fspl_db(0.0, 2442.0) == fspl_db(0.1, 2442.0)


class TestLogDistance:
    def test_slope_matches_exponent(self):
        model = LogDistancePathLoss(exponent=3.0, pl0_db=40.0)
        loss_10 = model.path_loss_db((0, 0, 0), (10, 0, 0))
        loss_100 = model.path_loss_db((0, 0, 0), (100, 0, 0))
        assert loss_100 - loss_10 == pytest.approx(30.0)

    def test_reference_at_d0(self):
        model = LogDistancePathLoss(exponent=2.0, pl0_db=40.0, d0_m=1.0)
        assert model.path_loss_db((0, 0, 0), (1, 0, 0)) == pytest.approx(40.0)

    def test_monotone_in_distance(self):
        model = LogDistancePathLoss()
        losses = [model.path_loss_db((0, 0, 0), (d, 0, 0)) for d in (1, 2, 5, 10, 20)]
        assert losses == sorted(losses)


class TestMultiWall:
    def _wall(self, x, material):
        return Wall(0, x, ((-5.0, 5.0), (-5.0, 5.0)), material)

    def test_adds_wall_losses(self):
        base = LogDistancePathLoss(exponent=2.0, pl0_db=40.0)
        clear = MultiWallPathLoss([], base=base)
        blocked = MultiWallPathLoss(
            [self._wall(1.0, DRYWALL), self._wall(2.0, BRICK)], base=base
        )
        p, q = (0, 0, 0), (3, 0, 0)
        extra = blocked.path_loss_db(p, q) - clear.path_loss_db(p, q)
        assert extra == pytest.approx(DRYWALL.attenuation_db + BRICK.attenuation_db)

    def test_wall_loss_capped(self):
        walls = [self._wall(0.5 + 0.1 * i, BRICK) for i in range(20)]  # 160 dB raw
        model = MultiWallPathLoss(walls, max_wall_loss_db=30.0)
        assert model.wall_loss_db((0, 0, 0), (3, 0, 0)) == 30.0

    def test_no_walls_crossed_when_parallel(self):
        model = MultiWallPathLoss([self._wall(1.0, BRICK)])
        # Path parallel to the wall plane on one side.
        assert model.wall_loss_db((0, -1, 0), (0, 1, 0)) == 0.0

    def test_crossings_listed(self):
        wall = self._wall(1.0, BRICK)
        model = MultiWallPathLoss([wall])
        assert model.crossings((0, 0, 0), (2, 0, 0)) == [wall]


class TestFreeSpace:
    def test_matches_fspl(self):
        model = FreeSpacePathLoss(freq_mhz=2442.0)
        assert model.path_loss_db((0, 0, 0), (0, 0, 7)) == pytest.approx(
            fspl_db(7.0, 2442.0)
        )
