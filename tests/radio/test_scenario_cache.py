"""ScenarioCache: the sweep-wide scenario/campaign/field cache tiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.scenario_cache import (
    ScenarioCache,
    cache_enabled,
    configure_default_cache,
    default_cache,
    scenario_digest,
)
from repro.serve import RemJobSpec, run_job
from repro.station import CampaignConfig

TINY = dict(
    acquisition="active",
    active={"seed_waypoints": 6, "batch_size": 6, "budget_waypoints": 6},
    tune=False,
    min_samples_per_mac=2,
    resolution_m=0.8,
    with_uncertainty=False,
)


class TestDigest:
    def test_deterministic_and_distinct(self):
        assert scenario_digest("condo", 1) == scenario_digest("condo", 1)
        assert scenario_digest("condo", 1) != scenario_digest("condo", 2)
        assert scenario_digest("condo", 1) != scenario_digest("office", 1)

    def test_resolution_participates(self):
        assert scenario_digest("condo", 1) != scenario_digest("condo", 1, 0.5)
        assert scenario_digest("condo", 1, 0.5) != scenario_digest("condo", 1, 0.25)


class TestScenarioTier:
    def test_hit_returns_the_same_object(self):
        cache = ScenarioCache()
        first = cache.scenario("condo", 3)
        second = cache.scenario("condo", 3)
        assert second is first
        assert cache.stats()["scenario_builds"] == 1
        assert cache.stats()["scenario_hits"] == 1

    def test_lru_eviction_at_capacity(self):
        cache = ScenarioCache(capacity=1)
        first = cache.scenario("condo", 3)
        cache.scenario("condo", 4)  # evicts seed 3
        rebuilt = cache.scenario("condo", 3)
        assert rebuilt is not first
        assert cache.stats()["scenario_builds"] == 3
        assert cache.stats()["scenario_hits"] == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ScenarioCache(capacity=0)


class TestCampaignTier:
    def test_representable_config_flies_once(self):
        cache = ScenarioCache()
        flights = {"n": 0}
        world = object()

        def fly(scenario, config):
            flights["n"] += 1
            assert scenario is world
            return ("flown", config.seed)

        config = CampaignConfig(seed=9)
        first = cache.campaign(config, world, fly=fly)
        second = cache.campaign(config, world, fly=fly)
        assert flights["n"] == 1
        assert second is first
        assert cache.stats()["campaign_hits"] == 1

    def test_distinct_configs_do_not_collide(self):
        cache = ScenarioCache()
        world = object()

        def fly(scenario, config):
            return config.seed

        results = [
            cache.campaign(CampaignConfig(seed=s), world, fly=fly)
            for s in (1, 2, 1)
        ]
        assert results == [1, 2, 1]
        assert cache.stats()["campaign_builds"] == 2
        assert cache.stats()["campaign_hits"] == 1

    def test_non_representable_config_stays_uncached(self):
        """Hardware overrides have no job-field form, so no cache key."""
        cache = ScenarioCache()
        flights = {"n": 0}

        def fly(scenario, config):
            flights["n"] += 1
            return object()

        config = CampaignConfig(anchor_count=4)
        with pytest.raises(ValueError):
            config.to_job_fields()
        first = cache.campaign(config, object(), fly=fly)
        second = cache.campaign(config, object(), fly=fly)
        assert flights["n"] == 2
        assert second is not first
        assert cache.stats()["campaign_builds"] == 0


class TestFieldTier:
    def test_in_process_memo(self):
        cache = ScenarioCache()
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return np.arange(6.0).reshape(2, 3)

        key = scenario_digest("condo", 1, 0.5)
        first = cache.fields(key, compute)
        second = cache.fields(key, compute)
        assert calls["n"] == 1
        np.testing.assert_array_equal(second, first)

    def test_disk_tier_persists_and_memory_maps(self, tmp_path):
        key = scenario_digest("condo", 1, 0.5)
        value = np.linspace(-90.0, -40.0, 12).reshape(3, 4)
        writer = ScenarioCache(disk_root=tmp_path)
        written = writer.fields(key, lambda: value)
        assert (tmp_path / f"{key}.npy").exists()
        assert isinstance(written, np.memmap)
        np.testing.assert_array_equal(np.asarray(written), value)

        # A fresh cache (another worker process, conceptually) sharing
        # the directory must hit the disk tier without recomputing.
        reader = ScenarioCache(disk_root=tmp_path)
        read = reader.fields(key, lambda: pytest.fail("recomputed"))
        np.testing.assert_array_equal(np.asarray(read), value)
        assert reader.stats()["field_hits"] == 1
        assert reader.stats()["field_builds"] == 0

    def test_invalid_key_rejected(self, tmp_path):
        cache = ScenarioCache(disk_root=tmp_path)
        for bad in ("", "../escape", "a/b", "x" * 201):
            with pytest.raises(ValueError):
                cache.fields(bad, lambda: np.zeros(1))

    def test_clear_leaves_the_disk_tier(self, tmp_path):
        cache = ScenarioCache(disk_root=tmp_path)
        key = scenario_digest("condo", 2)
        cache.fields(key, lambda: np.ones(3))
        cache.clear()
        assert (tmp_path / f"{key}.npy").exists()


class TestProcessDefaults:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCENARIO_CACHE", raising=False)
        assert cache_enabled()
        monkeypatch.setenv("REPRO_SCENARIO_CACHE", "0")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_SCENARIO_CACHE", "1")
        assert cache_enabled()

    def test_configure_default_cache(self, tmp_path):
        cache = default_cache()
        old_root, old_capacity = cache.disk_root, cache.capacity
        try:
            configured = configure_default_cache(
                disk_root=tmp_path, capacity=4
            )
            assert configured is cache
            assert cache.disk_root == tmp_path
            assert cache.capacity == 4
            with pytest.raises(ValueError):
                configure_default_cache(capacity=0)
        finally:
            cache.disk_root, cache.capacity = old_root, old_capacity


class TestBuildIntegration:
    def test_cache_on_and_off_build_identical_artifacts(self, monkeypatch):
        """The cache must change wall time only, never a single byte."""
        spec = RemJobSpec(**TINY)
        monkeypatch.delenv("REPRO_SCENARIO_CACHE", raising=False)
        cached = run_job(spec)
        monkeypatch.setenv("REPRO_SCENARIO_CACHE", "0")
        uncached = run_job(spec)
        assert cached.content_hash() == uncached.content_hash()

    def test_sweep_cells_share_the_flown_campaign(self, monkeypatch):
        """Cells differing only in predictor reuse one campaign."""
        monkeypatch.delenv("REPRO_SCENARIO_CACHE", raising=False)
        run_job(RemJobSpec(**{**TINY, "predictor": "knn", "tune": False}))
        before = default_cache().stats()
        run_job(RemJobSpec(**{**TINY, "predictor": "idw"}))
        after = default_cache().stats()
        assert after["campaign_hits"] == before["campaign_hits"] + 1
        assert after["campaign_builds"] == before["campaign_builds"]
        assert after["scenario_hits"] == before["scenario_hits"] + 1
