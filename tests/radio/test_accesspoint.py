"""Unit tests for AP population generation."""

import numpy as np
import pytest

from repro.radio import AccessPoint, format_mac, generate_population
from repro.radio.spectrum import WIFI_CHANNELS


class TestFormatMac:
    def test_format(self):
        assert format_mac(0x0011223344FF) == "00:11:22:33:44:ff"

    def test_range_validation(self):
        with pytest.raises(ValueError):
            format_mac(2**48)
        with pytest.raises(ValueError):
            format_mac(-1)


class TestAccessPoint:
    def test_invalid_channel_rejected(self):
        with pytest.raises(ValueError):
            AccessPoint("aa:bb:cc:dd:ee:ff", "net", 14, (0, 0, 0))

    def test_position_array(self):
        ap = AccessPoint("aa:bb:cc:dd:ee:ff", "net", 6, (1.0, 2.0, 3.0))
        assert np.allclose(ap.position_array, [1.0, 2.0, 3.0])


class TestGeneratePopulation:
    def _population(self, rng, **kwargs):
        defaults = dict(
            n_aps=60,
            n_ssids=40,
            building_center=(5.0, -5.0, 0.0),
            spread_m=(5.0, 5.0, 3.0),
            rng=rng,
            bounds_min=(-10.0, -20.0, -8.0),
            bounds_max=(20.0, 5.0, 8.0),
        )
        defaults.update(kwargs)
        return generate_population(**defaults)

    def test_counts(self, rng):
        aps = self._population(rng)
        assert len(aps) == 60
        assert len({ap.mac for ap in aps}) == 60
        assert len({ap.ssid for ap in aps}) == 40

    def test_ssids_reused_not_invented(self, rng):
        aps = self._population(rng)
        ssids = [ap.ssid for ap in aps]
        # 60 APs over 40 SSIDs: some SSID must repeat.
        assert len(set(ssids)) < len(ssids)

    def test_channels_valid_and_primary_heavy(self, rng):
        aps = self._population(rng)
        assert all(ap.channel in WIFI_CHANNELS for ap in aps)
        primary = sum(1 for ap in aps if ap.channel in (1, 6, 11))
        assert primary / len(aps) > 0.6

    def test_positions_within_bounds(self, rng):
        aps = self._population(rng)
        for ap in aps:
            assert -10.0 <= ap.position[0] <= 20.0
            assert -20.0 <= ap.position[1] <= 5.0
            assert -8.0 <= ap.position[2] <= 8.0

    def test_exclusion_sphere_respected(self, rng):
        aps = self._population(
            rng, exclusion_center=(5.0, -5.0, 0.0), exclusion_radius_m=3.0
        )
        for ap in aps:
            distance = np.linalg.norm(ap.position_array - np.array([5.0, -5.0, 0.0]))
            assert distance >= 3.0 - 1e-9

    def test_ssid_count_cannot_exceed_ap_count(self, rng):
        with pytest.raises(ValueError):
            self._population(rng, n_aps=5, n_ssids=10)

    def test_uniform_fraction_requires_bounds(self, rng):
        with pytest.raises(ValueError):
            generate_population(
                n_aps=5,
                n_ssids=5,
                building_center=(0, 0, 0),
                spread_m=(1, 1, 1),
                rng=rng,
                uniform_fraction=0.5,
            )

    def test_uniform_fraction_validated(self, rng):
        with pytest.raises(ValueError):
            self._population(rng, uniform_fraction=1.5)

    def test_tx_power_range(self, rng):
        aps = self._population(rng, tx_power_range_dbm=(10.0, 12.0))
        assert all(10.0 <= ap.tx_power_dbm <= 12.0 for ap in aps)
