"""Unit tests for the self-interference model."""

import pytest

from repro.radio import (
    CrazyradioInterference,
    InterferenceSource,
    ReceiverSelectivity,
    crazyradio_source,
)


def source_at(freq, power=-20.0, duty=0.9):
    return InterferenceSource(
        freq_mhz=freq, bandwidth_mhz=2.0, power_at_receiver_dbm=power, duty_cycle=duty
    )


class TestReceiverSelectivity:
    def test_in_band_no_rejection(self):
        sel = ReceiverSelectivity()
        assert sel.rejection_db(0.0) == 0.0
        assert sel.rejection_db(11.0) == 0.0

    def test_rolloff_and_saturation(self):
        sel = ReceiverSelectivity(
            adjacent_rejection_db=20.0,
            rolloff_db_per_mhz=1.0,
            ultimate_rejection_db=55.0,
            adjacent_start_mhz=11.0,
        )
        assert sel.rejection_db(21.0) == pytest.approx(30.0)
        assert sel.rejection_db(500.0) == 55.0

    def test_symmetric_in_sign(self):
        sel = ReceiverSelectivity()
        assert sel.rejection_db(30.0) == sel.rejection_db(-30.0)


class TestInterferenceFloor:
    def test_co_channel_worse_than_far(self):
        model = CrazyradioInterference()
        thermal = -95.0
        co = model.floor_dbm([source_at(2412.0)], 1, thermal)
        far = model.floor_dbm([source_at(2525.0)], 1, thermal)
        assert co > far > thermal

    def test_far_off_channel_still_raises_floor(self):
        # The blocking mechanism: even a fully out-of-band strong source
        # lifts the floor above thermal (finite ultimate rejection).
        model = CrazyradioInterference()
        far = model.floor_dbm([source_at(2525.0)], 1, -95.0)
        assert far > -95.0 + 5.0

    def test_no_sources_thermal(self):
        model = CrazyradioInterference()
        assert model.floor_dbm([], 6, -95.0) == pytest.approx(-95.0)

    def test_in_band_power_scales_with_source_power(self):
        model = CrazyradioInterference()
        weak = model.in_band_power_dbm(source_at(2412.0, power=-40.0), 1)
        strong = model.in_band_power_dbm(source_at(2412.0, power=-20.0), 1)
        assert strong - weak == pytest.approx(20.0)


class TestDutyCycle:
    def test_combined_duty_cycle(self):
        model = CrazyradioInterference()
        assert model.combined_duty_cycle([]) == 0.0
        assert model.combined_duty_cycle([source_at(2400, duty=0.5)]) == 0.5
        combined = model.combined_duty_cycle(
            [source_at(2400, duty=0.5), source_at(2410, duty=0.5)]
        )
        assert combined == pytest.approx(0.75)

    def test_duty_cycle_validation(self):
        with pytest.raises(ValueError):
            source_at(2400, duty=1.5)


class TestCrazyradioSource:
    def test_constructor_defaults(self):
        src = crazyradio_source(2475.0)
        assert src.freq_mhz == 2475.0
        assert 0.0 < src.duty_cycle <= 1.0
        assert src.bandwidth_mhz > 0
        assert "2475" in src.label
