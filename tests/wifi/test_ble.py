"""Unit tests for the BLE receiver (the §II-A modularity claim)."""

import numpy as np
import pytest

from repro.radio import IndoorEnvironment, LinkBudget
from repro.wifi import (
    BLE_ADV_CHANNELS,
    BleDevice,
    BleObserverModule,
    BleReceiverDriver,
    BleScanConfig,
    DriverError,
    ReceiverState,
    RemReceiverDriver,
    generate_ble_population,
)


@pytest.fixture()
def environment():
    return IndoorEnvironment(
        [], [], budget=LinkBudget(shadowing_sigma_db=0.0, fading_sigma_db=0.0), seed=1
    )


def near_device(mac="02:00:00:00:00:01", name="tag-01", interval=0.1):
    return BleDevice(
        mac=mac, name=name, position=(2.0, 0.0, 0.0),
        tx_power_dbm=0.0, adv_interval_s=interval,
    )


@pytest.fixture()
def module(environment, rng):
    return BleObserverModule(
        environment,
        [near_device()],
        rng,
        config=BleScanConfig(collision_miss_probability=0.0),
    )


class TestPopulation:
    def test_generate_population(self, rng):
        devices = generate_ble_population(
            12, rng, center=(2.0, 2.0, 1.0), spread_m=(3.0, 3.0, 1.0)
        )
        assert len(devices) == 12
        assert len({d.mac for d in devices}) == 12
        assert all(-10.0 <= d.tx_power_dbm <= 5.0 for d in devices)


class TestObserver:
    def test_requires_power(self, module):
        with pytest.raises(DriverError):
            module.run_scan()

    def test_detects_near_device(self, module):
        module.power_on()
        module.set_position((0.0, 0.0, 0.0))
        records = module.run_scan()
        assert len(records) == 1
        record = records[0]
        assert record.mac == "02:00:00:00:00:01"
        assert record.ssid == "tag-01"
        assert record.channel in BLE_ADV_CHANNELS

    def test_device_listed_once_across_channels(self, module):
        module.power_on()
        module.set_position((0.0, 0.0, 0.0))
        macs = [r.mac for r in module.run_scan()]
        assert len(macs) == len(set(macs))

    def test_far_device_not_detected(self, environment, rng):
        far = BleDevice(
            mac="02:00:00:00:00:02", name="far", position=(500.0, 0.0, 0.0)
        )
        module = BleObserverModule(
            environment,
            [far],
            rng,
            config=BleScanConfig(collision_miss_probability=0.0),
        )
        module.power_on()
        assert module.run_scan() == []


class TestDriverContract:
    def test_is_a_rem_receiver_driver(self, module):
        driver = BleReceiverDriver(module)
        assert isinstance(driver, RemReceiverDriver)

    def test_four_instruction_cycle(self, module):
        driver = BleReceiverDriver(module)
        assert driver.check_state() is ReceiverState.UNINITIALIZED
        driver.initialize()
        assert driver.check_state() is ReceiverState.READY
        duration = driver.start_measurement()
        assert duration == module.scan_duration_s
        records = driver.parse_output()
        assert driver.check_state() is ReceiverState.READY
        assert len(records) == 1

    def test_measurement_requires_ready(self, module):
        driver = BleReceiverDriver(module)
        with pytest.raises(DriverError):
            driver.start_measurement()


class TestUavIntegration:
    def test_crazyflie_flies_ble_campaign(self, demo_scenario, rng):
        """The same firmware scan task runs a BLE receiver unchanged."""
        from repro.link import Crazyradio, CrazyradioLink, RadioConfig
        from repro.sim import Simulator, Timeout, spawn
        from repro.uav import Crazyflie, FirmwareConfig, FlightState, UavConfig
        from repro.uav import app_protocol as proto
        from repro.uwb import corner_layout

        devices = generate_ble_population(
            10, rng, center=(2.0, 1.5, 1.0), spread_m=(4.0, 4.0, 1.5)
        )
        sim = Simulator()
        firmware = FirmwareConfig.paper_modified()
        radio = Crazyradio(demo_scenario.environment, RadioConfig())
        link = CrazyradioLink(
            sim, radio, uav_tx_queue_capacity=firmware.crtp_tx_queue_size
        )
        module = BleObserverModule(
            demo_scenario.environment, devices, rng,
            config=BleScanConfig(collision_miss_probability=0.0),
        )
        uav = Crazyflie(
            sim,
            demo_scenario.environment,
            corner_layout(demo_scenario.flight_volume),
            link,
            firmware,
            demo_scenario.streams.fork("ble-test"),
            config=UavConfig(name="ble-uav", start_position=(0.3, 0.3, 0.0)),
            receiver_module=module,
            receiver_driver=BleReceiverDriver(module),
        )
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))
        outcome = {}

        def pilot():
            elapsed = 0.0
            while elapsed < 2.0:
                link.station_send(proto.encode(proto.Goto(1.5, 1.5, 1.0)))
                yield Timeout(0.2)
                elapsed += 0.2
            link.station_send(proto.encode(proto.StartScan()))
            yield Timeout(0.15)
            radio.turn_off()
            yield Timeout(3.5)
            radio.turn_on()
            outcome["messages"] = [proto.decode(p) for p in link.station_poll()]

        spawn(sim, pilot())
        sim.run(until=12.0)

        assert uav.state is FlightState.FLYING
        records = [
            m for m in outcome["messages"]
            if isinstance(m, proto.ScanRecordMsg)
        ]
        known = {d.mac for d in devices}
        assert records, "the BLE scan must deliver records over CRTP"
        assert all(r.mac in known for r in records)
        assert all(r.channel in BLE_ADV_CHANNELS for r in records)

    def test_custom_module_requires_driver(self, demo_scenario, module):
        from repro.link import Crazyradio, CrazyradioLink, RadioConfig
        from repro.sim import Simulator
        from repro.uav import Crazyflie, FirmwareConfig
        from repro.uwb import corner_layout

        sim = Simulator()
        radio = Crazyradio(demo_scenario.environment, RadioConfig())
        link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=16)
        with pytest.raises(ValueError):
            Crazyflie(
                sim,
                demo_scenario.environment,
                corner_layout(demo_scenario.flight_volume),
                link,
                FirmwareConfig.paper_modified(),
                demo_scenario.streams.fork("x"),
                receiver_module=module,
            )
