"""Unit tests for scan record/report containers."""

import math

from repro.wifi import ScanRecord, ScanReport


def report(records):
    return ScanReport(
        records=records,
        position=(1.0, 2.0, 0.5),
        duration_s=3.0,
        channel_dwell_s=3.0 / 13,
    )


def rec(mac, channel=6, rssi=-70):
    return ScanRecord(ssid="net", rssi_dbm=rssi, mac=mac, channel=channel)


class TestScanRecord:
    def test_tuple_order_matches_paper(self):
        r = ScanRecord(ssid="s", rssi_dbm=-60, mac="aa", channel=3)
        assert r.as_tuple() == ("s", -60, "aa", 3)


class TestScanReport:
    def test_len_and_macs(self):
        rep = report([rec("a"), rec("b")])
        assert len(rep) == 2
        assert rep.macs() == ["a", "b"]

    def test_count_on_channel(self):
        rep = report([rec("a", channel=1), rec("b", channel=6), rec("c", channel=6)])
        assert rep.count_on_channel(6) == 2
        assert rep.count_on_channel(11) == 0

    def test_mean_rssi(self):
        rep = report([rec("a", rssi=-60), rec("b", rssi=-80)])
        assert rep.mean_rssi_dbm() == -70.0

    def test_mean_rssi_empty_is_nan(self):
        assert math.isnan(report([]).mean_rssi_dbm())
