"""Unit tests for the channel-sweep scanner."""

import numpy as np
import pytest

from repro.radio import (
    AccessPoint,
    IndoorEnvironment,
    LinkBudget,
    crazyradio_source,
)
from repro.wifi import ChannelSweepScanner, ScanConfig


def env_with_aps(aps, fading=0.0):
    budget = LinkBudget(shadowing_sigma_db=0.0, fading_sigma_db=fading)
    return IndoorEnvironment([], aps, budget=budget, seed=3)


def strong_ap(mac="aa:aa:aa:aa:aa:01", channel=6, distance=3.0):
    return AccessPoint(mac, "net", channel, (distance, 0.0, 0.0), tx_power_dbm=17.0)


def scan_config(**kwargs):
    defaults = dict(collision_miss_probability=0.0)
    defaults.update(kwargs)
    return ScanConfig(**defaults)


class TestDetection:
    def test_strong_ap_always_detected_without_collisions(self, rng):
        env = env_with_aps([strong_ap()])
        scanner = ChannelSweepScanner(env, scan_config())
        report = scanner.scan((0, 0, 0), rng, duration_s=3.0)
        assert len(report) == 1
        assert report.records[0].mac == "aa:aa:aa:aa:aa:01"
        assert report.records[0].channel == 6

    def test_ap_below_sensitivity_never_detected(self, rng):
        # 17 dBm - PL(3.5 exponent, far) way below -89 dBm at 100 m+.
        far = AccessPoint("aa:aa:aa:aa:aa:02", "far", 6, (500.0, 0.0, 0.0))
        env = env_with_aps([far])
        scanner = ChannelSweepScanner(env, scan_config())
        report = scanner.scan((0, 0, 0), rng, duration_s=3.0)
        assert len(report) == 0

    def test_rssi_reported_as_integer_near_mean(self, rng):
        ap = strong_ap(distance=5.0)
        env = env_with_aps([ap])
        scanner = ChannelSweepScanner(env, scan_config())
        report = scanner.scan((0, 0, 0), rng, duration_s=3.0)
        expected = env.mean_rss_dbm(ap, (0, 0, 0))
        assert isinstance(report.records[0].rssi_dbm, int)
        assert report.records[0].rssi_dbm == pytest.approx(expected, abs=1.0)

    def test_each_ap_listed_once(self, rng):
        env = env_with_aps([strong_ap(), strong_ap("aa:aa:aa:aa:aa:03", channel=6)])
        scanner = ChannelSweepScanner(env, scan_config())
        report = scanner.scan((0, 0, 0), rng, duration_s=3.0)
        assert sorted(report.macs()) == ["aa:aa:aa:aa:aa:01", "aa:aa:aa:aa:aa:03"]

    def test_collision_probability_one_detects_nothing(self, rng):
        env = env_with_aps([strong_ap()])
        scanner = ChannelSweepScanner(env, scan_config(collision_miss_probability=1.0))
        assert len(scanner.scan((0, 0, 0), rng, 3.0)) == 0

    def test_rx_gain_offset_shifts_detection(self, rng):
        # An AP just above threshold disappears with a -30 dB deaf receiver.
        ap = strong_ap(distance=10.0)
        env = env_with_aps([ap])
        ok = ChannelSweepScanner(env, scan_config()).scan((0, 0, 0), rng, 3.0)
        deaf = ChannelSweepScanner(
            env, scan_config(rx_gain_offset_db=-60.0)
        ).scan((0, 0, 0), rng, 3.0)
        assert len(ok) == 1
        assert len(deaf) == 0


class TestInterferenceEffect:
    def test_radio_on_detects_fewer(self, demo_scenario):
        env = demo_scenario.environment
        rng_off = np.random.default_rng(5)
        rng_on = np.random.default_rng(5)
        scanner = ChannelSweepScanner(env)
        env.clear_interference()
        off_counts = [
            len(scanner.scan(demo_scenario.flight_volume.center, rng_off, 3.0))
            for _ in range(5)
        ]
        env.set_interference_sources([crazyradio_source(2450.0)])
        on_counts = [
            len(scanner.scan(demo_scenario.flight_volume.center, rng_on, 3.0))
            for _ in range(5)
        ]
        env.clear_interference()
        assert np.mean(on_counts) < np.mean(off_counts)

    def test_report_flags_interference(self, demo_scenario, rng):
        env = demo_scenario.environment
        scanner = ChannelSweepScanner(env)
        env.set_interference_sources([crazyradio_source(2450.0)])
        report = scanner.scan((1, 1, 1), rng, 3.0)
        env.clear_interference()
        assert report.interference_active
        clean = scanner.scan((1, 1, 1), rng, 3.0)
        assert not clean.interference_active


class TestScanConfig:
    def test_dwell_and_opportunities(self):
        cfg = ScanConfig()
        assert cfg.dwell_s(3.0) == pytest.approx(3.0 / 13)
        assert cfg.opportunities(3.0) == 2
        assert cfg.opportunities(0.5) == 1  # min_opportunities floor

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            ScanConfig().dwell_s(0.0)


class TestDetectionProbability:
    def test_monotone_in_distance(self, rng):
        near = strong_ap(distance=5.0)
        far = strong_ap("aa:aa:aa:aa:aa:09", distance=100.0)
        env = env_with_aps([near, far], fading=3.0)
        scanner = ChannelSweepScanner(env, scan_config(collision_miss_probability=0.3))
        p_near = scanner.detection_probability(near, (0, 0, 0), rng, trials=200)
        p_far = scanner.detection_probability(far, (0, 0, 0), rng, trials=200)
        assert p_near > p_far

    def test_probability_bounds_and_determinism(self):
        ap = strong_ap(distance=12.0)
        env = env_with_aps([ap], fading=4.0)
        scanner = ChannelSweepScanner(env, scan_config(collision_miss_probability=0.5))
        p1 = scanner.detection_probability(
            ap, (0, 0, 0), np.random.default_rng(9), trials=300
        )
        p2 = scanner.detection_probability(
            ap, (0, 0, 0), np.random.default_rng(9), trials=300
        )
        assert 0.0 <= p1 <= 1.0
        assert p1 == p2


class TestVectorizedSweep:
    def test_scan_is_deterministic_per_seed(self, demo_scenario):
        scanner = ChannelSweepScanner(demo_scenario.environment)
        position = demo_scenario.flight_volume.center
        a = scanner.scan(position, np.random.default_rng(21), 3.0)
        b = scanner.scan(position, np.random.default_rng(21), 3.0)
        assert [(r.mac, r.rssi_dbm, r.channel) for r in a.records] == [
            (r.mac, r.rssi_dbm, r.channel) for r in b.records
        ]

    def test_records_stay_in_channel_population_order(self, demo_scenario):
        env = demo_scenario.environment
        scanner = ChannelSweepScanner(env)
        report = scanner.scan(
            demo_scenario.flight_volume.center, np.random.default_rng(4), 3.0
        )
        order = {
            ap.mac: (ch_i, ap_i)
            for ch_i, ch in enumerate(scanner.config.channels)
            for ap_i, ap in enumerate(env.aps_on_channel(ch))
        }
        keys = [order[r.mac] for r in report.records]
        assert keys == sorted(keys)
