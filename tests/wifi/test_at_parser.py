"""Unit tests for the AT response parser."""

import pytest

from repro.wifi import (
    AtParseError,
    ScanRecord,
    parse_cwlap_line,
    parse_cwlap_response,
    split_at_fields,
)


class TestSplitFields:
    def test_simple(self):
        assert split_at_fields('"ssid",-70,"aa:bb",6') == ["ssid", "-70", "aa:bb", "6"]

    def test_comma_inside_quotes(self):
        assert split_at_fields('"my,net",-70,"aa",1') == ["my,net", "-70", "aa", "1"]

    def test_escaped_quote(self):
        assert split_at_fields('"say \\"hi\\"",-1,"m",2') == [
            'say "hi"',
            "-1",
            "m",
            "2",
        ]

    def test_unterminated_quote_raises(self):
        with pytest.raises(AtParseError):
            split_at_fields('"oops,-70')


class TestParseLine:
    def test_good_line(self):
        record = parse_cwlap_line('+CWLAP:("HomeNet",-56,"aa:bb:cc:dd:ee:ff",6)')
        assert record == ScanRecord(
            ssid="HomeNet", rssi_dbm=-56, mac="aa:bb:cc:dd:ee:ff", channel=6
        )

    def test_mac_normalized_to_lowercase(self):
        record = parse_cwlap_line('+CWLAP:("x",-70,"AA:BB:CC:DD:EE:FF",1)')
        assert record.mac == "aa:bb:cc:dd:ee:ff"

    def test_unrelated_lines_return_none(self):
        assert parse_cwlap_line("OK") is None
        assert parse_cwlap_line("") is None
        assert parse_cwlap_line("AT+CWLAP") is None

    def test_missing_parens_raises(self):
        with pytest.raises(AtParseError):
            parse_cwlap_line('+CWLAP:"HomeNet",-56,"aa",6')

    def test_wrong_field_count_raises(self):
        with pytest.raises(AtParseError):
            parse_cwlap_line('+CWLAP:("x",-70,"aa:bb:cc:dd:ee:ff")')

    def test_non_numeric_rssi_raises(self):
        with pytest.raises(AtParseError):
            parse_cwlap_line('+CWLAP:("x","strong","aa",6)')


class TestParseResponse:
    def test_full_response(self):
        lines = [
            "AT+CWLAP",
            '+CWLAP:("a",-50,"aa:aa:aa:aa:aa:01",1)',
            '+CWLAP:("b",-60,"aa:aa:aa:aa:aa:02",6)',
            "OK",
        ]
        records = parse_cwlap_response(lines)
        assert [r.ssid for r in records] == ["a", "b"]

    def test_error_response_raises(self):
        with pytest.raises(AtParseError):
            parse_cwlap_response(["ERROR"])

    def test_empty_scan_is_valid(self):
        assert parse_cwlap_response(["OK"]) == []
