"""Unit tests for the four-instruction REM receiver driver (§II-A)."""

import numpy as np
import pytest

from repro.radio import AccessPoint, IndoorEnvironment, LinkBudget
from repro.wifi import (
    DriverError,
    Esp01Driver,
    Esp01Module,
    ReceiverState,
    ScanConfig,
)


@pytest.fixture()
def driver(rng):
    aps = [
        AccessPoint("aa:aa:aa:aa:aa:01", "one", 1, (4.0, 0.0, 0.0), tx_power_dbm=17.0),
    ]
    env = IndoorEnvironment(
        [], aps, budget=LinkBudget(shadowing_sigma_db=0.0, fading_sigma_db=0.0), seed=2
    )
    module = Esp01Module(
        env, rng, scan_config=ScanConfig(collision_miss_probability=0.0)
    )
    return Esp01Driver(module)


class TestDriverLifecycle:
    def test_initial_state(self, driver):
        assert driver.check_state() is ReceiverState.UNINITIALIZED

    def test_initialize_reaches_ready(self, driver):
        driver.initialize()
        assert driver.check_state() is ReceiverState.READY
        assert driver.module.station_mode
        # Output mask configured to the paper's tuple.
        assert driver.module.output_mask.to_int() == 30

    def test_full_measurement_cycle(self, driver):
        driver.initialize()
        duration = driver.start_measurement()
        assert duration == driver.module.scan_duration_s
        assert driver.check_state() is ReceiverState.MEASURING
        records = driver.parse_output()
        assert driver.check_state() is ReceiverState.READY
        assert len(records) == 1
        assert records[0].mac == "aa:aa:aa:aa:aa:01"
        assert records[0].channel == 1

    def test_measurement_requires_ready(self, driver):
        with pytest.raises(DriverError):
            driver.start_measurement()

    def test_parse_requires_measurement(self, driver):
        driver.initialize()
        with pytest.raises(DriverError):
            driver.parse_output()

    def test_repeat_measurements(self, driver):
        driver.initialize()
        for _ in range(3):
            driver.start_measurement()
            assert len(driver.parse_output()) == 1
