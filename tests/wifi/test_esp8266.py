"""Unit tests for the simulated ESP-01 module and UART transport."""

import numpy as np
import pytest

from repro.radio import AccessPoint, IndoorEnvironment, LinkBudget
from repro.wifi import CwlapOutputMask, Esp01Module, ScanConfig, UartTransport


@pytest.fixture()
def module(rng):
    aps = [
        AccessPoint("aa:aa:aa:aa:aa:01", "one", 1, (4.0, 0.0, 0.0), tx_power_dbm=17.0),
        AccessPoint("aa:aa:aa:aa:aa:02", "two", 6, (0.0, 4.0, 0.0), tx_power_dbm=17.0),
    ]
    env = IndoorEnvironment(
        [], aps, budget=LinkBudget(shadowing_sigma_db=0.0, fading_sigma_db=0.0), seed=2
    )
    return Esp01Module(
        env, rng, scan_config=ScanConfig(collision_miss_probability=0.0)
    )


class TestAtProtocol:
    def test_at_probe(self, module):
        assert module.execute("AT") == ["OK"]

    def test_unknown_command_errors(self, module):
        assert module.execute("AT+BOGUS") == ["ERROR"]

    def test_scan_requires_station_mode(self, module):
        assert module.execute("AT+CWLAP") == ["ERROR"]
        assert module.execute("AT+CWMODE_CUR=1") == ["OK"]
        lines = module.execute("AT+CWLAP")
        assert lines[-1] == "OK"
        assert len(lines) == 3  # two APs + OK

    def test_cwmode_validation(self, module):
        assert module.execute("AT+CWMODE_CUR=9") == ["ERROR"]

    def test_scan_output_format(self, module):
        module.execute("AT+CWMODE_CUR=1")
        module.execute("AT+CWLAPOPT=0,30")
        lines = module.execute("AT+CWLAP")
        assert lines[0].startswith('+CWLAP:("')
        # (ssid, rssi, mac, channel) — 4 comma-separated fields.
        assert lines[0].count(",") == 3

    def test_lapopt_mask_controls_fields(self, module):
        module.execute("AT+CWMODE_CUR=1")
        module.execute("AT+CWLAPOPT=0,4")  # rssi only
        lines = module.execute("AT+CWLAP")
        body = lines[0][len("+CWLAP:("):-1]
        assert body.lstrip("-").isdigit()

    def test_lapopt_bad_args(self, module):
        assert module.execute("AT+CWLAPOPT=zzz") == ["ERROR"]

    def test_commands_logged(self, module):
        module.execute("AT")
        module.execute("AT+CWMODE_CUR=1")
        assert module.commands_seen == ["AT", "AT+CWMODE_CUR=1"]


class TestCwlapOutputMask:
    def test_roundtrip(self):
        for mask_int in (0, 30, 31, 2, 16):
            assert CwlapOutputMask.from_int(mask_int).to_int() == mask_int

    def test_paper_mask_is_30(self):
        mask = CwlapOutputMask.from_int(30)
        assert (mask.ssid, mask.rssi, mask.mac, mask.channel) == (True,) * 4
        assert not mask.ecn


class TestUartTransport:
    def test_command_echo_and_response(self, module):
        uart = UartTransport(module, echo=True)
        uart.write(b"AT\r\n")
        lines = uart.read_lines()
        assert lines == ["AT", "OK"]

    def test_no_echo_mode(self, module):
        uart = UartTransport(module, echo=False)
        uart.write(b"AT\r\n")
        assert uart.read_lines() == ["OK"]

    def test_partial_writes_buffered(self, module):
        uart = UartTransport(module, echo=False)
        uart.write(b"A")
        assert uart.read_lines() == []
        uart.write(b"T\r\n")
        assert uart.read_lines() == ["OK"]

    def test_read_bytes_interface(self, module):
        uart = UartTransport(module, echo=False)
        uart.write(b"AT\r\n")
        assert uart.read() == b"OK\r\n"
        assert uart.read() == b""

    def test_pending_output_bytes(self, module):
        uart = UartTransport(module, echo=False)
        assert uart.pending_output_bytes == 0
        uart.write(b"AT\r\n")
        assert uart.pending_output_bytes == 4

    def test_multiple_commands_in_one_write(self, module):
        uart = UartTransport(module, echo=False)
        uart.write(b"AT\r\nAT\r\n")
        assert uart.read_lines() == ["OK", "OK"]
