"""Tests for the figure-by-figure reproduction (Figs. 5-8 + stats)."""

import numpy as np
import pytest

from repro.analysis import (
    FIG5_FREQUENCIES_MHZ,
    campaign_stats,
    figure5,
    figure6,
    figure7,
    figure8,
)


@pytest.fixture(scope="module")
def fig5(demo_scenario):
    return figure5(scenario=demo_scenario, scans_per_setting=3)


class TestFigure5:
    def test_all_settings_present(self, fig5):
        expected = {"off"} | {f"{f:.0f} MHz" for f in FIG5_FREQUENCIES_MHZ}
        assert set(fig5.series) == expected

    def test_radio_off_detects_most(self, fig5):
        off_total = fig5.total("off")
        for freq in FIG5_FREQUENCIES_MHZ:
            assert fig5.total(f"{freq:.0f} MHz") < off_total

    def test_interference_significant_at_every_frequency(self, fig5):
        # Paper: "the interference from the Crazyradio is significant,
        # irrespective of its operating frequency."
        off_total = fig5.total("off")
        for freq in FIG5_FREQUENCIES_MHZ:
            assert fig5.total(f"{freq:.0f} MHz") < 0.75 * off_total

    def test_channels_with_detections_nonempty(self, fig5):
        channels = fig5.channels_with_detections()
        assert channels
        assert all(1 <= c <= 13 for c in channels)


class TestFigure6:
    def test_per_location_counts(self, campaign_result):
        fig6 = figure6(campaign_result)
        assert set(fig6.per_location) == {"UAV-A", "UAV-B"}
        totals = fig6.totals()
        assert totals["UAV-A"] > totals["UAV-B"]
        assert len(fig6.counts("UAV-A")) == 36

    def test_counts_sum_to_log(self, campaign_result):
        fig6 = figure6(campaign_result)
        assert sum(fig6.totals().values()) == len(campaign_result.log)


class TestFigure7:
    def test_trends_match_paper(self, campaign_result):
        fig7 = figure7(campaign_result)
        assert fig7.increasing_in_x()
        assert fig7.decreasing_in_y()

    def test_histogram_totals(self, campaign_result):
        fig7 = figure7(campaign_result)
        assert fig7.x_histogram.total == len(campaign_result.log)
        assert fig7.y_histogram.total == len(campaign_result.log)


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig8(self, campaign_result):
        return figure8(campaign_result.log)

    def test_all_models_scored(self, fig8):
        expected = {
            "baseline-mean-per-mac",
            "knn-base",
            "knn-onehot3-k16",
            "knn-per-mac",
            "neural-network",
            "ordinary-kriging",
        }
        assert set(fig8.rmse_dbm) == expected

    def test_rmse_magnitudes_near_paper(self, fig8):
        # Paper values sit in 4.4-4.9 dBm; ours must land in the band.
        for name, value in fig8.rmse_dbm.items():
            assert 3.0 < value < 6.5, (name, value)

    def test_ladder_matches_paper(self, fig8):
        assert fig8.ladder_matches_paper()

    def test_best_is_scaled_onehot_knn_among_paper_models(self, fig8):
        paper_models = {
            k: v for k, v in fig8.rmse_dbm.items() if k != "ordinary-kriging"
        }
        assert min(paper_models, key=paper_models.get) == "knn-onehot3-k16"

    def test_preprocess_stats_recorded(self, fig8):
        assert fig8.preprocess_stats["retained"] > 2000
        assert fig8.preprocess_stats["train"] > fig8.preprocess_stats["test"]


class TestCampaignStats:
    def test_statistics_shape(self, campaign_result):
        stats = campaign_stats(campaign_result)
        assert stats.total_samples == len(campaign_result.log)
        assert stats.samples_by_uav["UAV-A"] > stats.samples_by_uav["UAV-B"]
        assert 60 <= stats.distinct_macs <= 85
        assert 40 <= stats.distinct_ssids <= 60
        assert -78 < stats.mean_rss_dbm < -68
