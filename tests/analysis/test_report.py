"""Unit tests for ASCII rendering."""

from repro.analysis import bar_chart, render_figure8, table
from repro.analysis.figures import Figure8Result


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = bar_chart({"alpha": 2.0, "beta": 4.0})
        assert "alpha" in chart and "beta" in chart
        assert "4.00" in chart

    def test_longest_bar_for_max(self):
        chart = bar_chart({"small": 1.0, "big": 10.0})
        lines = {l.split("|")[0].strip(): l for l in chart.splitlines()}
        assert lines["big"].count("#") > lines["small"].count("#")

    def test_empty(self):
        assert bar_chart({}) == "(empty)"


class TestTable:
    def test_layout(self):
        text = table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4


class TestRenderFigure8:
    def test_includes_paper_reference(self):
        result = Figure8Result(
            rmse_dbm={"baseline-mean-per-mac": 5.0, "knn-onehot3-k16": 4.1}
        )
        text = render_figure8(result)
        assert "4.8107" in text  # paper baseline value
        assert "dBm" in text
