"""Unit tests for ASCII rendering and the sweep-report aggregation."""

import pytest

from repro.analysis import (
    SWEEP_COLUMNS,
    artifact_rows,
    bar_chart,
    group_stats,
    render_figure8,
    render_sweep_report,
    table,
)
from repro.analysis.figures import Figure8Result


def sidecar(digest, predictor, seed, rmse, wall=1.0, scenario="condo"):
    """A minimal store sidecar record as ArtifactStore.list() returns."""
    return {
        "digest": digest,
        "dtype": "float64",
        "spec": {
            "scenario": scenario,
            "seed": seed,
            "predictor": predictor,
            "acquisition": "lattice",
            "resolution_m": 0.5,
        },
        "provenance": {
            "samples": 100,
            "retained_samples": 90,
            "test_rmse_dbm": rmse,
            "n_macs": 7,
            "wall_time_s": wall,
        },
    }


RECORDS = [
    sidecar("d3", "knn", 2, 4.0, wall=2.0),
    sidecar("d1", "idw", 1, 5.0),
    sidecar("d2", "idw", 2, 7.0),
    sidecar("d4", "knn", 1, 4.5, wall=3.0),
]


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = bar_chart({"alpha": 2.0, "beta": 4.0})
        assert "alpha" in chart and "beta" in chart
        assert "4.00" in chart

    def test_longest_bar_for_max(self):
        chart = bar_chart({"small": 1.0, "big": 10.0})
        lines = {l.split("|")[0].strip(): l for l in chart.splitlines()}
        assert lines["big"].count("#") > lines["small"].count("#")

    def test_empty(self):
        assert bar_chart({}) == "(empty)"


class TestTable:
    def test_layout(self):
        text = table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4


class TestArtifactRows:
    def test_rows_carry_all_columns(self):
        rows = artifact_rows(RECORDS)
        assert len(rows) == 4
        for row in rows:
            assert tuple(row) == SWEEP_COLUMNS

    def test_rows_sorted_deterministically(self):
        rows = artifact_rows(RECORDS)
        assert [r["digest"] for r in rows] == ["d1", "d2", "d4", "d3"]
        assert [r["digest"] for r in artifact_rows(list(reversed(RECORDS)))] == [
            "d1",
            "d2",
            "d4",
            "d3",
        ]

    def test_missing_provenance_yields_none(self):
        record = {"digest": "dx", "spec": {"scenario": "condo"}}
        (row,) = artifact_rows([record])
        assert row["test_rmse_dbm"] is None
        assert row["scenario"] == "condo"


class TestGroupStats:
    def test_mean_std_per_group(self):
        stats = group_stats(artifact_rows(RECORDS), by="predictor")
        assert set(stats) == {"idw", "knn"}
        assert stats["idw"]["mean"] == pytest.approx(6.0)
        assert stats["idw"]["std"] == pytest.approx(1.0)
        assert stats["idw"]["n"] == 2
        assert stats["knn"]["min"] == pytest.approx(4.0)
        assert stats["knn"]["max"] == pytest.approx(4.5)

    def test_alternate_value_column(self):
        stats = group_stats(
            artifact_rows(RECORDS), by="predictor", value="wall_time_s"
        )
        assert stats["knn"]["mean"] == pytest.approx(2.5)

    def test_rows_without_value_dropped(self):
        rows = artifact_rows(RECORDS + [{"digest": "dx", "spec": {}}])
        stats = group_stats(rows, by="predictor")
        assert "" not in stats  # the value-less row formed no group


class TestRenderSweepReport:
    def test_contains_table_and_chart(self):
        text = render_sweep_report(artifact_rows(RECORDS))
        assert "test_rmse_dbm by predictor" in text
        assert "idw" in text and "knn" in text
        assert "6.0000" in text  # idw mean
        assert "#" in text  # the bar chart

    def test_empty_rows(self):
        text = render_sweep_report([])
        assert "0 artifact(s)" in text
        assert "no rows carry" in text


class TestRenderFigure8:
    def test_includes_paper_reference(self):
        result = Figure8Result(
            rmse_dbm={"baseline-mean-per-mac": 5.0, "knn-onehot3-k16": 4.1}
        )
        text = render_figure8(result)
        assert "4.8107" in text  # paper baseline value
        assert "dBm" in text
