"""Unit tests for histogram helpers."""

import numpy as np
import pytest

from repro.analysis import Histogram, bin_by_axis, histogram


class TestHistogram:
    def test_counts_and_edges(self):
        hist = histogram([0.1, 0.2, 0.7, 1.4], bin_width=0.5)
        assert list(hist.counts) == [2, 1, 1]
        assert hist.total == 4
        assert hist.edges[0] == 0.0

    def test_centers(self):
        hist = histogram([0.25, 0.75], bin_width=0.5)
        assert np.allclose(hist.centers, [0.25, 0.75])

    def test_empty_input(self):
        hist = histogram([], bin_width=0.5)
        assert hist.total == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            histogram([1.0], bin_width=0.0)

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(edges=np.array([0.0, 1.0]), counts=np.array([1, 2]))

    def test_as_dict(self):
        hist = histogram([0.1], bin_width=0.5)
        data = hist.as_dict()
        assert data["counts"] == [1]


class TestBinByAxis:
    def test_bins_along_requested_axis(self):
        positions = np.array([[0.1, 2.0, 0.0], [0.2, 2.1, 0.0], [0.9, 2.2, 0.0]])
        hist_x = bin_by_axis(positions, axis=0, bin_width=0.5)
        assert list(hist_x.counts) == [2, 1]

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            bin_by_axis(np.zeros(5), axis=0)
