"""Unit tests for figure-data export."""

import json

import pytest

from repro.analysis import campaign_stats, figure6, figure7, figure8
from repro.analysis.export import (
    campaign_stats_to_dict,
    figure6_to_dict,
    figure7_to_dict,
    figure8_to_dict,
    save_csv_rows,
    save_json,
)


class TestDictExports:
    def test_figure6_roundtrips_through_json(self, campaign_result):
        data = figure6_to_dict(figure6(campaign_result))
        text = json.dumps(data)
        parsed = json.loads(text)
        assert parsed["figure"] == 6
        assert parsed["totals"]["UAV-A"] > parsed["totals"]["UAV-B"]
        assert len(parsed["per_location"]["UAV-A"]) == 36

    def test_figure7_dict(self, campaign_result):
        data = figure7_to_dict(figure7(campaign_result))
        assert data["increasing_in_x"] is True
        assert data["decreasing_in_y"] is True
        assert sum(data["x_histogram"]["counts"]) == len(campaign_result.log)

    def test_figure8_dict(self, campaign_result):
        data = figure8_to_dict(figure8(campaign_result.log))
        json.dumps(data)  # must be serializable
        assert "baseline-mean-per-mac" in data["rmse_dbm"]
        assert data["paper_rmse_dbm"]["knn-onehot3-k16"] == pytest.approx(4.4186)

    def test_campaign_stats_dict(self, campaign_result):
        data = campaign_stats_to_dict(campaign_stats(campaign_result))
        assert data["paper"]["total_samples"] == 2696
        assert data["measured"]["distinct_macs"] > 0


class TestFileWriters:
    def test_save_json(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "x.json")
        assert json.loads(path.read_text()) == {"a": 1}

    def test_save_csv(self, tmp_path):
        path = save_csv_rows(["a", "b"], [[1, 2], [3, 4]], tmp_path / "x.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert len(lines) == 3
