"""Shared fixtures.

The full demo campaign takes a few seconds of wall time, so it runs
once per session and is shared by every test that only *reads* its
results (figure builders, ML stage, statistics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preprocessing import preprocess
from repro.radio import build_demo_scenario
from repro.radio.scenario_cache import default_cache
from repro.station import run_campaign


@pytest.fixture(autouse=True)
def _fresh_scenario_cache():
    """Empty the process-wide scenario/campaign cache per test.

    Keeps each test's build behavior independent of suite order (a
    campaign another test flew must not turn this test's build into a
    cache hit).
    """
    default_cache().clear()
    yield
    default_cache().clear()


@pytest.fixture(scope="session")
def demo_scenario():
    """The default demo scenario (seed 57)."""
    return build_demo_scenario()


@pytest.fixture(scope="session")
def campaign_result():
    """One full 2-UAV campaign, shared session-wide (read-only)."""
    return run_campaign()


@pytest.fixture(scope="session")
def preprocessed(campaign_result):
    """Preprocessed campaign data (train/test split included)."""
    return preprocess(campaign_result.log)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
