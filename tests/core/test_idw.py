"""Unit tests for the IDW interpolator."""

import numpy as np
import pytest

from repro.core.predictors import rmse
from repro.core.predictors.idw import IdwRegressor
from tests.core.test_predictors import dataset_from_arrays


@pytest.fixture()
def linear_field(rng):
    positions = rng.uniform(0, 4, size=(120, 3))
    rssi = -55.0 - 6.0 * positions[:, 0]
    return dataset_from_arrays(positions, np.zeros(120, dtype=int), rssi)


class TestIdw:
    def test_exact_at_training_points(self, linear_field):
        model = IdwRegressor().fit(linear_field)
        predictions = model.predict(linear_field)
        assert np.allclose(predictions, linear_field.rssi_dbm)

    def test_interpolates_linear_trend(self, linear_field, rng):
        model = IdwRegressor(power=3.0).fit(linear_field)
        queries = rng.uniform(0.5, 3.5, size=(30, 3))
        truth = -55.0 - 6.0 * queries[:, 0]
        view = dataset_from_arrays(
            queries, np.zeros(30, dtype=int), np.zeros(30),
            vocabulary=linear_field.mac_vocabulary,
        )
        assert rmse(truth, model.predict(view)) < 2.5

    def test_predictions_within_training_range(self, linear_field, rng):
        model = IdwRegressor().fit(linear_field)
        queries = rng.uniform(-2, 6, size=(20, 3))
        view = dataset_from_arrays(
            queries, np.zeros(20, dtype=int), np.zeros(20),
            vocabulary=linear_field.mac_vocabulary,
        )
        predictions = model.predict(view)
        assert predictions.min() >= linear_field.rssi_dbm.min() - 1e-9
        assert predictions.max() <= linear_field.rssi_dbm.max() + 1e-9

    def test_macs_not_mixed(self):
        positions = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]] * 2
        macs = [0, 0, 1, 1]
        rssi = [-50.0, -52.0, -90.0, -92.0]
        data = dataset_from_arrays(positions, macs, rssi)
        model = IdwRegressor().fit(data)
        query = dataset_from_arrays(
            [[0.5, 0.0, 0.0]], [0], [0.0], vocabulary=data.mac_vocabulary
        )
        assert model.predict(query)[0] == pytest.approx(-51.0, abs=0.5)

    def test_unseen_mac_global_mean(self, linear_field):
        model = IdwRegressor().fit(linear_field)
        query = dataset_from_arrays(
            [[1.0, 1.0, 1.0]], [1], [0.0],
            vocabulary=linear_field.mac_vocabulary + ("aa:aa:aa:aa:aa:99",),
        )
        assert model.predict(query)[0] == pytest.approx(linear_field.rssi_dbm.mean())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IdwRegressor(power=0.0)
        with pytest.raises(ValueError):
            IdwRegressor(epsilon_m=0.0)

    def test_beats_baseline_on_campaign(self, preprocessed):
        from repro.core.predictors import MeanPerMacBaseline

        idw = IdwRegressor(power=2.0).fit(preprocessed.train)
        baseline = MeanPerMacBaseline().fit(preprocessed.train)
        idw_rmse = rmse(preprocessed.test.rssi_dbm, idw.predict(preprocessed.test))
        base_rmse = rmse(
            preprocessed.test.rssi_dbm, baseline.predict(preprocessed.test)
        )
        assert idw_rmse < base_rmse
