"""Unit tests for the ordinary-kriging extension."""

import numpy as np
import pytest

from repro.core.predictors import (
    ExponentialVariogram,
    OrdinaryKrigingRegressor,
    fit_variogram,
)
from tests.core.test_predictors import dataset_from_arrays


class TestVariogram:
    def test_model_shape(self):
        variogram = ExponentialVariogram(nugget=0.5, sill=4.0, range_m=2.0)
        assert variogram(0.0) == pytest.approx(0.5)
        assert variogram(1e9) == pytest.approx(4.5, abs=1e-6)
        assert variogram(2.0) < variogram(4.0)

    def test_fit_recovers_correlation_scale(self, rng):
        # Smooth field: value = 10 * sin(x/3); nearby points similar.
        positions = rng.uniform(0, 20, size=(250, 3))
        positions[:, 1:] = 0.0
        values = 10.0 * np.sin(positions[:, 0] / 3.0)
        variogram = fit_variogram(positions, values)
        # Semivariance at small lag must be far below the sill.
        assert variogram(0.3) < 0.5 * variogram(50.0)

    def test_fit_degenerate_inputs(self):
        variogram = fit_variogram(np.zeros((1, 3)), np.array([1.0]))
        assert variogram.sill > 0

    def test_fit_on_constant_values(self, rng):
        positions = rng.uniform(0, 5, size=(30, 3))
        variogram = fit_variogram(positions, np.full(30, -60.0))
        assert np.isfinite(variogram(1.0))


class TestKrigingRegressor:
    def _smooth_data(self, rng, n=150):
        positions = rng.uniform(0, 4, size=(n, 3))
        rssi = -60.0 - 4.0 * positions[:, 0] + 2.5 * positions[:, 1]
        return dataset_from_arrays(positions, np.zeros(n, dtype=int), rssi)

    def test_interpolates_smooth_field(self, rng):
        data = self._smooth_data(rng)
        model = OrdinaryKrigingRegressor(n_neighbors=12).fit(data)
        query_positions = rng.uniform(0.5, 3.5, size=(40, 3))
        truth = -60.0 - 4.0 * query_positions[:, 0] + 2.5 * query_positions[:, 1]
        query = dataset_from_arrays(
            query_positions, np.zeros(40, dtype=int), np.zeros(40),
            vocabulary=data.mac_vocabulary,
        )
        predictions = model.predict(query)
        rmse = float(np.sqrt(np.mean((predictions - truth) ** 2)))
        assert rmse < 1.5

    def test_weights_sum_keeps_predictions_in_range(self, rng):
        data = self._smooth_data(rng, n=60)
        model = OrdinaryKrigingRegressor(n_neighbors=8).fit(data)
        predictions = model.predict(data)
        margin = 3.0
        assert predictions.min() > data.rssi_dbm.min() - margin
        assert predictions.max() < data.rssi_dbm.max() + margin

    def test_predict_std_nonnegative(self, rng):
        data = self._smooth_data(rng, n=60)
        model = OrdinaryKrigingRegressor(n_neighbors=8).fit(data)
        stds = model.predict_std(data)
        assert (stds >= 0).all()

    def test_unseen_mac_falls_back(self, rng):
        data = self._smooth_data(rng, n=40)
        model = OrdinaryKrigingRegressor().fit(data)
        query = dataset_from_arrays(
            [[1.0, 1.0, 1.0]], [1], [0.0],
            vocabulary=data.mac_vocabulary + ("aa:aa:aa:aa:aa:99",),
        )
        assert model.predict(query)[0] == pytest.approx(data.rssi_dbm.mean())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OrdinaryKrigingRegressor(n_neighbors=1)
