"""Unit tests for baseline / k-NN predictor families."""

import numpy as np
import pytest

from repro.core.dataset import REMDataset
from repro.core.predictors import (
    KnnRegressor,
    MeanPerMacBaseline,
    NotFittedError,
    PerMacKnnRegressor,
)


def dataset_from_arrays(positions, macs, rssi, vocabulary=None):
    positions = np.asarray(positions, dtype=float)
    macs = np.asarray(macs, dtype=int)
    rssi = np.asarray(rssi, dtype=float)
    if vocabulary is None:
        vocabulary = tuple(
            f"aa:aa:aa:aa:aa:{i:02x}" for i in range(int(macs.max()) + 1)
        )
    return REMDataset(
        positions=positions,
        mac_indices=macs,
        channels=np.full(len(rssi), 6, dtype=int),
        rssi_dbm=rssi,
        mac_vocabulary=vocabulary,
    )


@pytest.fixture()
def two_mac_data():
    # MAC 0: RSS falls linearly along x; MAC 1: constant -80.
    positions = [[float(i), 0.0, 0.0] for i in range(8)] * 2
    macs = [0] * 8 + [1] * 8
    rssi = [-50.0 - 2.0 * i for i in range(8)] + [-80.0] * 8
    return dataset_from_arrays(positions, macs, rssi)


class TestBaseline:
    def test_predicts_per_mac_mean(self, two_mac_data):
        model = MeanPerMacBaseline().fit(two_mac_data)
        predictions = model.predict(two_mac_data)
        assert predictions[0] == pytest.approx(-57.0)  # mean of -50..-64
        assert predictions[8] == pytest.approx(-80.0)

    def test_unseen_mac_falls_back_to_global_mean(self, two_mac_data):
        model = MeanPerMacBaseline().fit(two_mac_data)
        query = dataset_from_arrays(
            [[0.0, 0.0, 0.0]], [2], [0.0],
            vocabulary=two_mac_data.mac_vocabulary + ("aa:aa:aa:aa:aa:99",),
        )
        assert model.predict(query)[0] == pytest.approx(two_mac_data.rssi_dbm.mean())

    def test_unfitted_raises(self, two_mac_data):
        with pytest.raises(NotFittedError):
            MeanPerMacBaseline().predict(two_mac_data)

    def test_empty_fit_rejected(self, two_mac_data):
        with pytest.raises(ValueError):
            MeanPerMacBaseline().fit(two_mac_data.subset([]))


class TestKnn:
    def test_exact_interpolation_on_training_points_k1(self, two_mac_data):
        model = KnnRegressor(n_neighbors=1).fit(two_mac_data)
        predictions = model.predict(two_mac_data)
        assert np.allclose(predictions, two_mac_data.rssi_dbm)

    def test_distance_weighting_exact_on_duplicates(self, two_mac_data):
        model = KnnRegressor(n_neighbors=3, weights="distance").fit(two_mac_data)
        predictions = model.predict(two_mac_data)
        # Distance weighting gives training points their own value back.
        assert np.allclose(predictions, two_mac_data.rssi_dbm)

    def test_interpolates_between_neighbors(self, two_mac_data):
        model = KnnRegressor(n_neighbors=2, weights="distance").fit(two_mac_data)
        query = dataset_from_arrays(
            [[2.5, 0.0, 0.0]], [0], [0.0], vocabulary=two_mac_data.mac_vocabulary
        )
        # Between -54 (x=2) and -56 (x=3), equidistant: -55.
        assert model.predict(query)[0] == pytest.approx(-55.0, abs=0.2)

    def test_onehot_scale_separates_macs(self):
        # Two co-located APs with very different RSS: with a large one-hot
        # scale, neighbors come only from the right MAC.
        positions = [[0.0, 0.0, 0.0], [0.1, 0.0, 0.0], [0.0, 0.1, 0.0]] * 2
        macs = [0] * 3 + [1] * 3
        rssi = [-50.0] * 3 + [-90.0] * 3
        data = dataset_from_arrays(positions, macs, rssi)
        query = dataset_from_arrays(
            [[0.05, 0.05, 0.0]], [0], [0.0], vocabulary=data.mac_vocabulary
        )
        scaled = KnnRegressor(n_neighbors=3, onehot_scale=3.0).fit(data)
        assert scaled.predict(query)[0] == pytest.approx(-50.0, abs=0.5)
        unscaled = KnnRegressor(n_neighbors=6, onehot_scale=0.0).fit(data)
        assert unscaled.predict(query)[0] == pytest.approx(-70.0, abs=2.0)

    def test_uniform_weights_average(self):
        positions = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]
        data = dataset_from_arrays(positions, [0, 0], [-60.0, -70.0])
        model = KnnRegressor(n_neighbors=2, weights="uniform").fit(data)
        query = dataset_from_arrays(
            [[0.2, 0.0, 0.0]], [0], [0.0], vocabulary=data.mac_vocabulary
        )
        assert model.predict(query)[0] == pytest.approx(-65.0)

    def test_k_larger_than_train_set_clamped(self, two_mac_data):
        model = KnnRegressor(n_neighbors=1000, weights="uniform").fit(two_mac_data)
        predictions = model.predict(two_mac_data)
        assert np.isfinite(predictions).all()

    def test_minkowski_p1_differs_from_p2(self, two_mac_data):
        q = dataset_from_arrays(
            [[2.3, 0.7, 0.4]], [0], [0.0], vocabulary=two_mac_data.mac_vocabulary
        )
        p1 = KnnRegressor(n_neighbors=3, p=1.0).fit(two_mac_data).predict(q)
        p2 = KnnRegressor(n_neighbors=3, p=2.0).fit(two_mac_data).predict(q)
        assert np.isfinite(p1).all() and np.isfinite(p2).all()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KnnRegressor(n_neighbors=0)
        with pytest.raises(ValueError):
            KnnRegressor(weights="magic")
        with pytest.raises(ValueError):
            KnnRegressor(p=0.5)
        with pytest.raises(ValueError):
            KnnRegressor(onehot_scale=-1.0)

    def test_clone_and_params(self):
        model = KnnRegressor(n_neighbors=7, weights="uniform", p=1.0, onehot_scale=2.0)
        clone = model.clone(n_neighbors=9)
        assert clone.n_neighbors == 9
        assert clone.weights == "uniform"
        assert clone.get_params()["onehot_scale"] == 2.0


class TestPerMacKnn:
    def test_dispatches_by_mac(self, two_mac_data):
        model = PerMacKnnRegressor(n_neighbors=1).fit(two_mac_data)
        predictions = model.predict(two_mac_data)
        assert np.allclose(predictions, two_mac_data.rssi_dbm)

    def test_unseen_mac_gets_global_mean(self, two_mac_data):
        model = PerMacKnnRegressor(n_neighbors=1).fit(two_mac_data)
        query = dataset_from_arrays(
            [[0.0, 0.0, 0.0]], [2], [0.0],
            vocabulary=two_mac_data.mac_vocabulary + ("aa:aa:aa:aa:aa:99",),
        )
        assert model.predict(query)[0] == pytest.approx(two_mac_data.rssi_dbm.mean())

    def test_never_mixes_macs(self):
        # MAC 1 has wildly different values; per-MAC predictions for MAC 0
        # must be unaffected by them even at k covering everything.
        positions = [[float(i), 0.0, 0.0] for i in range(4)] * 2
        macs = [0] * 4 + [1] * 4
        rssi = [-60.0] * 4 + [-10.0] * 4
        data = dataset_from_arrays(positions, macs, rssi)
        model = PerMacKnnRegressor(n_neighbors=8, weights="uniform").fit(data)
        query = dataset_from_arrays(
            [[1.5, 0.0, 0.0]], [0], [0.0], vocabulary=data.mac_vocabulary
        )
        assert model.predict(query)[0] == pytest.approx(-60.0)
