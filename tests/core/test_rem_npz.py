"""Compact binary REM persistence: save_npz/load_npz exact round-trip."""

import numpy as np
import pytest

from repro.core.rem import RadioEnvironmentMap, RemGrid
from repro.radio.geometry import Cuboid


def build_map(n_macs=4, stored=3, seed=2):
    """A map with a wider vocabulary than its stored field set."""
    grid = RemGrid(Cuboid((0.0, 0.0, 0.0), (3.0, 2.0, 1.5)), resolution_m=0.5)
    vocabulary = tuple(f"02:00:00:00:00:{i:02x}" for i in range(n_macs))
    rem = RadioEnvironmentMap(grid, vocabulary)
    rng = np.random.default_rng(seed)
    macs = list(vocabulary[:stored])
    rem.set_fields(macs, rng.normal(-70.0, 9.0, size=(stored,) + grid.shape))
    return rem


class TestNpzRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        rem = build_map()
        path = tmp_path / "map.npz"
        rem.save_npz(path)
        loaded = RadioEnvironmentMap.load_npz(path)
        assert loaded.mac_vocabulary == rem.mac_vocabulary
        assert loaded.macs == rem.macs
        assert loaded.grid.resolution_m == rem.grid.resolution_m
        assert loaded.grid.volume.min_corner == rem.grid.volume.min_corner
        assert loaded.grid.volume.max_corner == rem.grid.volume.max_corner
        # Bit-exact tensors — the whole point over to_dict's lists.
        np.testing.assert_array_equal(
            loaded.field_tensor(), rem.field_tensor()
        )

    def test_queries_survive_round_trip(self, tmp_path):
        rem = build_map()
        path = tmp_path / "map.npz"
        rem.save_npz(path)
        loaded = RadioEnvironmentMap.load_npz(path)
        points = [[0.3, 0.7, 0.2], [2.9, 1.9, 1.4], [-1.0, 5.0, 9.0]]
        np.testing.assert_array_equal(
            loaded.query_many(points), rem.query_many(points)
        )
        assert loaded.strongest_ap(points[0]) == rem.strongest_ap(points[0])
        assert loaded.dark_fraction(-70.0) == rem.dark_fraction(-70.0)

    def test_empty_map_round_trips(self, tmp_path):
        grid = RemGrid(Cuboid((0, 0, 0), (1, 1, 1)), resolution_m=0.5)
        rem = RadioEnvironmentMap(grid, ["02:00:00:00:00:01"])
        path = tmp_path / "empty.npz"
        rem.save_npz(path)
        loaded = RadioEnvironmentMap.load_npz(path)
        assert loaded.macs == ()
        assert loaded.mac_vocabulary == rem.mac_vocabulary

    def test_matches_dict_form_semantically(self, tmp_path):
        rem = build_map()
        path = tmp_path / "map.npz"
        rem.save_npz(path)
        loaded = RadioEnvironmentMap.load_npz(path)
        via_dict = RadioEnvironmentMap.from_dict(rem.to_dict())
        np.testing.assert_array_equal(
            loaded.field_tensor(), via_dict.field_tensor()
        )

    def test_npz_is_denser_than_json(self, tmp_path):
        import json

        rem = build_map(n_macs=6, stored=6)
        npz_path = tmp_path / "map.npz"
        rem.save_npz(npz_path)
        json_path = tmp_path / "map.json"
        json_path.write_text(json.dumps(rem.to_dict()))
        assert npz_path.stat().st_size < json_path.stat().st_size

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RadioEnvironmentMap.load_npz(tmp_path / "absent.npz")
