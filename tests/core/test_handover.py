"""Unit tests for REM-based handover planning."""

import numpy as np
import pytest

from repro.core.handover import hysteresis_tradeoff, plan_handovers
from repro.core.rem import RadioEnvironmentMap, RemGrid
from repro.radio import Cuboid


@pytest.fixture()
def two_ap_rem():
    """AP 'left' strong at -x, AP 'right' strong at +x: one crossover."""
    grid = RemGrid(volume=Cuboid((0.0, 0.0, 0.0), (4.0, 2.0, 2.0)), resolution_m=0.25)
    rem = RadioEnvironmentMap(grid, ["left", "right"])
    ax, ay, az = grid.axes()
    xs, _, _ = np.meshgrid(ax, ay, az, indexing="ij")
    rem.set_field("left", -40.0 - 10.0 * xs)
    rem.set_field("right", -80.0 + 10.0 * xs)
    return rem


def straight_path(n=41):
    return [(x, 1.0, 1.0) for x in np.linspace(0.0, 4.0, n)]


class TestPlanHandovers:
    def test_single_crossover(self, two_ap_rem):
        plan = plan_handovers(two_ap_rem, straight_path(), hysteresis_db=1.0)
        assert plan.n_handovers == 1
        event = plan.events[0]
        assert event.from_mac == "left"
        assert event.to_mac == "right"
        # The crossover of the two linear fields is at x = 2.0; with
        # 1 dB hysteresis the switch happens just past it.
        assert 1.9 < event.position[0] < 2.6

    def test_serving_sequence_contiguous(self, two_ap_rem):
        plan = plan_handovers(two_ap_rem, straight_path())
        switches = sum(
            1 for a, b in zip(plan.serving_macs, plan.serving_macs[1:]) if a != b
        )
        assert switches == plan.n_handovers

    def test_zero_hysteresis_tracks_best(self, two_ap_rem):
        plan = plan_handovers(two_ap_rem, straight_path(), hysteresis_db=0.0)
        best = [
            max(
                two_ap_rem.query(p, "left"),
                two_ap_rem.query(p, "right"),
            )
            for p in straight_path()
        ]
        assert plan.rss_regret_db(best) < 0.3

    def test_huge_hysteresis_never_switches(self, two_ap_rem):
        plan = plan_handovers(two_ap_rem, straight_path(), hysteresis_db=60.0)
        assert plan.n_handovers == 0
        assert set(plan.serving_macs) == {"left"}

    def test_validation(self, two_ap_rem):
        with pytest.raises(ValueError):
            plan_handovers(two_ap_rem, straight_path(), hysteresis_db=-1.0)
        with pytest.raises(ValueError):
            plan_handovers(two_ap_rem, [])


class TestHysteresisTradeoff:
    def test_monotone_handover_count(self, two_ap_rem):
        rows = hysteresis_tradeoff(two_ap_rem, straight_path())
        handovers = [n for _, n, _ in rows]
        assert handovers == sorted(handovers, reverse=True)

    def test_serving_rss_degrades_with_margin(self, two_ap_rem):
        rows = hysteresis_tradeoff(two_ap_rem, straight_path(), margins_db=(0.0, 30.0))
        assert rows[0][2] >= rows[1][2]

    def test_on_campaign_rem(self, campaign_result, preprocessed):
        from repro.core import build_rem
        from repro.core.predictors import KnnRegressor

        counts = preprocessed.dataset.samples_per_mac()
        top = sorted(counts, key=counts.get, reverse=True)[:5]
        model = KnnRegressor(n_neighbors=16, onehot_scale=3.0).fit(preprocessed.train)
        rem = build_rem(
            model,
            preprocessed.dataset,
            campaign_result.scenario.flight_volume,
            resolution_m=0.4,
            macs=top,
        )
        path = [(x, 1.6, 1.0) for x in np.linspace(0.3, 3.4, 30)]
        rows = hysteresis_tradeoff(rem, path)
        handovers = [n for _, n, _ in rows]
        assert handovers == sorted(handovers, reverse=True)
        # Mean serving RSS must stay plausible.
        assert all(-95 < rss < -20 for _, _, rss in rows)
