"""partial_fit ≡ fit-from-scratch, pinned for every incremental estimator.

The incremental refit engine (``OnlineRemBuilder`` routing cadence
refits through ``Predictor.partial_fit``) is only sound if the split
path is *numerically identical* to the monolithic one.  The hypothesis
property here pins exactly that contract, for every registry predictor
advertising ``supports_partial_fit``, across every query surface the
REM engine and the active planner use: ``predict``, ``predict_points``,
``predict_points_std``, ``predict_mac_grid`` and ``uncertainty_grid``.

Splits are *contiguous* (prefix fit, suffix partial_fit) — that is the
only access pattern the online builder produces, and the bit-equality
argument (appended arrays equal full-fit masked arrays) relies on row
order being preserved.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import REMDataset
from repro.core.predictors import NotFittedError
from repro.serve.spec import PREDICTOR_FACTORIES

#: Registry predictors that advertise the incremental contract.
PARTIAL_FIT_NAMES = sorted(
    name
    for name, cls in PREDICTOR_FACTORIES.items()
    if cls.supports_partial_fit
)

ATOL = 1e-9


def _random_dataset(rng, n, n_macs):
    vocabulary = tuple(f"aa:bb:cc:dd:ee:{i:02x}" for i in range(n_macs))
    return REMDataset(
        positions=rng.uniform(0.0, 6.0, size=(n, 3)),
        mac_indices=rng.integers(0, n_macs, size=n),
        channels=rng.integers(1, 12, size=n),
        rssi_dbm=rng.uniform(-90.0, -40.0, size=n),
        mac_vocabulary=vocabulary,
    )


def _assert_equivalent(split_model, full_model, dataset, rng):
    """Every query surface must agree to ATOL between the two models."""
    n_macs = dataset.n_macs
    queries = rng.uniform(-1.0, 7.0, size=(12, 3))
    query_macs = rng.integers(0, n_macs, size=12)
    query_set = REMDataset(
        positions=queries,
        mac_indices=query_macs,
        channels=np.full(12, 6, dtype=int),
        rssi_dbm=np.zeros(12),
        mac_vocabulary=dataset.mac_vocabulary,
    )
    all_macs = np.arange(n_macs)
    pairs = [
        (split_model.predict(query_set), full_model.predict(query_set)),
        (
            split_model.predict_points(queries, query_macs),
            full_model.predict_points(queries, query_macs),
        ),
        (
            split_model.predict_points_std(queries, query_macs),
            full_model.predict_points_std(queries, query_macs),
        ),
        (
            split_model.predict_mac_grid(queries, all_macs),
            full_model.predict_mac_grid(queries, all_macs),
        ),
        (
            split_model.uncertainty_grid(queries, all_macs),
            full_model.uncertainty_grid(queries, all_macs),
        ),
    ]
    for got, expected in pairs:
        np.testing.assert_allclose(got, expected, rtol=0.0, atol=ATOL)


class TestSplitEquivalence:
    """fit(a); partial_fit(b) ≡ fit(a + b) on contiguous splits."""

    @pytest.mark.parametrize("name", PARTIAL_FIT_NAMES)
    @settings(deadline=None, max_examples=8)
    @given(data=st.data())
    def test_any_contiguous_split_matches_full_fit(self, name, data):
        seed = data.draw(st.integers(0, 10_000), label="seed")
        n = data.draw(st.integers(8, 48), label="n")
        n_macs = data.draw(st.integers(1, 4), label="n_macs")
        split = data.draw(st.integers(1, n - 1), label="split")
        rng = np.random.default_rng(seed)
        dataset = _random_dataset(rng, n, n_macs)
        prefix = dataset.subset(np.arange(split))
        suffix = dataset.subset(np.arange(split, n))

        split_model = PREDICTOR_FACTORIES[name]()
        split_model.fit(prefix)
        split_model.partial_fit(suffix)
        full_model = PREDICTOR_FACTORIES[name]().fit(dataset)
        _assert_equivalent(split_model, full_model, dataset, rng)

    @pytest.mark.parametrize("name", PARTIAL_FIT_NAMES)
    def test_repeated_deltas_match_full_fit(self, name):
        """Many small deltas (the cadence pattern) stay equivalent."""
        rng = np.random.default_rng(7)
        dataset = _random_dataset(rng, 40, 3)
        split_model = PREDICTOR_FACTORIES[name]()
        split_model.fit(dataset.subset(np.arange(10)))
        for start in range(10, 40, 6):
            stop = min(start + 6, 40)
            split_model.partial_fit(dataset.subset(np.arange(start, stop)))
        full_model = PREDICTOR_FACTORIES[name]().fit(dataset)
        _assert_equivalent(split_model, full_model, dataset, rng)

    @pytest.mark.parametrize("name", PARTIAL_FIT_NAMES)
    def test_delta_with_new_mac_in_shared_vocabulary(self, name):
        """A MAC first observed in the delta (vocabulary unchanged)."""
        rng = np.random.default_rng(11)
        dataset = _random_dataset(rng, 30, 3)
        # Force MAC 2 to appear only in the suffix.
        macs = np.array([i % 2 for i in range(20)] + [2] * 10)
        dataset = REMDataset(
            positions=dataset.positions,
            mac_indices=macs,
            channels=dataset.channels,
            rssi_dbm=dataset.rssi_dbm,
            mac_vocabulary=dataset.mac_vocabulary,
        )
        split_model = PREDICTOR_FACTORIES[name]()
        split_model.fit(dataset.subset(np.arange(20)))
        split_model.partial_fit(dataset.subset(np.arange(20, 30)))
        full_model = PREDICTOR_FACTORIES[name]().fit(dataset)
        _assert_equivalent(split_model, full_model, dataset, rng)


class TestContract:
    """The guard rails around the incremental contract."""

    @pytest.mark.parametrize("name", PARTIAL_FIT_NAMES)
    def test_empty_delta_is_a_no_op(self, name):
        rng = np.random.default_rng(3)
        dataset = _random_dataset(rng, 24, 2)
        model = PREDICTOR_FACTORIES[name]().fit(dataset)
        reference = PREDICTOR_FACTORIES[name]().fit(dataset)
        model.partial_fit(dataset.subset(np.arange(0)))
        _assert_equivalent(model, reference, dataset, rng)

    @pytest.mark.parametrize("name", PARTIAL_FIT_NAMES)
    def test_vocabulary_mismatch_rejected(self, name):
        rng = np.random.default_rng(4)
        dataset = _random_dataset(rng, 24, 2)
        model = PREDICTOR_FACTORIES[name]().fit(dataset)
        grown = REMDataset(
            positions=dataset.positions,
            mac_indices=dataset.mac_indices,
            channels=dataset.channels,
            rssi_dbm=dataset.rssi_dbm,
            mac_vocabulary=dataset.mac_vocabulary + ("ff:ff:ff:ff:ff:ff",),
        )
        with pytest.raises(ValueError, match="vocabulary"):
            model.partial_fit(grown)

    @pytest.mark.parametrize("name", PARTIAL_FIT_NAMES)
    def test_unfitted_partial_fit_rejected(self, name):
        rng = np.random.default_rng(5)
        dataset = _random_dataset(rng, 12, 2)
        with pytest.raises(NotFittedError):
            PREDICTOR_FACTORIES[name]().partial_fit(dataset)

    def test_non_incremental_predictor_refuses(self):
        rng = np.random.default_rng(6)
        dataset = _random_dataset(rng, 12, 2)
        refusing = [
            name
            for name, cls in PREDICTOR_FACTORIES.items()
            if not cls.supports_partial_fit
        ]
        assert refusing, "at least one registry predictor stays batch-only"
        for name in refusing:
            model = PREDICTOR_FACTORIES[name]().fit(dataset)
            with pytest.raises(NotImplementedError, match="partial_fit"):
                model.partial_fit(dataset)
