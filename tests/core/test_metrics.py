"""Unit tests for regression metrics."""

import numpy as np
import pytest

from repro.core.predictors import error_summary, mae, r2_score, rmse


class TestRmse:
    def test_zero_for_perfect(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])


class TestMae:
    def test_known_value(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == 2.0


class TestR2:
    def test_perfect_prediction(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_mean_prediction_is_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestSummary:
    def test_fields(self):
        summary = error_summary([0.0, 1.0, 2.0], [0.1, 1.2, 1.7])
        assert set(summary) == {"rmse", "mae", "r2", "p95_abs_error"}
        assert summary["rmse"] >= summary["mae"]
