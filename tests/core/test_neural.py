"""Unit tests for the numpy MLP."""

import numpy as np
import pytest

from repro.core.predictors import MlpRegressor
from tests.core.test_predictors import dataset_from_arrays


@pytest.fixture()
def linear_data(rng):
    # RSS = -60 - 3x + 2y (+ tiny noise): learnable by a small MLP.
    positions = rng.uniform(0, 3, size=(300, 3))
    rssi = (
        -60.0 - 3.0 * positions[:, 0] + 2.0 * positions[:, 1] + rng.normal(0, 0.2, 300)
    )
    return dataset_from_arrays(positions, np.zeros(300, dtype=int), rssi)


class TestTraining:
    def test_loss_decreases(self, linear_data):
        model = MlpRegressor(epochs=60, seed=1)
        model.fit(linear_data)
        losses = model.training_loss
        assert losses[-1] < losses[0] * 0.5

    def test_fits_linear_function(self, linear_data):
        model = MlpRegressor(epochs=300, seed=1)
        model.fit(linear_data)
        predictions = model.predict(linear_data)
        rmse = float(np.sqrt(np.mean((predictions - linear_data.rssi_dbm) ** 2)))
        assert rmse < 1.5

    def test_deterministic_given_seed(self, linear_data):
        a = MlpRegressor(epochs=30, seed=5).fit(linear_data).predict(linear_data)
        b = MlpRegressor(epochs=30, seed=5).fit(linear_data).predict(linear_data)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self, linear_data):
        a = MlpRegressor(epochs=30, seed=5).fit(linear_data).predict(linear_data)
        b = MlpRegressor(epochs=30, seed=6).fit(linear_data).predict(linear_data)
        assert not np.allclose(a, b)

    def test_predictions_in_sane_range(self, linear_data):
        model = MlpRegressor(epochs=100, seed=2).fit(linear_data)
        predictions = model.predict(linear_data)
        assert predictions.min() > -100.0
        assert predictions.max() < -40.0


class TestValidation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MlpRegressor(hidden_units=0)
        with pytest.raises(ValueError):
            MlpRegressor(epochs=0)

    def test_clone_preserves_params(self):
        model = MlpRegressor(hidden_units=8, learning_rate=1e-2, epochs=10, seed=3)
        clone = model.clone()
        assert clone.get_params() == model.get_params()
