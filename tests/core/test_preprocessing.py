"""Unit tests for the §III-B preprocessing pipeline."""

import numpy as np
import pytest

from repro.core import PreprocessConfig, preprocess, train_test_split
from repro.core.dataset import REMDataset
from tests.core.test_dataset import make_sample


def many_samples(mac, count, rssi=-70):
    return [make_sample(mac, (float(i), 0.0, 0.0), rssi) for i in range(count)]


class TestMacThreshold:
    def test_rare_macs_dropped(self):
        samples = many_samples("aa:aa:aa:aa:aa:01", 20) + many_samples(
            "aa:aa:aa:aa:aa:02", 5
        )
        result = preprocess(samples, PreprocessConfig(min_samples_per_mac=16))
        assert result.retained_samples == 20
        assert result.dropped_samples == 5
        assert result.dropped_macs == 1
        assert result.dataset.n_macs == 1

    def test_threshold_is_inclusive(self):
        samples = many_samples("aa:aa:aa:aa:aa:01", 16)
        result = preprocess(samples, PreprocessConfig(min_samples_per_mac=16))
        assert result.dropped_samples == 0

    def test_campaign_preprocessing_matches_paper_shape(self, campaign_result):
        # Paper: 2565 of 2696 retained (131 dropped).
        result = preprocess(campaign_result.log)
        drop_fraction = result.dropped_samples / len(campaign_result.log)
        assert 0.0 < drop_fraction < 0.12
        assert result.dropped_macs > 0


class TestTrainTestSplit:
    def _dataset(self, n=100):
        return REMDataset.from_samples(many_samples("aa:aa:aa:aa:aa:01", n))

    def test_split_sizes(self):
        train, test = train_test_split(self._dataset(100), 0.25, seed=1)
        assert len(test) == 25
        assert len(train) == 75

    def test_split_disjoint_and_complete(self):
        dataset = self._dataset(60)
        train, test = train_test_split(dataset, 0.25, seed=2)
        train_x = set(map(tuple, train.positions))
        test_x = set(map(tuple, test.positions))
        assert train_x.isdisjoint(test_x)
        assert len(train_x | test_x) == 60

    def test_split_deterministic(self):
        dataset = self._dataset(40)
        a_train, _ = train_test_split(dataset, 0.25, seed=3)
        b_train, _ = train_test_split(dataset, 0.25, seed=3)
        assert np.array_equal(a_train.positions, b_train.positions)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(self._dataset(10), 0.0, seed=1)
        with pytest.raises(ValueError):
            train_test_split(self._dataset(10), 1.0, seed=1)
