"""Tests for the batched uncertainty contract on every predictor."""

import numpy as np
import pytest

from repro.core import build_uncertainty_rem
from repro.core.dataset import REMDataset
from repro.core.predictors import (
    IdwRegressor,
    KnnRegressor,
    MeanPerMacBaseline,
    MlpRegressor,
    NotFittedError,
    OrdinaryKrigingRegressor,
    PerMacKnnRegressor,
)
from repro.radio.geometry import Cuboid

ALL_PREDICTORS = [
    MeanPerMacBaseline,
    KnnRegressor,
    PerMacKnnRegressor,
    IdwRegressor,
    OrdinaryKrigingRegressor,
    MlpRegressor,  # no override: exercises the base-class fallback
]


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    n = 240
    positions = rng.uniform(0.0, 3.0, size=(n, 3))
    mac_indices = rng.integers(0, 3, size=n)
    rssi = -60.0 - 4.0 * positions[:, 0] - 2.0 * mac_indices + rng.normal(0, 1.5, n)
    return REMDataset(
        positions=positions,
        mac_indices=mac_indices,
        channels=np.ones(n, dtype=int),
        rssi_dbm=rssi,
        # One vocabulary entry (index 3) never appears in training.
        mac_vocabulary=("aa:00", "aa:01", "aa:02", "aa:03"),
    )


class TestContract:
    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_std_shape_and_positivity(self, cls, dataset, rng):
        model = cls().fit(dataset)
        points = rng.uniform(0.0, 3.0, size=(17, 3))
        stds = model.predict_points_std(points, np.zeros(17, dtype=int))
        assert stds.shape == (17,)
        assert np.isfinite(stds).all()
        assert (stds >= 0.0).all()

    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_grid_matches_per_mac_stds(self, cls, dataset, rng):
        model = cls().fit(dataset)
        points = rng.uniform(0.0, 3.0, size=(9, 3))
        grid = model.uncertainty_grid(points, [0, 2, 3])
        assert grid.shape == (3, 9)
        for row, mac_index in enumerate([0, 2, 3]):
            expected = model.predict_points_std(
                points, np.full(9, mac_index, dtype=int)
            )
            np.testing.assert_allclose(grid[row], expected)

    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_requires_fit(self, cls):
        with pytest.raises(NotFittedError):
            cls().predict_points_std(np.zeros((1, 3)), np.zeros(1, dtype=int))

    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_unseen_mac_is_maximally_uncertain(self, cls, dataset, rng):
        """Index 3 has zero training samples: std must not collapse."""
        model = cls().fit(dataset)
        points = rng.uniform(0.0, 3.0, size=(8, 3))
        unseen = model.predict_points_std(points, np.full(8, 3, dtype=int))
        assert (unseen > 0.1).all()


class TestSpatialBehavior:
    def test_base_fallback_grows_with_distance(self, dataset):
        """The distance proxy: far from data beats on top of data."""
        model = MlpRegressor().fit(dataset)
        anchor = dataset.positions[0]
        near = model.predict_points_std(anchor[None, :], np.array([0]))
        far = model.predict_points_std(
            anchor[None, :] + np.array([[25.0, 25.0, 25.0]]), np.array([0])
        )
        assert far[0] > near[0]

    def test_base_fallback_zero_at_training_point(self, dataset):
        model = MlpRegressor().fit(dataset)
        row = int(np.flatnonzero(dataset.mac_indices == 1)[0])
        std = model.predict_points_std(
            dataset.positions[row][None, :], np.array([1])
        )
        assert std[0] == pytest.approx(0.0, abs=1e-9)

    def test_knn_uncertainty_grows_with_distance(self, dataset):
        model = KnnRegressor(n_neighbors=8, onehot_scale=3.0).fit(dataset)
        inside = model.predict_points_std(
            np.array([[1.5, 1.5, 1.5]]), np.array([0])
        )
        outside = model.predict_points_std(
            np.array([[40.0, 40.0, 40.0]]), np.array([0])
        )
        assert outside[0] > inside[0]

    def test_kriging_std_small_at_training_points(self, dataset):
        model = OrdinaryKrigingRegressor(n_neighbors=8).fit(dataset)
        rows = np.flatnonzero(dataset.mac_indices == 0)[:5]
        at_train = model.predict_points_std(
            dataset.positions[rows], np.zeros(len(rows), dtype=int)
        )
        far = model.predict_points_std(
            np.array([[60.0, 60.0, 60.0]]), np.array([0])
        )
        assert far[0] > at_train.mean()

    def test_baseline_std_is_position_independent(self, dataset, rng):
        model = MeanPerMacBaseline().fit(dataset)
        points = rng.uniform(0.0, 3.0, size=(6, 3))
        stds = model.predict_points_std(points, np.zeros(6, dtype=int))
        assert np.allclose(stds, stds[0])


class TestUncertaintyRem:
    def test_build_uncertainty_rem(self, dataset):
        model = KnnRegressor(n_neighbors=8, onehot_scale=3.0).fit(dataset)
        volume = Cuboid((0.0, 0.0, 0.0), (3.0, 3.0, 3.0))
        rem = build_uncertainty_rem(model, dataset, volume, resolution_m=1.0)
        assert set(rem.macs) == set(dataset.mac_vocabulary)
        tensor = rem.field_tensor()
        assert np.isfinite(tensor).all()
        assert (tensor >= 0.0).all()

    def test_unknown_mac_rejected(self, dataset):
        model = KnnRegressor().fit(dataset)
        volume = Cuboid((0.0, 0.0, 0.0), (3.0, 3.0, 3.0))
        with pytest.raises(KeyError):
            build_uncertainty_rem(
                model, dataset, volume, resolution_m=1.0, macs=["zz:zz"]
            )
