"""Unit tests for the ML dataset container."""

import numpy as np
import pytest

from repro.core import REMDataset
from repro.station import Sample


def make_sample(mac, pos, rssi, channel=6):
    return Sample(
        uav_name="UAV-A",
        waypoint_index=0,
        timestamp_s=0.0,
        x=pos[0], y=pos[1], z=pos[2],
        true_x=pos[0], true_y=pos[1], true_z=pos[2],
        ssid="net", rssi_dbm=rssi, mac=mac, channel=channel,
    )


@pytest.fixture()
def dataset():
    samples = [
        make_sample("aa:aa:aa:aa:aa:01", (0.0, 0.0, 0.0), -60, channel=1),
        make_sample("aa:aa:aa:aa:aa:02", (1.0, 0.0, 0.0), -70, channel=6),
        make_sample("aa:aa:aa:aa:aa:01", (0.0, 1.0, 0.0), -65, channel=1),
    ]
    return REMDataset.from_samples(samples)


class TestConstruction:
    def test_shapes(self, dataset):
        assert len(dataset) == 3
        assert dataset.positions.shape == (3, 3)
        assert dataset.n_macs == 2

    def test_vocabulary_sorted_and_indexed(self, dataset):
        assert dataset.mac_vocabulary == ("aa:aa:aa:aa:aa:01", "aa:aa:aa:aa:aa:02")
        assert list(dataset.mac_indices) == [0, 1, 0]

    def test_samples_per_mac(self, dataset):
        counts = dataset.samples_per_mac()
        assert counts["aa:aa:aa:aa:aa:01"] == 2
        assert counts["aa:aa:aa:aa:aa:02"] == 1

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            REMDataset(
                positions=np.zeros((2, 3)),
                mac_indices=np.zeros(3, dtype=int),
                channels=np.zeros(3, dtype=int),
                rssi_dbm=np.zeros(3),
                mac_vocabulary=("m",),
            )


class TestEncodings:
    def test_onehot_basic(self, dataset):
        onehot = dataset.mac_onehot()
        assert onehot.shape == (3, 2)
        assert onehot[0, 0] == 1.0 and onehot[0, 1] == 0.0
        assert (onehot.sum(axis=1) == 1.0).all()

    def test_onehot_scaling(self, dataset):
        scaled = dataset.mac_onehot(scale=3.0)
        assert scaled.max() == 3.0
        # Distance between different-MAC feature rows: 3*sqrt(2).
        delta = np.linalg.norm(scaled[0] - scaled[1])
        assert delta == pytest.approx(3.0 * np.sqrt(2.0))

    def test_features_layout(self, dataset):
        features = dataset.features()
        assert features.shape == (3, 3 + 2)
        assert np.allclose(features[:, :3], dataset.positions)

    def test_channel_onehot(self, dataset):
        onehot = dataset.channel_onehot()
        assert onehot.shape == (3, 13)
        assert onehot[0, 0] == 1.0  # channel 1 -> column 0
        assert onehot[1, 5] == 1.0  # channel 6 -> column 5


class TestSubset:
    def test_subset_keeps_vocabulary(self, dataset):
        subset = dataset.subset([0, 2])
        assert len(subset) == 2
        assert subset.mac_vocabulary == dataset.mac_vocabulary
        assert list(subset.mac_indices) == [0, 0]
