"""Unit tests for REM-based relay placement."""

import numpy as np
import pytest

from repro.core.relay import place_relay, relay_gain_db
from repro.core.rem import RadioEnvironmentMap, RemGrid
from repro.radio import Cuboid


@pytest.fixture()
def gradient_rem():
    """One AP strong at -x, dead at +x: a relay in the middle helps."""
    grid = RemGrid(volume=Cuboid((0.0, 0.0, 0.0), (4.0, 2.0, 2.0)), resolution_m=0.25)
    rem = RadioEnvironmentMap(grid, ["ap"])
    ax, ay, az = grid.axes()
    xs, _, _ = np.meshgrid(ax, ay, az, indexing="ij")
    rem.set_field("ap", -35.0 - 18.0 * xs)  # -35 dBm at x=0, -107 at x=4
    return rem


class TestPlaceRelay:
    def test_relay_improves_far_corner(self, gradient_rem):
        client = (3.9, 1.0, 1.0)
        placement = place_relay(gradient_rem, "ap", client)
        assert placement.gain_over_direct_db > 10.0
        # The relay should sit between the AP's strong zone and the client.
        assert placement.position[0] < client[0]

    def test_bottleneck_is_min_of_hops(self, gradient_rem):
        placement = place_relay(gradient_rem, "ap", (3.9, 1.0, 1.0))
        assert placement.bottleneck_dbm == min(
            placement.ap_to_relay_dbm, placement.relay_to_client_dbm
        )

    def test_clearance_respected(self, gradient_rem):
        client = (2.0, 1.0, 1.0)
        placement = place_relay(gradient_rem, "ap", client, min_clearance_m=0.5)
        assert np.linalg.norm(np.array(placement.position) - np.array(client)) >= 0.5

    def test_unknown_mac_rejected(self, gradient_rem):
        with pytest.raises(KeyError):
            place_relay(gradient_rem, "nope", (1.0, 1.0, 1.0))

    def test_impossible_clearance_rejected(self, gradient_rem):
        with pytest.raises(ValueError):
            place_relay(gradient_rem, "ap", (2.0, 1.0, 1.0), min_clearance_m=100.0)

    def test_gain_helper(self, gradient_rem):
        gain = relay_gain_db(gradient_rem, "ap", (3.9, 1.0, 1.0))
        assert gain > 0.0


class TestOnCampaignRem:
    def test_relay_on_generated_rem(self, campaign_result, preprocessed):
        from repro.core import build_rem
        from repro.core.predictors import KnnRegressor

        counts = preprocessed.dataset.samples_per_mac()
        mac = max(counts, key=counts.get)
        model = KnnRegressor(n_neighbors=16, onehot_scale=3.0).fit(preprocessed.train)
        rem = build_rem(
            model,
            preprocessed.dataset,
            campaign_result.scenario.flight_volume,
            resolution_m=0.4,
            macs=[mac],
        )
        placement = place_relay(rem, mac, (3.5, 3.0, 1.8))
        assert np.isfinite(placement.bottleneck_dbm)
        # In a small well-covered room the gain may be small, but the
        # relayed bottleneck can never be worse than a no-op placement
        # at the client itself minus clearance effects.
        assert placement.gain_over_direct_db > -3.0
