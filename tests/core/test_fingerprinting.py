"""Unit tests for REM-backed RSS fingerprinting."""

import numpy as np
import pytest

from repro.core.fingerprinting import (
    FingerprintLocalizer,
    evaluate_fingerprinting,
)
from repro.core.rem import RadioEnvironmentMap, RemGrid
from repro.radio import Cuboid


@pytest.fixture()
def synthetic_rem():
    """A REM with two APs whose linear fields uniquely identify (x, y)."""
    grid = RemGrid(volume=Cuboid((0.0, 0.0, 0.0), (4.0, 4.0, 2.0)), resolution_m=0.25)
    rem = RadioEnvironmentMap(grid, ["m1", "m2"])
    ax, ay, az = grid.axes()
    xs, ys, zs = np.meshgrid(ax, ay, az, indexing="ij")
    rem.set_field("m1", -40.0 - 8.0 * xs)         # x-sensitive
    rem.set_field("m2", -40.0 - 8.0 * ys)         # y-sensitive
    return rem


class TestLocalizer:
    def test_exact_fix_on_noiseless_observation(self, synthetic_rem):
        localizer = FingerprintLocalizer(synthetic_rem)
        truth = (2.0, 1.0, 1.0)
        observation = {
            "m1": synthetic_rem.query(truth, "m1"),
            "m2": synthetic_rem.query(truth, "m2"),
        }
        estimate, mismatch = localizer.locate(observation, k=3)
        assert np.linalg.norm(estimate[:2] - np.array(truth[:2])) < 0.3
        assert mismatch < 1.0

    def test_noisy_observation_still_close(self, synthetic_rem, rng):
        localizer = FingerprintLocalizer(synthetic_rem)
        truth = (3.0, 2.5, 0.5)
        observation = {
            "m1": synthetic_rem.query(truth, "m1") + rng.normal(0, 2.0),
            "m2": synthetic_rem.query(truth, "m2") + rng.normal(0, 2.0),
        }
        estimate, _ = localizer.locate(observation)
        assert np.linalg.norm(estimate[:2] - np.array(truth[:2])) < 1.0

    def test_missing_ap_uses_floor(self, synthetic_rem):
        localizer = FingerprintLocalizer(synthetic_rem, floor_dbm=-95.0)
        estimate, _ = localizer.locate({"m1": -48.0})
        assert np.isfinite(estimate).all()

    def test_disjoint_observation_rejected(self, synthetic_rem):
        localizer = FingerprintLocalizer(synthetic_rem)
        with pytest.raises(ValueError):
            localizer.locate({"zz:zz": -50.0})

    def test_invalid_k(self, synthetic_rem):
        with pytest.raises(ValueError):
            FingerprintLocalizer(synthetic_rem).locate({"m1": -50.0}, k=0)

    def test_empty_rem_rejected(self):
        grid = RemGrid(volume=Cuboid((0, 0, 0), (1, 1, 1)), resolution_m=0.5)
        rem = RadioEnvironmentMap(grid, [])
        with pytest.raises(ValueError):
            FingerprintLocalizer(rem)


class TestEndToEndFingerprinting:
    def test_campaign_rem_localizes_devices(self, campaign_result, preprocessed, rng):
        """The full §I story: UAV-built REM → fingerprinting localization."""
        from repro.core import build_rem
        from repro.core.predictors import KnnRegressor

        # Use the strongest (most-sampled) APs as the fingerprint space.
        counts = preprocessed.dataset.samples_per_mac()
        top_macs = sorted(counts, key=counts.get, reverse=True)[:12]
        model = KnnRegressor(n_neighbors=16, onehot_scale=3.0).fit(preprocessed.train)
        rem = build_rem(
            model,
            preprocessed.dataset,
            campaign_result.scenario.flight_volume,
            resolution_m=0.35,
            macs=top_macs,
        )
        localizer = FingerprintLocalizer(rem)
        evaluation = evaluate_fingerprinting(
            localizer,
            campaign_result.scenario.environment,
            campaign_result.scenario.flight_volume,
            rng,
            n_queries=60,
        )
        # Room diagonal is ~5.3 m; random guessing averages ~2 m error.
        # REM fingerprinting must do clearly better.
        assert evaluation.mean_error_m < 1.6
        assert evaluation.n_queries >= 50
