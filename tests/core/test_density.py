"""Unit tests for the REM density study (§IV future work)."""

import numpy as np
import pytest

from repro.core import density_sweep
from repro.core.density import DensityPoint, DensityStudyResult


class TestDensitySweep:
    def test_sweep_on_campaign(self, campaign_result):
        result = density_sweep(
            campaign_result.log, location_counts=[5, 15, 30, 54], seed=11
        )
        assert len(result.points) == 4
        assert result.n_test_locations > 0
        counts = [p.n_locations for p in result.points]
        assert counts == [5, 15, 30, 54]
        # More locations never dramatically hurts: best point should be
        # at a moderate-to-high density.
        locations, rmses = result.as_series()
        assert rmses[-1] <= rmses[0] + 0.3

    def test_density_improves_from_sparse(self, campaign_result):
        result = density_sweep(
            campaign_result.log, location_counts=[3, 54], seed=11
        )
        sparse = result.points[0].rmse_dbm
        dense = result.points[1].rmse_dbm
        assert dense < sparse

    def test_train_samples_scale_with_locations(self, campaign_result):
        result = density_sweep(
            campaign_result.log, location_counts=[10, 40], seed=11
        )
        assert result.points[1].n_train_samples > result.points[0].n_train_samples

    def test_knee_detection(self):
        result = DensityStudyResult(
            points=[
                DensityPoint(5, 100, 6.0),
                DensityPoint(10, 200, 5.0),
                DensityPoint(20, 400, 4.6),
                DensityPoint(40, 800, 4.5),
            ],
            n_test_locations=10,
            n_test_samples=300,
        )
        assert result.knee_locations(tolerance_db=0.2) == 20
        assert result.knee_locations(tolerance_db=1.0) == 10

    def test_invalid_location_count(self, campaign_result):
        with pytest.raises(ValueError):
            density_sweep(campaign_result.log, location_counts=[10_000])

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            density_sweep([], location_counts=[1])

    def test_deterministic(self, campaign_result):
        a = density_sweep(campaign_result.log, location_counts=[20], seed=5)
        b = density_sweep(campaign_result.log, location_counts=[20], seed=5)
        assert a.points[0].rmse_dbm == b.points[0].rmse_dbm
