"""Tests for the batched REM query engine.

Covers the satellite checklist of the engine refactor: out-of-volume
query clipping, degenerate axis spans, serialization round-trips of the
stacked-field representation, and equivalence of the batched predictor
paths (``predict_points`` / ``predict_mac_grid``) against the legacy
per-``REMDataset`` ``predict`` path at 1e-9 absolute tolerance.
"""

import numpy as np
import pytest

from repro.core import RadioEnvironmentMap, RemGrid, build_rem
from repro.core.dataset import REMDataset
from repro.core.predictors import (
    IdwRegressor,
    KnnRegressor,
    MeanPerMacBaseline,
    MlpRegressor,
    OrdinaryKrigingRegressor,
    PerMacKnnRegressor,
)
from repro.radio import Cuboid
from tests.core.test_predictors import dataset_from_arrays


@pytest.fixture()
def grid():
    return RemGrid(volume=Cuboid((0.0, 0.0, 0.0), (2.0, 2.0, 1.0)), resolution_m=0.5)


@pytest.fixture()
def training_data(rng):
    """A 4-MAC training cloud with distinct spatial trends per MAC."""
    n = 160
    positions = rng.uniform(0.0, 2.0, size=(n, 3))
    macs = rng.integers(0, 4, size=n)
    slopes = np.array([-8.0, -3.0, 0.0, 5.0])
    rssi = -60.0 + slopes[macs] * positions[:, 0] - 2.0 * positions[:, 1]
    return dataset_from_arrays(positions, macs, rssi)


def _query_view(train, points, mac_indices):
    n = len(points)
    return REMDataset(
        positions=np.asarray(points, dtype=float),
        mac_indices=np.asarray(mac_indices, dtype=int),
        channels=np.ones(n, dtype=int),
        rssi_dbm=np.zeros(n),
        mac_vocabulary=train.mac_vocabulary,
    )


class TestQueryMany:
    def _linear_map(self, grid):
        rem = RadioEnvironmentMap(grid, ["m1", "m2"])
        ax, ay, az = grid.axes()
        xs, ys, zs = np.meshgrid(ax, ay, az, indexing="ij")
        rem.set_field("m1", -50.0 - 10.0 * xs - 5.0 * ys + 2.0 * zs)
        rem.set_field("m2", -70.0 + 3.0 * xs)
        return rem

    def test_matches_scalar_query(self, grid, rng):
        rem = self._linear_map(grid)
        points = rng.uniform(-0.2, 2.2, size=(40, 3))
        batched = rem.query_many(points, ["m1", "m2"])
        assert batched.shape == (40, 2)
        for row, point in enumerate(points):
            assert batched[row, 0] == pytest.approx(rem.query(point, "m1"), abs=1e-12)
            assert batched[row, 1] == pytest.approx(rem.query(point, "m2"), abs=1e-12)

    def test_exact_for_linear_field(self, grid):
        rem = self._linear_map(grid)
        pts = [(0.3, 0.7, 0.2), (1.9, 0.1, 0.9), (1.0, 1.0, 0.5)]
        expected = [-50.0 - 10.0 * x - 5.0 * y + 2.0 * z for x, y, z in pts]
        assert rem.query_many(pts, ["m1"])[:, 0] == pytest.approx(expected)

    def test_out_of_volume_clips_to_boundary(self, grid):
        rem = self._linear_map(grid)
        # Far outside on every axis: must clamp to the volume corner.
        far = rem.query_many([(-9.0, -9.0, -9.0), (9.0, 9.0, 9.0)], ["m1"])
        corner_lo = rem.query((0.0, 0.0, 0.0), "m1")
        corner_hi = rem.query((2.0, 2.0, 1.0), "m1")
        assert far[0, 0] == pytest.approx(corner_lo)
        assert far[1, 0] == pytest.approx(corner_hi)
        assert np.isfinite(far).all()

    def test_default_macs_are_all_present(self, grid):
        rem = self._linear_map(grid)
        out = rem.query_many([(1.0, 1.0, 0.5)])
        assert out.shape == (1, 2)

    def test_missing_field_raises(self, grid):
        rem = RadioEnvironmentMap(grid, ["m1", "m2"])
        rem.set_field("m1", np.zeros(grid.shape))
        with pytest.raises(KeyError):
            rem.query_many([(1.0, 1.0, 0.5)], ["m2"])
        with pytest.raises(KeyError):
            rem.field("m2")

    def test_strongest_ap_many(self, grid):
        rem = self._linear_map(grid)
        # m1 at x=0: -50ish; m2: -70.  m1 decays with x (slope -10) and
        # m2 grows (slope +3): m2 wins near x=2.
        macs, rss = rem.strongest_ap_many([(0.1, 0.0, 0.0), (2.0, 0.0, 0.0)])
        assert macs[0] == "m1"
        assert macs[1] == "m2"
        single = rem.strongest_ap((0.1, 0.0, 0.0))
        assert single == (macs[0], pytest.approx(rss[0]))

    def test_strongest_ap_empty_map_raises(self, grid):
        rem = RadioEnvironmentMap(grid, ["m1"])
        with pytest.raises(ValueError):
            rem.strongest_ap_many([(0.0, 0.0, 0.0)])


class TestDegenerateSpans:
    def test_zero_extent_axis(self):
        # A plane: zero z extent.  The grid still gets >= 2 points per
        # axis; interior spans collapse to zero and the query must not
        # divide by that zero span.
        grid = RemGrid(
            volume=Cuboid((0.0, 0.0, 1.0), (2.0, 2.0, 1.0)), resolution_m=0.5
        )
        assert grid.shape[2] == 2
        rem = RadioEnvironmentMap(grid, ["m"])
        rem.set_field("m", np.full(grid.shape, -55.0))
        assert rem.query((1.0, 1.0, 1.0), "m") == pytest.approx(-55.0)
        out = rem.query_many([(1.0, 1.0, 0.5), (1.0, 1.0, 7.0)], ["m"])
        assert np.isfinite(out).all()
        assert out[:, 0] == pytest.approx([-55.0, -55.0])

    def test_point_volume(self):
        grid = RemGrid(
            volume=Cuboid((1.0, 1.0, 1.0), (1.0, 1.0, 1.0)), resolution_m=0.25
        )
        assert grid.shape == (2, 2, 2)
        rem = RadioEnvironmentMap(grid, ["m"])
        rem.set_field("m", np.full(grid.shape, -42.0))
        assert rem.query((0.0, 5.0, 1.0), "m") == pytest.approx(-42.0)


class TestStackedSerialization:
    def test_roundtrip_preserves_stack(self, grid, rng):
        rem = RadioEnvironmentMap(grid, ["m1", "m2", "m3"])
        f1 = rng.normal(-70.0, 5.0, size=grid.shape)
        f2 = rng.normal(-60.0, 5.0, size=grid.shape)
        rem.set_field("m1", f1)
        rem.set_field("m3", f2)  # deliberately sparse: m2 absent
        clone = RadioEnvironmentMap.from_dict(rem.to_dict())
        assert clone.macs == ("m1", "m3")
        assert clone.mac_vocabulary == ("m1", "m2", "m3")
        np.testing.assert_allclose(clone.field("m1"), f1)
        np.testing.assert_allclose(clone.field("m3"), f2)
        np.testing.assert_allclose(clone.field_tensor(), rem.field_tensor())
        with pytest.raises(KeyError):
            clone.field("m2")

    def test_set_fields_bulk(self, grid, rng):
        rem = RadioEnvironmentMap(grid, ["a", "b"])
        tensor = rng.normal(-65.0, 3.0, size=(2,) + grid.shape)
        rem.set_fields(["a", "b"], tensor)
        np.testing.assert_allclose(rem.field_tensor(["a", "b"]), tensor)
        with pytest.raises(ValueError):
            rem.set_fields(["a"], tensor)

    def test_coverage_by_mac_matches_scalar(self, grid):
        rem = RadioEnvironmentMap(grid, ["a", "b"])
        fa = np.full(grid.shape, -90.0)
        fa[0] = -50.0
        rem.set_field("a", fa)
        rem.set_field("b", np.full(grid.shape, -40.0))
        report = rem.coverage_by_mac(-70.0)
        assert report["a"] == pytest.approx(rem.coverage_fraction("a", -70.0))
        assert report["b"] == pytest.approx(1.0)


class TestBatchedEquivalence:
    """Batched fast paths must match the legacy per-dataset path."""

    PREDICTORS = [
        MeanPerMacBaseline(),
        KnnRegressor(n_neighbors=3, weights="distance", p=2.0, onehot_scale=1.0),
        KnnRegressor(n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0),
        KnnRegressor(n_neighbors=5, weights="uniform", p=1.0, onehot_scale=3.0),
        KnnRegressor(n_neighbors=4, weights="distance", p=3.0, onehot_scale=0.5),
        PerMacKnnRegressor(n_neighbors=4),
        IdwRegressor(power=2.0),
        OrdinaryKrigingRegressor(n_neighbors=8),
        MlpRegressor(epochs=10, seed=3),  # exercises the base-class shim
    ]

    @pytest.mark.parametrize(
        "predictor", PREDICTORS, ids=lambda p: f"{p.name}-{p.get_params()}"
    )
    def test_predict_points_matches_legacy(self, predictor, training_data, rng):
        model = predictor.clone().fit(training_data)
        points = rng.uniform(-0.5, 2.5, size=(200, 3))
        mac_indices = rng.integers(0, training_data.n_macs, size=200)
        legacy = model.predict(_query_view(training_data, points, mac_indices))
        batched = model.predict_points(points, mac_indices)
        np.testing.assert_allclose(batched, legacy, atol=1e-9, rtol=0.0)

    @pytest.mark.parametrize(
        "predictor", PREDICTORS, ids=lambda p: f"{p.name}-{p.get_params()}"
    )
    def test_predict_mac_grid_matches_legacy(self, predictor, training_data, rng):
        model = predictor.clone().fit(training_data)
        points = rng.uniform(0.0, 2.0, size=(60, 3))
        mac_indices = np.arange(training_data.n_macs)
        grid_out = model.predict_mac_grid(points, mac_indices)
        assert grid_out.shape == (training_data.n_macs, 60)
        for row, mac in enumerate(mac_indices):
            legacy = model.predict(
                _query_view(training_data, points, np.full(60, mac, dtype=int))
            )
            np.testing.assert_allclose(grid_out[row], legacy, atol=1e-9, rtol=0.0)

    def test_knn_exact_tie_breaking_is_deterministic(self):
        # Two training samples at the same position with different MACs
        # tie exactly at the penalty distance: both paths must resolve
        # to the lowest training index.
        data = dataset_from_arrays(
            positions=[[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]],
            macs=[0, 1, 2],
            rssi=[-50.0, -60.0, -90.0],
            vocabulary=("a", "b", "c"),
        )
        model = KnnRegressor(n_neighbors=2, weights="uniform", onehot_scale=3.0).fit(
            data
        )
        query = np.array([[1.0, 0.0, 0.0]])
        legacy = model.predict(_query_view(data, query, np.array([0])))
        batched = model.predict_points(query, np.array([0]))
        # Neighbor 1 (MAC b, same position: tie between b and c broken
        # by index) plus... the query MAC a matches only sample 0.
        np.testing.assert_allclose(batched, legacy, atol=1e-12)

    def test_mac_indices_shape_validation(self, training_data):
        model = MeanPerMacBaseline().fit(training_data)
        with pytest.raises(ValueError):
            model.predict_points(np.zeros((4, 3)), np.zeros(3, dtype=int))

    def test_scalar_mac_broadcasts(self, training_data):
        model = MeanPerMacBaseline().fit(training_data)
        out = model.predict_points(np.zeros((4, 3)), np.asarray(1))
        assert out.shape == (4,)


class TestBuildRemBatched:
    def test_one_shot_build_matches_per_mac_loop(self, training_data):
        model = KnnRegressor(n_neighbors=6, onehot_scale=3.0).fit(training_data)
        volume = Cuboid((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))
        rem = build_rem(model, training_data, volume, resolution_m=0.5)
        grid = rem.grid
        points = grid.points()
        for mac_index, mac in enumerate(training_data.mac_vocabulary):
            legacy = model.predict(
                _query_view(
                    training_data, points, np.full(len(points), mac_index, dtype=int)
                )
            )
            np.testing.assert_allclose(
                rem.field(mac).ravel(), legacy, atol=1e-9, rtol=0.0
            )

    def test_legacy_subclass_through_shim(self, training_data):
        # An out-of-tree predictor predating the batched API: uses the
        # one-hot feature encoding and calls the zero-argument
        # _mark_fitted(), so no vocabulary is recorded at fit time.
        # build_rem must bind the training vocabulary so the shim
        # produces correctly-shaped dataset views — including for MAC
        # subsets that don't span the full index range.
        from repro.core.predictors.base import Predictor

        class LegacyOneHot(Predictor):
            name = "legacy-onehot"

            def fit(self, train):
                self._w = np.linalg.lstsq(
                    train.features(), train.rssi_dbm, rcond=None
                )[0]
                self._mark_fitted()
                return self

            def predict(self, data):
                return data.features() @ self._w

        model = LegacyOneHot().fit(training_data)
        volume = Cuboid((0, 0, 0), (2, 2, 2))
        subset = training_data.mac_vocabulary[1:2]
        rem = build_rem(model, training_data, volume, resolution_m=1.0, macs=subset)
        assert rem.macs == subset
        points = rem.grid.points()
        legacy = model.predict(
            _query_view(training_data, points, np.full(len(points), 1, dtype=int))
        )
        np.testing.assert_allclose(rem.field(subset[0]).ravel(), legacy, atol=1e-9)

    def test_field_views_are_read_only(self, training_data):
        model = MeanPerMacBaseline().fit(training_data)
        rem = build_rem(model, training_data, Cuboid((0, 0, 0), (1, 1, 1)))
        mac = rem.macs[0]
        with pytest.raises(ValueError):
            rem.field(mac)[0, 0, 0] = 0.0

    def test_subset_and_unknown_mac(self, training_data):
        model = MeanPerMacBaseline().fit(training_data)
        volume = Cuboid((0, 0, 0), (1, 1, 1))
        subset = training_data.mac_vocabulary[:2]
        rem = build_rem(model, training_data, volume, resolution_m=1.0, macs=subset)
        assert rem.macs == subset
        with pytest.raises(KeyError):
            build_rem(model, training_data, volume, macs=["nope"])
