"""Unit tests for grid search and cross-validation."""

import numpy as np
import pytest

from repro.core.predictors import (
    KnnRegressor,
    ParamGrid,
    cross_validate,
    grid_search,
    rmse,
)
from tests.core.test_predictors import dataset_from_arrays


@pytest.fixture()
def spatial_data(rng):
    positions = rng.uniform(0, 5, size=(200, 3))
    rssi = -60.0 - 5.0 * positions[:, 0] + rng.normal(0, 0.5, 200)
    return dataset_from_arrays(positions, np.zeros(200, dtype=int), rssi)


class TestParamGrid:
    def test_cartesian_product(self):
        grid = ParamGrid(a=[1, 2], b=["x", "y", "z"])
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {(c["a"], c["b"]) for c in combos} == {
            (a, b) for a in (1, 2) for b in ("x", "y", "z")
        }

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParamGrid()
        with pytest.raises(ValueError):
            ParamGrid(a=[])


class TestCrossValidate:
    def test_fold_count(self, spatial_data):
        result = cross_validate(
            KnnRegressor(), spatial_data, {"n_neighbors": 3}, k_folds=4
        )
        assert len(result.fold_rmses) == 4
        assert result.mean_rmse > 0
        assert result.std_rmse >= 0

    def test_needs_two_folds(self, spatial_data):
        with pytest.raises(ValueError):
            cross_validate(KnnRegressor(), spatial_data, {}, k_folds=1)

    def test_deterministic(self, spatial_data):
        a = cross_validate(KnnRegressor(), spatial_data, {"n_neighbors": 3}, seed=5)
        b = cross_validate(KnnRegressor(), spatial_data, {"n_neighbors": 3}, seed=5)
        assert a.fold_rmses == b.fold_rmses


class TestGridSearch:
    def test_finds_sensible_winner(self, spatial_data):
        grid = ParamGrid(n_neighbors=[1, 3, 8], weights=["uniform", "distance"])
        result = grid_search(KnnRegressor(), spatial_data, grid)
        assert len(result.results) == 6
        assert result.best_params in [r.params for r in result.results]
        # Winner must beat (or tie) every other combination on CV RMSE.
        ranking = result.ranking()
        assert ranking[0].params == result.best_params

    def test_best_model_refit_on_full_train(self, spatial_data):
        grid = ParamGrid(n_neighbors=[3])
        result = grid_search(KnnRegressor(), spatial_data, grid)
        predictions = result.best.predict(spatial_data)
        assert rmse(spatial_data.rssi_dbm, predictions) < 2.0
