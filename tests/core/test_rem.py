"""Unit tests for the REM product."""

import numpy as np
import pytest

from repro.core import RadioEnvironmentMap, RemGrid, build_rem
from repro.core.predictors import KnnRegressor
from repro.radio import Cuboid
from tests.core.test_predictors import dataset_from_arrays


@pytest.fixture()
def grid():
    return RemGrid(volume=Cuboid((0.0, 0.0, 0.0), (2.0, 2.0, 1.0)), resolution_m=0.5)


class TestRemGrid:
    def test_shape(self, grid):
        assert grid.shape == (5, 5, 3)

    def test_points_cover_volume(self, grid):
        points = grid.points()
        assert points.shape == (5 * 5 * 3, 3)
        assert points.min() == 0.0
        assert points[:, 0].max() == 2.0

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            RemGrid(volume=Cuboid((0, 0, 0), (1, 1, 1)), resolution_m=0.0)


class TestRadioEnvironmentMap:
    def _linear_map(self, grid):
        rem = RadioEnvironmentMap(grid, ["aa:aa:aa:aa:aa:01"])
        ax, ay, az = grid.axes()
        xs, ys, zs = np.meshgrid(ax, ay, az, indexing="ij")
        rem.set_field("aa:aa:aa:aa:aa:01", -50.0 - 10.0 * xs - 5.0 * ys + 2.0 * zs)
        return rem

    def test_trilinear_query_exact_for_linear_field(self, grid):
        rem = self._linear_map(grid)
        for point in [(0.3, 0.7, 0.2), (1.9, 0.1, 0.9), (1.0, 1.0, 0.5)]:
            expected = -50.0 - 10.0 * point[0] - 5.0 * point[1] + 2.0 * point[2]
            assert rem.query(point, "aa:aa:aa:aa:aa:01") == pytest.approx(expected)

    def test_query_clamps_outside_volume(self, grid):
        rem = self._linear_map(grid)
        assert np.isfinite(rem.query((-1.0, -1.0, -1.0), "aa:aa:aa:aa:aa:01"))

    def test_field_shape_validated(self, grid):
        rem = RadioEnvironmentMap(grid, ["aa:aa:aa:aa:aa:01"])
        with pytest.raises(ValueError):
            rem.set_field("aa:aa:aa:aa:aa:01", np.zeros((2, 2, 2)))

    def test_unknown_mac_rejected(self, grid):
        rem = RadioEnvironmentMap(grid, ["aa:aa:aa:aa:aa:01"])
        with pytest.raises(KeyError):
            rem.set_field("bb:bb:bb:bb:bb:bb", np.zeros(grid.shape))

    def test_coverage_fraction(self, grid):
        rem = RadioEnvironmentMap(grid, ["m"])
        field = np.full(grid.shape, -90.0)
        field[0] = -50.0  # one x-slice covered
        rem.set_field("m", field)
        assert rem.coverage_fraction("m", -70.0) == pytest.approx(1.0 / 5.0)

    def test_dark_fraction_and_points(self, grid):
        rem = RadioEnvironmentMap(grid, ["m1", "m2"])
        f1 = np.full(grid.shape, -90.0)
        f2 = np.full(grid.shape, -90.0)
        f1[:, :, 0] = -50.0  # bottom layer served by m1
        rem.set_field("m1", f1)
        rem.set_field("m2", f2)
        assert rem.dark_fraction(-70.0) == pytest.approx(2.0 / 3.0)
        dark = rem.dark_points(-70.0)
        assert (dark[:, 2] > 0.0).all()

    def test_strongest_ap(self, grid):
        rem = RadioEnvironmentMap(grid, ["m1", "m2"])
        rem.set_field("m1", np.full(grid.shape, -60.0))
        rem.set_field("m2", np.full(grid.shape, -80.0))
        mac, rss = rem.strongest_ap((1.0, 1.0, 0.5))
        assert mac == "m1"
        assert rss == pytest.approx(-60.0)

    def test_dict_roundtrip(self, grid):
        rem = self._linear_map(grid)
        clone = RadioEnvironmentMap.from_dict(rem.to_dict())
        point = (0.7, 1.3, 0.4)
        assert clone.query(point, "aa:aa:aa:aa:aa:01") == pytest.approx(
            rem.query(point, "aa:aa:aa:aa:aa:01")
        )


class TestBuildRem:
    def test_build_from_knn(self, rng):
        positions = rng.uniform(0, 2, size=(120, 3))
        rssi = -60.0 - 8.0 * positions[:, 0]
        data = dataset_from_arrays(positions, np.zeros(120, dtype=int), rssi)
        model = KnnRegressor(n_neighbors=4).fit(data)
        volume = Cuboid((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))
        rem = build_rem(model, data, volume, resolution_m=0.5)
        assert rem.macs == data.mac_vocabulary
        # The REM must reflect the trend: weaker toward +x.
        strong = rem.query((0.1, 1.0, 1.0), data.mac_vocabulary[0])
        weak = rem.query((1.9, 1.0, 1.0), data.mac_vocabulary[0])
        assert strong > weak

    def test_mac_subset(self, rng):
        positions = rng.uniform(0, 2, size=(40, 3))
        data = dataset_from_arrays(
            positions, np.zeros(40, dtype=int), np.full(40, -70.0)
        )
        model = KnnRegressor(n_neighbors=2).fit(data)
        volume = Cuboid((0, 0, 0), (2, 2, 2))
        rem = build_rem(model, data, volume, resolution_m=1.0, macs=data.mac_vocabulary)
        assert len(rem.macs) == 1

    def test_unknown_mac_rejected(self, rng):
        positions = rng.uniform(0, 2, size=(10, 3))
        data = dataset_from_arrays(positions, np.zeros(10, dtype=int), np.zeros(10))
        model = KnnRegressor(n_neighbors=2).fit(data)
        with pytest.raises(KeyError):
            build_rem(model, data, Cuboid((0, 0, 0), (1, 1, 1)), macs=["zz"])
