"""End-to-end pipeline test (generate_rem)."""

import pytest

from repro import ToolchainConfig, generate_rem
from repro.core.pipeline import ToolchainResult


@pytest.fixture(scope="module")
def pipeline_result():
    # Hyper-parameter tuning off: the grid search is exercised separately
    # and would quadruple the runtime here.
    config = ToolchainConfig(tune_hyperparameters=False, rem_resolution_m=0.5)
    return generate_rem(config=config)


class TestGenerateRem:
    def test_result_complete(self, pipeline_result):
        assert isinstance(pipeline_result, ToolchainResult)
        assert len(pipeline_result.campaign.log) > 2000
        assert pipeline_result.preprocessing.retained_samples > 2000
        assert pipeline_result.rem.macs

    def test_rmse_reasonable(self, pipeline_result):
        assert 3.0 < pipeline_result.test_rmse_dbm < 6.0

    def test_summary_fields(self, pipeline_result):
        summary = pipeline_result.summary()
        assert set(summary) == {"samples", "retained", "test_rmse_dbm", "rem_macs"}

    def test_rem_covers_flight_volume(self, pipeline_result):
        rem = pipeline_result.rem
        volume = pipeline_result.scenario.flight_volume
        mac = rem.macs[0]
        value = rem.query(tuple(volume.center), mac)
        assert -110 < value < -30

    def test_dark_region_analysis_usable(self, pipeline_result):
        fraction = pipeline_result.rem.dark_fraction(-70.0)
        assert 0.0 <= fraction <= 1.0
