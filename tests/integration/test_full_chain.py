"""Cross-module integration tests: scan → driver → protocol → log → ML."""

import numpy as np
import pytest

from repro.core import build_rem, preprocess
from repro.core.predictors import KnnRegressor, rmse
from repro.station import SampleLog
from repro.wifi import Esp01Driver, Esp01Module, ScanConfig, parse_cwlap_response


class TestScanDriverChain:
    """Byte-level chain: environment → ESP AT firmware → driver → records."""

    def test_driver_output_matches_environment(self, demo_scenario, rng):
        module = Esp01Module(
            demo_scenario.environment,
            rng,
            scan_config=ScanConfig(collision_miss_probability=0.0),
        )
        module.set_position(tuple(demo_scenario.flight_volume.center))
        driver = Esp01Driver(module)
        driver.initialize()
        driver.start_measurement()
        records = driver.parse_output()
        known_macs = {ap.mac for ap in demo_scenario.access_points}
        assert records
        for record in records:
            assert record.mac in known_macs
            ap = demo_scenario.environment.ap_by_mac(record.mac)
            assert record.channel == ap.channel
            assert record.ssid == ap.ssid[: len(record.ssid)] or record.ssid == ap.ssid

    def test_raw_uart_bytes_parse_identically(self, demo_scenario, rng):
        module = Esp01Module(
            demo_scenario.environment,
            rng,
            scan_config=ScanConfig(collision_miss_probability=0.0),
        )
        module.set_position((1.0, 1.0, 1.0))
        module.execute("AT+CWMODE_CUR=1")
        module.execute("AT+CWLAPOPT=0,30")
        lines = module.execute("AT+CWLAP")
        records = parse_cwlap_response(lines)
        assert len(records) == len(lines) - 1  # all lines but the OK


class TestCampaignToRem:
    """Campaign log → preprocessing → model → REM end to end."""

    def test_rem_from_campaign(self, campaign_result, preprocessed):
        model = KnnRegressor(n_neighbors=16, onehot_scale=3.0).fit(preprocessed.train)
        score = rmse(preprocessed.test.rssi_dbm, model.predict(preprocessed.test))
        assert score < 5.5
        rem = build_rem(
            model,
            preprocessed.dataset,
            campaign_result.scenario.flight_volume,
            resolution_m=0.6,
            macs=preprocessed.dataset.mac_vocabulary[:5],
        )
        for mac in rem.macs:
            field = rem.field(mac)
            assert np.isfinite(field).all()
            assert -110 < field.mean() < -30

    def test_rem_queries_consistent_with_training_data(
        self, campaign_result, preprocessed
    ):
        model = KnnRegressor(n_neighbors=8).fit(preprocessed.train)
        mac = preprocessed.dataset.mac_vocabulary[0]
        rem = build_rem(
            model,
            preprocessed.dataset,
            campaign_result.scenario.flight_volume,
            resolution_m=0.4,
            macs=[mac],
        )
        # Queries at training points of this MAC should be within a few dB
        # of the recorded values on average (interpolation smooths fading).
        mask = preprocessed.train.mac_indices == 0
        positions = preprocessed.train.positions[mask][:30]
        recorded = preprocessed.train.rssi_dbm[mask][:30]
        predicted = np.array([rem.query(p, mac) for p in positions])
        assert np.abs(predicted - recorded).mean() < 6.0


class TestLogPersistenceChain:
    def test_campaign_log_csv_roundtrip_preserves_ml_results(
        self, campaign_result, tmp_path
    ):
        path = tmp_path / "campaign.csv"
        campaign_result.log.save_csv(path)
        loaded = SampleLog.load_csv(path)
        original = preprocess(campaign_result.log)
        reloaded = preprocess(loaded)
        assert len(original.dataset) == len(reloaded.dataset)
        model_a = KnnRegressor(n_neighbors=3).fit(original.train)
        model_b = KnnRegressor(n_neighbors=3).fit(reloaded.train)
        score_a = rmse(original.test.rssi_dbm, model_a.predict(original.test))
        score_b = rmse(reloaded.test.rssi_dbm, model_b.predict(reloaded.test))
        assert score_a == pytest.approx(score_b)
