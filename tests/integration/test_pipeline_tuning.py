"""The tuned pipeline path: generate_rem with the §III-B grid search."""

import pytest

from repro import ToolchainConfig, generate_rem

#: The full grid search takes ~30 s; run via `pytest -m slow`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tuned_result():
    with pytest.warns(DeprecationWarning, match="run_job"):
        return generate_rem(
            config=ToolchainConfig(
                tune_hyperparameters=True, rem_resolution_m=0.5, cv_folds=3
            )
        )


class TestTunedPipeline:
    def test_search_attached(self, tuned_result):
        assert tuned_result.search is not None
        assert set(tuned_result.search.best_params) <= {
            "n_neighbors",
            "weights",
            "p",
            "onehot_scale",
        }

    def test_winner_uses_distance_weights(self, tuned_result):
        # The paper's grid search selected distance weighting.
        assert tuned_result.search.best_params["weights"] == "distance"

    def test_tuned_beats_or_matches_baseline(self, tuned_result):
        from repro.core.predictors import MeanPerMacBaseline, rmse

        prep = tuned_result.preprocessing
        baseline = MeanPerMacBaseline().fit(prep.train)
        baseline_rmse = rmse(prep.test.rssi_dbm, baseline.predict(prep.test))
        assert tuned_result.test_rmse_dbm < baseline_rmse

    def test_ranking_sorted(self, tuned_result):
        ranking = tuned_result.search.ranking()
        scores = [cv.mean_rmse for cv in ranking]
        assert scores == sorted(scores)
