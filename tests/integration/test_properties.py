"""Property-based tests (hypothesis) for core invariants."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictors import KnnRegressor, rmse
from repro.link import BoundedQueue
from repro.radio import BandSegment, band_overlap_mhz, overlap_fraction
from repro.radio.geometry import Wall, crossed_walls
from repro.radio.materials import DRYWALL
from repro.uwb import PositionVelocityEkf, multilaterate
from tests.core.test_predictors import dataset_from_arrays

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
coords = st.tuples(finite, finite, finite)


class TestQueueInvariants:
    @given(
        capacity=st.integers(min_value=1, max_value=32),
        operations=st.lists(st.one_of(st.integers(0, 1000), st.none()), max_size=200),
    )
    def test_never_exceeds_capacity_and_conserves_items(self, capacity, operations):
        queue = BoundedQueue(capacity)
        taken = []
        for op in operations:
            if op is None:
                item = queue.poll()
                if item is not None:
                    taken.append(item)
            else:
                queue.offer(op)
            assert len(queue) <= capacity
        stats = queue.stats
        assert stats.enqueued == len(taken) + len(queue) + 0
        assert stats.dequeued == len(taken)
        assert stats.high_watermark <= capacity


class TestSpectrumProperties:
    bands = st.builds(
        BandSegment,
        center_mhz=st.floats(2300, 2600, allow_nan=False),
        width_mhz=st.floats(0.1, 50, allow_nan=False),
    )

    @given(a=bands, b=bands)
    def test_overlap_symmetric_and_bounded(self, a, b):
        overlap = band_overlap_mhz(a, b)
        assert overlap == band_overlap_mhz(b, a)
        assert 0.0 <= overlap <= min(a.width_mhz, b.width_mhz) + 1e-9

    @given(a=bands, b=bands)
    def test_fraction_in_unit_interval(self, a, b):
        assert 0.0 <= overlap_fraction(a, b) <= 1.0 + 1e-12

    @given(a=bands)
    def test_self_overlap_is_full(self, a):
        assert overlap_fraction(a, a) == pytest.approx(1.0, abs=1e-9)


class TestGeometryProperties:
    @given(p=coords, q=coords, offset=st.floats(-100, 100, allow_nan=False))
    def test_crossings_symmetric_under_reversal(self, p, q, offset):
        wall = Wall(0, offset, ((-1e3, 1e3), (-1e3, 1e3)), DRYWALL)
        forward = crossed_walls(p, q, [wall])
        backward = crossed_walls(q, p, [wall])
        assert len(forward) == len(backward)

    @given(p=coords, offset=st.floats(-100, 100, allow_nan=False))
    def test_zero_length_segment_crosses_nothing(self, p, offset):
        wall = Wall(1, offset, ((-1e3, 1e3), (-1e3, 1e3)), DRYWALL)
        assert crossed_walls(p, p, [wall]) == []


class TestEkfProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(0, 10_000),
        n_updates=st.integers(1, 40),
    )
    def test_covariance_stays_psd_under_random_updates(self, seed, n_updates):
        rng = np.random.default_rng(seed)
        ekf = PositionVelocityEkf(rng.uniform(-1, 1, 3))
        for _ in range(n_updates):
            ekf.predict(float(rng.uniform(0.01, 0.2)))
            anchor = rng.uniform(-5, 5, 3)
            measured = float(abs(rng.normal(3.0, 1.0))) + 0.1
            ekf.update_range(anchor, measured, sigma_m=float(rng.uniform(0.05, 0.3)))
        eigenvalues = np.linalg.eigvalsh(ekf.P)
        assert eigenvalues.min() > -1e-8
        assert np.allclose(ekf.P, ekf.P.T)


class TestMultilaterationProperties:
    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 10_000))
    def test_recovers_noiseless_point_inside_hull(self, seed):
        rng = np.random.default_rng(seed)
        anchors = np.array(
            [[0, 0, 0], [4, 0, 0], [0, 4, 0], [0, 0, 3], [4, 4, 3], [4, 0, 3]],
            dtype=float,
        )
        truth = rng.uniform(0.5, 3.0, 3)
        ranges = np.linalg.norm(anchors - truth, axis=1)
        estimate = multilaterate(anchors, ranges)
        assert np.linalg.norm(estimate - truth) < 1e-4


class TestKnnProperties:
    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 40))
    def test_k1_memorizes_training_set(self, seed, n):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, 5, size=(n, 3))
        # Ensure distinct positions so nearest neighbor is unambiguous.
        positions += np.arange(n)[:, None] * 1e-3
        rssi = rng.uniform(-90, -40, n)
        data = dataset_from_arrays(positions, np.zeros(n, dtype=int), rssi)
        model = KnnRegressor(n_neighbors=1).fit(data)
        assert np.allclose(model.predict(data), rssi)

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 10_000))
    def test_predictions_bounded_by_training_range(self, seed):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, 5, size=(30, 3))
        rssi = rng.uniform(-90, -40, 30)
        data = dataset_from_arrays(positions, np.zeros(30, dtype=int), rssi)
        model = KnnRegressor(n_neighbors=5, weights="uniform").fit(data)
        queries = dataset_from_arrays(
            rng.uniform(-2, 7, size=(20, 3)),
            np.zeros(20, dtype=int),
            np.zeros(20),
            vocabulary=data.mac_vocabulary,
        )
        predictions = model.predict(queries)
        assert predictions.min() >= rssi.min() - 1e-9
        assert predictions.max() <= rssi.max() + 1e-9


class TestJobFieldAdapterProperties:
    """run_job is the sole build path: the config adapters feeding it
    (``to_job_fields``/``from_job_fields``) must be lossless through a
    JSON round trip for every spec-representable config."""

    @staticmethod
    def active_configs():
        from repro.station import ActiveSamplingConfig

        def build(seed_wp, extra_budget, batch, target, patience, values):
            return ActiveSamplingConfig(
                seed_waypoints=seed_wp,
                batch_size=batch,
                budget_waypoints=seed_wp + extra_budget,
                target_rmse_dbm=target,
                patience_rounds=patience,
                min_improvement_dbm=values[0],
                travel_weight_db_per_m=values[1],
                lattice_nx=3 + patience,
                lattice_margin_m=values[2],
                flight_leg_s=values[3],
                scan_window_s=values[4],
                refit_every_scans=1 + batch,
                holdout_fraction=values[5],
                builder_seed=seed_wp,
            )

        return st.builds(
            build,
            seed_wp=st.integers(1, 12),
            extra_budget=st.integers(0, 60),
            batch=st.integers(1, 8),
            target=st.one_of(st.none(), st.floats(1.0, 10.0, allow_nan=False)),
            patience=st.integers(0, 4),
            values=st.tuples(
                st.floats(0.0, 1.0, allow_nan=False),
                st.floats(0.0, 2.0, allow_nan=False),
                st.floats(0.1, 0.5, allow_nan=False),
                st.floats(1.0, 8.0, allow_nan=False),
                st.floats(0.5, 5.0, allow_nan=False),
                st.floats(0.05, 0.5, allow_nan=False),
            ),
        )

    @settings(deadline=None, max_examples=50)
    @given(active=active_configs())
    def test_active_config_round_trips_through_json(self, active):
        from repro.station import ActiveSamplingConfig

        fields = json.loads(json.dumps(active.to_job_fields()))
        assert ActiveSamplingConfig.from_job_fields(fields) == active

    @settings(deadline=None, max_examples=50)
    @given(
        seed=st.integers(0, 10_000),
        scenario=st.sampled_from(("condo", "demo", "office", "warehouse")),
        acquisition=st.sampled_from(("lattice", "active")),
        active=st.one_of(st.none(), active_configs()),
    )
    def test_campaign_config_round_trips_through_json(
        self, seed, scenario, acquisition, active
    ):
        from repro.station import CampaignConfig

        config = CampaignConfig(
            seed=seed,
            scenario=scenario,
            acquisition=acquisition,
            active=active if acquisition == "active" else None,
        )
        fields = json.loads(json.dumps(config.to_job_fields()))
        assert CampaignConfig.from_job_fields(fields) == config

    def test_non_representable_configs_refuse_to_convert(self):
        from repro.station import ActiveSamplingConfig, CampaignConfig

        with pytest.raises(ValueError, match="anchor_count"):
            CampaignConfig(anchor_count=4).to_job_fields()
        with pytest.raises(ValueError, match="no_fly"):
            ActiveSamplingConfig(
                no_fly=(((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)),)
            ).to_job_fields()


class TestMetricProperties:
    values = st.lists(st.floats(-100, 0, allow_nan=False), min_size=1, max_size=50)

    @given(y=values)
    def test_rmse_zero_iff_identical(self, y):
        assert rmse(y, y) == 0.0

    @given(y=values, shift=st.floats(0.1, 20, allow_nan=False))
    def test_rmse_of_constant_shift(self, y, shift):
        shifted = [v + shift for v in y]
        assert (
            rmse(y, shifted) == np.float64(shift)
            or abs(rmse(y, shifted) - shift) < 1e-9
        )
