"""Fuzz/property tests for parsers, protocols and vehicle invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link import CrtpPacket, CrtpPort
from repro.uav import Battery, BatteryConfig, DynamicsConfig, FlightDynamics
from repro.uav import app_protocol as proto
from repro.uav.trajectory import plan_min_jerk_leg
from repro.wifi import AtParseError, ScanRecord, parse_cwlap_line
from repro.wifi.esp8266 import Esp01Module


class TestAtParserFuzz:
    @given(st.text(max_size=80))
    def test_never_crashes_on_arbitrary_lines(self, line):
        """The parser either returns a record, None, or AtParseError."""
        try:
            result = parse_cwlap_line(line)
        except AtParseError:
            return
        assert result is None or isinstance(result, ScanRecord)

    ssid_text = st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=24
    )

    @given(
        ssid=ssid_text,
        rssi=st.integers(-110, -10),
        channel=st.integers(1, 13),
    )
    def test_format_parse_roundtrip(self, ssid, rssi, channel):
        """Whatever the ESP formats, the parser reads back identically."""
        module = Esp01Module.__new__(Esp01Module)  # formatting only
        from repro.wifi.esp8266 import CwlapOutputMask

        module.output_mask = CwlapOutputMask()
        record = ScanRecord(
            ssid=ssid, rssi_dbm=rssi, mac="aa:bb:cc:dd:ee:ff", channel=channel
        )
        line = module._format_record(record)
        parsed = parse_cwlap_line(line)
        assert parsed == record


class TestProtocolFuzz:
    @given(
        mac_bytes=st.binary(min_size=6, max_size=6),
        rssi=st.integers(-128, 127),
        channel=st.integers(0, 255),
        ssid=st.text(max_size=30),
    )
    def test_scan_record_roundtrip(self, mac_bytes, rssi, channel, ssid):
        mac = ":".join(f"{b:02x}" for b in mac_bytes)
        message = proto.ScanRecordMsg(
            mac=mac, rssi_dbm=rssi, channel=channel, ssid=ssid
        )
        decoded = proto.decode(proto.encode(message))
        assert decoded.mac == mac
        assert decoded.rssi_dbm == rssi
        assert decoded.channel == channel
        # SSID may be truncated at the 20-byte wire limit — possibly mid
        # UTF-8 character (trailing replacement char).  Whatever fully
        # decoded must be a prefix of the original.
        stripped = decoded.ssid.rstrip("�")
        assert ssid.startswith(stripped)

    @given(payload=st.binary(min_size=0, max_size=30))
    def test_decode_never_crashes_unexpectedly(self, payload):
        packet = CrtpPacket(port=CrtpPort.APP, channel=0, payload=payload)
        try:
            proto.decode(packet)
        except (ValueError, Exception):
            # Any decoding failure must be an exception, not a wrong value;
            # struct errors and ValueErrors are both acceptable rejections.
            pass


class TestBatteryProperties:
    @given(
        draws=st.lists(
            st.tuples(
                st.floats(0, 5000, allow_nan=False), st.floats(0, 100, allow_nan=False)
            ),
            max_size=50,
        )
    )
    def test_monotone_discharge(self, draws):
        battery = Battery(BatteryConfig())
        last = battery.remaining_mah
        for current, dt in draws:
            battery.draw(current, dt)
            assert battery.remaining_mah <= last + 1e-9
            last = battery.remaining_mah
            assert 0.0 <= battery.remaining_fraction <= 1.0


class TestDynamicsProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(0, 10_000),
        target=st.tuples(
            st.floats(0, 3.5, allow_nan=False),
            st.floats(0, 3.0, allow_nan=False),
            st.floats(0.3, 2.0, allow_nan=False),
        ),
    )
    def test_speed_never_exceeds_limit(self, seed, target):
        rng = np.random.default_rng(seed)
        dynamics = FlightDynamics((0.5, 0.5, 0.5), DynamicsConfig(max_speed_mps=0.7))
        dynamics.airborne = True
        dynamics.set_setpoint(target)
        for _ in range(150):
            dynamics.update(0.04, rng)
            assert np.linalg.norm(dynamics.velocity) <= 0.7 + 1e-6


class TestTrajectoryProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        start=st.tuples(*[st.floats(-5, 5, allow_nan=False)] * 3),
        end=st.tuples(*[st.floats(-5, 5, allow_nan=False)] * 3),
        v_max=st.floats(0.2, 2.0, allow_nan=False),
    )
    def test_planned_leg_honors_speed_limit(self, start, end, v_max):
        segment = plan_min_jerk_leg(start, end, max_speed_mps=v_max)
        assert segment.peak_speed_mps <= v_max + 1e-9
        # Sampled speeds must also respect the limit.
        times = np.linspace(0, segment.duration_s, 50)
        for t in times:
            assert np.linalg.norm(segment.velocity(t)) <= v_max + 1e-6

    @settings(deadline=None, max_examples=40)
    @given(
        start=st.tuples(*[st.floats(-5, 5, allow_nan=False)] * 3),
        end=st.tuples(*[st.floats(-5, 5, allow_nan=False)] * 3),
    )
    def test_endpoints_exact(self, start, end):
        segment = plan_min_jerk_leg(start, end)
        assert np.allclose(segment.position(0.0), start, atol=1e-9)
        assert np.allclose(segment.position(segment.duration_s), end, atol=1e-9)
