"""Unit tests for named random streams."""

from repro.sim import RandomStreams, stable_hash


def test_same_name_returns_same_generator():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_streams_are_deterministic_across_instances():
    a = RandomStreams(seed=42).get("fading").normal(size=5)
    b = RandomStreams(seed=42).get("fading").normal(size=5)
    assert (a == b).all()


def test_different_names_give_independent_draws():
    streams = RandomStreams(seed=42)
    a = streams.get("one").normal(size=100)
    b = streams.get("two").normal(size=100)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").normal(size=10)
    b = RandomStreams(seed=2).get("x").normal(size=10)
    assert not (a == b).all()


def test_fork_is_deterministic():
    a = RandomStreams(seed=9).fork("child").get("s").integers(1000, size=8)
    b = RandomStreams(seed=9).fork("child").get("s").integers(1000, size=8)
    assert (a == b).all()


def test_fork_differs_from_parent():
    parent = RandomStreams(seed=9)
    child = parent.fork("child")
    assert parent.seed != child.seed


def test_stable_hash_is_stable():
    # Pinned value: must never change across runs or platforms.
    assert stable_hash("fading") == stable_hash("fading")
    assert stable_hash("a") != stable_hash("b")


def test_names_tracks_created_streams():
    streams = RandomStreams(seed=0)
    streams.get("alpha")
    streams.get("beta")
    assert set(streams.names()) == {"alpha", "beta"}
