"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Condition, Interrupted, Simulator, Timeout, WaitFor, spawn


def test_timeout_advances_process():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield Timeout(1.5)
        trace.append(sim.now)
        yield Timeout(0.5)
        trace.append(sim.now)

    spawn(sim, worker())
    sim.run()
    assert trace == [0.0, 1.5, 2.0]


def test_process_result_captured():
    sim = Simulator()

    def worker():
        yield Timeout(1.0)
        return 42

    process = spawn(sim, worker())
    sim.run()
    assert process.finished
    assert process.result == 42


def test_condition_wakes_waiters_with_value():
    sim = Simulator()
    condition = Condition(sim)
    got = []

    def waiter():
        value = yield WaitFor(condition)
        got.append((sim.now, value))

    def firer():
        yield Timeout(2.0)
        condition.trigger("done")

    spawn(sim, waiter())
    spawn(sim, waiter())
    spawn(sim, firer())
    sim.run()
    assert got == [(2.0, "done"), (2.0, "done")]


def test_wait_on_already_triggered_condition():
    sim = Simulator()
    condition = Condition(sim)
    condition.trigger("early")
    got = []

    def waiter():
        value = yield WaitFor(condition)
        got.append(value)

    spawn(sim, waiter())
    sim.run()
    assert got == ["early"]


def test_condition_cannot_trigger_twice():
    sim = Simulator()
    condition = Condition(sim)
    condition.trigger(None)
    with pytest.raises(Exception):
        condition.trigger(None)


def test_waiting_on_another_process():
    sim = Simulator()
    trace = []

    def inner():
        yield Timeout(3.0)
        return "inner-result"

    def outer():
        child = spawn(sim, inner())
        result = yield child
        trace.append((sim.now, result))

    spawn(sim, outer())
    sim.run()
    assert trace == [(3.0, "inner-result")]


def test_interrupt_stops_process():
    sim = Simulator()
    trace = []

    def worker():
        try:
            while True:
                yield Timeout(1.0)
                trace.append(sim.now)
        except Interrupted:
            trace.append("interrupted")

    process = spawn(sim, worker())
    sim.schedule(2.5, process.interrupt)
    sim.run()
    assert trace == [1.0, 2.0, "interrupted"]
    assert process.finished


def test_invalid_directive_raises():
    sim = Simulator()

    def worker():
        yield "not-a-directive"

    spawn(sim, worker())
    with pytest.raises(Exception):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)
