"""Unit tests for DES resources (semaphore / mutex / store)."""

import pytest

from repro.sim import SimulationError, Simulator, Timeout, spawn
from repro.sim.resources import Mutex, Semaphore, Store


class TestSemaphore:
    def test_immediate_acquire_within_capacity(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        trace = []

        def worker(tag):
            yield from sem.acquire()
            trace.append((tag, sim.now))

        spawn(sim, worker("a"))
        spawn(sim, worker("b"))
        sim.run()
        assert [t for t, _ in trace] == ["a", "b"]
        assert sem.available == 0

    def test_blocks_beyond_capacity_fifo(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        trace = []

        def holder():
            yield from sem.acquire()
            trace.append(("hold", sim.now))
            yield Timeout(5.0)
            sem.release()

        def waiter(tag):
            yield from sem.acquire()
            trace.append((tag, sim.now))
            sem.release()

        spawn(sim, holder())
        spawn(sim, waiter("w1"))
        spawn(sim, waiter("w2"))
        sim.run()
        assert trace[0] == ("hold", 0.0)
        assert trace[1][0] == "w1" and trace[1][1] == 5.0
        assert trace[2][0] == "w2" and trace[2][1] == 5.0

    def test_try_acquire(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Semaphore(sim).release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Semaphore(Simulator(), capacity=0)

    def test_sequential_fleet_pattern(self):
        """The campaign pattern: one radio, missions strictly serialized."""
        sim = Simulator()
        radio = Mutex(sim)
        flight_windows = []

        def mission(name, flight_time):
            yield from radio.acquire()
            start = sim.now
            yield Timeout(flight_time)
            flight_windows.append((name, start, sim.now))
            radio.release()

        for name, duration in (("A", 280.0), ("B", 280.0)):
            spawn(sim, mission(name, duration))
        sim.run()
        (name_a, a0, a1), (name_b, b0, b1) = flight_windows
        assert name_a == "A" and name_b == "B"
        assert b0 >= a1  # no overlap: one UAV in the air at a time


class TestMutex:
    def test_locked_property(self):
        sim = Simulator()
        mutex = Mutex(sim)
        assert not mutex.locked
        assert mutex.try_acquire()
        assert mutex.locked


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((item, sim.now))

        store.put("x")
        spawn(sim, consumer())
        sim.run()
        assert got == [("x", 0.0)]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((item, sim.now))

        def producer():
            yield Timeout(3.0)
            store.put(42)

        spawn(sim, consumer())
        spawn(sim, producer())
        sim.run()
        assert got == [(42, 3.0)]

    def test_fifo_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(tag):
            item = yield from store.get()
            got.append((tag, item))

        spawn(sim, consumer("first"))
        spawn(sim, consumer("second"))

        def producer():
            yield Timeout(1.0)
            store.put("a")
            store.put("b")

        spawn(sim, producer())
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_try_get_and_drain(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        store.put(2)
        assert store.try_get() == 1
        store.put(3)
        assert store.drain() == [2, 3]
        assert len(store) == 0
