"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append("late"))
    sim.schedule(1.0, lambda: seen.append("early"))
    sim.schedule(1.5, lambda: seen.append("middle"))
    sim.run()
    assert seen == ["early", "middle", "late"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    seen = []
    for tag in ("a", "b", "c"):
        sim.schedule(1.0, lambda tag=tag: seen.append(tag))
    sim.run()
    assert seen == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1))
    sim.schedule(5.0, lambda: seen.append(5))
    end = sim.run(until=2.0)
    assert seen == [1]
    assert end == 2.0
    assert sim.now == 2.0
    # The later event still fires on a subsequent run.
    sim.run()
    assert seen == [1, 5]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, lambda: seen.append("x"))
    event.cancel()
    sim.run()
    assert seen == []
    assert not event.pending


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(1.0, lambda: chain(n + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
    sim.schedule(2.0, lambda: seen.append(2))
    sim.run()
    assert seen == [1]
    # Remaining event still pending.
    assert sim.pending_events == 1


def test_peek_returns_next_pending_time():
    sim = Simulator()
    e1 = sim.schedule(3.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    assert sim.peek() == 3.0
    e1.cancel()
    assert sim.peek() == 5.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_start_time_offset():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [101.0]
