"""The campaign factory: grid expansion, fan-out, resume, robustness."""

import json
import os
import signal
import threading
import time

import pytest

from repro.serve import (
    ArtifactStore,
    JobSetRunner,
    JobSetSpec,
    RemJobSpec,
    run_jobset,
)
from repro.serve.jobset import FAILED_LEDGER

#: Shared non-axis fields that keep every cell a sub-second build.
TINY_BASE = {
    "active": {"seed_waypoints": 6, "batch_size": 6, "budget_waypoints": 6},
    "min_samples_per_mac": 2,
    "with_uncertainty": False,
}


def tiny_jobset(**overrides):
    params = dict(
        seeds=(1, 2),
        predictors=("idw", "baseline"),
        acquisitions=("active",),
        resolutions=(0.8,),
        base=TINY_BASE,
    )
    params.update(overrides)
    return JobSetSpec(**params)


class TestJobSetSpec:
    def test_expansion_is_the_cartesian_product(self):
        jobset = JobSetSpec(
            scenarios=("condo", "demo"),
            seeds=(1, 2, 3),
            predictors=("knn", "idw"),
            acquisitions=("lattice", "active"),
            resolutions=(0.5, 1.0),
        )
        jobs = jobset.jobs()
        assert jobset.count == 2 * 3 * 2 * 2 * 2
        assert len(jobs) == jobset.count
        cells = {
            (j.scenario, j.seed, j.predictor, j.acquisition, j.resolution_m)
            for j in jobs
        }
        assert len(cells) == jobset.count  # all distinct
        assert all(isinstance(j, RemJobSpec) for j in jobs)

    def test_expansion_order_is_deterministic(self):
        jobset = tiny_jobset()
        first = [j.digest() for j in jobset.jobs()]
        second = [j.digest() for j in jobset.jobs()]
        assert first == second

    def test_json_round_trip_preserves_digest(self):
        jobset = tiny_jobset()
        again = JobSetSpec.from_json(jobset.to_json())
        assert again == jobset
        assert again.digest() == jobset.digest()

    def test_digest_tracks_content(self):
        assert tiny_jobset().digest() != tiny_jobset(seeds=(1, 2, 3)).digest()

    def test_tune_only_applies_to_untouched_knn(self):
        jobset = JobSetSpec(
            predictors=("knn", "idw"),
            base={"tune": True, "test_fraction": 0.3},
        )
        by_predictor = {j.predictor: j for j in jobset.jobs()}
        assert by_predictor["knn"].tune is True
        assert by_predictor["idw"].tune is False
        assert by_predictor["idw"].test_fraction == 0.3

    def test_active_tunables_only_attach_to_active_cells(self):
        jobset = tiny_jobset(acquisitions=("lattice", "active"))
        by_acquisition = {j.acquisition: j for j in jobset.jobs()}
        assert by_acquisition["lattice"].active is None
        assert by_acquisition["active"].active is not None

    def test_fleet_tunables_only_attach_to_fleet_cells(self):
        jobset = tiny_jobset(
            acquisitions=("lattice", "active", "fleet"),
            base={**TINY_BASE, "fleet": {"n_drones": 3}},
        )
        by_acquisition = {j.acquisition: j for j in jobset.jobs()}
        assert by_acquisition["lattice"].active is None
        assert by_acquisition["lattice"].fleet is None
        assert by_acquisition["active"].fleet is None
        assert by_acquisition["active"].active is not None
        assert by_acquisition["fleet"].fleet["n_drones"] == 3
        # The fleet loop shares the active tunables.
        assert by_acquisition["fleet"].active is not None

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            JobSetSpec(seeds=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            JobSetSpec(seeds=(1, 1))

    def test_axis_fields_in_base_rejected(self):
        with pytest.raises(ValueError, match="base may not carry"):
            JobSetSpec(base={"seed": 7})

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="psychic"):
            JobSetSpec(predictors=("psychic",))

    def test_invalid_cell_rejected_eagerly(self):
        with pytest.raises(ValueError):
            JobSetSpec(scenarios=("not-a-world",))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job-set field"):
            JobSetSpec.from_dict({"seedz": [1]})


class TestInlineRunner:
    def test_build_then_full_cache_resume(self, tmp_path):
        store = ArtifactStore(tmp_path)
        jobset = tiny_jobset()
        result = run_jobset(jobset, store, workers=0)
        assert result.built == 4
        assert result.failed == 0 and not result.aborted
        assert store.count() == 4

        again = run_jobset(jobset, store, workers=0)
        assert again.cached == 4 and again.built == 0
        assert {r.status for r in again.records} == {"cached"}

    def test_progress_callback_sees_every_job(self, tmp_path):
        ticks = []
        result = run_jobset(
            tiny_jobset(),
            ArtifactStore(tmp_path),
            workers=0,
            progress=ticks.append,
        )
        assert len(ticks) == 4
        assert [t.done for t in ticks] == [1, 2, 3, 4]
        assert ticks[-1].total == 4
        assert all(t.status == "built" for t in ticks)
        # ETA becomes available once the first build has landed.
        assert any(t.eta_s is not None for t in ticks)
        assert result.elapsed_s >= sum(r.wall_s for r in result.records) * 0.5

    def test_all_cached_sweep_reports_zero_eta(self, tmp_path):
        # Regression: a sweep where *every* cell is a cache hit never
        # sees a build to extrapolate a rate from; the final tick must
        # say 0.0 (done), not hang on "unknown".
        store = ArtifactStore(tmp_path)
        jobset = tiny_jobset()
        run_jobset(jobset, store, workers=0)

        ticks = []
        again = run_jobset(jobset, store, workers=0, progress=ticks.append)
        assert again.cached == 4 and again.built == 0
        assert [t.status for t in ticks] == ["cached"] * 4
        assert [t.eta_s for t in ticks] == [None, None, None, 0.0]
        assert ticks[-1].done == ticks[-1].total == 4

    def test_runner_parameter_validation(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="workers"):
            JobSetRunner(store, workers=-1)
        with pytest.raises(ValueError, match="timeout_s"):
            JobSetRunner(store, timeout_s=0)
        with pytest.raises(ValueError, match="max_failures"):
            JobSetRunner(store, max_failures=-1)
        with pytest.raises(ValueError, match="storage format"):
            JobSetRunner(store, storage_format="tar")


class TestPoolRunner:
    def test_spawn_pool_builds_and_resumes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        jobset = tiny_jobset(seeds=(1,))  # 2 jobs: keep spawn startup cheap
        result = run_jobset(jobset, store, workers=2, start_method="spawn")
        assert result.built == 2 and result.failed == 0
        again = run_jobset(jobset, store, workers=2, start_method="spawn")
        assert again.cached == 2 and again.built == 0

    def test_fork_pool_matches_inline_content(self, tmp_path):
        jobset = tiny_jobset()
        inline_store = ArtifactStore(tmp_path / "inline")
        pool_store = ArtifactStore(tmp_path / "pool")
        run_jobset(jobset, inline_store, workers=0)
        run_jobset(jobset, pool_store, workers=2, start_method="fork")
        inline = {
            r["digest"]: r["content_hash"] for r in inline_store.list()
        }
        pool = {r["digest"]: r["content_hash"] for r in pool_store.list()}
        assert inline == pool  # byte-identical artifacts either way

    def test_timeout_and_circuit_breaker(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBSET_DELAY_S", "30")
        store = ArtifactStore(tmp_path)
        result = run_jobset(
            tiny_jobset(),
            store,
            workers=1,
            start_method="fork",
            timeout_s=0.3,
            max_failures=0,
        )
        assert result.failed == 1
        assert result.skipped == 3
        assert result.aborted
        failed = [r for r in result.records if r.status == "failed"]
        assert "timeout" in failed[0].error

        ledger = json.loads((tmp_path / FAILED_LEDGER).read_text())
        assert len(ledger["failures"]) == 1
        entry = ledger["failures"][0]
        assert entry["digest"] == failed[0].digest
        assert entry["spec"] == failed[0].spec
        assert "timeout" in entry["error"]

    def test_stale_ledger_removed_at_run_start(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / FAILED_LEDGER).write_text('{"failures": [{"stale": true}]}')
        result = run_jobset(tiny_jobset(seeds=(1,)), store, workers=0)
        assert result.failed == 0
        assert not (tmp_path / FAILED_LEDGER).exists()


class TestKillAndResume:
    def _kill_first_busy_worker(self, runner, killed):
        """Poll the runner's pool and SIGKILL the first busy worker."""
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            for worker in list(runner._workers):
                current = worker.current
                if current is not None and worker.process.is_alive():
                    killed["digest"] = current[0]
                    os.kill(worker.process.pid, signal.SIGKILL)
                    return
            time.sleep(0.01)

    def test_sigkilled_worker_job_fails_resume_rebuilds_only_it(
        self, tmp_path, monkeypatch
    ):
        """The tentpole resumability contract, adversarially.

        SIGKILL a worker mid-build; the sweep records that job failed
        and completes the rest.  Restarting the same sweep over the
        same store rebuilds ONLY the killed digest (everything finished
        is a cache hit), and the final store is byte-identical to one
        from an uninterrupted run.
        """
        jobset = tiny_jobset()  # 4 jobs
        store = ArtifactStore(tmp_path / "interrupted")

        # Slow the builds enough that the kill lands mid-job.
        monkeypatch.setenv("REPRO_JOBSET_DELAY_S", "0.8")
        runner = JobSetRunner(store, workers=1, start_method="fork")
        killed = {}
        killer = threading.Thread(
            target=self._kill_first_busy_worker, args=(runner, killed)
        )
        killer.start()
        result = runner.run(jobset)
        killer.join(timeout=30)

        assert killed, "the killer thread never saw a busy worker"
        assert result.failed == 1
        assert result.built == 3
        failed = [r for r in result.records if r.status == "failed"]
        assert failed[0].digest == killed["digest"]
        assert "worker died" in failed[0].error
        ledger = json.loads((tmp_path / "interrupted" / FAILED_LEDGER).read_text())
        assert [f["digest"] for f in ledger["failures"]] == [killed["digest"]]
        assert store.count() == 3  # the killed job left nothing behind

        # Resume (no artificial delay): only the killed digest rebuilds.
        monkeypatch.delenv("REPRO_JOBSET_DELAY_S")
        resumed = run_jobset(jobset, store, workers=1, start_method="fork")
        assert resumed.built == 1
        assert resumed.cached == 3
        rebuilt = [r for r in resumed.records if r.status == "built"]
        assert rebuilt[0].digest == killed["digest"]
        cached = {r.digest for r in resumed.records if r.status == "cached"}
        assert killed["digest"] not in cached
        assert store.count() == 4

        # Byte-identical to an uninterrupted run of the same jobset.
        reference = ArtifactStore(tmp_path / "reference")
        run_jobset(jobset, reference, workers=0)
        resumed_hashes = {
            r["digest"]: r["content_hash"] for r in store.list()
        }
        reference_hashes = {
            r["digest"]: r["content_hash"] for r in reference.list()
        }
        assert resumed_hashes == reference_hashes
