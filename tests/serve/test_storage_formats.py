"""Storage formats: npy-per-tensor layout, mmap loads, dtype options."""

import dataclasses
import json

import numpy as np
import pytest

from repro.serve import STORAGE_FORMATS, ArtifactStore

from tests.serve.conftest import make_artifact


class TestNpyLayout:
    def test_round_trip_is_exact(self, tmp_path):
        artifact = make_artifact(seed=41)
        store = ArtifactStore(tmp_path, default_format="npy")
        store.save(artifact)
        loaded = store.load(artifact.digest)
        np.testing.assert_array_equal(
            loaded.rem.field_tensor(), artifact.rem.field_tensor()
        )
        np.testing.assert_array_equal(
            loaded.uncertainty.field_tensor(),
            artifact.uncertainty.field_tensor(),
        )
        assert loaded.rem.macs == artifact.rem.macs
        assert loaded.content_hash() == artifact.content_hash()

    def test_layout_is_npy_directory(self, tmp_path):
        artifact = make_artifact(seed=42)
        store = ArtifactStore(tmp_path, default_format="npy")
        store.save(artifact)
        payload_dir = tmp_path / artifact.digest
        assert (payload_dir / "rem_stack.npy").is_file()
        assert (payload_dir / "unc_stack.npy").is_file()
        sidecar = json.loads((tmp_path / f"{artifact.digest}.json").read_text())
        assert sidecar["storage"]["format"] == "npy"
        assert sidecar["dtype"] == "float64"

    def test_mmap_load_shares_pages(self, tmp_path):
        artifact = make_artifact(seed=43)
        store = ArtifactStore(tmp_path, default_format="npy")
        store.save(artifact)
        loaded = store.load(artifact.digest, mmap=True)
        # The stack must still BE the memory map — any copy on the way
        # in would defeat cross-process page sharing.
        assert isinstance(loaded.rem._stack, np.memmap)
        np.testing.assert_array_equal(
            loaded.rem.field_tensor(), artifact.rem.field_tensor()
        )

    def test_per_save_format_override(self, tmp_path):
        store = ArtifactStore(tmp_path)  # default npz
        compressed = make_artifact(seed=44)
        mappable = make_artifact(seed=45)
        store.save(compressed)
        store.save(mappable, storage_format="npy")
        assert (tmp_path / f"{compressed.digest}.npz").is_file()
        assert (tmp_path / mappable.digest / "rem_stack.npy").is_file()
        assert set(store.digests()) == {compressed.digest, mappable.digest}
        for digest in (compressed.digest, mappable.digest):
            assert digest in store
            store.load(digest)

    def test_uncertainty_free_npy_round_trips(self, tmp_path):
        artifact = make_artifact(seed=46)
        artifact.uncertainty = None
        store = ArtifactStore(tmp_path, default_format="npy")
        store.save(artifact)
        loaded = store.load(artifact.digest, mmap=True)
        assert loaded.uncertainty is None
        assert loaded.content_hash() == artifact.content_hash()

    def test_mmap_request_on_npz_still_loads(self, tmp_path):
        artifact = make_artifact(seed=47)
        store = ArtifactStore(tmp_path)
        store.save(artifact)
        loaded = store.load(artifact.digest, mmap=True)  # zip: eager load
        assert loaded.content_hash() == artifact.content_hash()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, default_format="hdf5")
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(make_artifact(seed=48), storage_format="hdf5")
        assert STORAGE_FORMATS == ("npz", "npy")


class TestFloat32:
    def test_astype_halves_footprint(self):
        artifact = make_artifact(seed=51)
        small = artifact.astype("float32")
        assert small.dtype == "float32"
        assert artifact.dtype == "float64"  # original untouched
        assert (
            small.rem.field_tensor().nbytes
            == artifact.rem.field_tensor().nbytes // 2
        )

    def test_float32_values_within_tolerance(self, tmp_path):
        artifact = make_artifact(seed=52)
        small = artifact.astype("float32")
        store = ArtifactStore(tmp_path, default_format="npy")
        store.save(small)
        loaded = store.load(small.digest, mmap=True)
        assert str(loaded.rem.dtype) == "float32"
        rng = np.random.default_rng(7)
        points = rng.uniform((0, 0, 0), (4, 3, 2), size=(64, 3))
        np.testing.assert_allclose(
            loaded.rem.query_many(points),
            artifact.rem.query_many(points),
            atol=1e-3,
        )

    def test_dtype_recorded_in_sidecar(self, tmp_path):
        small = make_artifact(seed=53).astype("float32")
        store = ArtifactStore(tmp_path)
        store.save(small)
        sidecar = json.loads((tmp_path / f"{small.digest}.json").read_text())
        assert sidecar["dtype"] == "float32"
        assert store.load(small.digest).record()["dtype"] == "float32"

    def test_spec_rejects_unknown_dtype(self):
        spec = make_artifact(seed=54).spec
        with pytest.raises(ValueError):
            dataclasses.replace(spec, dtype="float16")


class TestCachedCount:
    def test_count_tracks_saves(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.count() == 0
        first = make_artifact(seed=61)
        store.save(first)
        assert store.count() == 1
        store.save(make_artifact(seed=62), storage_format="npy")
        assert store.count() == 2
        store.save(first)  # no-op resave
        assert store.count() == 2

    def test_count_sees_external_writes(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        reader = ArtifactStore(tmp_path)
        assert reader.count() == 0
        writer.save(make_artifact(seed=63))
        # The cache keys on the directory mtime, so a different store
        # instance writing to the same root is picked up.
        assert reader.count() == 1
