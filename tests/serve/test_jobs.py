"""run_job: the spec→artifact facade, determinism, cache hits, shim."""

import numpy as np
import pytest

import repro.core.pipeline as pipeline
from repro.core.pipeline import ToolchainConfig, generate_rem
from repro.core.preprocessing import PreprocessConfig
from repro.serve import ArtifactStore, RemJobSpec, run_job
from repro.station import ActiveSamplingConfig, CampaignConfig
from repro.uav.firmware import FirmwareConfig


@pytest.fixture(scope="module")
def built(tiny_spec):
    """One real build shared by the read-only assertions."""
    return run_job(tiny_spec)


class TestRunJob:
    def test_artifact_carries_maps_and_provenance(self, built, tiny_spec):
        assert built.spec == tiny_spec
        assert built.rem.macs  # something got mapped
        assert built.uncertainty is not None
        assert built.uncertainty.macs == built.rem.macs
        assert built.rem.grid.resolution_m == tiny_spec.resolution_m
        for key in (
            "scenario",
            "seed",
            "samples",
            "retained_samples",
            "test_rmse_dbm",
            "n_macs",
            "wall_time_s",
        ):
            assert key in built.provenance
        assert built.provenance["wall_time_s"] > 0
        assert built.result is not None  # fresh build keeps the toolchain

    def test_same_spec_same_seed_same_content(self, built, tiny_spec):
        again = run_job(tiny_spec)
        assert again.digest == built.digest
        assert again.content_hash() == built.content_hash()

    def test_cache_hit_skips_the_campaign(
        self, tmp_path, tiny_spec, monkeypatch
    ):
        store = ArtifactStore(tmp_path)
        calls = {"n": 0}
        real = pipeline.run_campaign

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline, "run_campaign", counting)
        first = run_job(tiny_spec, store)
        assert not first.cache_hit
        flights = calls["n"]
        assert flights >= 1
        second = run_job(tiny_spec, store)
        assert second.cache_hit
        assert calls["n"] == flights  # no re-fly
        assert second.content_hash() == first.content_hash()

    def test_without_uncertainty(self, tiny_spec):
        from dataclasses import replace

        artifact = run_job(replace(tiny_spec, with_uncertainty=False))
        assert artifact.uncertainty is None


class TestFleetEquivalencePin:
    """The K=1 fleet degeneration, pinned at the artifact-byte level.

    A one-drone fleet flies the exact flights of the active campaign
    (same RNG stream forks, same sample order), so the built artifact
    must be byte-identical — distinct spec digests, one content hash.
    """

    SMALL = {
        "seed_waypoints": 6,
        "batch_size": 4,
        "budget_waypoints": 10,
        "lattice_nx": 4,
        "lattice_ny": 3,
        "lattice_nz": 2,
    }
    COMMON = {
        "tune": False,
        "with_uncertainty": False,
        "resolution_m": 0.8,
        "min_samples_per_mac": 3,
    }

    def test_one_drone_fleet_builds_the_active_artifact(self):
        active_spec = RemJobSpec(
            acquisition="active", active=self.SMALL, **self.COMMON
        )
        fleet_spec = RemJobSpec(
            acquisition="fleet",
            active=self.SMALL,
            fleet={"n_drones": 1},
            **self.COMMON,
        )
        # Different jobs by address (the spec names the acquisition) ...
        assert fleet_spec.digest() != active_spec.digest()
        active_artifact = run_job(active_spec)
        fleet_artifact = run_job(fleet_spec)
        # ... same bytes by content.
        assert fleet_artifact.content_hash() == active_artifact.content_hash()
        assert (
            fleet_artifact.provenance["samples"]
            == active_artifact.provenance["samples"]
        )


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestGenerateRemShim:
    CONFIG = ToolchainConfig(
        campaign=CampaignConfig(
            seed=63,
            acquisition="active",
            active=ActiveSamplingConfig(
                seed_waypoints=6, batch_size=6, budget_waypoints=6
            ),
        ),
        preprocess=PreprocessConfig(min_samples_per_mac=2),
        tune_hyperparameters=False,
        rem_resolution_m=0.8,
    )

    def test_generate_rem_emits_deprecation_warning(self, tiny_spec):
        with pytest.warns(DeprecationWarning, match="run_job"):
            generate_rem(config=tiny_spec.toolchain_config())

    def test_config_call_routes_through_run_job(self, monkeypatch):
        import repro.serve.jobs as jobs

        seen = {}
        real = jobs.run_job

        def spying(spec, store=None):
            seen["spec"] = spec
            return real(spec, store)

        monkeypatch.setattr(jobs, "run_job", spying)
        result = generate_rem(config=self.CONFIG)
        assert seen["spec"].acquisition == "active"
        assert result.rem.macs  # full ToolchainResult came back

    def test_shim_result_matches_direct_path(self, built, tiny_spec):
        result = generate_rem(config=tiny_spec.toolchain_config())
        direct = built.result
        assert result.test_rmse_dbm == pytest.approx(
            direct.test_rmse_dbm, abs=1e-12
        )
        np.testing.assert_allclose(
            result.rem.field_tensor(),
            direct.rem.field_tensor(),
            atol=1e-9,
        )

    def test_live_objects_take_the_direct_path(self, monkeypatch):
        import repro.serve.jobs as jobs

        def exploding(spec, store=None):  # pragma: no cover - must not run
            raise AssertionError("shim must not engage for live objects")

        monkeypatch.setattr(jobs, "run_job", exploding)
        config = ToolchainConfig(
            campaign=CampaignConfig(firmware=FirmwareConfig.stock_2021_06()),
        )
        spec = RemJobSpec.from_toolchain_config(config)
        assert spec is None  # not representable → direct path
        # The direct path still works end to end for a tiny active run
        # (anchor_count is a hardware knob no JSON spec can carry).
        direct_config = ToolchainConfig(
            campaign=CampaignConfig(
                anchor_count=6,
                acquisition="active",
                active=ActiveSamplingConfig(
                    seed_waypoints=6, batch_size=6, budget_waypoints=6
                ),
            ),
            preprocess=PreprocessConfig(min_samples_per_mac=2),
            tune_hyperparameters=False,
            rem_resolution_m=0.8,
        )
        assert RemJobSpec.from_toolchain_config(direct_config) is None
        result = generate_rem(config=direct_config)
        assert result.rem.macs
