"""RemService: served answers ≡ direct REM calls, LRU behavior."""

import numpy as np
import pytest

from repro.serve import (
    CoverageRequest,
    DarkRegionsRequest,
    QueryRequest,
    RemService,
    StrongestApRequest,
    request_from_dict,
)


@pytest.fixture()
def service(seeded_store):
    return RemService(seeded_store, capacity=2)


def probe_points(rem, n=40, seed=3):
    """Random probe points spanning (and slightly exceeding) the volume."""
    rng = np.random.default_rng(seed)
    lo = np.asarray(rem.grid.volume.min_corner) - 0.2
    hi = np.asarray(rem.grid.volume.max_corner) + 0.2
    return rng.uniform(lo, hi, size=(n, 3))


class TestEquivalence:
    def test_query_matches_direct(self, service, artifacts):
        artifact = artifacts[0]
        points = probe_points(artifact.rem)
        response = service.handle(QueryRequest(artifact.digest, points))
        direct = artifact.rem.query_many(points)
        assert response.macs == list(artifact.rem.macs)
        np.testing.assert_allclose(response.values, direct, atol=1e-9)

    def test_query_mac_subset(self, service, artifacts):
        artifact = artifacts[0]
        macs = list(artifact.rem.macs[:2])
        points = probe_points(artifact.rem, n=7)
        response = service.handle(QueryRequest(artifact.digest, points, macs))
        np.testing.assert_allclose(
            response.values, artifact.rem.query_many(points, macs), atol=1e-9
        )

    def test_strongest_ap_matches_direct(self, service, artifacts):
        artifact = artifacts[1]
        points = probe_points(artifact.rem)
        response = service.handle(StrongestApRequest(artifact.digest, points))
        macs, rss = artifact.rem.strongest_ap_many(points)
        assert response.macs == macs
        np.testing.assert_allclose(response.rss_dbm, rss, atol=1e-9)

    def test_coverage_matches_direct(self, service, artifacts):
        artifact = artifacts[2]
        response = service.handle(CoverageRequest(artifact.digest, -70.0))
        assert response.by_mac == artifact.rem.coverage_by_mac(-70.0)
        assert response.dark_fraction == artifact.rem.dark_fraction(-70.0)

    def test_dark_regions_matches_direct(self, service, artifacts):
        artifact = artifacts[0]
        response = service.handle(DarkRegionsRequest(artifact.digest, -55.0))
        np.testing.assert_array_equal(
            response.points, artifact.rem.dark_points(-55.0)
        )
        assert not response.truncated

    def test_dark_regions_truncation(self, service, artifacts):
        artifact = artifacts[0]
        full = artifact.rem.dark_points(-55.0)
        if len(full) < 2:
            pytest.skip("synthetic map has no dark region to truncate")
        response = service.handle(
            DarkRegionsRequest(artifact.digest, -55.0, max_points=1)
        )
        assert response.truncated
        assert len(response.points) == 1
        # The exact fraction is preserved even when points are capped.
        assert response.dark_fraction == artifact.rem.dark_fraction(-55.0)


class TestBatching:
    def test_handle_many_matches_scalar(self, service, artifacts):
        requests = [
            QueryRequest(artifacts[0].digest, probe_points(artifacts[0].rem, n=5)),
            CoverageRequest(artifacts[1].digest, -70.0),
            StrongestApRequest(artifacts[2].digest, probe_points(artifacts[2].rem, n=5)),
        ]
        batched = service.handle_many(requests)
        assert len(batched) == len(requests)
        for request, response in zip(requests, batched):
            assert response.to_dict() == service.handle(request).to_dict()

    def test_requests_from_list_round_trip(self, service, artifacts):
        from repro.serve import requests_from_list

        body = [
            {"digest": artifacts[0].digest, "type": "coverage", "threshold_dbm": -70.0},
            {"digest": artifacts[1].digest, "points": [[1.0, 1.0, 1.0]]},
        ]
        requests = requests_from_list(body)
        assert isinstance(requests[0], CoverageRequest)
        assert isinstance(requests[1], QueryRequest)
        assert [r.digest for r in requests] == [b["digest"] for b in body]

    def test_requests_from_list_rejects_bad_envelopes(self):
        from repro.serve import requests_from_list

        for bad in ([], {"digest": "d"}, [42], [{"type": "query"}]):
            with pytest.raises(ValueError):
                requests_from_list(bad)


class TestMmapService:
    def test_mmap_service_matches_eager(self, tmp_path, artifacts):
        from repro.serve import ArtifactStore

        store = ArtifactStore(tmp_path, default_format="npy")
        for artifact in artifacts:
            store.save(artifact)
        eager = RemService(store, capacity=4)
        mapped = RemService(store, capacity=4, mmap=True)
        points = probe_points(artifacts[0].rem, n=16)
        for artifact in artifacts:
            np.testing.assert_allclose(
                mapped.handle(QueryRequest(artifact.digest, points)).values,
                eager.handle(QueryRequest(artifact.digest, points)).values,
                atol=1e-9,
            )


class TestFloat32Serving:
    def test_float32_artifact_served_within_tolerance(self, tmp_path, artifacts):
        from repro.serve import ArtifactStore

        store = ArtifactStore(tmp_path, default_format="npy")
        full = artifacts[0]
        half = full.astype("float32")
        store.save(half)
        service = RemService(store, capacity=2, mmap=True)
        points = probe_points(full.rem, n=32)
        served = service.handle(QueryRequest(half.digest, points)).values
        np.testing.assert_allclose(
            served, full.rem.query_many(points), atol=1e-3
        )


class TestLru:
    def test_capacity_bound_and_eviction(self, service, artifacts):
        point = [[1.0, 1.0, 1.0]]
        for artifact in artifacts:  # 3 artifacts through a capacity-2 LRU
            service.handle(QueryRequest(artifact.digest, point))
        info = service.cache_info()
        assert info["size"] == 2
        assert info["peak_size"] <= 2
        assert info["evictions"] == 1

    def test_hits_do_not_reload(self, service, artifacts):
        point = [[0.5, 0.5, 0.5]]
        digest = artifacts[0].digest
        service.handle(QueryRequest(digest, point))
        misses = service.cache_info()["misses"]
        service.handle(QueryRequest(digest, point))
        info = service.cache_info()
        assert info["misses"] == misses
        assert info["hits"] >= 1

    def test_unknown_digest_raises(self, service):
        with pytest.raises(KeyError):
            service.handle(QueryRequest("0" * 64, [[0, 0, 0]]))

    def test_capacity_must_be_positive(self, seeded_store):
        with pytest.raises(ValueError):
            RemService(seeded_store, capacity=0)

    def test_submit_does_not_retain_the_build_state(self, tmp_path, tiny_spec):
        # A long-lived server must not pin one whole ToolchainResult
        # (campaign log, fitted predictor, ...) per cached artifact.
        from repro.serve import ArtifactStore

        service = RemService(ArtifactStore(tmp_path), capacity=2)
        built = service.submit(tiny_spec)
        assert built.result is not None  # the caller still gets it
        assert service.artifact(built.digest).result is None


class TestRequestValidation:
    def test_negative_max_points_rejected(self):
        with pytest.raises(ValueError, match="max_points"):
            DarkRegionsRequest("d" * 64, -60.0, max_points=-1)

    def test_negative_max_points_rejected_from_wire(self):
        with pytest.raises(ValueError, match="max_points"):
            request_from_dict(
                "d" * 64,
                {"type": "dark_regions", "threshold_dbm": -60.0, "max_points": -1},
            )


class TestWireFormat:
    def test_request_from_dict_dispatch(self):
        request = request_from_dict(
            "d" * 64, {"type": "coverage", "threshold_dbm": -70.0}
        )
        assert isinstance(request, CoverageRequest)
        assert request.digest == "d" * 64

    def test_default_type_is_query(self):
        request = request_from_dict("d" * 64, {"points": [[0, 0, 0]]})
        assert isinstance(request, QueryRequest)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown request type"):
            request_from_dict("d" * 64, {"type": "teleport"})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="bad 'query' request"):
            request_from_dict("d" * 64, {"type": "query", "warp": 1})

    def test_responses_serialize_to_json_types(self, service, artifacts):
        import json

        artifact = artifacts[0]
        points = [[1.0, 1.0, 1.0]]
        for request in (
            QueryRequest(artifact.digest, points),
            StrongestApRequest(artifact.digest, points),
            CoverageRequest(artifact.digest, -70.0),
            DarkRegionsRequest(artifact.digest, -55.0, max_points=3),
        ):
            payload = service.handle(request).to_dict()
            json.dumps(payload)  # must not raise

    def test_to_json_matches_to_dict(self, service, artifacts):
        # The fast wire serializer may differ from to_dict only by the
        # fixed-point value formatting, which stays inside the 1e-9 pin.
        import json

        artifact = artifacts[0]
        points = probe_points(artifact.rem, n=6)
        for request in (
            QueryRequest(artifact.digest, points),
            StrongestApRequest(artifact.digest, points),
            CoverageRequest(artifact.digest, -70.0),
            DarkRegionsRequest(artifact.digest, -55.0, max_points=3),
        ):
            response = service.handle(request)
            wire = json.loads(response.to_json())
            reference = response.to_dict()
            if "values" in wire:
                np.testing.assert_allclose(
                    np.asarray(wire.pop("values")),
                    np.asarray(reference.pop("values")),
                    atol=1e-9,
                )
            assert wire == reference

    def test_query_to_json_edge_shapes(self):
        # Zero-point and non-finite payloads must stay parseable JSON.
        import json

        from repro.serve.service import QueryResponse

        empty = QueryResponse(digest="d" * 64, macs=["a"], values=np.empty((0, 1)))
        assert json.loads(empty.to_json())["values"] == []
        weird = QueryResponse(
            digest="d" * 64, macs=["a"], values=np.array([[np.nan]])
        )
        parsed = json.loads(weird.to_json())  # stdlib fallback path
        assert np.isnan(parsed["values"][0][0])
