"""RemService: served answers ≡ direct REM calls, LRU behavior."""

import numpy as np
import pytest

from repro.serve import (
    CoverageRequest,
    DarkRegionsRequest,
    QueryRequest,
    RemService,
    StrongestApRequest,
    request_from_dict,
)


@pytest.fixture()
def service(seeded_store):
    return RemService(seeded_store, capacity=2)


def probe_points(rem, n=40, seed=3):
    """Random probe points spanning (and slightly exceeding) the volume."""
    rng = np.random.default_rng(seed)
    lo = np.asarray(rem.grid.volume.min_corner) - 0.2
    hi = np.asarray(rem.grid.volume.max_corner) + 0.2
    return rng.uniform(lo, hi, size=(n, 3))


class TestEquivalence:
    def test_query_matches_direct(self, service, artifacts):
        artifact = artifacts[0]
        points = probe_points(artifact.rem)
        response = service.handle(QueryRequest(artifact.digest, points))
        direct = artifact.rem.query_many(points)
        assert response.macs == list(artifact.rem.macs)
        np.testing.assert_allclose(response.values, direct, atol=1e-9)

    def test_query_mac_subset(self, service, artifacts):
        artifact = artifacts[0]
        macs = list(artifact.rem.macs[:2])
        points = probe_points(artifact.rem, n=7)
        response = service.handle(QueryRequest(artifact.digest, points, macs))
        np.testing.assert_allclose(
            response.values, artifact.rem.query_many(points, macs), atol=1e-9
        )

    def test_strongest_ap_matches_direct(self, service, artifacts):
        artifact = artifacts[1]
        points = probe_points(artifact.rem)
        response = service.handle(StrongestApRequest(artifact.digest, points))
        macs, rss = artifact.rem.strongest_ap_many(points)
        assert response.macs == macs
        np.testing.assert_allclose(response.rss_dbm, rss, atol=1e-9)

    def test_coverage_matches_direct(self, service, artifacts):
        artifact = artifacts[2]
        response = service.handle(CoverageRequest(artifact.digest, -70.0))
        assert response.by_mac == artifact.rem.coverage_by_mac(-70.0)
        assert response.dark_fraction == artifact.rem.dark_fraction(-70.0)

    def test_dark_regions_matches_direct(self, service, artifacts):
        artifact = artifacts[0]
        response = service.handle(DarkRegionsRequest(artifact.digest, -55.0))
        np.testing.assert_array_equal(
            response.points, artifact.rem.dark_points(-55.0)
        )
        assert not response.truncated

    def test_dark_regions_truncation(self, service, artifacts):
        artifact = artifacts[0]
        full = artifact.rem.dark_points(-55.0)
        if len(full) < 2:
            pytest.skip("synthetic map has no dark region to truncate")
        response = service.handle(
            DarkRegionsRequest(artifact.digest, -55.0, max_points=1)
        )
        assert response.truncated
        assert len(response.points) == 1
        # The exact fraction is preserved even when points are capped.
        assert response.dark_fraction == artifact.rem.dark_fraction(-55.0)


class TestLru:
    def test_capacity_bound_and_eviction(self, service, artifacts):
        point = [[1.0, 1.0, 1.0]]
        for artifact in artifacts:  # 3 artifacts through a capacity-2 LRU
            service.handle(QueryRequest(artifact.digest, point))
        info = service.cache_info()
        assert info["size"] == 2
        assert info["peak_size"] <= 2
        assert info["evictions"] == 1

    def test_hits_do_not_reload(self, service, artifacts):
        point = [[0.5, 0.5, 0.5]]
        digest = artifacts[0].digest
        service.handle(QueryRequest(digest, point))
        misses = service.cache_info()["misses"]
        service.handle(QueryRequest(digest, point))
        info = service.cache_info()
        assert info["misses"] == misses
        assert info["hits"] >= 1

    def test_unknown_digest_raises(self, service):
        with pytest.raises(KeyError):
            service.handle(QueryRequest("0" * 64, [[0, 0, 0]]))

    def test_capacity_must_be_positive(self, seeded_store):
        with pytest.raises(ValueError):
            RemService(seeded_store, capacity=0)

    def test_submit_does_not_retain_the_build_state(self, tmp_path, tiny_spec):
        # A long-lived server must not pin one whole ToolchainResult
        # (campaign log, fitted predictor, ...) per cached artifact.
        from repro.serve import ArtifactStore

        service = RemService(ArtifactStore(tmp_path), capacity=2)
        built = service.submit(tiny_spec)
        assert built.result is not None  # the caller still gets it
        assert service.artifact(built.digest).result is None


class TestRequestValidation:
    def test_negative_max_points_rejected(self):
        with pytest.raises(ValueError, match="max_points"):
            DarkRegionsRequest("d" * 64, -60.0, max_points=-1)

    def test_negative_max_points_rejected_from_wire(self):
        with pytest.raises(ValueError, match="max_points"):
            request_from_dict(
                "d" * 64,
                {"type": "dark_regions", "threshold_dbm": -60.0, "max_points": -1},
            )


class TestWireFormat:
    def test_request_from_dict_dispatch(self):
        request = request_from_dict(
            "d" * 64, {"type": "coverage", "threshold_dbm": -70.0}
        )
        assert isinstance(request, CoverageRequest)
        assert request.digest == "d" * 64

    def test_default_type_is_query(self):
        request = request_from_dict("d" * 64, {"points": [[0, 0, 0]]})
        assert isinstance(request, QueryRequest)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown request type"):
            request_from_dict("d" * 64, {"type": "teleport"})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="bad 'query' request"):
            request_from_dict("d" * 64, {"type": "query", "warp": 1})

    def test_responses_serialize_to_json_types(self, service, artifacts):
        import json

        artifact = artifacts[0]
        points = [[1.0, 1.0, 1.0]]
        for request in (
            QueryRequest(artifact.digest, points),
            StrongestApRequest(artifact.digest, points),
            CoverageRequest(artifact.digest, -70.0),
            DarkRegionsRequest(artifact.digest, -55.0, max_points=3),
        ):
            payload = service.handle(request).to_dict()
            json.dumps(payload)  # must not raise
