"""ArtifactStore: content-addressed persistence of REM artifacts."""

import numpy as np
import pytest

from repro.serve import ArtifactStore

from tests.serve.conftest import make_artifact


class TestSaveLoad:
    def test_round_trip_is_exact(self, tmp_path):
        artifact = make_artifact(seed=5)
        store = ArtifactStore(tmp_path)
        store.save(artifact)
        loaded = store.load(artifact.digest)
        assert loaded.spec == artifact.spec
        assert loaded.provenance == artifact.provenance
        np.testing.assert_array_equal(
            loaded.rem.field_tensor(), artifact.rem.field_tensor()
        )
        np.testing.assert_array_equal(
            loaded.uncertainty.field_tensor(),
            artifact.uncertainty.field_tensor(),
        )
        assert loaded.rem.macs == artifact.rem.macs
        assert loaded.rem.mac_vocabulary == artifact.rem.mac_vocabulary
        assert loaded.content_hash() == artifact.content_hash()

    def test_loaded_artifact_has_no_live_result(self, seeded_store, artifacts):
        loaded = seeded_store.load(artifacts[0].digest)
        assert loaded.result is None
        assert not loaded.cache_hit

    def test_uncertainty_free_artifact_round_trips(self, tmp_path):
        artifact = make_artifact(seed=6)
        artifact.uncertainty = None
        store = ArtifactStore(tmp_path)
        store.save(artifact)
        loaded = store.load(artifact.digest)
        assert loaded.uncertainty is None
        assert loaded.content_hash() == artifact.content_hash()

    def test_get_is_load(self, seeded_store, artifacts):
        digest = artifacts[1].digest
        assert (
            seeded_store.get(digest).content_hash()
            == seeded_store.load(digest).content_hash()
        )

    def test_missing_digest_raises_keyerror(self, seeded_store):
        with pytest.raises(KeyError):
            seeded_store.load("0" * 64)

    def test_contains(self, seeded_store, artifacts):
        assert artifacts[0].digest in seeded_store
        assert "0" * 64 not in seeded_store


class TestListing:
    def test_list_matches_digests(self, seeded_store, artifacts):
        records = seeded_store.list()
        assert [r["digest"] for r in records] == seeded_store.digests()
        assert len(records) == len(artifacts)
        assert {r["digest"] for r in records} == {a.digest for a in artifacts}

    def test_records_carry_spec_and_provenance(self, seeded_store):
        record = seeded_store.list()[0]
        assert record["spec"]["scenario"] == "condo"
        assert "content_hash" in record
        assert record["provenance"]["samples"] == 120

    def test_resave_is_noop(self, tmp_path):
        artifact = make_artifact(seed=7)
        store = ArtifactStore(tmp_path)
        first = store.save(artifact)
        stamp = first.stat().st_mtime_ns
        assert store.save(artifact) == first
        assert first.stat().st_mtime_ns == stamp  # untouched, not rewritten
