"""RemCluster: worker lifecycle, graceful drain, cluster ≡ single-process."""

import json
import os
import signal
import socket
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.serve import ArtifactStore, RemCluster, RemService, process_rss_bytes

from tests.serve.conftest import make_artifact

HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")

#: Forks whole HTTP worker processes; run via `pytest -m slow`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def cluster_store(tmp_path_factory):
    """A store with two mmap-able artifacts for cluster workers."""
    store = ArtifactStore(tmp_path_factory.mktemp("cluster-store"), "npy")
    artifacts = [make_artifact(seed) for seed in (71, 72)]
    for artifact in artifacts:
        store.save(artifact)
    return store, artifacts


def get_json(address, path, timeout=10):
    host, port = address
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=timeout
    ) as resp:
        return resp.status, json.load(resp)


def post_json(address, path, payload, timeout=30):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.load(resp)


def wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.mark.parametrize(
    "reuse_port",
    [
        pytest.param(
            True,
            id="reuseport",
            marks=pytest.mark.skipif(
                not HAS_REUSEPORT, reason="no SO_REUSEPORT"
            ),
        ),
        pytest.param(False, id="inherited-listener"),
    ],
)
class TestLifecycle:
    def test_graceful_sigterm_drain_exits_zero(self, cluster_store, reuse_port):
        store, artifacts = cluster_store
        cluster = RemCluster(store.root, workers=2, reuse_port=reuse_port)
        cluster.start()
        try:
            assert len(cluster.worker_pids()) == 2
            status, payload = get_json(cluster.address, "/healthz")
            assert status == 200
            assert payload["artifacts"] == len(artifacts)
        finally:
            exit_codes = cluster.stop(graceful=True)
        # SIGTERM -> drain -> clean exit for every worker.
        assert exit_codes == [0, 0]

    def test_dead_worker_is_respawned(self, cluster_store, reuse_port):
        store, _ = cluster_store
        with RemCluster(store.root, workers=2, reuse_port=reuse_port) as cluster:
            before = set(cluster.worker_pids())
            victim = sorted(before)[0]
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: cluster.respawns >= 1
                and len(cluster.worker_pids()) == 2
                and victim not in cluster.worker_pids()
            )
            # The replacement serves traffic like any other worker.
            status, payload = get_json(cluster.address, "/healthz")
            assert status == 200 and payload["status"] == "ok"

    def test_concurrent_mixed_traffic_matches_single_process(
        self, cluster_store, reuse_port
    ):
        store, artifacts = cluster_store
        single = RemService(store, capacity=4)
        rng = np.random.default_rng(9)
        points = rng.uniform((0, 0, 0), (4, 3, 2), size=(8, 3)).tolist()
        requests = []
        for artifact in artifacts:
            requests.append(
                ("query", {"type": "query", "points": points}, artifact)
            )
            requests.append(
                ("coverage", {"type": "coverage", "threshold_dbm": -70.0}, artifact)
            )
            requests.append(
                ("strongest_ap", {"type": "strongest_ap", "points": points}, artifact)
            )
        with RemCluster(store.root, workers=2, reuse_port=reuse_port) as cluster:
            results = [None] * (len(requests) * 4)
            errors = []

            def drive(slot, kind, payload, artifact):
                # One retry absorbs transient connect/reset hiccups on a
                # loaded box; the equivalence assertions stay strict.
                for attempt in (0, 1):
                    try:
                        results[slot] = post_json(
                            cluster.address,
                            f"/v1/artifacts/{artifact.digest}/query",
                            payload,
                        )
                        return
                    except Exception as exc:  # noqa: BLE001 - asserted below
                        if attempt:
                            errors.append(exc)
                        else:
                            time.sleep(0.2)

            threads = [
                threading.Thread(
                    target=drive, args=(i, *requests[i % len(requests)])
                )
                for i in range(len(results))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            from repro.serve.service import request_from_dict

            for slot, (status, served) in enumerate(results):
                kind, payload, artifact = requests[slot % len(requests)]
                assert status == 200
                expected = single.handle(
                    request_from_dict(artifact.digest, payload)
                ).to_dict()
                if kind == "query":
                    np.testing.assert_allclose(
                        np.asarray(served["values"]),
                        np.asarray(expected["values"]),
                        atol=1e-9,
                    )
                    assert served["macs"] == expected["macs"]
                else:
                    assert served == expected


class TestSupervisor:
    def test_requires_at_least_one_worker(self, cluster_store):
        store, _ = cluster_store
        with pytest.raises(ValueError):
            RemCluster(store.root, workers=0)

    def test_double_start_rejected(self, cluster_store):
        store, _ = cluster_store
        with RemCluster(store.root, workers=1, reuse_port=False) as cluster:
            with pytest.raises(RuntimeError):
                cluster.start()

    def test_worker_rss_is_reported(self, cluster_store):
        store, _ = cluster_store
        if process_rss_bytes() is None:
            pytest.skip("no /proc on this platform")
        with RemCluster(store.root, workers=1, reuse_port=False) as cluster:
            rss = cluster.worker_rss()
            assert len(rss) == 1
            assert all(value > 0 for value in rss.values())

    def test_batch_endpoint_through_cluster(self, cluster_store):
        store, artifacts = cluster_store
        single = RemService(store, capacity=4)
        from repro.serve.service import requests_from_list

        body = [
            {"digest": artifacts[0].digest, "type": "coverage", "threshold_dbm": -65.0},
            {"digest": artifacts[1].digest, "type": "dark_regions", "threshold_dbm": -60.0},
        ]
        expected = [
            r.to_dict() for r in single.handle_many(requests_from_list(body))
        ]
        with RemCluster(store.root, workers=2, reuse_port=False) as cluster:
            status, payload = post_json(cluster.address, "/v1/batch", body)
        assert status == 200
        assert payload["responses"] == expected
