"""Hammer RemService from many threads: answers and LRU must hold.

The satellite contract: mixed query/coverage/strongest-AP traffic over
multiple artifacts, driven through a ``ThreadPoolExecutor``, must
return bit-identical answers to a single-threaded replay, and the LRU
must never exceed its capacity.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.serve import (
    CoverageRequest,
    DarkRegionsRequest,
    QueryRequest,
    RemService,
    StrongestApRequest,
)


def build_workload(artifacts, repeats=6):
    """A deterministic mixed request stream across all artifacts."""
    rng = np.random.default_rng(17)
    requests = []
    for repeat in range(repeats):
        for artifact in artifacts:
            lo = np.asarray(artifact.rem.grid.volume.min_corner) - 0.1
            hi = np.asarray(artifact.rem.grid.volume.max_corner) + 0.1
            points = rng.uniform(lo, hi, size=(8, 3)).tolist()
            requests.append(QueryRequest(artifact.digest, points))
            requests.append(StrongestApRequest(artifact.digest, points))
            requests.append(
                CoverageRequest(artifact.digest, -75.0 + 2.0 * repeat)
            )
            requests.append(
                DarkRegionsRequest(artifact.digest, -60.0, max_points=10)
            )
    return requests


def freeze(response):
    """A comparable snapshot of any response dataclass."""
    payload = response.to_dict()
    return {
        key: tuple(map(tuple, value))
        if key in ("values", "points")
        else (tuple(sorted(value.items())) if isinstance(value, dict) else value)
        for key, value in payload.items()
    }


def test_concurrent_answers_match_single_threaded(seeded_store, artifacts):
    requests = build_workload(artifacts)

    # Ground truth: a fresh single-threaded service.
    reference = RemService(seeded_store, capacity=2)
    expected = [freeze(reference.handle(r)) for r in requests]

    hammered = RemService(seeded_store, capacity=2)
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [pool.submit(hammered.handle, r) for r in requests]
        answers = [freeze(f.result()) for f in futures]

    assert answers == expected

    info = hammered.cache_info()
    assert info["size"] <= 2
    assert info["peak_size"] <= 2  # the LRU never overflowed
    assert info["hits"] + info["misses"] == len(requests)


def test_concurrent_traffic_on_one_artifact_is_consistent(
    seeded_store, artifacts
):
    artifact = artifacts[0]
    points = [[1.0, 1.5, 0.5], [3.9, 2.9, 1.9]]
    service = RemService(seeded_store, capacity=1)
    direct = artifact.rem.query_many(points)

    def roundtrip(_):
        return service.handle(QueryRequest(artifact.digest, points)).values

    with ThreadPoolExecutor(max_workers=6) as pool:
        for values in pool.map(roundtrip, range(48)):
            np.testing.assert_allclose(values, direct, atol=1e-9)
