"""RemJobSpec: JSON round-trips, digests, config adapters."""

import json

import pytest

from repro.core.pipeline import ToolchainConfig
from repro.core.predictors import KnnRegressor
from repro.core.preprocessing import PreprocessConfig
from repro.serve import RemJobSpec
from repro.station import ActiveSamplingConfig, CampaignConfig
from repro.uav.firmware import FirmwareConfig


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = RemJobSpec(
            scenario="office",
            seed=9,
            acquisition="active",
            active={"budget_waypoints": 24, "seed_waypoints": 8},
            tune=False,
            predictor="idw",
            hyperparameters={"power": 2.0},
            resolution_m=0.5,
        )
        again = RemJobSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_generated_scenario_names_are_legal(self):
        spec = RemJobSpec(scenario="generated:room-grid?floors=2&seed=5")
        assert RemJobSpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job-spec field"):
            RemJobSpec.from_dict({"scenrio": "condo"})

    def test_non_object_json_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            RemJobSpec.from_json("[1, 2]")


class TestDigest:
    def test_equal_specs_equal_digests(self):
        a = RemJobSpec(seed=5, tune=False)
        b = RemJobSpec(seed=5, tune=False)
        assert a.digest() == b.digest()

    def test_seed_changes_digest(self):
        assert RemJobSpec(seed=5).digest() != RemJobSpec(seed=6).digest()

    def test_active_none_and_empty_mean_the_same_job(self):
        # None, {}, and the defaults spelled out all run the identical
        # campaign, so they must share one content address.
        a = RemJobSpec(acquisition="active", active=None)
        b = RemJobSpec(acquisition="active", active={})
        c = RemJobSpec(acquisition="active", active={"batch_size": 6})
        assert a.digest() == b.digest() == c.digest()

    def test_numeric_spellings_normalize(self):
        # JSON clients routinely send 48.0 for 48; same job, same digest.
        a = RemJobSpec(acquisition="active", active={"budget_waypoints": 48})
        b = RemJobSpec(
            acquisition="active", active={"budget_waypoints": 48.0}
        )
        assert a.digest() == b.digest()
        assert RemJobSpec(seed=7).digest() == RemJobSpec(seed=7.0).digest()

    def test_partial_active_dict_canonicalizes(self):
        # Spelling out a default must not change the digest.
        a = RemJobSpec(acquisition="active", active={"budget_waypoints": 72})
        b = RemJobSpec(
            acquisition="active",
            active={"budget_waypoints": 72, "batch_size": 6},
        )
        assert a.digest() == b.digest()
        assert a.active == b.active

    def test_canonical_json_is_sorted_and_minimal(self):
        data = json.loads(RemJobSpec().canonical_json())
        assert list(data) == sorted(data)


class TestValidation:
    def test_bad_acquisition(self):
        with pytest.raises(ValueError, match="acquisition"):
            RemJobSpec(acquisition="psychic")

    def test_unknown_scenario_rejected_at_spec_time(self):
        # A typo'd scenario must be a spec error at the API boundary,
        # not a traceback from the middle of a job.
        with pytest.raises(ValueError, match="unknown scenario"):
            RemJobSpec(scenario="nope")

    def test_bad_predictor(self):
        with pytest.raises(ValueError, match="predictor"):
            RemJobSpec(predictor="oracle")

    def test_tune_requires_plain_knn(self):
        with pytest.raises(ValueError, match="tune"):
            RemJobSpec(predictor="idw", tune=True)
        with pytest.raises(ValueError, match="tune"):
            RemJobSpec(hyperparameters={"n_neighbors": 3}, tune=True)

    def test_active_dict_requires_active_acquisition(self):
        with pytest.raises(ValueError, match="acquisition='active'"):
            RemJobSpec(active={"budget_waypoints": 10})

    def test_unknown_active_key_rejected(self):
        with pytest.raises(ValueError, match="active-sampling job field"):
            RemJobSpec(acquisition="active", active={"warp_drive": 1})

    def test_non_json_hyperparameter_rejected(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            RemJobSpec(
                predictor="knn",
                tune=False,
                hyperparameters={"weights": object()},
            )


class TestConfigAdapters:
    def test_toolchain_config_round_trip(self):
        spec = RemJobSpec(
            scenario="warehouse",
            seed=17,
            acquisition="active",
            active={"budget_waypoints": 30},
            tune=False,
            min_samples_per_mac=4,
            resolution_m=0.5,
        )
        config = spec.toolchain_config()
        assert config.campaign.scenario == "warehouse"
        assert config.campaign.seed == 17
        assert config.campaign.acquisition == "active"
        assert config.campaign.active.budget_waypoints == 30
        assert config.preprocess.min_samples_per_mac == 4
        assert config.rem_resolution_m == 0.5
        assert not config.tune_hyperparameters
        again = RemJobSpec.from_toolchain_config(config, with_uncertainty=True)
        assert again == spec

    def test_default_toolchain_config_is_representable(self):
        spec = RemJobSpec.from_toolchain_config(ToolchainConfig())
        assert spec is not None
        assert spec.toolchain_config() == ToolchainConfig()

    def test_custom_firmware_is_not_representable(self):
        config = ToolchainConfig(
            campaign=CampaignConfig(firmware=FirmwareConfig.stock_2021_06())
        )
        assert RemJobSpec.from_toolchain_config(config) is None

    def test_predictor_factory_is_not_representable(self):
        config = ToolchainConfig(
            campaign=CampaignConfig(
                acquisition="active",
                active=ActiveSamplingConfig(predictor_factory=KnnRegressor),
            )
        )
        assert RemJobSpec.from_toolchain_config(config) is None

    def test_preprocess_knobs_travel_through(self):
        config = ToolchainConfig(
            preprocess=PreprocessConfig(min_samples_per_mac=3, split_seed=99)
        )
        spec = RemJobSpec.from_toolchain_config(config)
        assert spec.min_samples_per_mac == 3
        assert spec.split_seed == 99

    def test_build_predictor_defaults_to_pipeline_choice(self):
        assert RemJobSpec().build_predictor() is None

    def test_build_predictor_applies_hyperparameters(self):
        spec = RemJobSpec(
            predictor="knn", tune=False, hyperparameters={"n_neighbors": 7}
        )
        predictor = spec.build_predictor()
        assert isinstance(predictor, KnnRegressor)
        assert predictor.n_neighbors == 7


class TestFleetFields:
    def test_round_trip_preserves_fleet_and_digest(self):
        spec = RemJobSpec(
            acquisition="fleet",
            fleet={"n_drones": 3, "min_separation_m": 1.0},
            active={"budget_waypoints": 24},
            tune=False,
        )
        again = RemJobSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_fleet_none_and_empty_mean_the_same_job(self):
        # None, {}, and the defaults spelled out all fly the identical
        # fleet, so they must share one content address.
        a = RemJobSpec(acquisition="fleet", fleet=None)
        b = RemJobSpec(acquisition="fleet", fleet={})
        c = RemJobSpec(acquisition="fleet", fleet={"n_drones": 2})
        assert a.digest() == b.digest() == c.digest()
        # Canonicalization spells every fleet field out.
        assert a.fleet == {
            "n_drones": 2,
            "min_separation_m": 0.5,
            "charging_slots": 1,
            "charge_time_s": 0.0,
            "batteries": None,
        }
        # ... and the shared active tunables too.
        assert a.active is not None

    def test_fleet_numeric_spellings_normalize(self):
        a = RemJobSpec(acquisition="fleet", fleet={"n_drones": 4})
        b = RemJobSpec(acquisition="fleet", fleet={"n_drones": 4.0})
        assert a.digest() == b.digest()

    def test_default_batteries_spelled_out_canonicalize(self):
        # One default pack per drone is the same fleet as no batteries.
        pack = {
            "capacity_mah": 250.0,
            "hover_current_ma": 2080.0,
            "translate_extra_ma": 260.0,
            "erratic_reserve_fraction": 0.04,
        }
        a = RemJobSpec(acquisition="fleet", fleet={"batteries": [pack, pack]})
        b = RemJobSpec(acquisition="fleet", fleet=None)
        assert a.digest() == b.digest()

    def test_custom_batteries_change_the_digest(self):
        weak = {"capacity_mah": 120.0}
        a = RemJobSpec(
            acquisition="fleet", fleet={"batteries": [weak, weak]}
        )
        b = RemJobSpec(acquisition="fleet", fleet=None)
        assert a.digest() != b.digest()
        assert RemJobSpec.from_json(a.to_json()) == a

    def test_fleet_dict_requires_fleet_acquisition(self):
        with pytest.raises(ValueError, match="acquisition='fleet'"):
            RemJobSpec(acquisition="active", fleet={"n_drones": 2})
        with pytest.raises(ValueError, match="acquisition='fleet'"):
            RemJobSpec(fleet={"n_drones": 2})

    def test_active_dict_allowed_with_fleet_acquisition(self):
        spec = RemJobSpec(
            acquisition="fleet", active={"budget_waypoints": 18}
        )
        assert spec.active["budget_waypoints"] == 18

    def test_unknown_fleet_key_rejected(self):
        with pytest.raises(ValueError, match="fleet job field"):
            RemJobSpec(acquisition="fleet", fleet={"warp_drive": 1})

    def test_fleet_toolchain_config_round_trip(self):
        spec = RemJobSpec(
            acquisition="fleet",
            fleet={"n_drones": 3},
            active={"budget_waypoints": 30},
            tune=False,
        )
        config = spec.toolchain_config()
        assert config.campaign.acquisition == "fleet"
        assert config.campaign.fleet.n_drones == 3
        assert config.campaign.active.budget_waypoints == 30
        again = RemJobSpec.from_toolchain_config(config, with_uncertainty=True)
        assert again == spec
