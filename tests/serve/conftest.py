"""Shared fixtures for the serving-layer tests.

Synthetic artifacts are built directly from a random dataset (no
campaign flight) so service/store/HTTP tests stay fast; the job-facade
tests that need a real build use the session-scoped ``tiny_spec``
(a 6-waypoint active campaign, ~1 s).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import REMDataset
from repro.core.predictors import KnnRegressor
from repro.core.rem import build_rem, build_uncertainty_rem
from repro.radio.geometry import Cuboid
from repro.serve import ArtifactStore, RemArtifact, RemJobSpec

VOLUME = Cuboid((0.0, 0.0, 0.0), (4.0, 3.0, 2.0))


def make_artifact(seed: int, n_macs: int = 3, n_samples: int = 120) -> RemArtifact:
    """A deterministic synthetic artifact keyed (digested) by ``seed``."""
    rng = np.random.default_rng(seed)
    vocabulary = tuple(f"aa:bb:cc:00:00:{i:02x}" for i in range(n_macs))
    positions = rng.uniform(
        VOLUME.min_corner, VOLUME.max_corner, size=(n_samples, 3)
    )
    dataset = REMDataset(
        positions=positions,
        mac_indices=rng.integers(0, n_macs, size=n_samples),
        channels=np.full(n_samples, 6),
        rssi_dbm=rng.uniform(-90.0, -40.0, size=n_samples),
        mac_vocabulary=vocabulary,
    )
    predictor = KnnRegressor(
        n_neighbors=4, weights="distance", p=2.0, onehot_scale=3.0
    ).fit(dataset)
    rem = build_rem(predictor, dataset, VOLUME, resolution_m=0.5)
    uncertainty = build_uncertainty_rem(predictor, dataset, VOLUME, resolution_m=0.5)
    spec = RemJobSpec(
        seed=seed,
        tune=False,
        hyperparameters={"n_neighbors": 4, "onehot_scale": 3.0},
        resolution_m=0.5,
    )
    return RemArtifact(
        spec=spec,
        rem=rem,
        uncertainty=uncertainty,
        provenance={"seed": seed, "samples": n_samples, "test_rmse_dbm": 1.0},
    )


@pytest.fixture(scope="session")
def artifacts():
    """Three distinct synthetic artifacts (distinct digests)."""
    return [make_artifact(seed) for seed in (11, 22, 33)]


@pytest.fixture(scope="session")
def seeded_store(tmp_path_factory, artifacts):
    """A session store pre-populated with the synthetic artifacts."""
    store = ArtifactStore(tmp_path_factory.mktemp("artifact-store"))
    for artifact in artifacts:
        store.save(artifact)
    return store


@pytest.fixture(scope="session")
def tiny_spec():
    """The smallest real job: a 6-waypoint active campaign."""
    return RemJobSpec(
        acquisition="active",
        active={"seed_waypoints": 6, "batch_size": 6, "budget_waypoints": 6},
        tune=False,
        min_samples_per_mac=2,
        resolution_m=0.8,
    )
