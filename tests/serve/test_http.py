"""The JSON/HTTP front end: routes, payloads, errors, job submission."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ArtifactStore, RemService, create_server


@pytest.fixture(scope="module")
def http_store(tmp_path_factory, artifacts):
    """A module-private store (job POSTs below mutate it)."""
    store = ArtifactStore(tmp_path_factory.mktemp("http-store"))
    for artifact in artifacts:
        store.save(artifact)
    return store


@pytest.fixture(scope="module")
def server(http_store):
    """A live server on an ephemeral port, torn down after the module."""
    service = RemService(http_store, capacity=2)
    httpd = create_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def error_envelope(excinfo):
    """Parse the `{"error": {"code", "message"}}` body of an HTTPError."""
    payload = json.loads(excinfo.value.read())
    assert set(payload) == {"error"}
    assert set(payload["error"]) == {"code", "message"}
    return payload["error"]


def get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as resp:
        return resp.status, json.load(resp)


def post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.load(resp)


class TestRoutes:
    def test_healthz(self, server, artifacts):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["artifacts"] == len(artifacts)
        assert payload["cache"]["capacity"] == 2

    def test_list_artifacts(self, server, artifacts):
        status, payload = get(server, "/v1/artifacts")
        assert status == 200
        digests = {record["digest"] for record in payload["artifacts"]}
        assert digests == {a.digest for a in artifacts}

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v2/nothing")
        assert excinfo.value.code == 404
        error = error_envelope(excinfo)
        assert error["code"] == "not_found"
        assert "/v2/nothing" in error["message"]


class TestQueries:
    def test_query_equals_direct(self, server, artifacts):
        artifact = artifacts[0]
        points = [[1.0, 1.0, 1.0], [2.5, 0.5, 1.5]]
        status, payload = post(
            server,
            f"/v1/artifacts/{artifact.digest}/query",
            {"type": "query", "points": points},
        )
        assert status == 200
        direct = artifact.rem.query_many(points)
        np.testing.assert_allclose(
            np.asarray(payload["values"]), direct, atol=1e-9
        )
        assert payload["macs"] == list(artifact.rem.macs)

    def test_coverage_over_http(self, server, artifacts):
        artifact = artifacts[1]
        status, payload = post(
            server,
            f"/v1/artifacts/{artifact.digest}/query",
            {"type": "coverage", "threshold_dbm": -70.0},
        )
        assert status == 200
        assert payload["by_mac"] == artifact.rem.coverage_by_mac(-70.0)

    def test_unknown_digest_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(
                server,
                "/v1/artifacts/" + "0" * 64 + "/query",
                {"type": "query", "points": [[0, 0, 0]]},
            )
        assert excinfo.value.code == 404
        assert error_envelope(excinfo)["code"] == "not_found"

    def test_bad_request_type_422(self, server, artifacts):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(
                server,
                f"/v1/artifacts/{artifacts[0].digest}/query",
                {"type": "teleport"},
            )
        assert excinfo.value.code == 422
        error = error_envelope(excinfo)
        assert error["code"] == "invalid_spec"
        assert "teleport" in error["message"]

    def test_negative_max_points_422(self, server, artifacts):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(
                server,
                f"/v1/artifacts/{artifacts[0].digest}/query",
                {"type": "dark_regions", "threshold_dbm": -60.0, "max_points": -1},
            )
        assert excinfo.value.code == 422
        assert error_envelope(excinfo)["code"] == "invalid_spec"

    def test_unknown_scenario_spec_422(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/jobs", {"scenario": "nope"})
        assert excinfo.value.code == 422
        assert error_envelope(excinfo)["code"] == "invalid_spec"

    def test_empty_body_400(self, server, artifacts):
        request = urllib.request.Request(
            _url(server, f"/v1/artifacts/{artifacts[0].digest}/query"),
            data=b"",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        error = error_envelope(excinfo)
        assert error["code"] == "malformed_json"
        assert "empty" in error["message"]

    def test_undecodable_body_400(self, server, artifacts):
        request = urllib.request.Request(
            _url(server, f"/v1/artifacts/{artifacts[0].digest}/query"),
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert error_envelope(excinfo)["code"] == "malformed_json"


class TestBatch:
    def test_batch_mixed_requests_match_direct(self, server, artifacts):
        first, second = artifacts[0], artifacts[1]
        points = [[1.0, 1.0, 1.0], [2.5, 0.5, 1.5]]
        status, payload = post(
            server,
            "/v1/batch",
            [
                {"digest": first.digest, "type": "query", "points": points},
                {
                    "digest": second.digest,
                    "type": "coverage",
                    "threshold_dbm": -70.0,
                },
            ],
        )
        assert status == 200
        responses = payload["responses"]
        assert len(responses) == 2
        np.testing.assert_allclose(
            np.asarray(responses[0]["values"]),
            first.rem.query_many(points),
            atol=1e-9,
        )
        assert responses[1]["by_mac"] == second.rem.coverage_by_mac(-70.0)

    def test_batch_empty_array_422(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/batch", [])
        assert excinfo.value.code == 422
        assert error_envelope(excinfo)["code"] == "invalid_spec"

    def test_batch_item_without_digest_422(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/batch", [{"type": "coverage", "threshold_dbm": -70}])
        assert excinfo.value.code == 422
        assert error_envelope(excinfo)["code"] == "invalid_spec"

    def test_batch_unknown_digest_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(
                server,
                "/v1/batch",
                [{"digest": "0" * 64, "type": "query", "points": [[0, 0, 0]]}],
            )
        assert excinfo.value.code == 404
        assert error_envelope(excinfo)["code"] == "not_found"


class TestJobs:
    def test_post_job_builds_then_hits_cache(self, server, tiny_spec):
        status, first = post(server, "/v1/jobs", tiny_spec.to_dict())
        assert status == 201
        assert first["digest"] == tiny_spec.digest()
        assert first["cache_hit"] is False
        assert first["provenance"]["samples"] > 0

        # Re-submitting the same spec answers the stored artifact: a
        # plain 200, never a second 201 "created".
        status, second = post(server, "/v1/jobs", tiny_spec.to_dict())
        assert status == 200
        assert second["cache_hit"] is True
        assert second["content_hash"] == first["content_hash"]

    def test_bad_spec_422(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/jobs", {"acquisition": "psychic"})
        assert excinfo.value.code == 422
        error = error_envelope(excinfo)
        assert error["code"] == "invalid_spec"
        assert "psychic" in error["message"]
