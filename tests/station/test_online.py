"""Unit tests for the online REM builder."""

import numpy as np
import pytest

from repro.station.online import OnlineRemBuilder
from repro.wifi import ScanRecord


def scan_records(rng, macs, position, base=-70.0):
    records = []
    for i, mac in enumerate(macs):
        rssi = int(base - 2 * i - 3.0 * position[0] + rng.normal(0, 1.0))
        records.append(ScanRecord(ssid=f"net{i}", rssi_dbm=rssi, mac=mac, channel=6))
    return records


MACS = [f"aa:aa:aa:aa:aa:{i:02x}" for i in range(4)]


class TestIngestion:
    def test_refit_cadence(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=3, holdout_fraction=0.0)
        snapshots = []
        for i in range(9):
            position = (0.3 * i, 0.5, 1.0)
            snap = builder.add_scan(position, scan_records(rng, MACS, position))
            if snap is not None:
                snapshots.append(snap)
        assert len(snapshots) == 3
        assert snapshots[-1].scans_ingested == 9
        assert builder.ready

    def test_not_ready_before_first_refit(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=5, holdout_fraction=0.0)
        builder.add_scan((0, 0, 1), scan_records(rng, MACS, (0, 0, 1)))
        assert not builder.ready
        with pytest.raises(RuntimeError):
            builder.predict((0, 0, 1), MACS[0])

    def test_prediction_tracks_field(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=4, holdout_fraction=0.0)
        for i in range(16):
            position = (0.25 * i % 3.0, (i % 4) * 0.8, 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        near = builder.predict((0.2, 0.5, 1.0), MACS[0])
        far = builder.predict((2.8, 0.5, 1.0), MACS[0])
        # The synthetic field decays 3 dB per meter of x.
        assert near > far

    def test_unknown_mac_rejected(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=2, holdout_fraction=0.0)
        for i in range(4):
            builder.add_scan((float(i), 0, 1), scan_records(rng, MACS, (float(i), 0, 1)))
        with pytest.raises(KeyError):
            builder.predict((0, 0, 1), "ff:ff:ff:ff:ff:ff")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OnlineRemBuilder(refit_every_scans=0)
        with pytest.raises(ValueError):
            OnlineRemBuilder(holdout_fraction=1.0)


class TestConvergence:
    def test_holdout_rmse_improves_with_data(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=5, holdout_fraction=0.3, seed=7)
        for i in range(60):
            position = (3.0 * rng.random(), 2.5 * rng.random(), 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        scores = [s.holdout_rmse_dbm for s in builder.history if s.holdout_rmse_dbm]
        assert len(scores) >= 2
        # Later refits should be no worse than the first (within noise).
        assert scores[-1] <= scores[0] + 0.75

    def test_on_campaign_scans(self, campaign_result):
        """Replay the real campaign through the online builder."""
        by_scan = {}
        for s in campaign_result.log:
            key = (s.uav_name, s.waypoint_index)
            by_scan.setdefault(key, []).append(s)
        builder = OnlineRemBuilder(refit_every_scans=12, holdout_fraction=0.25, seed=3)
        for key in sorted(by_scan):
            samples = by_scan[key]
            records = [
                ScanRecord(ssid=s.ssid, rssi_dbm=s.rssi_dbm, mac=s.mac, channel=s.channel)
                for s in samples
            ]
            builder.add_scan(samples[0].position, records)
        assert builder.ready
        assert builder.scans_ingested == 72
        final = builder.history[-1]
        assert final.holdout_rmse_dbm is not None
        assert final.holdout_rmse_dbm < 6.5
