"""Unit tests for the online REM builder."""

import numpy as np
import pytest

from repro.station.online import OnlineRemBuilder
from repro.wifi import ScanRecord


def scan_records(rng, macs, position, base=-70.0):
    records = []
    for i, mac in enumerate(macs):
        rssi = int(base - 2 * i - 3.0 * position[0] + rng.normal(0, 1.0))
        records.append(ScanRecord(ssid=f"net{i}", rssi_dbm=rssi, mac=mac, channel=6))
    return records


MACS = [f"aa:aa:aa:aa:aa:{i:02x}" for i in range(4)]


class TestIngestion:
    def test_refit_cadence(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=3, holdout_fraction=0.0)
        snapshots = []
        for i in range(9):
            position = (0.3 * i, 0.5, 1.0)
            snap = builder.add_scan(position, scan_records(rng, MACS, position))
            if snap is not None:
                snapshots.append(snap)
        assert len(snapshots) == 3
        assert snapshots[-1].scans_ingested == 9
        assert builder.ready

    def test_not_ready_before_first_refit(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=5, holdout_fraction=0.0)
        builder.add_scan((0, 0, 1), scan_records(rng, MACS, (0, 0, 1)))
        assert not builder.ready
        with pytest.raises(RuntimeError):
            builder.predict((0, 0, 1), MACS[0])

    def test_prediction_tracks_field(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=4, holdout_fraction=0.0)
        for i in range(16):
            position = (0.25 * i % 3.0, (i % 4) * 0.8, 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        near = builder.predict((0.2, 0.5, 1.0), MACS[0])
        far = builder.predict((2.8, 0.5, 1.0), MACS[0])
        # The synthetic field decays 3 dB per meter of x.
        assert near > far

    def test_unknown_mac_rejected(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=2, holdout_fraction=0.0)
        for i in range(4):
            builder.add_scan(
                (float(i), 0, 1), scan_records(rng, MACS, (float(i), 0, 1))
            )
        with pytest.raises(KeyError):
            builder.predict((0, 0, 1), "ff:ff:ff:ff:ff:ff")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OnlineRemBuilder(refit_every_scans=0)
        with pytest.raises(ValueError):
            OnlineRemBuilder(holdout_fraction=1.0)


class TestEdgeCases:
    def test_empty_scans_count_toward_cadence_without_refitting(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=2, holdout_fraction=0.0)
        for _ in range(6):
            assert builder.add_scan((0.0, 0.0, 1.0), []) is None
        assert builder.scans_ingested == 6
        assert builder.samples_ingested == 0
        assert not builder.ready

    def test_empty_scan_completes_cadence_over_real_data(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=3, holdout_fraction=0.0)
        builder.add_scan((0.0, 0.0, 1.0), scan_records(rng, MACS, (0.0, 0.0, 1.0)))
        builder.add_scan((1.0, 0.0, 1.0), scan_records(rng, MACS, (1.0, 0.0, 1.0)))
        snap = builder.add_scan((2.0, 0.0, 1.0), [])
        assert snap is not None
        assert snap.scans_ingested == 3
        assert builder.ready

    def test_empty_scans_do_not_consume_holdout_draws(self, rng):
        """An RF-dark corner must not skew the later holdout split."""
        plain = OnlineRemBuilder(refit_every_scans=100, holdout_fraction=0.5, seed=11)
        interleaved = OnlineRemBuilder(
            refit_every_scans=100, holdout_fraction=0.5, seed=11
        )
        for i in range(10):
            position = (float(i), 0.0, 1.0)
            records = scan_records(rng, MACS, position)
            plain.add_scan(position, records)
            interleaved.add_scan((9.9, 9.9, 9.9), [])  # dark scan between
            interleaved.add_scan(position, records)
        assert len(plain._holdout_rows) == len(interleaved._holdout_rows)

    def test_refit_every_scan_cadence(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=1, holdout_fraction=0.0)
        for i in range(4):
            position = (float(i), 0.0, 1.0)
            snap = builder.add_scan(position, scan_records(rng, MACS, position))
            assert snap is not None
        assert len(builder.history) == 4

    def test_cadence_boundary_is_exact(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=5, holdout_fraction=0.0)
        refits = []
        for i in range(11):
            position = (float(i), 0.0, 1.0)
            snap = builder.add_scan(position, scan_records(rng, MACS, position))
            if snap is not None:
                refits.append(i + 1)
        assert refits == [5, 10]

    def test_refit_now_outside_cadence(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=50, holdout_fraction=0.0)
        position = (0.5, 0.5, 1.0)
        builder.add_scan(position, scan_records(rng, MACS, position))
        assert not builder.ready
        snap = builder.refit_now()
        assert snap is not None
        assert builder.ready
        assert snap.scans_ingested == 1

    def test_refit_now_without_data_returns_none(self):
        builder = OnlineRemBuilder()
        assert builder.refit_now() is None
        assert not builder.ready

    def test_snapshot_monotonicity(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=3, holdout_fraction=0.2, seed=2)
        for i in range(18):
            position = (0.3 * i, 0.2 * (i % 5), 1.0)
            macs = MACS[: 2 + (i % 3)]  # vocabulary grows over time
            builder.add_scan(position, scan_records(rng, macs, position))
        history = builder.history
        assert len(history) >= 3
        for field in ("scans_ingested", "samples_ingested", "distinct_macs"):
            values = [getattr(snap, field) for snap in history]
            assert values == sorted(values), f"{field} regressed"

    def test_dataset_includes_train_and_holdout(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=2, holdout_fraction=0.5, seed=9)
        for i in range(8):
            position = (float(i), 0.0, 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        dataset = builder.dataset()
        assert len(dataset) == builder.samples_ingested
        assert len(builder._holdout_rows) > 0  # split actually happened
        assert set(dataset.mac_vocabulary) == set(MACS)

    def test_uncertainty_requires_model(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=10)
        with pytest.raises(RuntimeError):
            builder.uncertainty([(0.0, 0.0, 1.0)])
        for i in range(10):
            position = (float(i), 0.0, 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        stds = builder.uncertainty([(0.0, 0.0, 1.0), (50.0, 50.0, 1.0)])
        assert stds.shape == (2,)
        assert stds[1] > stds[0]  # far from every sample => less certain


class TestHoldoutFold:
    def test_all_holdout_rows_fold_into_first_fit(self, rng):
        """Regression: every early draw landing in holdout used to leave
        refit_now() returning None while uncertainty() raised mid-campaign."""
        builder = OnlineRemBuilder(
            refit_every_scans=100, holdout_fraction=0.9, seed=0
        )
        for i in range(3):
            position = (float(i), 0.0, 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        # Engineer the failure mode directly: whatever the draws did,
        # force the samples-but-no-train state the unlucky RNG produces.
        builder._holdout_rows.extend(builder._train_rows)
        builder._train_rows.clear()
        builder._dataset_cache = None
        assert builder.samples_ingested > 0
        snap = builder.refit_now()
        assert snap is not None
        assert builder.ready
        stds = builder.uncertainty([(0.0, 0.0, 1.0)])  # used to raise
        assert stds.shape == (1,)
        # The folded rows train the model; holdout scoring is skipped
        # for this fit and resumes with later draws.
        assert snap.holdout_rmse_dbm is None
        assert len(builder._holdout_rows) == 0

    def test_refit_now_with_no_rows_still_returns_none(self):
        builder = OnlineRemBuilder(holdout_fraction=0.9)
        assert builder.refit_now() is None
        assert not builder.ready


class TestIncrementalRefit:
    def _replay(self, incremental, n=30, holdout=0.25):
        rng = np.random.default_rng(99)
        builder = OnlineRemBuilder(
            refit_every_scans=4,
            holdout_fraction=holdout,
            seed=13,
            incremental=incremental,
        )
        for i in range(n):
            position = (0.3 * i % 3.0, 0.2 * (i % 7), 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        return builder

    def test_incremental_equals_scratch(self):
        fast = self._replay(incremental=True)
        slow = self._replay(incremental=False)
        assert len(fast.history) == len(slow.history)
        for a, b in zip(fast.history, slow.history):
            if a.holdout_rmse_dbm is None:
                assert b.holdout_rmse_dbm is None
            else:
                assert a.holdout_rmse_dbm == pytest.approx(
                    b.holdout_rmse_dbm, abs=1e-9
                )
        for point in [(0.1, 0.2, 1.0), (2.5, 1.1, 1.0)]:
            for mac in MACS:
                assert fast.predict(point, mac) == pytest.approx(
                    slow.predict(point, mac), abs=1e-9
                )
        stds_fast = fast.uncertainty([(0.5, 0.5, 1.0), (9.0, 9.0, 1.0)])
        stds_slow = slow.uncertainty([(0.5, 0.5, 1.0), (9.0, 9.0, 1.0)])
        np.testing.assert_allclose(stds_fast, stds_slow, rtol=0.0, atol=1e-9)

    def test_refit_mode_counters(self):
        fast = self._replay(incremental=True)
        slow = self._replay(incremental=False)
        # First refit is necessarily full (no model yet); with a stable
        # vocabulary every later cadence refit takes the delta path.
        assert fast.refits_full == 1
        assert fast.refits_incremental == len(fast.history) - 1
        assert fast.history[0].refit_mode == "full"
        assert all(s.refit_mode == "incremental" for s in fast.history[1:])
        assert slow.refits_incremental == 0
        assert slow.refits_full == len(slow.history)
        assert all(s.refit_wall_s >= 0.0 for s in fast.history)

    def test_vocabulary_growth_falls_back_to_full_refit(self, rng):
        fast = OnlineRemBuilder(
            refit_every_scans=3, holdout_fraction=0.0, incremental=True
        )
        slow = OnlineRemBuilder(
            refit_every_scans=3, holdout_fraction=0.0, incremental=False
        )
        for i in range(18):
            position = (0.4 * i % 3.0, 0.3 * (i % 5), 1.0)
            macs = MACS[: 2 + (i // 6)]  # vocabulary grows twice
            records = scan_records(rng, macs, position)
            fast.add_scan(position, records)
            slow.add_scan(position, records)
        # Each vocabulary change forces a full refit on the fast path.
        assert fast.refits_full >= 3
        assert fast.refits_incremental >= 1
        for mac in MACS:
            assert fast.predict((1.0, 0.5, 1.0), mac) == pytest.approx(
                slow.predict((1.0, 0.5, 1.0), mac), abs=1e-9
            )


class TestConvergence:
    def test_holdout_rmse_improves_with_data(self, rng):
        builder = OnlineRemBuilder(refit_every_scans=5, holdout_fraction=0.3, seed=7)
        for i in range(60):
            position = (3.0 * rng.random(), 2.5 * rng.random(), 1.0)
            builder.add_scan(position, scan_records(rng, MACS, position))
        scores = [s.holdout_rmse_dbm for s in builder.history if s.holdout_rmse_dbm]
        assert len(scores) >= 2
        # Later refits should be no worse than the first (within noise).
        assert scores[-1] <= scores[0] + 0.75

    def test_on_campaign_scans(self, campaign_result):
        """Replay the real campaign through the online builder."""
        by_scan = {}
        for s in campaign_result.log:
            key = (s.uav_name, s.waypoint_index)
            by_scan.setdefault(key, []).append(s)
        builder = OnlineRemBuilder(refit_every_scans=12, holdout_fraction=0.25, seed=3)
        for key in sorted(by_scan):
            samples = by_scan[key]
            records = [
                ScanRecord(
                    ssid=s.ssid, rssi_dbm=s.rssi_dbm, mac=s.mac, channel=s.channel
                )
                for s in samples
            ]
            builder.add_scan(samples[0].position, records)
        assert builder.ready
        assert builder.scans_ingested == 72
        final = builder.history[-1]
        assert final.holdout_rmse_dbm is not None
        assert final.holdout_rmse_dbm < 6.5
