"""Integration tests for the full campaign (shared session fixture)."""

import numpy as np
from repro.station import CampaignConfig, run_campaign
from repro.uav import FirmwareConfig, FlightState


class TestCampaignOutcome:
    def test_all_waypoints_visited(self, campaign_result):
        for report in campaign_result.reports:
            assert report.waypoints_visited == report.waypoints_planned == 36
            assert not report.aborted
            assert report.final_state is FlightState.LANDED

    def test_no_result_packets_lost(self, campaign_result):
        for report in campaign_result.reports:
            assert report.result_packets_lost == 0

    def test_sample_totals_in_paper_range(self, campaign_result):
        # Paper: 2696 samples (A: 1495, B: 1201).
        total = len(campaign_result.log)
        assert 2200 < total < 3100
        by_uav = campaign_result.samples_by_uav()
        assert by_uav["UAV-A"] > by_uav["UAV-B"]

    def test_distinct_mac_and_ssid_counts(self, campaign_result):
        # Paper: 73 MACs, 49 SSIDs.
        assert 60 <= len(campaign_result.log.macs()) <= 85
        assert 40 <= len(campaign_result.log.ssids()) <= 60

    def test_mean_rss_near_paper(self, campaign_result):
        # Paper: "mean RSS of around -73 dBm".
        assert -78.0 < campaign_result.log.mean_rss_dbm() < -68.0

    def test_active_times_near_paper(self, campaign_result):
        # Paper: UAV A 5 min 3 s, UAV B 5 min.
        for report in campaign_result.reports:
            assert 230 < report.active_time_s < 330

    def test_annotation_error_decimeter_level(self, campaign_result):
        errors = campaign_result.log.annotation_error_m()
        assert np.mean(errors) < 0.12
        assert np.percentile(errors, 95) < 0.25

    def test_flight_time_fits_battery(self, campaign_result):
        # The mission must complete without the battery turning erratic.
        for report in campaign_result.reports:
            assert report.abort_reason == ""

    def test_samples_reference_known_positions(self, campaign_result):
        volume = campaign_result.scenario.flight_volume
        for sample in campaign_result.log:
            assert volume.contains(sample.true_position, tol=0.3)


class TestCampaignDeterminism:
    def test_same_seed_same_outcome(self, campaign_result):
        repeat = run_campaign()
        assert len(repeat.log) == len(campaign_result.log)
        assert repeat.samples_by_uav() == campaign_result.samples_by_uav()
        assert repeat.log.mean_rss_dbm() == campaign_result.log.mean_rss_dbm()


class TestStockFirmwareCampaign:
    def test_stock_firmware_loses_the_uav(self, demo_scenario):
        from repro.station import plan_demo_mission, Mission

        mission = plan_demo_mission(demo_scenario)
        # Just the first few waypoints of UAV A are enough to show the crash.
        conf, plan = mission.assignments[0]
        from repro.station import WaypointPlan

        short = Mission()
        short.add(conf, WaypointPlan(waypoints=plan.waypoints[:3]))
        result = run_campaign(
            scenario=demo_scenario,
            mission=short,
            config=CampaignConfig(firmware=FirmwareConfig.stock_2021_06()),
        )
        report = result.reports[0]
        assert report.aborted
        assert report.final_state is FlightState.CRASHED
