"""Integration test for the §III-A endurance protocol."""

import pytest

from repro.station import run_endurance_test
from repro.uav import FlightState


@pytest.fixture(scope="module")
def endurance_result():
    return run_endurance_test()


class TestEndurance:
    def test_scan_count_near_paper(self, endurance_result):
        # Paper: 36 scans before erratic behaviour.
        assert 30 <= endurance_result.scans_completed <= 42

    def test_duration_near_paper(self, endurance_result):
        # Paper: 6 min 12 s = 372 s.
        assert 330 <= endurance_result.time_to_erratic_s <= 420

    def test_uav_survives_to_landing(self, endurance_result):
        # The protocol lands the UAV at the erratic threshold; it must
        # not have crashed outright.
        assert endurance_result.final_state in (FlightState.LANDED, FlightState.FLYING)

    def test_battery_at_reserve(self, endurance_result):
        assert endurance_result.battery_remaining_fraction <= 0.06

    def test_human_readable_duration(self, endurance_result):
        text = endurance_result.minutes_seconds
        assert "min" in text and "s" in text
