"""Fleet acquisition: config, K=1 degeneration, determinism, workers.

The two contracts pinned here are the ones the serving layer builds on:

* ``n_drones=1`` replays :func:`repro.station.run_active_campaign`
  exactly — same samples in the same order, same duration, same RMSE;
* the merged sample stream is invariant under kernel interleaving and
  under the ``workers`` (one-OS-process-per-drone) execution mode.
"""

import numpy as np
import pytest

import repro.station.fleet as fleet_module
from repro.station import (
    ActiveSamplingConfig,
    CampaignConfig,
    FleetCampaignResult,
    FleetConfig,
    drone_name,
    merge_fleet_samples,
    run_active_campaign,
    run_campaign,
    run_fleet_campaign,
)
from repro.station.storage import SampleLog
from repro.uav.battery import BatteryConfig

#: Small enough to fly in ~a second, big enough for two planning rounds.
QUICK_ACTIVE = ActiveSamplingConfig(
    seed_waypoints=6,
    batch_size=4,
    budget_waypoints=12,
    lattice_nx=4,
    lattice_ny=3,
    lattice_nz=2,
)


def assert_same_samples(log_a, log_b):
    assert len(log_a) == len(log_b)
    for a, b in zip(log_a, log_b):
        assert a == b


class TestFleetConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FleetConfig(n_drones=0)
        with pytest.raises(ValueError):
            FleetConfig(n_drones=26)
        with pytest.raises(ValueError):
            FleetConfig(min_separation_m=-0.1)
        with pytest.raises(ValueError):
            FleetConfig(charging_slots=0)
        with pytest.raises(ValueError):
            FleetConfig(charge_time_s=-1.0)
        with pytest.raises(ValueError, match="one pack per drone"):
            FleetConfig(n_drones=3, batteries=(BatteryConfig(),))

    def test_drone_names(self):
        assert drone_name(0) == "UAV-A"
        assert drone_name(3) == "UAV-D"
        with pytest.raises(ValueError):
            drone_name(26)
        with pytest.raises(ValueError):
            drone_name(-1)

    def test_charge_wait_queues_through_slots(self):
        # 4 drones through 1 pad: 4 waves; through 2 pads: 2 waves.
        slow = FleetConfig(n_drones=4, charging_slots=1, charge_time_s=30.0)
        fast = FleetConfig(n_drones=4, charging_slots=2, charge_time_s=30.0)
        assert slow.charge_wait_s() == pytest.approx(120.0)
        assert fast.charge_wait_s() == pytest.approx(60.0)
        assert FleetConfig(n_drones=4).charge_wait_s() == 0.0

    def test_all_default_batteries_canonicalize_to_none(self):
        fleet = FleetConfig(
            n_drones=2, batteries=(BatteryConfig(), BatteryConfig())
        )
        assert fleet.batteries is None
        assert fleet == FleetConfig(n_drones=2)
        assert fleet.battery(1) == BatteryConfig()

    def test_mixed_batteries_survive_and_round_trip(self):
        packs = (BatteryConfig(), BatteryConfig(capacity_mah=300.0))
        fleet = FleetConfig(n_drones=2, batteries=packs)
        assert fleet.batteries == packs
        assert fleet.battery(1).capacity_mah == 300.0
        again = FleetConfig.from_job_fields(fleet.to_job_fields())
        assert again == fleet

    def test_job_fields_reject_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fleet job field"):
            FleetConfig.from_job_fields({"n_dronez": 2})
        with pytest.raises(ValueError, match="unknown battery field"):
            FleetConfig.from_job_fields(
                {"batteries": [{"capacity_mah": 250.0, "volts": 3.7}]}
            )

    def test_job_fields_coerce_numeric_spellings(self):
        fleet = FleetConfig.from_job_fields(
            {"n_drones": 3.0, "min_separation_m": 1, "charging_slots": 2.0}
        )
        assert fleet == FleetConfig(
            n_drones=3, min_separation_m=1.0, charging_slots=2
        )


class TestOneDroneDegeneratesToActive:
    @pytest.fixture(scope="class")
    def active_result(self, demo_scenario):
        return run_active_campaign(scenario=demo_scenario, active=QUICK_ACTIVE)

    @pytest.fixture(scope="class")
    def fleet_result(self, demo_scenario):
        return run_fleet_campaign(
            scenario=demo_scenario,
            fleet=FleetConfig(n_drones=1),
            active=QUICK_ACTIVE,
        )

    def test_identical_sample_stream(self, active_result, fleet_result):
        assert_same_samples(active_result.log, fleet_result.log)

    def test_identical_trajectory_and_duration(
        self, active_result, fleet_result
    ):
        assert fleet_result.stop_reason == active_result.stop_reason
        assert fleet_result.waypoints_flown == active_result.waypoints_flown
        assert fleet_result.duration_s == pytest.approx(
            active_result.duration_s
        )
        assert fleet_result.final_rmse_dbm == pytest.approx(
            active_result.final_rmse_dbm
        )
        assert fleet_result.rmse_trajectory() == pytest.approx(
            active_result.rmse_trajectory()
        )

    def test_no_separation_drops_with_one_drone(self, fleet_result):
        assert all(r.dropped_waypoints == 0 for r in fleet_result.rounds)

    def test_summary_carries_fleet_shape(self, fleet_result):
        summary = fleet_result.summary()
        assert summary["n_drones"] == 1.0
        assert summary["dropped_waypoints"] == 0.0
        assert summary["waypoints_flown"] == QUICK_ACTIVE.budget_waypoints


class TestFleetCampaign:
    @pytest.fixture(scope="class")
    def result(self, demo_scenario):
        return run_fleet_campaign(
            scenario=demo_scenario,
            fleet=FleetConfig(n_drones=2),
            active=QUICK_ACTIVE,
        )

    def test_budget_respected(self, result):
        assert isinstance(result, FleetCampaignResult)
        assert result.stop_reason == "budget"
        assert result.waypoints_flown >= QUICK_ACTIVE.budget_waypoints
        assert len(result.log) > 0

    def test_concurrency_shrinks_makespan(self, demo_scenario, result):
        solo = run_fleet_campaign(
            scenario=demo_scenario,
            fleet=FleetConfig(n_drones=1),
            active=QUICK_ACTIVE,
        )
        assert result.duration_s < solo.duration_s

    def test_rounds_are_monotone(self, result):
        totals = [r.total_waypoints for r in result.rounds]
        assert totals == sorted(totals)

    def test_waypoints_never_repeat(self, result):
        flown = np.vstack([r.waypoints for r in result.rounds])
        unique = {tuple(np.round(p, 6)) for p in flown}
        assert len(unique) == len(flown)

    def test_reports_name_both_drones(self, result):
        names = {report.uav_name.split("/")[0] for report in result.reports}
        assert names == {"UAV-A", "UAV-B"}

    def test_charge_wait_adds_between_rounds(self, demo_scenario):
        charged = run_fleet_campaign(
            scenario=demo_scenario,
            fleet=FleetConfig(n_drones=2, charge_time_s=30.0),
            active=QUICK_ACTIVE,
        )
        free = run_fleet_campaign(
            scenario=demo_scenario,
            fleet=FleetConfig(n_drones=2),
            active=QUICK_ACTIVE,
        )
        waits = (len(charged.rounds) - 1) * charged.fleet.charge_wait_s()
        assert charged.duration_s == pytest.approx(free.duration_s + waits)

    def test_dispatch_through_run_campaign(self, demo_scenario):
        config = CampaignConfig(
            acquisition="fleet",
            active=QUICK_ACTIVE,
            fleet=FleetConfig(n_drones=2),
        )
        result = run_campaign(scenario=demo_scenario, config=config)
        assert isinstance(result, FleetCampaignResult)
        assert result.fleet.n_drones == 2

    def test_explicit_mission_contradicts_fleet(self, demo_scenario):
        from repro.station import plan_demo_mission

        config = CampaignConfig(acquisition="fleet")
        mission = plan_demo_mission(demo_scenario)
        with pytest.raises(ValueError):
            run_campaign(scenario=demo_scenario, mission=mission, config=config)

    def test_negative_workers_rejected(self, demo_scenario):
        with pytest.raises(ValueError, match="workers"):
            run_fleet_campaign(scenario=demo_scenario, workers=-1)


def test_merge_is_deterministic_and_time_ordered():
    from repro.station.storage import Sample

    def sample(t, name, wp):
        return Sample(
            timestamp_s=t,
            uav_name=name,
            waypoint_index=wp,
            x=0.0,
            y=0.0,
            z=0.0,
            true_x=0.0,
            true_y=0.0,
            true_z=0.0,
            ssid="net",
            mac="aa:bb:cc:dd:ee:ff",
            channel=6,
            rssi_dbm=-50.0,
        )

    a = SampleLog([sample(0.0, "UAV-A", 0), sample(2.0, "UAV-A", 1)])
    b = SampleLog([sample(0.0, "UAV-B", 0), sample(1.0, "UAV-B", 1)])
    merged = merge_fleet_samples({1: b, 0: a})
    stamps = [(s.timestamp_s, s.uav_name) for s in merged]
    # Time-major; the drone index breaks the t=0.0 tie, not dict order.
    assert stamps == [
        (0.0, "UAV-A"),
        (0.0, "UAV-B"),
        (1.0, "UAV-B"),
        (2.0, "UAV-A"),
    ]


@pytest.mark.slow
class TestDeterminismUnderInterleaving:
    """Same spec, hostile scheduling → byte-identical results.

    The kernel builds and spawns drones in ``_drone_launch_order``; the
    merge contract promises that order cannot show through.  We run the
    same K=3 campaign with the order monkeypatched to reverse (a worst
    -case reshuffle of event-queue tie-breaking) and with the fan-out
    ``workers`` mode (each drone in its own OS process and kernel), and
    require the merged log and the final model to match exactly.
    """

    FLEET = FleetConfig(n_drones=3)

    @pytest.fixture(scope="class")
    def baseline(self, demo_scenario):
        return run_fleet_campaign(
            scenario=demo_scenario, fleet=self.FLEET, active=QUICK_ACTIVE
        )

    def probe(self, result):
        """Final-model predictions over a coarse probe lattice."""
        volume = result.scenario.flight_volume
        lo, hi = np.asarray(volume.min_corner), np.asarray(volume.max_corner)
        points = lo + (hi - lo) * np.linspace(0.1, 0.9, 4)[:, None]
        macs = sorted(result.builder.vocabulary)
        return np.array(
            [
                [result.builder.predict(p, mac) for mac in macs]
                for p in points
            ]
        )

    def test_reversed_launch_order_is_invisible(
        self, demo_scenario, baseline, monkeypatch
    ):
        monkeypatch.setattr(
            fleet_module,
            "_drone_launch_order",
            lambda drones: list(reversed(drones)),
        )
        shuffled = run_fleet_campaign(
            scenario=demo_scenario, fleet=self.FLEET, active=QUICK_ACTIVE
        )
        assert_same_samples(baseline.log, shuffled.log)
        assert shuffled.duration_s == pytest.approx(baseline.duration_s)
        np.testing.assert_allclose(
            self.probe(shuffled), self.probe(baseline), atol=1e-9
        )

    def test_workers_mode_matches_interleaved_kernel(
        self, demo_scenario, baseline
    ):
        fanned = run_fleet_campaign(
            scenario=demo_scenario,
            fleet=self.FLEET,
            active=QUICK_ACTIVE,
            workers=3,
        )
        assert_same_samples(baseline.log, fanned.log)
        assert fanned.duration_s == pytest.approx(baseline.duration_s)
        np.testing.assert_allclose(
            self.probe(fanned), self.probe(baseline), atol=1e-9
        )

    def test_single_worker_wave_chunks_match_too(
        self, demo_scenario, baseline
    ):
        # workers=1 exercises the sequential wave path of the fan-out.
        chunked = run_fleet_campaign(
            scenario=demo_scenario,
            fleet=self.FLEET,
            active=QUICK_ACTIVE,
            workers=1,
        )
        assert_same_samples(baseline.log, chunked.log)
