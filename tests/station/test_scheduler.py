"""Unit tests for fleet partition strategies."""

import numpy as np
import pytest

from repro.station import (
    evaluate_partition,
    partition_waypoints,
    waypoint_grid,
)
from repro.radio import Cuboid


@pytest.fixture()
def grid():
    return waypoint_grid(Cuboid((0.0, 0.0, 0.0), (3.74, 3.20, 2.10)))


class TestPartitionStrategies:
    @pytest.mark.parametrize("strategy", ["axis-y", "axis-x", "layers-z", "kmeans"])
    def test_partitions_cover_all_points(self, grid, strategy):
        plan = partition_waypoints(grid, n_uavs=2, strategy=strategy)
        union = np.vstack(plan.partitions)
        assert sorted(map(tuple, union)) == sorted(map(tuple, grid))

    @pytest.mark.parametrize("strategy", ["axis-y", "kmeans"])
    def test_partitions_balanced(self, grid, strategy):
        plan = partition_waypoints(grid, n_uavs=2, strategy=strategy)
        sizes = [len(p) for p in plan.partitions]
        assert max(sizes) - min(sizes) <= 2

    def test_three_uav_split(self, grid):
        plan = partition_waypoints(grid, n_uavs=3, strategy="layers-z")
        assert plan.n_uavs == 3
        assert sum(len(p) for p in plan.partitions) == 72

    def test_kmeans_clusters_are_spatially_compact(self, grid):
        plan = partition_waypoints(grid, n_uavs=2, strategy="kmeans", seed=3)
        # Intra-cluster spread should be below the full-lattice spread.
        full_spread = np.linalg.norm(grid.std(axis=0))
        for part in plan.partitions:
            assert np.linalg.norm(np.asarray(part).std(axis=0)) < full_spread * 1.05

    def test_unknown_strategy_rejected(self, grid):
        with pytest.raises(ValueError):
            partition_waypoints(grid, n_uavs=2, strategy="magic")


class TestFeasibility:
    def test_demo_partition_is_feasible(self, grid):
        plan = partition_waypoints(grid, n_uavs=2, strategy="axis-y")
        report = evaluate_partition(plan)
        assert report.feasible
        assert report.per_uav_waypoints == [36, 36]
        # §III-A: 36 waypoints at 7 s each ≈ 252 s + takeoff/landing,
        # within the ~6-minute endurance envelope.
        for duration in report.per_uav_duration_s:
            assert 250 < duration < 280
            assert duration < report.endurance_budget_s

    def test_single_uav_for_72_waypoints_is_infeasible(self, grid):
        plan = partition_waypoints(grid, n_uavs=1, strategy="axis-y")
        report = evaluate_partition(plan)
        # 72 waypoints × 7 s ≈ 504 s — beyond one battery. This is WHY
        # the paper flies two UAVs sequentially.
        assert not report.feasible

    def test_makespan_sums_fleet(self, grid):
        plan = partition_waypoints(grid, n_uavs=2)
        report = evaluate_partition(plan)
        assert report.makespan_s == pytest.approx(sum(report.per_uav_duration_s))

    def test_travel_lengths_positive(self, grid):
        plan = partition_waypoints(grid, n_uavs=2)
        report = evaluate_partition(plan)
        assert all(t > 0 for t in report.per_uav_travel_m)
