"""End-to-end ablation: what if the radio stayed on during scans?

The §II-C design decision — shut the Crazyradio down for every scan —
tested through the complete stack: same mission, same world, only the
shutdown toggled.
"""

import pytest

from repro.station import (
    CampaignConfig,
    ClientConfig,
    Mission,
    WaypointPlan,
    plan_demo_mission,
    run_campaign,
)


@pytest.fixture(scope="module")
def short_mission(demo_scenario):
    full = plan_demo_mission(demo_scenario)
    conf, plan = full.assignments[0]
    mission = Mission()
    mission.add(conf, WaypointPlan(waypoints=plan.waypoints[:6]))
    return mission


@pytest.fixture(scope="module")
def with_shutdown(demo_scenario, short_mission):
    return run_campaign(scenario=demo_scenario, mission=short_mission)


@pytest.fixture(scope="module")
def without_shutdown(demo_scenario, short_mission):
    config = CampaignConfig(client=ClientConfig(disable_radio_shutdown=True))
    return run_campaign(scenario=demo_scenario, mission=short_mission, config=config)


class TestRadioShutdownAblation:
    def test_radio_on_scans_collect_far_fewer_samples(
        self, with_shutdown, without_shutdown
    ):
        clean = with_shutdown.reports[0].samples_collected
        jammed = without_shutdown.reports[0].samples_collected
        assert jammed < 0.7 * clean, (
            f"radio-on scans should lose samples: {jammed} vs {clean}"
        )

    def test_both_complete_the_mission(self, with_shutdown, without_shutdown):
        # Interference degrades data, not flight safety.
        for result in (with_shutdown, without_shutdown):
            assert result.reports[0].waypoints_visited == 6
            assert not result.reports[0].aborted

    def test_interference_cleared_after_campaign(
        self, demo_scenario, without_shutdown
    ):
        assert demo_scenario.environment.interference_sources == ()
