"""Property suite for fleet round planning (partition/battery/separation).

Hypothesis drives :func:`repro.station.plan_fleet_round` across random
waypoint clouds, fleet sizes K ∈ {1..4}, separations and seeds, and
checks the planning invariants the campaign loop relies on:

* every input waypoint lands in exactly one tour or the dropped pool;
* no tour exceeds its drone's battery endurance (under the campaign's
  round-quota sizing rule);
* tours never enter no-fly cuboids (the planner filters candidates);
* after repair, no simultaneous pair of tour positions violates the
  minimum separation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.geometry import Cuboid
from repro.station import (
    ActiveSamplingPlanner,
    FleetConfig,
    first_separation_conflict,
    plan_fleet_round,
)
from repro.uav.battery import BatteryConfig

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: One shared flight-volume box for all generated scenarios.
BOX_MIN = np.array([0.0, 0.0, 0.0])
BOX_MAX = np.array([6.0, 4.0, 2.0])


def random_points(seed: int, n: int) -> np.ndarray:
    """``n`` unique waypoints drawn uniformly from the box."""
    rng = np.random.default_rng(seed)
    return rng.uniform(BOX_MIN, BOX_MAX, size=(n, 3))


scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "n": st.integers(1, 28),
        "k": st.integers(1, 4),
        "sep": st.floats(0.0, 2.0, allow_nan=False),
    }
)


@settings(max_examples=60, deadline=None)
@given(case=scenario)
def test_every_waypoint_assigned_exactly_once(case):
    points = random_points(case["seed"], case["n"])
    fleet = FleetConfig(n_drones=case["k"], min_separation_m=case["sep"])
    plan = plan_fleet_round(points, fleet, partition_seed=case["seed"])
    assert len(plan.tours) == case["k"]
    assert len(plan.tour_indices) == case["k"]
    flown = np.concatenate([idx for idx in plan.tour_indices] + [np.zeros(0, int)])
    everything = np.concatenate([flown, plan.dropped_indices])
    # A permutation of the input batch: nothing lost, nothing doubled.
    assert sorted(everything.tolist()) == list(range(case["n"]))
    # Indices really point at the tour coordinates, drone by drone.
    for tour, indices in zip(plan.tours, plan.tour_indices):
        assert len(tour) == len(indices)
        np.testing.assert_array_equal(tour, points[indices])
    assert plan.waypoints_flown + len(plan.dropped_indices) == case["n"]


@settings(max_examples=60, deadline=None)
@given(case=scenario)
def test_tours_stay_balanced(case):
    points = random_points(case["seed"], case["n"])
    fleet = FleetConfig(n_drones=case["k"], min_separation_m=case["sep"])
    plan = plan_fleet_round(points, fleet, partition_seed=case["seed"])
    # Balanced k-means quota; the separation repair only shrinks tours.
    quota = -(-case["n"] // min(case["k"], case["n"]))
    assert all(len(tour) <= quota for tour in plan.tours)


@settings(max_examples=40, deadline=None)
@given(
    case=scenario,
    capacity=st.floats(40.0, 300.0, allow_nan=False),
)
def test_no_tour_exceeds_battery_endurance(case, capacity):
    """The campaign's round-sizing rule keeps every drone inside its pack.

    The loop caps a round at ``K * min_quota`` waypoints, where
    ``min_quota`` is the weakest drone's ``endurance_waypoints``; the
    balanced partition then bounds every tour by ``ceil(n/K) <=
    min_quota``.  This re-enacts that sizing with randomized packs.
    """
    k = case["k"]
    rng = np.random.default_rng(case["seed"])
    packs = tuple(
        BatteryConfig(capacity_mah=capacity * float(scale))
        for scale in rng.uniform(0.5, 1.5, size=k)
    )
    fleet = FleetConfig(
        n_drones=k, min_separation_m=case["sep"], batteries=packs
    )
    quotas = [
        fleet.battery(d).endurance_waypoints(
            flight_leg_s=4.0, scan_window_s=3.0
        )
        for d in range(k)
    ]
    min_quota = min(quotas)
    n = min(case["n"], k * min_quota)
    plan = plan_fleet_round(
        random_points(case["seed"], n), fleet, partition_seed=case["seed"]
    )
    for d, tour in enumerate(plan.tours):
        assert len(tour) <= quotas[d]
        assert len(tour) <= min_quota


@settings(max_examples=40, deadline=None)
@given(case=scenario)
def test_tours_respect_no_fly_cuboids(case):
    """Candidates come pre-filtered by the planner; tours inherit that."""
    zone = Cuboid((1.0, 1.0, 0.0), (3.0, 3.0, 2.0))
    points = random_points(case["seed"], max(case["n"], 8))
    try:
        planner = ActiveSamplingPlanner(points, no_fly=(zone,))
    except ValueError:
        # Every generated point fell inside the zone; nothing to plan.
        return
    batch = planner.seed_batch(min(case["n"], len(planner.candidates)))
    fleet = FleetConfig(n_drones=case["k"], min_separation_m=case["sep"])
    plan = plan_fleet_round(
        planner.candidates[batch], fleet, partition_seed=case["seed"]
    )
    for tour in plan.tours:
        assert not any(zone.contains(p) for p in tour)


@settings(max_examples=60, deadline=None)
@given(case=scenario)
def test_repaired_tours_never_violate_separation(case):
    points = random_points(case["seed"], case["n"])
    fleet = FleetConfig(n_drones=case["k"], min_separation_m=case["sep"])
    plan = plan_fleet_round(points, fleet, partition_seed=case["seed"])
    assert first_separation_conflict(plan.tours, case["sep"]) is None
    # And the checker itself agrees with a brute-force pairwise sweep.
    depth = max((len(t) for t in plan.tours), default=0)
    for step in range(depth):
        airborne = [t[step] for t in plan.tours if len(t) > step]
        for i, a in enumerate(airborne):
            for b in airborne[i + 1 :]:
                assert float(np.linalg.norm(a - b)) >= case["sep"]


def test_duplicate_waypoints_rejected():
    points = np.zeros((2, 3))
    with pytest.raises(ValueError, match="unique"):
        plan_fleet_round(points, FleetConfig(n_drones=2))


def test_empty_batch_plans_empty_tours():
    plan = plan_fleet_round(np.zeros((0, 3)), FleetConfig(n_drones=3))
    assert plan.waypoints_flown == 0
    assert len(plan.tours) == 3
    assert len(plan.dropped_indices) == 0
