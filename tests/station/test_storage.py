"""Unit tests for sample storage."""

import math

import pytest

from repro.station import Sample, SampleLog


def sample(uav="UAV-A", waypoint=0, mac="aa:aa:aa:aa:aa:01", ssid="net", rssi=-70,
           pos=(1.0, 1.0, 1.0), true_pos=None, channel=6, t=0.0):
    true_pos = true_pos or pos
    return Sample(
        uav_name=uav,
        waypoint_index=waypoint,
        timestamp_s=t,
        x=pos[0], y=pos[1], z=pos[2],
        true_x=true_pos[0], true_y=true_pos[1], true_z=true_pos[2],
        ssid=ssid, rssi_dbm=rssi, mac=mac, channel=channel,
    )


class TestSampleLog:
    def test_append_and_len(self):
        log = SampleLog()
        log.append(sample())
        log.extend([sample(waypoint=1), sample(waypoint=2)])
        assert len(log) == 3

    def test_summary_statistics(self):
        log = SampleLog([
            sample(mac="aa:aa:aa:aa:aa:01", ssid="one", rssi=-60),
            sample(mac="aa:aa:aa:aa:aa:02", ssid="one", rssi=-80),
            sample(mac="aa:aa:aa:aa:aa:03", ssid="two", rssi=-70),
        ])
        assert log.macs() == {
            "aa:aa:aa:aa:aa:01",
            "aa:aa:aa:aa:aa:02",
            "aa:aa:aa:aa:aa:03",
        }
        assert log.ssids() == {"one", "two"}
        assert log.mean_rss_dbm() == -70.0

    def test_empty_mean_is_nan(self):
        assert math.isnan(SampleLog().mean_rss_dbm())

    def test_by_uav_partition(self):
        log = SampleLog([sample(uav="UAV-A"), sample(uav="UAV-B"), sample(uav="UAV-A")])
        split = log.by_uav()
        assert len(split["UAV-A"]) == 2
        assert len(split["UAV-B"]) == 1

    def test_by_mac_partition(self):
        log = SampleLog(
            [sample(mac="aa:aa:aa:aa:aa:01"), sample(mac="aa:aa:aa:aa:aa:02")]
        )
        assert set(log.by_mac()) == {"aa:aa:aa:aa:aa:01", "aa:aa:aa:aa:aa:02"}

    def test_samples_per_waypoint(self):
        log = SampleLog([
            sample(waypoint=0), sample(waypoint=0), sample(waypoint=1),
            sample(uav="UAV-B", waypoint=0),
        ])
        counts = log.samples_per_waypoint()
        assert counts[("UAV-A", 0)] == 2
        assert counts[("UAV-A", 1)] == 1
        assert counts[("UAV-B", 0)] == 1

    def test_annotation_error(self):
        log = SampleLog([sample(pos=(1.0, 0.0, 0.0), true_pos=(0.0, 0.0, 0.0))])
        assert log.annotation_error_m() == [pytest.approx(1.0)]


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        log = SampleLog([
            sample(rssi=-55, ssid="café,net"),  # comma + unicode in SSID
            sample(uav="UAV-B", waypoint=7, rssi=-88),
        ])
        path = tmp_path / "samples.csv"
        log.save_csv(path)
        loaded = SampleLog.load_csv(path)
        assert len(loaded) == 2
        assert loaded[0].ssid == "café,net"
        assert loaded[0].rssi_dbm == -55
        assert loaded[1].uav_name == "UAV-B"
        assert loaded[1].waypoint_index == 7
        assert loaded[0].position == log[0].position
