"""Tests for the uncertainty-driven active sampling subsystem."""

import numpy as np
import pytest

from repro.radio.geometry import Cuboid
from repro.station import (
    ActiveCampaignResult,
    ActiveSamplingConfig,
    ActiveSamplingPlanner,
    CampaignConfig,
    run_active_campaign,
    run_campaign,
)


def lattice_candidates():
    xs, ys, zs = np.meshgrid(
        np.linspace(0.0, 3.0, 4),
        np.linspace(0.0, 2.0, 3),
        np.linspace(0.5, 1.5, 2),
        indexing="ij",
    )
    return np.column_stack([xs.ravel(), ys.ravel(), zs.ravel()])


class TestPlanner:
    def test_no_fly_zones_filter_candidates(self):
        candidates = lattice_candidates()
        zone = Cuboid((-0.1, -0.1, 0.0), (1.1, 2.1, 2.0))
        planner = ActiveSamplingPlanner(candidates, no_fly=(zone,))
        assert len(planner.candidates) < len(candidates)
        assert not any(zone.contains(p) for p in planner.candidates)

    def test_all_candidates_excluded_raises(self):
        candidates = lattice_candidates()
        everything = Cuboid((-1.0, -1.0, -1.0), (5.0, 5.0, 5.0))
        with pytest.raises(ValueError):
            ActiveSamplingPlanner(candidates, no_fly=(everything,))

    def test_seed_batch_is_spread_and_marks_visited(self):
        planner = ActiveSamplingPlanner(lattice_candidates())
        batch = planner.seed_batch(6)
        assert len(batch) == 6
        assert len(set(batch.tolist())) == 6
        assert len(planner.remaining_indices) == len(planner.candidates) - 6
        # Farthest-point seeding must span the volume, not cluster.
        points = planner.candidates[batch]
        spans = points.max(axis=0) - points.min(axis=0)
        assert (spans > 0).all()

    def test_select_batch_prefers_high_uncertainty(self):
        planner = ActiveSamplingPlanner(
            lattice_candidates(), travel_weight_db_per_m=0.0
        )
        remaining = planner.remaining_indices
        scores = np.zeros(len(remaining))
        best = [3, 11, 17]
        scores[best] = 10.0
        batch = planner.select_batch(scores, np.zeros(3), batch_size=3)
        assert sorted(batch.tolist()) == sorted(remaining[best].tolist())

    def test_travel_cost_breaks_ties(self):
        planner = ActiveSamplingPlanner(
            lattice_candidates(), travel_weight_db_per_m=1.0
        )
        remaining = planner.remaining_indices
        scores = np.ones(len(remaining))  # uniform uncertainty
        start = planner.candidates[0]
        batch = planner.select_batch(scores, start, batch_size=1)
        picked = planner.candidates[batch[0]]
        distances = np.linalg.norm(planner.candidates - start, axis=1)
        assert np.linalg.norm(picked - start) == pytest.approx(distances.min())

    def test_score_shape_mismatch_rejected(self):
        planner = ActiveSamplingPlanner(lattice_candidates())
        with pytest.raises(ValueError):
            planner.select_batch(np.zeros(3), np.zeros(3), batch_size=2)

    def test_exhaustion(self):
        planner = ActiveSamplingPlanner(lattice_candidates())
        planner.seed_batch(len(planner.candidates))
        assert planner.exhausted
        assert len(planner.remaining_points) == 0


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ActiveSamplingConfig(seed_waypoints=0)
        with pytest.raises(ValueError):
            ActiveSamplingConfig(batch_size=0)
        with pytest.raises(ValueError):
            ActiveSamplingConfig(seed_waypoints=10, budget_waypoints=5)
        with pytest.raises(ValueError):
            ActiveSamplingConfig(travel_weight_db_per_m=-1.0)
        with pytest.raises(ValueError):
            ActiveSamplingConfig(patience_rounds=-1)


QUICK_ACTIVE = ActiveSamplingConfig(
    seed_waypoints=6,
    batch_size=4,
    budget_waypoints=14,
    refit_every_scans=6,
)


class TestActiveCampaign:
    @pytest.fixture(scope="class")
    def result(self, demo_scenario):
        return run_active_campaign(scenario=demo_scenario, active=QUICK_ACTIVE)

    def test_budget_respected(self, result):
        assert result.stop_reason == "budget"
        assert result.waypoints_flown == QUICK_ACTIVE.budget_waypoints
        assert len(result.log) > 0

    def test_rounds_are_monotone(self, result):
        totals = [r.total_waypoints for r in result.rounds]
        assert totals == sorted(totals)
        samples = [r.samples_ingested for r in result.rounds]
        assert samples == sorted(samples)

    def test_waypoints_never_repeat(self, result):
        flown = np.vstack([r.waypoints for r in result.rounds])
        unique = {tuple(np.round(p, 6)) for p in flown}
        assert len(unique) == len(flown)

    def test_builder_holds_all_samples(self, result):
        assert result.builder.samples_ingested == len(result.log)
        assert result.final_rmse_dbm is not None

    def test_trajectory_shape(self, result):
        trajectory = result.rmse_trajectory()
        assert trajectory[0][0] == QUICK_ACTIVE.seed_waypoints
        assert trajectory[-1][0] == QUICK_ACTIVE.budget_waypoints

    def test_target_rmse_stops_immediately(self, demo_scenario):
        generous = ActiveSamplingConfig(
            seed_waypoints=6,
            batch_size=4,
            budget_waypoints=20,
            target_rmse_dbm=50.0,
        )
        result = run_active_campaign(scenario=demo_scenario, active=generous)
        assert result.stop_reason == "target_rmse"
        assert result.waypoints_flown == 6

    def test_round_callback_sees_every_round(self, demo_scenario):
        seen = []
        run_active_campaign(
            scenario=demo_scenario,
            active=QUICK_ACTIVE,
            round_callback=lambda round_, builder: seen.append(
                (round_.round_index, builder.ready)
            ),
        )
        assert [index for index, _ in seen] == list(range(len(seen)))
        assert all(ready for _, ready in seen)


class TestCampaignDispatch:
    def test_acquisition_active_dispatches(self, demo_scenario):
        config = CampaignConfig(acquisition="active", active=QUICK_ACTIVE)
        result = run_campaign(scenario=demo_scenario, config=config)
        assert isinstance(result, ActiveCampaignResult)
        assert result.waypoints_flown == QUICK_ACTIVE.budget_waypoints

    def test_unknown_acquisition_rejected(self):
        config = CampaignConfig(acquisition="psychic")
        with pytest.raises(ValueError):
            run_campaign(config=config)

    def test_explicit_mission_contradicts_active(self, demo_scenario):
        from repro.station import plan_demo_mission

        config = CampaignConfig(acquisition="active")
        mission = plan_demo_mission(demo_scenario)
        with pytest.raises(ValueError):
            run_campaign(scenario=demo_scenario, mission=mission, config=config)
