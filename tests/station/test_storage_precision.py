"""SampleLog CSV persistence must round-trip floats exactly.

The archive is what lets the ML stage re-run without re-flying; a
position that drifts by 1e-8 m between save and load silently changes
every downstream fit.  ``save_csv`` therefore serializes float fields
as ``repr(float(value))``, which reparses bit-exactly — including for
numpy scalars of any width (a raw ``str()`` of a float32 prints the
*narrow-type* shortest repr, which re-parses to a different float64).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.station.storage import Sample, SampleLog

finite = st.floats(allow_nan=False, allow_infinity=True, width=64)


def sample_from(values, rssi, index):
    """Build one sample from a 7-float tuple plus an RSS int."""
    t, x, y, z, tx, ty, tz = values
    return Sample(
        uav_name=f"UAV-{index}",
        waypoint_index=index,
        timestamp_s=t,
        x=x,
        y=y,
        z=z,
        true_x=tx,
        true_y=ty,
        true_z=tz,
        ssid="net",
        rssi_dbm=rssi,
        mac="02:00:00:00:00:01",
        channel=6,
    )


class TestExactRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.tuples(*[finite] * 7),
                st.integers(min_value=-120, max_value=0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_save_load_reproduces_floats_exactly(self, tmp_path_factory, rows):
        log = SampleLog(
            sample_from(values, rssi, i)
            for i, (values, rssi) in enumerate(rows)
        )
        path = tmp_path_factory.mktemp("csv") / "log.csv"
        log.save_csv(path)
        back = SampleLog.load_csv(path)
        assert len(back) == len(log)
        for original, loaded in zip(log, back):
            assert loaded == original  # dataclass equality: every field

    def test_float32_positions_round_trip_exactly(self, tmp_path):
        # Regression: str(np.float32(1.234567)) == "1.234567", which
        # reparses to a float64 that differs from float(np.float32(...))
        # by ~5e-8 — a silent archive corruption before the repr fix.
        value = np.float32(1.234567)
        log = SampleLog(
            [
                sample_from(
                    (value, value, value, value, value, value, value), -73, 0
                )
            ]
        )
        path = tmp_path / "log.csv"
        log.save_csv(path)
        loaded = SampleLog.load_csv(path)[0]
        assert loaded.x == float(value)
        assert loaded.timestamp_s == float(value)

    def test_numpy_float64_round_trip(self, tmp_path):
        values = tuple(
            np.float64(v)
            for v in (0.1 + 0.2, 1e-17, -0.0, 1e300, 2.0 / 3.0, np.pi, -np.pi)
        )
        log = SampleLog([sample_from(values, -60, 0)])
        path = tmp_path / "log.csv"
        log.save_csv(path)
        loaded = SampleLog.load_csv(path)[0]
        assert loaded.timestamp_s == 0.1 + 0.2  # 0.30000000000000004 exactly
        assert loaded.x == 1e-17
        assert loaded.z == 1e300
        assert loaded.true_x == 2.0 / 3.0
        assert loaded.true_y == np.pi
