"""Unit tests for mission planning."""

import numpy as np
import pytest

from repro.station import Mission, UavMissionConfig, WaypointPlan, plan_demo_mission


class TestWaypointPlan:
    def test_expected_duration_matches_paper_math(self):
        # §III-A: 36 waypoints at 4 s + 3 s = "at least 4 min and 12 sec".
        plan = WaypointPlan(
            waypoints=tuple((float(i), 0.0, 0.5) for i in range(36)),
            flight_leg_s=4.0,
            scan_window_s=3.0,
        )
        assert plan.expected_duration_s() == pytest.approx(252.0)

    def test_waypoint_array(self):
        plan = WaypointPlan(waypoints=((1.0, 2.0, 3.0),))
        assert plan.waypoint_array.shape == (1, 3)


class TestPlanDemoMission:
    def test_two_uavs_36_each(self, demo_scenario):
        mission = plan_demo_mission(demo_scenario)
        assert len(mission.assignments) == 2
        assert [len(plan) for _, plan in mission.assignments] == [36, 36]
        assert mission.total_waypoints == 72

    def test_uav_names_and_addresses_distinct(self, demo_scenario):
        mission = plan_demo_mission(demo_scenario)
        names = [conf.name for conf, _ in mission.assignments]
        addresses = [conf.radio_address for conf, _ in mission.assignments]
        assert len(set(names)) == 2
        assert len(set(addresses)) == 2

    def test_uav_a_takes_lower_y_half(self, demo_scenario):
        mission = plan_demo_mission(demo_scenario)
        (conf_a, plan_a), (conf_b, plan_b) = mission.assignments
        assert conf_a.name == "UAV-A"
        assert plan_a.waypoint_array[:, 1].max() < plan_b.waypoint_array[:, 1].min()

    def test_uav_b_carries_gain_offset(self, demo_scenario):
        mission = plan_demo_mission(demo_scenario, uav_b_rx_offset_db=-3.0)
        (conf_a, _), (conf_b, _) = mission.assignments
        assert conf_a.rx_gain_offset_db == 0.0
        assert conf_b.rx_gain_offset_db == -3.0

    def test_waypoints_inside_flight_volume(self, demo_scenario):
        mission = plan_demo_mission(demo_scenario)
        for _, plan in mission.assignments:
            for waypoint in plan.waypoint_array:
                assert demo_scenario.flight_volume.contains(waypoint)

    def test_scalable_to_more_uavs(self, demo_scenario):
        mission = plan_demo_mission(demo_scenario, n_uavs=3)
        assert len(mission.assignments) == 3
        assert mission.total_waypoints == 72


class TestMissionContainer:
    def test_add_and_total(self):
        mission = Mission()
        config = UavMissionConfig("U", "radio://0/80/2M", (0, 0, 0))
        mission.add(config, WaypointPlan(waypoints=((0.0, 0.0, 0.5),)))
        assert mission.total_waypoints == 1
