"""Unit tests for waypoint lattices and fleet assignment."""

import numpy as np
import pytest

from repro.radio import Cuboid
from repro.station import snake_order, split_between_uavs, waypoint_grid


@pytest.fixture()
def volume():
    return Cuboid((0.0, 0.0, 0.0), (3.74, 3.20, 2.10))


class TestWaypointGrid:
    def test_demo_lattice_has_72_points(self, volume):
        grid = waypoint_grid(volume)
        assert grid.shape == (72, 3)

    def test_points_inside_volume_with_margin(self, volume):
        grid = waypoint_grid(volume, margin=0.25)
        assert grid[:, 0].min() >= 0.25
        assert grid[:, 0].max() <= 3.74 - 0.25
        assert grid[:, 2].max() <= 2.10 - 0.25


class TestSnakeOrder:
    def test_preserves_point_set(self, volume):
        grid = waypoint_grid(volume)
        ordered = snake_order(grid)
        assert sorted(map(tuple, ordered)) == sorted(map(tuple, grid))

    def test_consecutive_legs_short(self, volume):
        """Every leg must fit the 4-second flight budget at 0.7 m/s."""
        grid = waypoint_grid(volume)
        ordered = snake_order(grid)
        legs = np.linalg.norm(np.diff(ordered, axis=0), axis=1)
        assert legs.max() < 0.7 * 4.0 * 0.6  # comfortable margin

    def test_layer_transition_is_vertical_hop(self, volume):
        """Regression test: the z-layer hand-off must not cross the room."""
        grid = waypoint_grid(volume)
        ordered = snake_order(grid)
        z_values = np.unique(ordered[:, 2])
        per_layer = len(ordered) // len(z_values)
        for i in range(1, len(z_values)):
            before = ordered[i * per_layer - 1]
            after = ordered[i * per_layer]
            horizontal = np.linalg.norm(after[:2] - before[:2])
            assert horizontal < 0.1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            snake_order(np.zeros((5, 2)))


class TestSplitBetweenUavs:
    def test_even_split_along_y(self, volume):
        grid = waypoint_grid(volume)
        parts = split_between_uavs(grid, n_uavs=2, axis=1)
        assert [len(p) for p in parts] == [36, 36]
        assert parts[0][:, 1].max() < parts[1][:, 1].min()

    def test_union_is_original_set(self, volume):
        grid = waypoint_grid(volume)
        parts = split_between_uavs(grid, n_uavs=2)
        union = np.vstack(parts)
        assert sorted(map(tuple, union)) == sorted(map(tuple, grid))

    def test_single_uav_gets_everything(self, volume):
        grid = waypoint_grid(volume)
        parts = split_between_uavs(grid, n_uavs=1)
        assert len(parts) == 1 and len(parts[0]) == 72

    def test_each_partition_keeps_short_legs(self, volume):
        grid = waypoint_grid(volume)
        for part in split_between_uavs(grid, n_uavs=2):
            legs = np.linalg.norm(np.diff(part, axis=0), axis=1)
            assert legs.max() < 1.7

    def test_invalid_uav_count(self, volume):
        with pytest.raises(ValueError):
            split_between_uavs(waypoint_grid(volume), n_uavs=0)
