"""Unit tests for minimum-jerk trajectory generation."""

import numpy as np
import pytest

from repro.uav.trajectory import (
    QuinticSegment,
    Trajectory,
    plan_min_jerk_leg,
    plan_trajectory,
)


class TestQuinticSegment:
    def test_boundary_conditions(self):
        seg = QuinticSegment((0, 0, 0), (1, 2, 0.5), duration_s=2.0)
        assert np.allclose(seg.position(0.0), [0, 0, 0])
        assert np.allclose(seg.position(2.0), [1, 2, 0.5])
        assert np.allclose(seg.velocity(0.0), 0.0)
        assert np.allclose(seg.velocity(2.0), 0.0, atol=1e-12)
        assert np.allclose(seg.acceleration(0.0), 0.0)
        assert np.allclose(seg.acceleration(2.0), 0.0, atol=1e-9)

    def test_midpoint_is_halfway(self):
        seg = QuinticSegment((0, 0, 0), (2, 0, 0), duration_s=4.0)
        assert np.allclose(seg.position(2.0), [1, 0, 0])

    def test_peak_speed_formula(self):
        seg = QuinticSegment((0, 0, 0), (1, 0, 0), duration_s=1.0)
        times = np.linspace(0, 1, 2001)
        speeds = [np.linalg.norm(seg.velocity(t)) for t in times]
        assert max(speeds) == pytest.approx(seg.peak_speed_mps, rel=1e-3)

    def test_peak_accel_formula(self):
        seg = QuinticSegment((0, 0, 0), (1, 0, 0), duration_s=1.0)
        times = np.linspace(0, 1, 4001)
        accels = [np.linalg.norm(seg.acceleration(t)) for t in times]
        assert max(accels) == pytest.approx(seg.peak_accel_mps2, rel=1e-3)

    def test_time_clamping(self):
        seg = QuinticSegment((0, 0, 0), (1, 0, 0), duration_s=1.0)
        assert np.allclose(seg.position(-1.0), [0, 0, 0])
        assert np.allclose(seg.position(99.0), [1, 0, 0])

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            QuinticSegment((0, 0, 0), (1, 0, 0), duration_s=0.0)


class TestPlanLeg:
    def test_respects_speed_limit(self):
        seg = plan_min_jerk_leg((0, 0, 0), (3, 0, 0), max_speed_mps=0.7)
        assert seg.peak_speed_mps <= 0.7 + 1e-9

    def test_respects_accel_limit(self):
        seg = plan_min_jerk_leg((0, 0, 0), (0.1, 0, 0), max_accel_mps2=1.5)
        assert seg.peak_accel_mps2 <= 1.5 + 1e-9

    def test_short_leg_uses_min_duration(self):
        seg = plan_min_jerk_leg((0, 0, 0), (0.01, 0, 0), min_duration_s=0.5)
        assert seg.duration_s == 0.5

    def test_lattice_leg_fits_four_second_budget(self):
        # The §III-A lattice hop (~0.65 m) must fit the 4 s leg budget.
        seg = plan_min_jerk_leg((0, 0, 0), (0.65, 0, 0))
        assert seg.duration_s < 4.0

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            plan_min_jerk_leg((0, 0, 0), (1, 0, 0), max_speed_mps=0.0)


class TestTrajectory:
    def test_multi_segment_lookup(self):
        traj = plan_trajectory([(0, 0, 0), (1, 0, 0), (1, 1, 0)])
        assert np.allclose(traj.position(0.0), [0, 0, 0])
        assert np.allclose(traj.position(traj.duration_s), [1, 1, 0])
        first_duration = traj.segments[0].duration_s
        assert np.allclose(traj.position(first_duration), [1, 0, 0])

    def test_length_sums_legs(self):
        traj = plan_trajectory([(0, 0, 0), (1, 0, 0), (1, 2, 0)])
        assert traj.length_m == pytest.approx(3.0)

    def test_position_continuity(self):
        traj = plan_trajectory([(0, 0, 0), (0.6, 0, 0), (0.6, 0.9, 0), (0, 0.9, 0.8)])
        times = np.linspace(0, traj.duration_s, 500)
        positions = np.array([traj.position(t) for t in times])
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        assert steps.max() < 0.05  # no jumps

    def test_speed_limit_global(self):
        traj = plan_trajectory([(0, 0, 0), (2, 0, 0), (2, 2, 0)], max_speed_mps=0.7)
        assert traj.max_speed_mps() <= 0.7 + 1e-9

    def test_discontinuous_segments_rejected(self):
        a = QuinticSegment((0, 0, 0), (1, 0, 0), 1.0)
        b = QuinticSegment((5, 0, 0), (6, 0, 0), 1.0)
        with pytest.raises(ValueError):
            Trajectory([a, b])

    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            plan_trajectory([(0, 0, 0)])

    def test_demo_mission_trajectory_fits_budget(self, demo_scenario):
        """The 36-waypoint snake path is flyable within the §III-A timing."""
        from repro.station import plan_demo_mission

        mission = plan_demo_mission(demo_scenario)
        _, plan = mission.assignments[0]
        traj = plan_trajectory(plan.waypoints)
        # 35 legs at 4 s each is the paper's budget; the planner should
        # comfortably beat it at the same speed limit.
        assert traj.duration_s < 35 * 4.0
