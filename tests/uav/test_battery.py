"""Unit tests for the battery/endurance model."""

import pytest

from repro.uav import Battery, BatteryConfig


class TestBattery:
    def test_draw_accounting(self):
        battery = Battery(BatteryConfig(capacity_mah=250.0))
        battery.draw(1000.0, 3600.0)  # 1 A for an hour = 1000 mAh
        assert battery.consumed_mah == pytest.approx(1000.0)
        assert battery.remaining_mah == 0.0
        assert battery.depleted

    def test_remaining_fraction(self):
        battery = Battery(BatteryConfig(capacity_mah=100.0))
        battery.draw(50.0, 3600.0)
        assert battery.remaining_fraction == pytest.approx(0.5)

    def test_erratic_before_depleted(self):
        config = BatteryConfig(capacity_mah=100.0, erratic_reserve_fraction=0.1)
        battery = Battery(config)
        battery.draw(91.0, 3600.0)
        assert battery.erratic
        assert not battery.depleted

    def test_reset(self):
        battery = Battery()
        battery.draw(100.0, 60.0)
        battery.reset()
        assert battery.consumed_mah == 0.0

    def test_invalid_draw(self):
        battery = Battery()
        with pytest.raises(ValueError):
            battery.draw(-1.0, 1.0)
        with pytest.raises(ValueError):
            battery.draw(1.0, -1.0)


class TestEnduranceCalibration:
    def test_bare_hover_near_seven_minutes(self):
        config = BatteryConfig()
        endurance = config.endurance_s(config.hover_current_ma)
        # "advertised as having a flight time of up to 7 min"
        assert 6.3 * 60 < endurance < 7.2 * 60

    def test_loaded_hover_near_paper_endurance(self):
        from repro.uav.decks import ESP_DECK, LOCO_DECK

        config = BatteryConfig()
        # Hover + both decks idle + ESP scanning ~22 % of the time
        # (the §III-A periodic-scan protocol).
        current = (
            config.hover_current_ma
            + LOCO_DECK.idle_current_ma
            + ESP_DECK.idle_current_ma
            + ESP_DECK.active_current_ma * 0.22
        )
        endurance = config.endurance_s(current)
        # Paper: 6 min 12 s = 372 s.
        assert 330 < endurance < 420

    def test_endurance_requires_positive_current(self):
        with pytest.raises(ValueError):
            BatteryConfig().endurance_s(0.0)
