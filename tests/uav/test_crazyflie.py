"""Integration-grade unit tests for the Crazyflie vehicle."""

import numpy as np
import pytest

from repro.link import Crazyradio, CrazyradioLink, RadioConfig
from repro.radio import build_demo_scenario
from repro.sim import Simulator, Timeout, spawn
from repro.uav import Crazyflie, FirmwareConfig, FlightState, UavConfig
from repro.uav import app_protocol as proto
from repro.uwb import corner_layout


def make_uav(firmware=None, scenario=None, name="test"):
    scenario = scenario or build_demo_scenario(seed=11)
    firmware = firmware or FirmwareConfig.paper_modified()
    sim = Simulator()
    radio = Crazyradio(scenario.environment, RadioConfig())
    link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=firmware.crtp_tx_queue_size)
    uav = Crazyflie(
        sim,
        scenario.environment,
        corner_layout(scenario.flight_volume),
        link,
        firmware,
        scenario.streams.fork(f"test.{name}"),
        config=UavConfig(name=name, start_position=(0.3, 0.3, 0.0)),
    )
    return sim, radio, link, uav


class TestTakeoffAndFlight:
    def test_takeoff_reaches_height(self):
        sim, radio, link, uav = make_uav()
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))

        def keep_alive():
            # The real client streams setpoints; without them the
            # commander levels out after 500 ms by design.
            for _ in range(15):
                link.station_send(proto.encode(proto.Goto(0.3, 0.3, 0.5)))
                yield Timeout(0.2)

        spawn(sim, keep_alive())
        sim.run(until=3.0)
        assert uav.state is FlightState.FLYING
        assert uav.position[2] == pytest.approx(0.5, abs=0.1)

    def test_goto_moves_uav(self):
        sim, radio, link, uav = make_uav()
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))
        sim.run(until=2.5)

        def keep_alive():
            for _ in range(30):
                link.station_send(proto.encode(proto.Goto(1.5, 1.5, 1.0)))
                yield Timeout(0.2)

        spawn(sim, keep_alive())
        sim.run(until=9.0)
        assert np.linalg.norm(uav.position - [1.5, 1.5, 1.0]) < 0.12

    def test_estimator_tracks_truth(self):
        sim, radio, link, uav = make_uav()
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))
        sim.run(until=1.0)

        def keep_alive():
            for _ in range(40):
                link.station_send(proto.encode(proto.Goto(0.3, 0.3, 0.5)))
                yield Timeout(0.2)

        spawn(sim, keep_alive())
        sim.run(until=8.0)
        assert np.linalg.norm(uav.estimated_position - uav.position) < 0.2


class TestWatchdogBehaviour:
    def _fly_and_cut_radio(self, firmware, cut_after=2.0, run_until=20.0):
        sim, radio, link, uav = make_uav(firmware=firmware)
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))

        def pilot():
            elapsed = 0.0
            while elapsed < cut_after:
                link.station_send(proto.encode(proto.Goto(0.3, 0.3, 0.5)))
                yield Timeout(0.2)
                elapsed += 0.2
            radio.turn_off()

        spawn(sim, pilot())
        sim.run(until=run_until)
        return uav

    def test_stock_firmware_crashes_when_radio_cut(self):
        uav = self._fly_and_cut_radio(FirmwareConfig.stock_2021_06())
        assert uav.state is FlightState.CRASHED
        assert "watchdog" in uav.crash_reason

    def test_modified_firmware_also_times_out_without_feedback(self):
        # The 10 s watchdog alone is not enough for an indefinite outage;
        # only the feedback task keeps the UAV alive during scans.
        uav = self._fly_and_cut_radio(FirmwareConfig.paper_modified(), run_until=30.0)
        assert uav.state is FlightState.CRASHED


class TestScanTask:
    def _scan_cycle(self, firmware):
        sim, radio, link, uav = make_uav(firmware=firmware)
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))
        outcome = {}

        def pilot():
            elapsed = 0.0
            while elapsed < 2.0:
                link.station_send(proto.encode(proto.Goto(0.3, 0.3, 0.5)))
                yield Timeout(0.2)
                elapsed += 0.2
            link.station_send(proto.encode(proto.StartScan()))
            yield Timeout(0.15)
            radio.turn_off()
            yield Timeout(4.0)  # scan window with the link down
            radio.turn_on()
            packets = link.station_poll()
            outcome["messages"] = [proto.decode(p) for p in packets]
            elapsed = 0.0
            while elapsed < 1.0:
                link.station_send(proto.encode(proto.Goto(0.3, 0.3, 0.5)))
                yield Timeout(0.2)
                elapsed += 0.2

        spawn(sim, pilot())
        sim.run(until=15.0)
        return uav, outcome

    def test_scan_with_modified_firmware_survives_and_delivers(self):
        uav, outcome = self._scan_cycle(FirmwareConfig.paper_modified())
        assert uav.state is FlightState.FLYING
        assert uav.scans_completed == 1
        messages = outcome["messages"]
        assert any(isinstance(m, proto.ScanEnd) for m in messages)
        records = [m for m in messages if isinstance(m, proto.ScanRecordMsg)]
        end = next(m for m in messages if isinstance(m, proto.ScanEnd))
        assert end.record_count == len(records)
        assert len(records) > 5

    def test_scan_with_stock_firmware_loses_uav(self):
        uav, outcome = self._scan_cycle(FirmwareConfig.stock_2021_06())
        # Stock watchdog (2 s) fires during the radio-off scan window.
        assert uav.state is FlightState.CRASHED

    def test_stock_queue_overflows_on_results(self):
        # Even ignoring the watchdog, 16 packets cannot hold a full scan.
        sim, radio, link, uav = make_uav(firmware=FirmwareConfig.paper_modified())
        small = FirmwareConfig(
            crtp_tx_queue_size=16,
            commander_watchdog_timeout_s=10.0,
            feedback_task_enabled=True,
        )
        sim2, radio2, link2, uav2 = make_uav(firmware=small, name="small-queue")
        radio2.turn_on()
        link2.station_send(proto.encode(proto.Takeoff(0.5)))
        outcome = {}

        def pilot():
            elapsed = 0.0
            while elapsed < 2.0:
                link2.station_send(proto.encode(proto.Goto(0.3, 0.3, 0.5)))
                yield Timeout(0.2)
                elapsed += 0.2
            link2.station_send(proto.encode(proto.StartScan()))
            yield Timeout(0.15)
            radio2.turn_off()
            yield Timeout(4.0)
            radio2.turn_on()
            outcome["messages"] = [proto.decode(p) for p in link2.station_poll()]

        spawn(sim2, pilot())
        sim2.run(until=12.0)
        assert link2.uav_tx_queue.stats.dropped > 0
        messages = outcome["messages"]
        records = [m for m in messages if isinstance(m, proto.ScanRecordMsg)]
        assert len(records) <= 16


class TestLanding:
    def test_land_transitions_to_landed(self):
        sim, radio, link, uav = make_uav()
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))
        sim.run(until=2.0)
        link.station_send(proto.encode(proto.Land()))
        sim.run(until=5.0)
        assert uav.state is FlightState.LANDED
        assert uav.flight_ended_at is not None
        assert uav.active_time_s > 0
