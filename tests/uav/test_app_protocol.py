"""Unit tests for the station↔UAV app protocol."""

import pytest

from repro.link import CrtpPacket, CrtpPort
from repro.uav.app_protocol import (
    MAX_SSID_BYTES,
    Goto,
    Land,
    ScanEnd,
    ScanRecordMsg,
    StartScan,
    Status,
    StatusRequest,
    Takeoff,
    decode,
    encode,
)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "message",
        [
            Takeoff(height_m=0.5),
            Goto(x=1.25, y=2.5, z=0.75),
            StartScan(),
            Land(),
            StatusRequest(),
            Status(state=1, battery_fraction=0.75, x=1.0, y=2.0, z=0.5),
            ScanRecordMsg(
                mac="aa:bb:cc:dd:ee:ff", rssi_dbm=-71, channel=11, ssid="net"
            ),
            ScanEnd(record_count=37, x=1.0, y=2.0, z=0.5, battery_fraction=0.4),
        ],
    )
    def test_roundtrip(self, message):
        packet = encode(message)
        assert packet.port == CrtpPort.APP
        decoded = decode(packet)
        if isinstance(message, (StartScan, Land, StatusRequest)):
            assert type(decoded) is type(message)
        elif isinstance(message, Goto):
            assert decoded.position == pytest.approx(message.position)
        elif isinstance(message, Takeoff):
            assert decoded.height_m == pytest.approx(message.height_m)
        elif isinstance(message, Status):
            assert decoded.state == message.state
            assert decoded.battery_fraction == pytest.approx(message.battery_fraction)
        elif isinstance(message, ScanRecordMsg):
            assert decoded == message
        elif isinstance(message, ScanEnd):
            assert decoded.record_count == message.record_count
            assert decoded.position == pytest.approx(message.position)


class TestSsidHandling:
    def test_long_ssid_truncated(self):
        long_ssid = "x" * 40
        packet = encode(
            ScanRecordMsg(
                mac="aa:bb:cc:dd:ee:ff", rssi_dbm=-60, channel=1, ssid=long_ssid
            )
        )
        decoded = decode(packet)
        assert decoded.ssid == "x" * MAX_SSID_BYTES

    def test_unicode_ssid_survives(self):
        packet = encode(
            ScanRecordMsg(
                mac="aa:bb:cc:dd:ee:ff", rssi_dbm=-60, channel=1, ssid="café"
            )
        )
        assert decode(packet).ssid == "café"

    def test_empty_ssid(self):
        packet = encode(
            ScanRecordMsg(mac="aa:bb:cc:dd:ee:ff", rssi_dbm=-60, channel=1, ssid="")
        )
        assert decode(packet).ssid == ""


class TestErrors:
    def test_wrong_port_rejected(self):
        with pytest.raises(ValueError):
            decode(CrtpPacket(port=CrtpPort.LOG, channel=0, payload=b"\x01"))

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            decode(CrtpPacket(port=CrtpPort.APP, channel=0, payload=b""))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            decode(CrtpPacket(port=CrtpPort.APP, channel=0, payload=b"\x7f"))

    def test_malformed_mac_rejected(self):
        with pytest.raises(ValueError):
            encode(ScanRecordMsg(mac="nonsense", rssi_dbm=-60, channel=1, ssid="x"))

    def test_rssi_clamped_to_int8(self):
        packet = encode(
            ScanRecordMsg(mac="aa:bb:cc:dd:ee:ff", rssi_dbm=-250, channel=1, ssid="x")
        )
        assert decode(packet).rssi_dbm == -128
