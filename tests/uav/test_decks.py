"""Unit tests for expansion decks."""

import pytest

from repro.uav import ESP_DECK, LOCO_DECK, Deck, DeckSlots


class TestDeckSlots:
    def test_two_slots_maximum(self):
        slots = DeckSlots()
        slots.attach(LOCO_DECK)
        slots.attach(ESP_DECK)
        with pytest.raises(ValueError):
            slots.attach(Deck("third", 10.0))

    def test_duplicate_rejected(self):
        slots = DeckSlots()
        slots.attach(LOCO_DECK)
        with pytest.raises(ValueError):
            slots.attach(LOCO_DECK)

    def test_names(self):
        slots = DeckSlots()
        slots.attach(LOCO_DECK)
        assert slots.names == ("loco_positioning",)

    def test_total_current_idle_vs_scanning(self):
        slots = DeckSlots()
        slots.attach(LOCO_DECK)
        slots.attach(ESP_DECK)
        idle = slots.total_current_ma(scanning=False)
        scanning = slots.total_current_ma(scanning=True)
        assert idle == LOCO_DECK.idle_current_ma + ESP_DECK.idle_current_ma
        assert scanning == idle + ESP_DECK.active_current_ma


class TestDeck:
    def test_current_for_state(self):
        deck = Deck("d", idle_current_ma=10.0, active_current_ma=5.0)
        assert deck.current_ma(False) == 10.0
        assert deck.current_ma(True) == 15.0
