"""Unit tests for the kinematic flight model."""

import numpy as np
import pytest

from repro.uav import DynamicsConfig, FlightDynamics


def airborne_dynamics(start=(0.0, 0.0, 0.5), **config_kwargs):
    dynamics = FlightDynamics(start, DynamicsConfig(**config_kwargs))
    dynamics.airborne = True
    return dynamics


class TestSetpointTracking:
    def test_reaches_nearby_setpoint_within_leg_budget(self, rng):
        dynamics = airborne_dynamics()
        dynamics.set_setpoint((0.65, 0.0, 0.5))  # one lattice hop
        for _ in range(100):  # 4 s at 25 Hz
            dynamics.update(0.04, rng)
        assert dynamics.at_setpoint

    def test_speed_capped(self, rng):
        dynamics = airborne_dynamics(max_speed_mps=0.7)
        dynamics.set_setpoint((10.0, 0.0, 0.5))
        for _ in range(50):
            dynamics.update(0.04, rng)
            assert np.linalg.norm(dynamics.velocity) <= 0.7 + 1e-9

    def test_hold_jitter_small(self, rng):
        dynamics = airborne_dynamics(hover_jitter_std_m=0.015)
        dynamics.set_setpoint((0.0, 0.0, 0.5))
        deviations = []
        for _ in range(200):
            dynamics.update(0.04, rng)
            deviations.append(np.linalg.norm(dynamics.position - [0, 0, 0.5]))
        assert max(deviations) < 0.1

    def test_not_airborne_does_not_move(self, rng):
        dynamics = FlightDynamics((0.0, 0.0, 0.0))
        dynamics.set_setpoint((1.0, 1.0, 1.0))
        dynamics.update(1.0, rng)
        assert np.allclose(dynamics.position, [0.0, 0.0, 0.0])


class TestUncontrolledDrift:
    def test_drifts_without_setpoint(self, rng):
        dynamics = airborne_dynamics()
        dynamics.clear_setpoint()
        start = dynamics.position.copy()
        for _ in range(250):  # 10 s leveled
            dynamics.update(0.04, rng)
        assert np.linalg.norm(dynamics.position - start) > 0.05

    def test_distance_to_setpoint_inf_without_setpoint(self):
        dynamics = airborne_dynamics()
        assert dynamics.distance_to_setpoint() == float("inf")
        assert not dynamics.at_setpoint


class TestMovingFlag:
    def test_moving_only_en_route(self, rng):
        dynamics = airborne_dynamics()
        assert not dynamics.moving
        dynamics.set_setpoint((2.0, 0.0, 0.5))
        assert dynamics.moving
        for _ in range(200):
            dynamics.update(0.04, rng)
        assert not dynamics.moving

    def test_invalid_dt(self, rng):
        with pytest.raises(ValueError):
            airborne_dynamics().update(-0.1, rng)
