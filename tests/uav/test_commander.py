"""Unit tests for the commander watchdog (§II-C)."""

import numpy as np

from repro.uav import Commander, CommanderState, FirmwareConfig


def commander(watchdog=2.0, level=0.5):
    return Commander(
        FirmwareConfig(
            commander_watchdog_timeout_s=watchdog, setpoint_level_timeout_s=level
        )
    )


class TestWatchdogStates:
    def test_controlled_while_fresh(self):
        cmd = commander()
        cmd.feed((1, 1, 1), now=10.0)
        assert cmd.state(10.3) is CommanderState.CONTROLLED

    def test_levels_after_half_second(self):
        cmd = commander()
        cmd.feed((1, 1, 1), now=10.0)
        assert cmd.state(10.6) is CommanderState.LEVELED

    def test_shutdown_after_watchdog_timeout(self):
        cmd = commander(watchdog=2.0)
        cmd.feed((1, 1, 1), now=10.0)
        assert cmd.state(12.1) is CommanderState.SHUTDOWN
        assert cmd.watchdog_fired

    def test_shutdown_latches(self):
        cmd = commander(watchdog=2.0)
        cmd.feed((1, 1, 1), now=0.0)
        assert cmd.state(3.0) is CommanderState.SHUTDOWN
        cmd.feed((1, 1, 1), now=3.1)
        assert cmd.state(3.2) is CommanderState.SHUTDOWN

    def test_modified_firmware_survives_scan_window(self):
        # The paper raises the watchdog to 10 s to bridge radio-off scans.
        cmd = Commander(FirmwareConfig.paper_modified())
        cmd.feed((1, 1, 1), now=0.0)
        assert cmd.state(3.6) is not CommanderState.SHUTDOWN

    def test_stock_firmware_dies_during_scan_window(self):
        cmd = Commander(FirmwareConfig.stock_2021_06())
        cmd.feed((1, 1, 1), now=0.0)
        assert cmd.state(3.6) is CommanderState.SHUTDOWN


class TestSetpointBookkeeping:
    def test_setpoint_returned_as_copy(self):
        cmd = commander()
        cmd.feed((1.0, 2.0, 3.0), now=0.0)
        setpoint = cmd.setpoint
        setpoint[0] = 99.0
        assert np.allclose(cmd.setpoint, [1.0, 2.0, 3.0])

    def test_no_setpoint_before_first_feed(self):
        cmd = commander()
        assert cmd.setpoint is None
        assert cmd.staleness(5.0) == float("inf")

    def test_counts_setpoints(self):
        cmd = commander()
        for i in range(5):
            cmd.feed((0, 0, 0), now=float(i))
        assert cmd.setpoints_received == 5
