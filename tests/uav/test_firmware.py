"""Unit tests for firmware configurations (§II-C)."""

from repro.uav import FirmwareConfig


class TestStockFirmware:
    def test_stock_defaults(self):
        stock = FirmwareConfig.stock_2021_06()
        assert stock.crtp_tx_queue_size == 16
        assert stock.commander_watchdog_timeout_s == 2.0
        assert not stock.feedback_task_enabled


class TestModifiedFirmware:
    def test_paper_modifications(self):
        modified = FirmwareConfig.paper_modified()
        # The three §II-C changes relative to stock:
        stock = FirmwareConfig.stock_2021_06()
        assert modified.crtp_tx_queue_size > stock.crtp_tx_queue_size
        assert modified.commander_watchdog_timeout_s == 10.0
        assert modified.feedback_task_enabled
        assert modified.feedback_period_s == 0.1

    def test_level_timeout_unchanged(self):
        # The 500 ms leveling behaviour is stock firmware behaviour.
        assert FirmwareConfig.paper_modified().setpoint_level_timeout_s == 0.5
