"""Unit tests for the IMU measurement model."""

import numpy as np
import pytest

from repro.uav import Imu, ImuConfig


class TestAccelerometer:
    def test_reports_specific_force_at_rest(self, rng):
        imu = Imu(ImuConfig(accel_noise_std=0.0, accel_bias_std=0.0), rng)
        reading = imu.read_accel((0.0, 0.0, 0.0), rng)
        assert np.allclose(reading, [0.0, 0.0, 9.81])

    def test_noise_statistics(self, rng):
        imu = Imu(ImuConfig(accel_noise_std=0.1, accel_bias_std=0.0), rng)
        readings = np.array([imu.read_accel((0, 0, 0), rng) for _ in range(2000)])
        assert readings[:, 0].std() == pytest.approx(0.1, rel=0.15)

    def test_bias_is_constant_per_instance(self, rng):
        imu = Imu(ImuConfig(accel_noise_std=0.0, accel_bias_std=0.5), rng)
        a = imu.read_accel((0, 0, 0), rng)
        b = imu.read_accel((0, 0, 0), rng)
        assert np.allclose(a, b)


class TestBarometer:
    def test_altitude_noise(self, rng):
        imu = Imu(ImuConfig(baro_noise_std_m=0.25), rng)
        readings = [imu.read_altitude(1.0, rng) for _ in range(2000)]
        assert np.mean(readings) == pytest.approx(1.0, abs=0.05)
        assert np.std(readings) == pytest.approx(0.25, rel=0.15)
