"""Spatially correlated log-normal shadowing.

Shadowing is the slow, position-dependent deviation of the received power
from the deterministic path-loss trend.  Unlike fast fading it is *frozen
in space*: two nearby receive positions see nearly the same shadowing
value.  This spatial correlation is exactly what the paper's k-NN and
kriging-style predictors exploit, so modelling it faithfully matters more
than any absolute dB value.

The field is synthesised with the randomized spectral (sum-of-cosines)
method: a Gaussian random field with (approximately) Gaussian correlation
of a configurable decorrelation distance, evaluated lazily at arbitrary
3-D points.  Each AP gets an independent field.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["GaussianRandomField", "ShadowingModel"]


class GaussianRandomField:
    """A stationary Gaussian random field over R^3.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the field values.
    correlation_distance_m:
        Distance at which the autocorrelation drops to ~exp(-1).
    rng:
        Source of randomness for the spectral sample.
    n_components:
        Number of random cosine components; more components give a field
        closer to Gaussian (both in marginal and in smoothness).
    """

    def __init__(
        self,
        sigma_db: float,
        correlation_distance_m: float,
        rng: np.random.Generator,
        n_components: int = 96,
    ):
        if sigma_db < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma_db}")
        if correlation_distance_m <= 0:
            raise ValueError(
                f"correlation distance must be > 0, got {correlation_distance_m}"
            )
        self.sigma_db = float(sigma_db)
        self.correlation_distance_m = float(correlation_distance_m)
        self.n_components = int(n_components)
        # Wave vectors sampled from an isotropic Gaussian give a Gaussian
        # correlation function exp(-d^2 / (2 L^2)) for k ~ N(0, 1/L^2).
        scale = 1.0 / self.correlation_distance_m
        self._wave_vectors = rng.normal(0.0, scale, size=(self.n_components, 3))
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        self._amplitude = self.sigma_db * np.sqrt(2.0 / self.n_components)

    def sample(self, point: Sequence[float]) -> float:
        """Field value at a single 3-D ``point``."""
        p = np.asarray(point, dtype=float)
        args = self._wave_vectors @ p + self._phases
        return float(self._amplitude * np.cos(args).sum())

    def sample_many(self, points: np.ndarray) -> np.ndarray:
        """Field values at an (N, 3) array of points."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got shape {pts.shape}")
        args = pts @ self._wave_vectors.T + self._phases
        return self._amplitude * np.cos(args).sum(axis=1)


class ShadowingModel:
    """Per-transmitter correlated shadowing.

    Each transmitter key (e.g. AP MAC address) lazily gets its own
    independent :class:`GaussianRandomField`, seeded from the key so the
    field is reproducible regardless of evaluation order.
    """

    def __init__(
        self,
        sigma_db: float = 3.0,
        correlation_distance_m: float = 2.0,
        seed: int = 0,
        n_components: int = 96,
    ):
        self.sigma_db = float(sigma_db)
        self.correlation_distance_m = float(correlation_distance_m)
        self.seed = int(seed)
        self.n_components = int(n_components)
        self._fields: dict = {}
        self._stacks: dict = {}

    def field_for(self, key: str) -> GaussianRandomField:
        """The shadowing field of transmitter ``key`` (created lazily)."""
        if key not in self._fields:
            from ..sim.rng import stable_hash

            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, stable_hash(key)])
            )
            self._fields[key] = GaussianRandomField(
                self.sigma_db,
                self.correlation_distance_m,
                rng,
                n_components=self.n_components,
            )
        return self._fields[key]

    def loss_db(self, key: str, point: Sequence[float]) -> float:
        """Shadowing contribution (signed dB) for ``key`` at ``point``."""
        if self.sigma_db == 0.0:
            return 0.0
        return self.field_for(key).sample(point)

    def loss_db_many(self, key: str, points: np.ndarray) -> np.ndarray:
        """Shadowing for ``key`` at an ``(N, 3)`` block of points.

        One :meth:`GaussianRandomField.sample_many` matmul instead of N
        scalar field evaluations; a zero-sigma model short-circuits to
        zeros without materialising a field.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 3)
        if self.sigma_db == 0.0:
            return np.zeros(len(pts))
        return self.field_for(key).sample_many(pts)

    #: Point-block chunk bounding the stacked cosine matrix (~n_keys *
    #: n_components columns per point row).
    _MATRIX_CHUNK = 128

    def loss_db_matrix(self, keys, points: np.ndarray) -> np.ndarray:
        """Shadowing of every key at every point, ``(n_keys, n_points)``.

        All fields' wave vectors and phases are stacked once per key
        set (cached), turning the per-transmitter field loop into a
        single cosine matmul per point chunk — the shape the scanner
        needs when pricing a whole AP population at one position.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 3)
        keys = tuple(keys)
        if self.sigma_db == 0.0 or not keys:
            return np.zeros((len(keys), len(pts)))
        waves, phases = self._stack_for(keys)
        amplitude = self.field_for(keys[0])._amplitude
        out = np.empty((len(keys), len(pts)))
        for start in range(0, len(pts), self._MATRIX_CHUNK):
            sl = slice(start, min(start + self._MATRIX_CHUNK, len(pts)))
            args = pts[sl] @ waves.T + phases
            out[:, sl] = (
                np.cos(args)
                .reshape(sl.stop - sl.start, len(keys), self.n_components)
                .sum(axis=2)
                .T
            )
        out *= amplitude
        return out

    def _stack_for(self, keys) -> tuple:
        """Concatenated (wave_vectors, phases) of every key's field."""
        cached = self._stacks.get(keys)
        if cached is None:
            fields = [self.field_for(key) for key in keys]
            cached = (
                np.concatenate([f._wave_vectors for f in fields]),
                np.concatenate([f._phases for f in fields]),
            )
            self._stacks[keys] = cached
        return cached
