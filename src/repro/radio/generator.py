"""Procedural building generation: registry-compatible scenarios at scale.

The hand-built scenarios (condo / office / warehouse) pin down three
points of the environment space; this module turns that point set into
a *family*.  :func:`generate_building` takes a :class:`BuildingSpec` —
a small, JSON-serializable parameter record — and emits a fully built
:class:`GeneratedScenario` carrying the exact same contract as every
registry builder (an :class:`~.environment.IndoorEnvironment`, the
flight volume / room / building reference cuboids, anchor corners and
seeded :class:`~repro.sim.rng.RandomStreams`), so campaigns, active
sampling, the REM toolchain and the benchmarks run on generated
buildings unchanged.

What a spec controls:

* **floor-plan template** — ``room-grid`` (rectangular room lattice
  with door gaps), ``corridor-spine`` (central corridor, rooms off both
  sides) or ``open-plan`` (one hall, a service core and a few glass
  partitions);
* **vertical stacking** — any number of floors separated by
  reinforced-concrete slabs, with a stairwell opening cut through every
  interior slab;
* **material palette** — ``residential`` / ``commercial`` /
  ``industrial`` map the structural roles (shell, partition, slab,
  clutter) onto :mod:`~.materials` and pick a matching link budget;
* **AP placement policy** — ``per-room`` (seeded Bernoulli per room,
  ceiling-mounted), ``ceiling-grid`` (regular lattice per floor) or
  ``perimeter`` (ring along the shell);
* **clutter and no-fly cuboids** — seeded obstacles that attenuate
  (clutter becomes thin walls) or constrain planning (no-fly boxes are
  exported through ``metadata["no_fly"]`` for
  :class:`~repro.station.active.ActiveSamplingConfig`).

Reproducibility is the load-bearing property: the same spec (seed
included) rebuilds the identical building — wall for wall, AP for AP,
RSS field for RSS field — which is what lets a scenario *name* like
``generated:room-grid?floors=3&seed=7`` serve as a complete experiment
identifier (see :func:`generated_builder` and the registry hook in
:mod:`~.scenarios`).

The output uses the repo-wide frame convention: the flight volume's
min corner sits at the origin, with the rest of the building translated
around it (start positions, anchor layouts and missions all assume it).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlencode

import numpy as np

from ..sim.rng import RandomStreams, stable_hash
from .accesspoint import AccessPoint, _make_ssid, _sample_channel, format_mac
from .environment import IndoorEnvironment, LinkBudget
from .geometry import Cuboid, Wall
from .materials import (
    BRICK,
    CONCRETE,
    DRYWALL,
    GLASS,
    REINFORCED_CONCRETE,
    WOOD,
    Material,
)
from .scenarios import (
    GENERATED_SCENARIO_PREFIX,
    DemoScenario,
    DemoScenarioConfig,
    register_scenario,
)

__all__ = [
    "BuildingSpec",
    "GeneratedScenario",
    "MaterialPalette",
    "PALETTES",
    "TEMPLATES",
    "AP_POLICIES",
    "GENERATED_PREFIX",
    "GENERATED_PRESETS",
    "generate_building",
    "build_generated_scenario",
    "generated_builder",
]

#: Scenario-name prefix that routes registry lookups to this module
#: (defined in :mod:`~.scenarios`, which owns the routing).
GENERATED_PREFIX = GENERATED_SCENARIO_PREFIX

#: Floor-plan templates a spec may select.
TEMPLATES: Tuple[str, ...] = ("room-grid", "corridor-spine", "open-plan")

#: AP placement policies a spec may select.
AP_POLICIES: Tuple[str, ...] = ("per-room", "ceiling-grid", "perimeter")

#: Clearance between a scan room's walls and the flight volume (m).
_VOLUME_MARGIN_M = 0.45
#: Clearance kept below the ceiling slab (m).
_CEILING_CLEARANCE_M = 0.45
#: Hover height of the lowest scan layer above the floor slab (m).
_FLOOR_CLEARANCE_M = 0.15
#: Cap on the flight volume's horizontal extent (m): campaign legs
#: assume short hops, so huge open halls scan a central sub-volume.
_MAX_SCAN_EXTENT_M = 8.0
#: Stairwell opening cut through every interior slab (m).
_STAIRWELL_SIZE_M = (1.2, 2.6)


@dataclass(frozen=True)
class MaterialPalette:
    """Structural-role → material mapping plus the matching link budget.

    Parameters
    ----------
    name:
        Palette identifier (the ``BuildingSpec.palette`` value).
    shell:
        Envelope walls around the footprint.
    partition:
        Interior room dividers.
    corridor:
        Corridor walls (``corridor-spine`` only).
    slab:
        Floor/roof slabs.
    clutter:
        Thin walls of generated clutter boxes.
    budget:
        Link-budget calibration for buildings of this construction.
    """

    name: str
    shell: Material
    partition: Material
    corridor: Material
    slab: Material
    clutter: Material
    budget: LinkBudget


#: Built-in construction palettes, keyed by ``BuildingSpec.palette``.
PALETTES: Dict[str, MaterialPalette] = {
    palette.name: palette
    for palette in (
        MaterialPalette(
            name="residential",
            shell=BRICK.scaled(0.25),
            partition=DRYWALL,
            corridor=BRICK.scaled(0.15),
            slab=REINFORCED_CONCRETE,
            clutter=WOOD.scaled(0.04),
            budget=LinkBudget(path_loss_exponent=3.5, shadowing_sigma_db=2.0),
        ),
        MaterialPalette(
            name="commercial",
            shell=CONCRETE.scaled(0.25),
            partition=GLASS.scaled(0.012),
            corridor=DRYWALL,
            slab=REINFORCED_CONCRETE,
            clutter=WOOD.scaled(0.03),
            budget=LinkBudget(path_loss_exponent=3.0, shadowing_sigma_db=2.5),
        ),
        MaterialPalette(
            name="industrial",
            shell=CONCRETE.scaled(0.3),
            partition=CONCRETE.scaled(0.2),
            corridor=CONCRETE.scaled(0.2),
            slab=REINFORCED_CONCRETE,
            clutter=CONCRETE.scaled(0.1),
            budget=LinkBudget(
                path_loss_exponent=2.4,
                shadowing_sigma_db=3.0,
                fading_sigma_db=5.0,
            ),
        ),
    )
}


@dataclass(frozen=True)
class BuildingSpec:
    """Complete, JSON-serializable description of one generated building.

    Every field has a default, so a spec is also addressable as a query
    string on a scenario name (``generated:<template>?field=value&...``,
    see :meth:`from_name`); unspecified fields take the defaults below.
    The ``seed`` drives *all* randomness — two calls with an equal spec
    rebuild the identical building.
    """

    #: Floor-plan template (one of :data:`TEMPLATES`).
    template: str = "room-grid"
    #: Master seed for layout, AP placement and the RF substrate.
    seed: int = 63
    #: Number of storeys.
    floors: int = 1
    #: Footprint extent along x (m).
    width_m: float = 18.0
    #: Footprint extent along y (m).
    depth_m: float = 12.0
    #: Storey height, slab to slab (m).
    floor_height_m: float = 2.8
    #: Target room pitch for the room lattice / corridor cells (m).
    room_m: float = 4.5
    #: Corridor width for ``corridor-spine`` (m).
    corridor_m: float = 2.0
    #: Door-gap width cut into partition walls (m); 0 disables doors.
    door_m: float = 0.9
    #: Construction palette (one of :data:`PALETTES`).
    palette: str = "residential"
    #: AP placement policy (one of :data:`AP_POLICIES`).
    ap_policy: str = "per-room"
    #: AP lattice pitch for ``ceiling-grid`` / ``perimeter`` (m).
    ap_spacing_m: float = 6.0
    #: Probability a room hosts an AP under ``per-room``.
    ap_room_probability: float = 0.7
    #: Distinct SSIDs shared across the AP population.
    n_ssids: int = 8
    #: TX-power range of the population (dBm, uniform).
    ap_power_dbm: Tuple[float, float] = (14.0, 20.0)
    #: Seeded clutter boxes per floor (each becomes four thin walls).
    clutter_per_floor: int = 0
    #: Seeded no-fly cuboids cut out of the flight volume (metadata
    #: only — consumers pass them to the active-sampling planner).
    no_fly_zones: int = 0
    #: Storey whose largest room hosts the scan campaign.
    scan_floor: int = 0

    def __post_init__(self) -> None:
        """Validate every knob against the supported envelope."""
        if self.template not in TEMPLATES:
            raise ValueError(
                f"unknown template {self.template!r}; choose from {TEMPLATES}"
            )
        if self.palette not in PALETTES:
            raise ValueError(
                f"unknown palette {self.palette!r}; "
                f"choose from {tuple(sorted(PALETTES))}"
            )
        if self.ap_policy not in AP_POLICIES:
            raise ValueError(
                f"unknown ap_policy {self.ap_policy!r}; choose from {AP_POLICIES}"
            )
        if self.floors < 1:
            raise ValueError("floors must be >= 1")
        if not 0 <= self.scan_floor < self.floors:
            raise ValueError(
                f"scan_floor {self.scan_floor} outside 0..{self.floors - 1}"
            )
        if self.width_m < 6.0 or self.depth_m < 6.0:
            raise ValueError("footprint must be at least 6 m x 6 m")
        if self.floor_height_m < 2.2:
            raise ValueError("floor_height_m must be >= 2.2")
        if self.room_m < 2.4:
            raise ValueError("room_m must be >= 2.4")
        if self.corridor_m < 1.2:
            raise ValueError("corridor_m must be >= 1.2")
        if self.door_m < 0.0:
            raise ValueError("door_m must be >= 0")
        if not 0.0 <= self.ap_room_probability <= 1.0:
            raise ValueError("ap_room_probability must be in [0, 1]")
        if self.ap_spacing_m <= 0.0:
            raise ValueError("ap_spacing_m must be positive")
        if self.n_ssids < 1:
            raise ValueError("n_ssids must be >= 1")
        if self.ap_power_dbm[0] > self.ap_power_dbm[1]:
            raise ValueError("ap_power_dbm must be (low, high)")
        if self.clutter_per_floor < 0 or self.no_fly_zones < 0:
            raise ValueError("clutter/no-fly counts must be >= 0")
        if (
            self.template == "corridor-spine"
            and self.depth_m < self.corridor_m + 4.0
        ):
            raise ValueError(
                "corridor-spine needs depth_m >= corridor_m + 4 m of rooms"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict (JSON-compatible) form of the spec."""
        record = asdict(self)
        record["ap_power_dbm"] = list(self.ap_power_dbm)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "BuildingSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys raise)."""
        known = {f.name for f in fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ValueError(
                f"unknown BuildingSpec fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        coerced = {key: _coerce_field(key, value) for key, value in record.items()}
        return cls(**coerced)

    def to_json(self) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BuildingSpec":
        """Parse a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # scenario-name form
    # ------------------------------------------------------------------
    def to_name(self) -> str:
        """The registry name reproducing this spec.

        Only fields that differ from the defaults appear in the query
        string, so names stay short: ``generated:corridor-spine`` or
        ``generated:room-grid?floors=3&seed=7``.
        """
        defaults = BuildingSpec(template=self.template)
        overrides = []
        for spec_field in fields(self):
            if spec_field.name == "template":
                continue
            value = getattr(self, spec_field.name)
            if value != getattr(defaults, spec_field.name):
                if isinstance(value, tuple):
                    value = ",".join(_format_number(v) for v in value)
                elif isinstance(value, float):
                    value = _format_number(value)
                overrides.append((spec_field.name, value))
        query = urlencode(sorted(overrides))
        suffix = f"?{query}" if query else ""
        return f"{GENERATED_PREFIX}{self.template}{suffix}"

    @classmethod
    def from_name(cls, name: str) -> "BuildingSpec":
        """Parse a ``generated:<template>?field=value&...`` name."""
        return cls.from_dict(parse_generated_name(name))


def _format_number(value: float) -> str:
    """Render a float exactly (``repr`` round-trips; names must rebuild
    the identical spec, so lossy compact formats are off the table)."""
    return repr(value)


def _coerce_field(name: str, value: object):
    """Coerce a JSON/query value onto a :class:`BuildingSpec` field type."""
    if name in ("template", "palette", "ap_policy"):
        return str(value)
    if name in (
        "seed",
        "floors",
        "n_ssids",
        "clutter_per_floor",
        "no_fly_zones",
        "scan_floor",
    ):
        return int(value)
    if name == "ap_power_dbm":
        if isinstance(value, str):
            value = value.split(",")
        low, high = value
        return (float(low), float(high))
    return float(value)


def parse_generated_name(name: str) -> Dict[str, object]:
    """Split a ``generated:`` scenario name into raw spec fields.

    Returns the template plus every query override, un-coerced (values
    come back as strings exactly as written in the name); feed the
    result to :meth:`BuildingSpec.from_dict`.
    """
    if not name.startswith(GENERATED_PREFIX):
        raise ValueError(f"not a generated scenario name: {name!r}")
    body = name[len(GENERATED_PREFIX) :]
    template, _, query = body.partition("?")
    if template not in TEMPLATES:
        raise KeyError(
            f"unknown generated template {template!r}; "
            f"available: {TEMPLATES}"
        )
    params: Dict[str, object] = {"template": template}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key == "template":
            raise ValueError("template belongs in the name, not the query")
        if key in params:
            raise ValueError(f"duplicate query field {key!r} in {name!r}")
        params[key] = value
    return params


@dataclass
class GeneratedScenario(DemoScenario):
    """A procedurally generated building plus its provenance.

    Extends the :class:`~.scenarios.DemoScenario` contract (so every
    consumer of the registry works unchanged) with the generating
    :class:`BuildingSpec` and a JSON-safe ``metadata`` record of what
    was built (wall/AP/room counts, stairwell and clutter geometry,
    no-fly cuboids, the canonical registry name).
    """

    spec: BuildingSpec = field(default_factory=BuildingSpec)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def no_fly(self) -> Tuple[Cuboid, ...]:
        """Generated no-fly cuboids, ready for the active planner."""
        return tuple(
            Cuboid(tuple(zone[0]), tuple(zone[1]))
            for zone in self.metadata.get("no_fly", ())
        )


# ----------------------------------------------------------------------
# floor-plan construction (building frame: footprint min corner at 0,0,0)
# ----------------------------------------------------------------------
def _wall_with_door(
    axis: int,
    offset: float,
    u_span: Tuple[float, float],
    z_span: Tuple[float, float],
    material: Material,
    rng: np.random.Generator,
    door_m: float,
    name: str,
) -> List[Wall]:
    """One partition segment, split around a seeded door gap.

    The gap is omitted (solid wall) when the segment is too short to
    keep 0.25 m of wall on both sides of the door.
    """
    u0, u1 = u_span
    if u1 - u0 <= 1e-9:
        return []
    length = u1 - u0
    if door_m <= 0.0 or length < door_m + 0.5:
        return [Wall(axis, offset, (u_span, z_span), material, name=name)]
    center = float(rng.uniform(u0 + 0.25 + door_m / 2, u1 - 0.25 - door_m / 2))
    return [
        Wall(
            axis,
            offset,
            ((u0, center - door_m / 2), z_span),
            material,
            name=f"{name}/a",
        ),
        Wall(
            axis,
            offset,
            ((center + door_m / 2, u1), z_span),
            material,
            name=f"{name}/b",
        ),
    ]


def _cells(extent: float, pitch: float) -> np.ndarray:
    """Cell boundaries splitting ``extent`` into ~``pitch``-sized cells."""
    n = max(1, int(round(extent / pitch)))
    return np.linspace(0.0, extent, n + 1)


def _plan_room_grid(
    spec: BuildingSpec,
    palette: MaterialPalette,
    rng: np.random.Generator,
    z0: float,
    z1: float,
    level: int,
) -> Tuple[List[Wall], List[Cuboid], List[Cuboid]]:
    """Rectangular room lattice with door gaps in every partition.

    Returns ``(walls, rooms, scan_candidates)`` like every planner;
    here every room is a scan candidate.
    """
    xs = _cells(spec.width_m, spec.room_m)
    ys = _cells(spec.depth_m, spec.room_m)
    walls: List[Wall] = []
    z_span = (z0, z1)
    for i, x in enumerate(xs[1:-1], start=1):
        for j in range(len(ys) - 1):
            walls.extend(
                _wall_with_door(
                    0,
                    float(x),
                    (float(ys[j]), float(ys[j + 1])),
                    z_span,
                    palette.partition,
                    rng,
                    spec.door_m,
                    name=f"f{level}/part_x{i}y{j}",
                )
            )
    for j, y in enumerate(ys[1:-1], start=1):
        for i in range(len(xs) - 1):
            walls.extend(
                _wall_with_door(
                    1,
                    float(y),
                    (float(xs[i]), float(xs[i + 1])),
                    z_span,
                    palette.partition,
                    rng,
                    spec.door_m,
                    name=f"f{level}/part_y{j}x{i}",
                )
            )
    rooms = [
        Cuboid(
            (float(xs[i]), float(ys[j]), z0),
            (float(xs[i + 1]), float(ys[j + 1]), z1),
        )
        for i in range(len(xs) - 1)
        for j in range(len(ys) - 1)
    ]
    return walls, rooms, rooms


def _plan_corridor_spine(
    spec: BuildingSpec,
    palette: MaterialPalette,
    rng: np.random.Generator,
    z0: float,
    z1: float,
    level: int,
) -> Tuple[List[Wall], List[Cuboid], List[Cuboid]]:
    """Central corridor along x with rooms off both sides.

    The corridor counts as a room (APs may live there, clutter may
    not block it) but never as a scan candidate — campaigns fly in
    proper rooms.  The depth/corridor envelope is validated by
    :meth:`BuildingSpec.__post_init__`.
    """
    yc0 = spec.depth_m / 2 - spec.corridor_m / 2
    yc1 = spec.depth_m / 2 + spec.corridor_m / 2
    xs = _cells(spec.width_m, spec.room_m)
    walls: List[Wall] = []
    z_span = (z0, z1)
    # Corridor walls: one segment per room cell, each with a door.
    for side, yc in (("s", yc0), ("n", yc1)):
        for i in range(len(xs) - 1):
            walls.extend(
                _wall_with_door(
                    1,
                    float(yc),
                    (float(xs[i]), float(xs[i + 1])),
                    z_span,
                    palette.corridor,
                    rng,
                    spec.door_m,
                    name=f"f{level}/corr_{side}{i}",
                )
            )
    # Room dividers perpendicular to the corridor (solid).
    for i, x in enumerate(xs[1:-1], start=1):
        walls.append(
            Wall(
                0,
                float(x),
                ((0.0, yc0), z_span),
                palette.partition,
                name=f"f{level}/div_s{i}",
            )
        )
        walls.append(
            Wall(
                0,
                float(x),
                ((yc1, spec.depth_m), z_span),
                palette.partition,
                name=f"f{level}/div_n{i}",
            )
        )
    rooms = [
        Cuboid((float(xs[i]), 0.0, z0), (float(xs[i + 1]), yc0, z1))
        for i in range(len(xs) - 1)
    ]
    rooms += [
        Cuboid((float(xs[i]), yc1, z0), (float(xs[i + 1]), spec.depth_m, z1))
        for i in range(len(xs) - 1)
    ]
    candidates = list(rooms)
    rooms.append(Cuboid((0.0, yc0, z0), (spec.width_m, yc1, z1)))
    return walls, rooms, candidates


def _plan_open_plan(
    spec: BuildingSpec,
    palette: MaterialPalette,
    rng: np.random.Generator,
    z0: float,
    z1: float,
    level: int,
) -> Tuple[List[Wall], List[Cuboid], List[Cuboid]]:
    """One open hall with a service core and a few glass partitions.

    The hall is the only scan candidate; the core hosts APs/clutter.
    """
    walls: List[Wall] = []
    z_span = (z0, z1)
    # Service core: a box against the -x / -y corner region.
    core_w = min(3.0, spec.width_m / 4)
    core_d = min(3.5, spec.depth_m / 3)
    cx0 = float(rng.uniform(0.5, max(0.6, spec.width_m / 4)))
    cy0 = 0.5
    core = Cuboid((cx0, cy0, z0), (cx0 + core_w, cy0 + core_d, z1))
    walls.extend(
        _wall_with_door(
            0,
            cx0,
            (cy0, cy0 + core_d),
            z_span,
            palette.partition,
            rng,
            spec.door_m,
            name=f"f{level}/core_w",
        )
    )
    walls.append(
        Wall(
            0,
            cx0 + core_w,
            ((cy0, cy0 + core_d), z_span),
            palette.partition,
            name=f"f{level}/core_e",
        )
    )
    walls.append(
        Wall(
            1,
            cy0 + core_d,
            ((cx0, cx0 + core_w), z_span),
            palette.partition,
            name=f"f{level}/core_n",
        )
    )
    # A couple of partial glass partitions across the hall.
    glass = GLASS.scaled(0.012)
    for k in range(2):
        x = float(
            rng.uniform(spec.width_m * (0.45 + 0.2 * k), spec.width_m * 0.9)
        )
        y_lo = float(rng.uniform(0.0, spec.depth_m * 0.4))
        walls.append(
            Wall(
                0,
                x,
                ((y_lo, min(y_lo + spec.depth_m * 0.5, spec.depth_m)), z_span),
                glass,
                name=f"f{level}/screen{k}",
            )
        )
    # The hall (minus nothing — the core overlaps it harmlessly) is the
    # single room of the floor.
    hall = Cuboid((0.0, 0.0, z0), (spec.width_m, spec.depth_m, z1))
    return walls, [hall, core], [hall]


_TEMPLATE_PLANNERS = {
    "room-grid": _plan_room_grid,
    "corridor-spine": _plan_corridor_spine,
    "open-plan": _plan_open_plan,
}


def _slab_with_opening(
    z: float,
    footprint: Tuple[float, float],
    hole: Optional[Cuboid],
    material: Material,
    name: str,
) -> List[Wall]:
    """A floor slab, split into up to four rectangles around ``hole``."""
    width, depth = footprint
    if hole is None:
        return [Wall(2, z, ((0.0, width), (0.0, depth)), material, name=name)]
    hx0, hy0, _ = hole.min_corner
    hx1, hy1, _ = hole.max_corner
    pieces = [
        ((0.0, hx0), (0.0, depth), "w"),
        ((hx1, width), (0.0, depth), "e"),
        ((hx0, hx1), (0.0, hy0), "s"),
        ((hx0, hx1), (hy1, depth), "n"),
    ]
    walls = []
    for (x0, x1), (y0, y1), tag in pieces:
        if x1 - x0 > 1e-9 and y1 - y0 > 1e-9:
            walls.append(
                Wall(
                    2,
                    z,
                    ((x0, x1), (y0, y1)),
                    material,
                    name=f"{name}/{tag}",
                )
            )
    return walls


def _place_stairwell(
    spec: BuildingSpec, rng: np.random.Generator
) -> Optional[Cuboid]:
    """Seeded stairwell footprint (None for single-storey buildings)."""
    if spec.floors < 2:
        return None
    sw, sd = _STAIRWELL_SIZE_M
    x0 = float(rng.uniform(0.4, max(0.5, spec.width_m - sw - 0.4)))
    y0 = float(rng.uniform(0.4, max(0.5, spec.depth_m - sd - 0.4)))
    height = spec.floors * spec.floor_height_m
    return Cuboid((x0, y0, 0.0), (x0 + sw, y0 + sd, height))


# ----------------------------------------------------------------------
# AP placement policies (building frame)
# ----------------------------------------------------------------------
def _ceiling_z(level: int, spec: BuildingSpec) -> float:
    """Mounting height just below the ceiling slab of ``level``."""
    return (level + 1) * spec.floor_height_m - 0.25


def _ap_positions_per_room(
    spec: BuildingSpec,
    rooms_by_floor: List[List[Cuboid]],
    rng: np.random.Generator,
) -> List[Tuple[float, float, float]]:
    """Seeded Bernoulli per room: most rooms host one ceiling AP."""
    positions = []
    for level, rooms in enumerate(rooms_by_floor):
        for room in rooms:
            if rng.random() >= spec.ap_room_probability:
                continue
            cx, cy, _ = room.center
            x = float(np.clip(cx + rng.uniform(-0.5, 0.5), 0.3, spec.width_m - 0.3))
            y = float(np.clip(cy + rng.uniform(-0.5, 0.5), 0.3, spec.depth_m - 0.3))
            positions.append((x, y, _ceiling_z(level, spec)))
    return positions


def _ap_positions_ceiling_grid(
    spec: BuildingSpec,
    rooms_by_floor: List[List[Cuboid]],
    rng: np.random.Generator,
) -> List[Tuple[float, float, float]]:
    """Regular ceiling lattice per floor (corporate deployment)."""
    nx = max(1, int(round(spec.width_m / spec.ap_spacing_m)))
    ny = max(1, int(round(spec.depth_m / spec.ap_spacing_m)))
    positions = []
    for level in range(spec.floors):
        z = _ceiling_z(level, spec)
        for i in range(nx):
            for j in range(ny):
                positions.append(
                    (
                        (i + 0.5) * spec.width_m / nx,
                        (j + 0.5) * spec.depth_m / ny,
                        z,
                    )
                )
    return positions


def _ap_positions_perimeter(
    spec: BuildingSpec,
    rooms_by_floor: List[List[Cuboid]],
    rng: np.random.Generator,
) -> List[Tuple[float, float, float]]:
    """APs ringing the inside of the shell at ``ap_spacing_m`` intervals."""
    inset = 0.6
    x0, x1 = inset, spec.width_m - inset
    y0, y1 = inset, spec.depth_m - inset
    # Walk the rectangle perimeter and drop APs every ap_spacing_m.
    legs = [
        ((x0, y0), (x1, y0)),
        ((x1, y0), (x1, y1)),
        ((x1, y1), (x0, y1)),
        ((x0, y1), (x0, y0)),
    ]
    ring: List[Tuple[float, float]] = []
    carry = 0.0
    for (ax, ay), (bx, by) in legs:
        length = float(np.hypot(bx - ax, by - ay))
        distance = carry
        while distance < length:
            t = distance / length
            ring.append((ax + t * (bx - ax), ay + t * (by - ay)))
            distance += spec.ap_spacing_m
        carry = distance - length
    positions = []
    for level in range(spec.floors):
        z = _ceiling_z(level, spec)
        positions.extend((x, y, z) for x, y in ring)
    return positions


_AP_PLACERS = {
    "per-room": _ap_positions_per_room,
    "ceiling-grid": _ap_positions_ceiling_grid,
    "perimeter": _ap_positions_perimeter,
}


def _populate_aps(
    spec: BuildingSpec,
    rooms_by_floor: List[List[Cuboid]],
    scan_room: Cuboid,
    rng: np.random.Generator,
) -> List[AccessPoint]:
    """Instantiate the AP population for the selected placement policy."""
    positions = _AP_PLACERS[spec.ap_policy](spec, rooms_by_floor, rng)
    if not positions:
        # A building nobody can scan is useless: guarantee one AP.
        cx, cy, _ = scan_room.center
        positions = [(float(cx), float(cy), _ceiling_z(spec.scan_floor, spec))]
    n_ssids = min(spec.n_ssids, len(positions))
    ssids = [_make_ssid(rng, i) for i in range(n_ssids)]
    base_mac = int(rng.integers(2**40)) << 8
    aps = []
    for i, position in enumerate(positions):
        ssid = ssids[i] if i < n_ssids else ssids[int(rng.integers(n_ssids))]
        aps.append(
            AccessPoint(
                mac=format_mac((base_mac + i * 7 + int(rng.integers(7))) % 2**48),
                ssid=ssid,
                channel=_sample_channel(rng),
                position=tuple(float(v) for v in position),
                tx_power_dbm=float(rng.uniform(*spec.ap_power_dbm)),
            )
        )
    return aps


# ----------------------------------------------------------------------
# clutter / no-fly
# ----------------------------------------------------------------------
def _clutter_boxes(
    spec: BuildingSpec,
    rooms_by_floor: List[List[Cuboid]],
    scan_room: Cuboid,
    rng: np.random.Generator,
) -> List[Cuboid]:
    """Seeded clutter cuboids (furniture, racks) placed inside rooms."""
    boxes = []
    for rooms in rooms_by_floor:
        hosts = [room for room in rooms if room != scan_room] or rooms
        for _ in range(spec.clutter_per_floor):
            room = hosts[int(rng.integers(len(hosts)))]
            sx = float(rng.uniform(0.6, 1.5))
            sy = float(rng.uniform(0.6, 1.5))
            sz = float(rng.uniform(1.0, 2.0))
            rx0, ry0, rz0 = room.min_corner
            rx1, ry1, _ = room.max_corner
            if rx1 - rx0 < sx + 0.4 or ry1 - ry0 < sy + 0.4:
                continue
            x0 = float(rng.uniform(rx0 + 0.2, rx1 - sx - 0.2))
            y0 = float(rng.uniform(ry0 + 0.2, ry1 - sy - 0.2))
            boxes.append(Cuboid((x0, y0, rz0), (x0 + sx, y0 + sy, rz0 + sz)))
    return boxes


def _clutter_walls(boxes: Sequence[Cuboid], material: Material) -> List[Wall]:
    """Four thin side walls per clutter box (top/bottom faces omitted)."""
    walls = []
    for index, box in enumerate(boxes):
        (x0, y0, z0), (x1, y1, z1) = box.min_corner, box.max_corner
        z_span = (z0, z1)
        walls += [
            Wall(0, x0, ((y0, y1), z_span), material, name=f"clutter{index}/w"),
            Wall(0, x1, ((y0, y1), z_span), material, name=f"clutter{index}/e"),
            Wall(1, y0, ((x0, x1), z_span), material, name=f"clutter{index}/s"),
            Wall(1, y1, ((x0, x1), z_span), material, name=f"clutter{index}/n"),
        ]
    return walls


def _no_fly_boxes(
    spec: BuildingSpec, volume: Cuboid, rng: np.random.Generator
) -> List[Cuboid]:
    """Seeded keep-out cuboids carved out of the flight volume."""
    boxes = []
    lo = np.asarray(volume.min_corner)
    hi = np.asarray(volume.max_corner)
    span = hi - lo
    for _ in range(spec.no_fly_zones):
        size = np.minimum(rng.uniform(0.4, 0.9, size=3), span * 0.4)
        corner = lo + rng.uniform(0.0, 1.0, size=3) * (span - size)
        top = corner + size
        boxes.append(
            Cuboid(
                tuple(float(v) for v in corner),
                tuple(float(v) for v in top),
            )
        )
    return boxes


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------
def _translate_wall(wall: Wall, shift: np.ndarray) -> Wall:
    """The same wall expressed in a frame translated by ``shift``."""
    u_axis, v_axis = wall.in_plane_axes
    (u0, u1), (v0, v1) = wall.bounds
    return Wall(
        wall.axis,
        wall.offset + float(shift[wall.axis]),
        (
            (u0 + float(shift[u_axis]), u1 + float(shift[u_axis])),
            (v0 + float(shift[v_axis]), v1 + float(shift[v_axis])),
        ),
        wall.material,
        name=wall.name,
    )


def _translate_cuboid(box: Cuboid, shift: np.ndarray) -> Cuboid:
    """The same cuboid expressed in a frame translated by ``shift``."""
    return Cuboid(
        tuple(float(c + s) for c, s in zip(box.min_corner, shift)),
        tuple(float(c + s) for c, s in zip(box.max_corner, shift)),
    )


def _scan_volume(spec: BuildingSpec, scan_room: Cuboid) -> Cuboid:
    """The flight volume inset from the scan room's walls and slabs."""
    (x0, y0, z0), (x1, y1, z1) = scan_room.min_corner, scan_room.max_corner
    x0, y0 = x0 + _VOLUME_MARGIN_M, y0 + _VOLUME_MARGIN_M
    x1, y1 = x1 - _VOLUME_MARGIN_M, y1 - _VOLUME_MARGIN_M
    # Huge halls scan a centered sub-volume: campaign legs assume short
    # hops between adjacent lattice points.
    if x1 - x0 > _MAX_SCAN_EXTENT_M:
        mid = (x0 + x1) / 2
        x0, x1 = mid - _MAX_SCAN_EXTENT_M / 2, mid + _MAX_SCAN_EXTENT_M / 2
    if y1 - y0 > _MAX_SCAN_EXTENT_M:
        mid = (y0 + y1) / 2
        y0, y1 = mid - _MAX_SCAN_EXTENT_M / 2, mid + _MAX_SCAN_EXTENT_M / 2
    return Cuboid(
        (x0, y0, z0 + _FLOOR_CLEARANCE_M),
        (x1, y1, z1 - _CEILING_CLEARANCE_M),
    )


def generate_building(spec: BuildingSpec) -> GeneratedScenario:
    """Build the complete scenario described by ``spec``.

    Deterministic in ``spec`` (the seed included): wall lists, the AP
    population and the frozen shadowing fields all reproduce exactly.
    The returned scenario uses the repo frame convention — the flight
    volume's min corner is the origin.
    """
    palette = PALETTES[spec.palette]
    rng = np.random.default_rng(
        np.random.SeedSequence((spec.seed, stable_hash(spec.template)))
    )
    height = spec.floors * spec.floor_height_m
    footprint = (spec.width_m, spec.depth_m)
    planner = _TEMPLATE_PLANNERS[spec.template]

    walls: List[Wall] = []
    rooms_by_floor: List[List[Cuboid]] = []
    candidates_by_floor: List[List[Cuboid]] = []
    for level in range(spec.floors):
        z0 = level * spec.floor_height_m
        z1 = z0 + spec.floor_height_m
        floor_walls, rooms, candidates = planner(spec, palette, rng, z0, z1, level)
        walls.extend(floor_walls)
        rooms_by_floor.append(rooms)
        candidates_by_floor.append(candidates)

    # Envelope: one shell wall per side spanning the full height.
    z_full = (0.0, height)
    walls += [
        Wall(0, 0.0, ((0.0, spec.depth_m), z_full), palette.shell, name="shell_w"),
        Wall(
            0,
            spec.width_m,
            ((0.0, spec.depth_m), z_full),
            palette.shell,
            name="shell_e",
        ),
        Wall(1, 0.0, ((0.0, spec.width_m), z_full), palette.shell, name="shell_s"),
        Wall(
            1,
            spec.depth_m,
            ((0.0, spec.width_m), z_full),
            palette.shell,
            name="shell_n",
        ),
    ]

    # Slabs: solid at ground and roof, stairwell opening in between.
    stairwell = _place_stairwell(spec, rng)
    for level in range(spec.floors + 1):
        z = level * spec.floor_height_m
        hole = stairwell if 0 < level < spec.floors else None
        walls.extend(
            _slab_with_opening(z, footprint, hole, palette.slab, f"slab_z{z:+.1f}")
        )

    # Scan room: the roomiest scan candidate of the scan floor — widest
    # narrow dimension first, then floor area (planners already exclude
    # non-rooms like the corridor).  Ties resolve to the first candidate
    # in plan order (deterministic).
    scan_room = max(
        candidates_by_floor[spec.scan_floor],
        key=lambda room: (min(room.size[0], room.size[1]), room.size[0] * room.size[1]),
    )
    volume = _scan_volume(spec, scan_room)

    clutter = _clutter_boxes(spec, rooms_by_floor, scan_room, rng)
    walls.extend(_clutter_walls(clutter, palette.clutter))
    no_fly = _no_fly_boxes(spec, volume, rng)
    aps = _populate_aps(spec, rooms_by_floor, scan_room, rng)

    # Translate everything into the repo frame: flight-volume min corner
    # at the origin (missions, anchor layouts and start positions assume
    # it).
    shift = -np.asarray(volume.min_corner, dtype=float)
    building = Cuboid((0.0, 0.0, 0.0), (spec.width_m, spec.depth_m, height))
    walls = [_translate_wall(w, shift) for w in walls]
    volume = _translate_cuboid(volume, shift)
    scan_room = _translate_cuboid(scan_room, shift)
    building = _translate_cuboid(building, shift)
    clutter = [_translate_cuboid(box, shift) for box in clutter]
    no_fly = [_translate_cuboid(box, shift) for box in no_fly]
    if stairwell is not None:
        stairwell = _translate_cuboid(stairwell, shift)
    aps = [
        replace(ap, position=tuple(float(v) for v in np.asarray(ap.position) + shift))
        for ap in aps
    ]

    environment = IndoorEnvironment(
        walls=walls,
        access_points=aps,
        budget=palette.budget,
        seed=spec.seed,
        name=f"generated_{spec.template.replace('-', '_')}",
    )
    ap_positions = np.asarray([ap.position for ap in aps], dtype=float)
    config = DemoScenarioConfig(
        seed=spec.seed,
        flight_volume_size=volume.size,
        building_min=building.min_corner,
        building_max=building.max_corner,
        n_aps=len(aps),
        n_ssids=len({ap.ssid for ap in aps}),
        ap_center=tuple(float(v) for v in ap_positions.mean(axis=0)),
        ap_spread=tuple(float(v) for v in ap_positions.std(axis=0)),
        ap_tx_power_range_dbm=spec.ap_power_dbm,
        floor_height_m=spec.floor_height_m,
        ceiling_height_m=spec.floor_height_m,
        budget=palette.budget,
    )
    metadata: Dict[str, object] = {
        "name": spec.to_name(),
        "template": spec.template,
        "palette": spec.palette,
        "ap_policy": spec.ap_policy,
        "floors": spec.floors,
        "n_walls": len(walls),
        "n_aps": len(aps),
        "n_ssids": config.n_ssids,
        "rooms_per_floor": [len(rooms) for rooms in rooms_by_floor],
        "scan_floor": spec.scan_floor,
        "scan_room": [list(scan_room.min_corner), list(scan_room.max_corner)],
        "building": [list(building.min_corner), list(building.max_corner)],
        "stairwell": (
            None
            if stairwell is None
            else [list(stairwell.min_corner), list(stairwell.max_corner)]
        ),
        "clutter": [
            [list(box.min_corner), list(box.max_corner)] for box in clutter
        ],
        "no_fly": [
            [list(box.min_corner), list(box.max_corner)] for box in no_fly
        ],
        "spec": spec.to_dict(),
    }
    return GeneratedScenario(
        config=config,
        environment=environment,
        flight_volume=volume,
        room=scan_room,
        building=building,
        anchor_positions=volume.corners(),
        streams=RandomStreams(seed=spec.seed),
        spec=spec,
        metadata=metadata,
    )


def build_generated_scenario(
    template: str = "room-grid", seed: int = 63, **knobs
) -> GeneratedScenario:
    """Convenience builder: spec fields as keyword arguments."""
    return generate_building(BuildingSpec(template=template, seed=seed, **knobs))


def generated_builder(name: str):
    """A registry-compatible builder for a ``generated:`` scenario name.

    The returned callable has the standard ``(seed=63, **overrides)``
    builder signature.  A ``seed`` pinned in the name's query string
    wins over the call-time argument — the name is a complete,
    reproducible experiment identifier.
    """
    params = parse_generated_name(name)

    def builder(seed: int = 63, **overrides) -> GeneratedScenario:
        """Build the generated scenario encoded in the registry name."""
        merged = {**params, **overrides}
        merged.setdefault("seed", seed)
        return generate_building(BuildingSpec.from_dict(merged))

    builder.__name__ = f"build_{name}"
    return builder


# ----------------------------------------------------------------------
# ready-made generated presets (importing repro.radio registers them)
# ----------------------------------------------------------------------
#: Registry name → generated scenario name of the built-in presets.
GENERATED_PRESETS: Dict[str, str] = {
    "office-tower": (
        "generated:corridor-spine?floors=3&palette=commercial"
        "&ap_policy=ceiling-grid&width_m=24&depth_m=14&n_ssids=4"
    ),
    "residential-block": (
        "generated:room-grid?floors=2&width_m=16&depth_m=12&clutter_per_floor=1"
    ),
}

for _preset_name, _generated_name in GENERATED_PRESETS.items():
    register_scenario(_preset_name, generated_builder(_generated_name))
