"""The composed indoor radio environment.

:class:`IndoorEnvironment` glues together geometry, multi-wall
propagation, correlated shadowing, fast fading, receiver noise and
control-link interference into the single object every receiver-side
component queries:

* ``mean_rss_dbm(ap, position)`` — deterministic trend + frozen
  shadowing (what a long-term average measurement would converge to);
* ``sample_rss_dbm(ap, position, rng)`` — one beacon's RSS including a
  fast-fading draw;
* ``noise_floor_dbm(channel)`` / ``interference state`` — what the scan
  detector compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .accesspoint import AccessPoint
from .geometry import Wall
from .interference import (
    CrazyradioInterference,
    InterferenceSource,
    ReceiverSelectivity,
)
from .noise import GaussianFading, NoiseModel
from .propagation import LogDistancePathLoss, MultiWallPathLoss
from .shadowing import ShadowingModel

__all__ = ["LinkBudget", "IndoorEnvironment"]


@dataclass(frozen=True)
class LinkBudget:
    """Calibration constants of the RF substrate (all in one place).

    The default exponent of 3.5 is a *one-slope* fit for heavily
    obstructed indoor NLoS paths; combined with the explicit wall losses
    it places the borderline-detectable AP population a handful of
    meters from the room, which is what gives per-scan AP counts their
    spatial gradient across the flight volume (Figs. 6-7).
    """

    path_loss_exponent: float = 3.5
    pl0_db: float = 40.05
    max_wall_loss_db: float = 60.0
    shadowing_sigma_db: float = 2.0
    shadowing_correlation_m: float = 4.0
    fading_sigma_db: float = 4.0
    noise_bandwidth_hz: float = 20e6
    noise_figure_db: float = 6.0


class IndoorEnvironment:
    """A 3-D indoor RF environment with APs, walls and interference.

    Parameters
    ----------
    walls:
        Every wall/floor surface in the modelled building.
    access_points:
        The beaconing AP population.
    budget:
        Link-budget calibration constants.
    seed:
        Seed for the per-AP shadowing fields (fading draws use the
        caller-provided generator instead so that consumers control
        their own randomness).
    """

    def __init__(
        self,
        walls: Iterable[Wall],
        access_points: Iterable[AccessPoint],
        budget: LinkBudget = LinkBudget(),
        seed: int = 0,
        name: str = "indoor",
    ):
        self.name = name
        self.budget = budget
        self.walls: Tuple[Wall, ...] = tuple(walls)
        self.access_points: Tuple[AccessPoint, ...] = tuple(access_points)
        self._by_mac: Dict[str, AccessPoint] = {ap.mac: ap for ap in self.access_points}
        if len(self._by_mac) != len(self.access_points):
            raise ValueError("duplicate AP MAC addresses in environment")
        self.path_loss = MultiWallPathLoss(
            self.walls,
            base=LogDistancePathLoss(
                exponent=budget.path_loss_exponent, pl0_db=budget.pl0_db
            ),
            max_wall_loss_db=budget.max_wall_loss_db,
        )
        self.shadowing = ShadowingModel(
            sigma_db=budget.shadowing_sigma_db,
            correlation_distance_m=budget.shadowing_correlation_m,
            seed=seed,
        )
        self.fading = GaussianFading(sigma_db=budget.fading_sigma_db)
        self.noise = NoiseModel(
            bandwidth_hz=budget.noise_bandwidth_hz,
            noise_figure_db=budget.noise_figure_db,
        )
        self._interference = CrazyradioInterference(ReceiverSelectivity())
        self._sources: List[InterferenceSource] = []

    # ------------------------------------------------------------------
    # AP lookup
    # ------------------------------------------------------------------
    def ap_by_mac(self, mac: str) -> AccessPoint:
        """The AP with BSSID ``mac`` (KeyError if absent)."""
        return self._by_mac[mac]

    def aps_on_channel(self, channel: int) -> List[AccessPoint]:
        """All APs beaconing on ``channel``."""
        return [ap for ap in self.access_points if ap.channel == channel]

    # ------------------------------------------------------------------
    # link budget
    # ------------------------------------------------------------------
    def mean_rss_dbm(self, ap: AccessPoint, position: Sequence[float]) -> float:
        """Local-mean RSS: TX power − path loss − shadowing (no fading)."""
        loss = self.path_loss.path_loss_db(ap.position, position)
        shadow = self.shadowing.loss_db(ap.mac, position)
        return ap.tx_power_dbm - loss - shadow

    def sample_rss_dbm(
        self,
        ap: AccessPoint,
        position: Sequence[float],
        rng: np.random.Generator,
    ) -> float:
        """One beacon's RSS at ``position`` including a fast-fading draw."""
        return self.mean_rss_dbm(ap, position) + self.fading.sample_db(rng)

    # ------------------------------------------------------------------
    # interference management (driven by the control link)
    # ------------------------------------------------------------------
    def set_interference_sources(self, sources: Iterable[InterferenceSource]) -> None:
        """Replace the active interference sources."""
        self._sources = list(sources)

    def add_interference_source(self, source: InterferenceSource) -> None:
        """Register an additional active interferer."""
        self._sources.append(source)

    def clear_interference(self) -> None:
        """Remove all interference (the radio-off state)."""
        self._sources = []

    @property
    def interference_sources(self) -> Tuple[InterferenceSource, ...]:
        """Currently active interferers."""
        return tuple(self._sources)

    def thermal_floor_dbm(self) -> float:
        """Receiver thermal noise floor (no interference)."""
        return self.noise.floor_dbm

    def interference_floor_dbm(self, channel: int) -> float:
        """Effective floor on ``channel`` while the interferers transmit."""
        return self._interference.floor_dbm(
            self._sources, channel, self.noise.floor_dbm
        )

    def interference_duty_cycle(self) -> float:
        """Probability a beacon reception overlaps an interferer burst."""
        return self._interference.combined_duty_cycle(self._sources)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndoorEnvironment({self.name!r}, aps={len(self.access_points)}, "
            f"walls={len(self.walls)}, sources={len(self._sources)})"
        )
