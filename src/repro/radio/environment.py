"""The composed indoor radio environment.

:class:`IndoorEnvironment` glues together geometry, multi-wall
propagation, correlated shadowing, fast fading, receiver noise and
control-link interference into the single object every receiver-side
component queries:

* ``mean_rss_dbm(ap, position)`` — deterministic trend + frozen
  shadowing (what a long-term average measurement would converge to);
* ``sample_rss_dbm(ap, position, rng)`` — one beacon's RSS including a
  fast-fading draw;
* ``noise_floor_dbm(channel)`` / ``interference state`` — what the scan
  detector compares against.

Both link-budget queries come in batched form —
``mean_rss_dbm_many(macs, points)`` and ``sample_rss_dbm_many`` return
``(n_macs, n_points)`` matrices from one :class:`~.geometry.WallSet`
crossing pass plus one shadowing-field matmul per MAC — and the scalar
methods are thin one-point wrappers over the same code path.  An LRU
cache keyed on (transmitter, point-block digest) remembers wall losses,
so repeated evaluations over the same probe grid (active-campaign
refits, ground-truth scoring) pay the geometry exactly once.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .accesspoint import AccessPoint
from .geometry import Wall
from .interference import (
    CrazyradioInterference,
    InterferenceSource,
    ReceiverSelectivity,
)
from .noise import GaussianFading, NoiseModel
from .propagation import LogDistancePathLoss, MultiWallPathLoss
from .shadowing import ShadowingModel

__all__ = ["LinkBudget", "IndoorEnvironment"]


@dataclass(frozen=True)
class LinkBudget:
    """Calibration constants of the RF substrate (all in one place).

    The default exponent of 3.5 is a *one-slope* fit for heavily
    obstructed indoor NLoS paths; combined with the explicit wall losses
    it places the borderline-detectable AP population a handful of
    meters from the room, which is what gives per-scan AP counts their
    spatial gradient across the flight volume (Figs. 6-7).
    """

    path_loss_exponent: float = 3.5
    pl0_db: float = 40.05
    max_wall_loss_db: float = 60.0
    shadowing_sigma_db: float = 2.0
    shadowing_correlation_m: float = 4.0
    fading_sigma_db: float = 4.0
    noise_bandwidth_hz: float = 20e6
    noise_figure_db: float = 6.0


class IndoorEnvironment:
    """A 3-D indoor RF environment with APs, walls and interference.

    Parameters
    ----------
    walls:
        Every wall/floor surface in the modelled building.
    access_points:
        The beaconing AP population.
    budget:
        Link-budget calibration constants.
    seed:
        Seed for the per-AP shadowing fields (fading draws use the
        caller-provided generator instead so that consumers control
        their own randomness).
    """

    def __init__(
        self,
        walls: Iterable[Wall],
        access_points: Iterable[AccessPoint],
        budget: LinkBudget = LinkBudget(),
        seed: int = 0,
        name: str = "indoor",
    ):
        self.name = name
        self.budget = budget
        self.walls: Tuple[Wall, ...] = tuple(walls)
        self.access_points: Tuple[AccessPoint, ...] = tuple(access_points)
        self._by_mac: Dict[str, AccessPoint] = {ap.mac: ap for ap in self.access_points}
        if len(self._by_mac) != len(self.access_points):
            raise ValueError("duplicate AP MAC addresses in environment")
        self.path_loss = MultiWallPathLoss(
            self.walls,
            base=LogDistancePathLoss(
                exponent=budget.path_loss_exponent, pl0_db=budget.pl0_db
            ),
            max_wall_loss_db=budget.max_wall_loss_db,
        )
        self.shadowing = ShadowingModel(
            sigma_db=budget.shadowing_sigma_db,
            correlation_distance_m=budget.shadowing_correlation_m,
            seed=seed,
        )
        self.fading = GaussianFading(sigma_db=budget.fading_sigma_db)
        self.noise = NoiseModel(
            bandwidth_hz=budget.noise_bandwidth_hz,
            noise_figure_db=budget.noise_figure_db,
        )
        self._interference = CrazyradioInterference(ReceiverSelectivity())
        self._sources: List[InterferenceSource] = []
        self._wall_cache: "OrderedDict[Tuple[str, bytes], np.ndarray]" = (
            OrderedDict()
        )
        self._wall_cache_elements = 0
        self._channel_map: Optional[Dict[int, Tuple[AccessPoint, ...]]] = None

    # ------------------------------------------------------------------
    # AP lookup
    # ------------------------------------------------------------------
    def ap_by_mac(self, mac: str) -> AccessPoint:
        """The AP with BSSID ``mac`` (KeyError if absent)."""
        return self._by_mac[mac]

    def aps_on_channel(self, channel: int) -> List[AccessPoint]:
        """All APs beaconing on ``channel``."""
        return list(self.channel_map().get(channel, ()))

    def channel_map(self) -> Dict[int, Tuple[AccessPoint, ...]]:
        """Channel → APs, built once (the population is immutable)."""
        if self._channel_map is None:
            grouped: Dict[int, List[AccessPoint]] = {}
            for ap in self.access_points:
                grouped.setdefault(ap.channel, []).append(ap)
            self._channel_map = {ch: tuple(aps) for ch, aps in grouped.items()}
        return self._channel_map

    # ------------------------------------------------------------------
    # link budget
    # ------------------------------------------------------------------
    #: Point blocks below this size bypass the wall-loss cache: hashing
    #: and churning the LRU for one-point wrapper calls costs more than
    #: the geometry they would save.
    _CACHE_MIN_POINTS = 32
    #: LRU bound in cached float64 *elements* (not rows), so memory
    #: stays bounded regardless of point-block width; 4M elements is
    #: ~32 MB — every AP of a large population over a handful of
    #: distinct probe grids.
    _CACHE_MAX_ELEMENTS = 4_000_000

    def mean_rss_dbm(self, ap: AccessPoint, position: Sequence[float]) -> float:
        """Local-mean RSS: TX power − path loss − shadowing (no fading)."""
        points = np.asarray(position, dtype=float).reshape(1, 3)
        return float(self._mean_rss_matrix([ap], points)[0, 0])

    def sample_rss_dbm(
        self,
        ap: AccessPoint,
        position: Sequence[float],
        rng: np.random.Generator,
    ) -> float:
        """One beacon's RSS at ``position`` including a fast-fading draw."""
        return self.mean_rss_dbm(ap, position) + self.fading.sample_db(rng)

    def mean_rss_dbm_many(
        self, macs: Sequence[str], points: np.ndarray
    ) -> np.ndarray:
        """Local-mean RSS of every MAC at every point, ``(n_macs, n_points)``.

        One batched wall-crossing pass (LRU-cached per point block) and
        one shadowing matmul per MAC replace ``n_macs * n_points``
        scalar :meth:`mean_rss_dbm` calls.  Unknown MACs raise
        ``KeyError`` like :meth:`ap_by_mac`.
        """
        aps = [self.ap_by_mac(mac) for mac in macs]
        pts = np.ascontiguousarray(np.asarray(points, dtype=float).reshape(-1, 3))
        return self._mean_rss_matrix(aps, pts)

    def sample_rss_dbm_many(
        self,
        macs: Sequence[str],
        points: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One beacon RSS draw per (MAC, point), ``(n_macs, n_points)``.

        The fading block comes from a single vectorized draw on the
        caller's generator (row-major: all points of the first MAC,
        then the second, ...), so consumers keep sole ownership of
        their RNG streams.
        """
        mean = self.mean_rss_dbm_many(macs, points)
        return mean + self.fading.sample_db_many(rng, mean.shape)

    def _mean_rss_matrix(self, transmitters, pts: np.ndarray) -> np.ndarray:
        """Mean RSS for AP-like objects (``mac``/``position``/``tx_power_dbm``)."""
        if not transmitters:
            return np.zeros((0, len(pts)))
        tx = np.asarray(
            [t.position for t in transmitters], dtype=float
        ).reshape(-1, 3)
        tx_power = np.asarray([t.tx_power_dbm for t in transmitters], dtype=float)
        wall = self._wall_loss_rows(transmitters, tx, pts)
        base = self.path_loss.base_loss_db_many(tx, pts)
        shadow = self.shadowing.loss_db_matrix(
            [t.mac for t in transmitters], pts
        )
        return tx_power[:, None] - base - wall - shadow

    def clear_wall_cache(self) -> None:
        """Drop all cached wall-loss rows (benchmarks time cold paths)."""
        self._wall_cache.clear()
        self._wall_cache_elements = 0

    def _wall_loss_rows(self, transmitters, tx, pts: np.ndarray) -> np.ndarray:
        """Capped wall losses per transmitter, through the LRU cache."""
        if len(pts) < self._CACHE_MIN_POINTS:
            return self.path_loss.wall_loss_db_many(tx, pts)
        digest = hashlib.sha1(pts.tobytes()).digest()
        rows: List = []
        missing: List[int] = []
        for t in transmitters:
            cached = self._wall_cache.get((t.mac, digest))
            if cached is not None:
                self._wall_cache.move_to_end((t.mac, digest))
            else:
                missing.append(len(rows))
            rows.append(cached)
        if missing:
            computed = self.path_loss.wall_loss_db_many(tx[missing], pts)
            for j, i in enumerate(missing):
                rows[i] = computed[j]
                key = (transmitters[i].mac, digest)
                if key not in self._wall_cache:
                    self._wall_cache_elements += len(pts)
                # Copy the row out of the batch result so evicting it
                # actually frees memory (a view would pin the whole
                # computed block until every sibling row is evicted).
                self._wall_cache[key] = computed[j].copy()
            while (
                self._wall_cache_elements > self._CACHE_MAX_ELEMENTS
                and len(self._wall_cache) > len(transmitters)
            ):
                _, evicted = self._wall_cache.popitem(last=False)
                self._wall_cache_elements -= len(evicted)
        return np.stack(rows)

    # ------------------------------------------------------------------
    # interference management (driven by the control link)
    # ------------------------------------------------------------------
    def set_interference_sources(self, sources: Iterable[InterferenceSource]) -> None:
        """Replace the active interference sources."""
        self._sources = list(sources)

    def add_interference_source(self, source: InterferenceSource) -> None:
        """Register an additional active interferer."""
        self._sources.append(source)

    def clear_interference(self) -> None:
        """Remove all interference (the radio-off state)."""
        self._sources = []

    @property
    def interference_sources(self) -> Tuple[InterferenceSource, ...]:
        """Currently active interferers."""
        return tuple(self._sources)

    def thermal_floor_dbm(self) -> float:
        """Receiver thermal noise floor (no interference)."""
        return self.noise.floor_dbm

    def interference_floor_dbm(self, channel: int) -> float:
        """Effective floor on ``channel`` while the interferers transmit."""
        return self._interference.floor_dbm(
            self._sources, channel, self.noise.floor_dbm
        )

    def interference_duty_cycle(self) -> float:
        """Probability a beacon reception overlaps an interferer burst."""
        return self._interference.combined_duty_cycle(self._sources)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndoorEnvironment({self.name!r}, aps={len(self.access_points)}, "
            f"walls={len(self.walls)}, sources={len(self._sources)})"
        )
