"""The demo scenario: a condo living room in a large apartment building.

This module reconstructs, synthetically, the environment of the paper's
validation (§III): a 3.74 m × 3.20 m × 2.10 m flight volume inside a
living room, embedded in a multi-storey apartment building populated
with 73 Wi-Fi APs under 49 SSIDs.  Three empirical observations from the
paper pin the geometry:

* the building center lies toward **+x / −y** of the room, so AP density
  (and collected sample counts) rises in that direction (Figs. 6-7);
* a **wall segment 40 cm wide(r)** sits on the side of the room where
  UAV B scans (the +y room wall here), further attenuating signals
  reaching B's half (Fig. 6);
* 8 UWB anchors sit at the corners of the flight volume (§III-A).

All tunables live in :class:`DemoScenarioConfig`; the defaults are
calibrated so campaign statistics land near the paper's (≈2700 samples,
mean RSS ≈ −73 dBm — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple

import numpy as np

from ..sim.rng import RandomStreams
from .accesspoint import AccessPoint, generate_population
from .environment import IndoorEnvironment, LinkBudget
from .geometry import Cuboid, Wall
from .materials import BRICK, CONCRETE, DRYWALL, REINFORCED_CONCRETE

__all__ = ["DemoScenarioConfig", "DemoScenario", "build_demo_scenario"]


@dataclass(frozen=True)
class DemoScenarioConfig:
    """All tunables of the demo environment."""

    seed: int = 63
    # Flight volume dimensions from §III-A.
    flight_volume_size: Tuple[float, float, float] = (3.74, 3.20, 2.10)
    # Building envelope in the room-local frame (room min corner at origin).
    # The demo room sits at the building's +y edge and near its -x edge:
    # beyond the +y wall is outdoors, so the AP population lies almost
    # entirely toward +x / -y — the density gradient behind Figs. 6-7.
    building_min: Tuple[float, float, float] = (-3.0, -12.0, -8.4)
    building_max: Tuple[float, float, float] = (14.0, 4.2, 8.4)
    # AP population: sized so the *observed* campaign statistics match
    # §III-A (73 distinct MACs / 49 SSIDs seen) — many weaker units are
    # never detected, exactly like a real building.
    n_aps: int = 120
    n_ssids: int = 68
    ap_center: Tuple[float, float, float] = (6.0, -4.0, 0.0)
    ap_spread: Tuple[float, float, float] = (4.5, 3.5, 2.5)
    ap_tx_power_range_dbm: Tuple[float, float] = (14.0, 24.0)
    ap_uniform_fraction: float = 0.35
    ap_exclusion_radius_m: float = 2.0
    # Geometry of the synthetic building.
    floor_height_m: float = 2.8
    ceiling_height_m: float = 2.6
    wall_grid_m: float = 3.0
    thick_wall_thickness_m: float = 0.4
    normal_wall_thickness_m: float = 0.2
    # Link budget calibration.
    budget: LinkBudget = field(default_factory=LinkBudget)

    @property
    def flight_volume(self) -> Cuboid:
        """The scan cuboid, with its min corner at the origin."""
        return Cuboid((0.0, 0.0, 0.0), self.flight_volume_size)

    @property
    def building(self) -> Cuboid:
        """The building envelope."""
        return Cuboid(self.building_min, self.building_max)


@dataclass
class DemoScenario:
    """A fully built demo environment plus its reference geometry."""

    config: DemoScenarioConfig
    environment: IndoorEnvironment
    flight_volume: Cuboid
    room: Cuboid
    building: Cuboid
    anchor_positions: np.ndarray
    streams: RandomStreams

    @property
    def access_points(self) -> Tuple[AccessPoint, ...]:
        """The AP population of the environment."""
        return self.environment.access_points


def _room_cuboid(config: DemoScenarioConfig) -> Cuboid:
    sx, sy, sz = config.flight_volume_size
    return Cuboid((-0.4, -0.4, 0.0), (sx + 0.5, sy + 0.5, config.ceiling_height_m))


def build_building_walls(config: DemoScenarioConfig) -> List[Wall]:
    """Construct the wall set of the synthetic apartment building.

    * Vertical brick walls on a unit grid in x and y spanning the whole
      building (flats are ~4 m modules);
    * drywall partitions bounding the living room inside its flat;
    * reinforced-concrete floor slabs every ``floor_height_m``;
    * the +y room wall is a brick segment scaled to
      ``thick_wall_thickness_m`` — the "40 cm" segment on UAV B's side.
    """
    room = _room_cuboid(config)
    building = config.building
    bx, by, bz = building.min_corner
    ex, ey, ez = building.max_corner
    walls: List[Wall] = []

    brick = BRICK.scaled(config.normal_wall_thickness_m)
    y_span = ((by, ey), (bz, ez))  # (y, z) extents for x-normal walls
    x_span = ((bx, ex), (bz, ez))  # (x, z) extents for y-normal walls
    xy_span = ((bx, ex), (by, ey))  # (x, y) extents for slabs

    def _grid_planes(lo: float, hi: float, room_lo: float, room_hi: float) -> List[float]:
        """Grid planes every wall_grid_m, skipping the room's interior span."""
        step = config.wall_grid_m
        planes: List[float] = []
        p = 0.0
        while p - step > lo:
            p -= step
        while p < hi:
            if lo < p < hi and not (room_lo - 0.3 < p < room_hi + 0.3):
                planes.append(round(p, 3))
            p += step
        return planes

    # --- x-normal walls (flat boundaries along x) ---------------------
    for x in _grid_planes(bx, ex, room.min_corner[0], room.max_corner[0]):
        walls.append(Wall(0, x, y_span, brick, name=f"brick_x{x:+.1f}"))
    # Living-room partitions inside the flat (light construction).
    walls.append(Wall(0, room.min_corner[0], y_span, DRYWALL, name="room_x_min"))
    walls.append(Wall(0, room.max_corner[0], y_span, DRYWALL, name="room_x_max"))

    # --- y-normal walls ------------------------------------------------
    for y in _grid_planes(by, ey, room.min_corner[1], room.max_corner[1]):
        walls.append(Wall(1, y, x_span, brick, name=f"brick_y{y:+.1f}"))
    walls.append(Wall(1, room.min_corner[1], x_span, DRYWALL, name="room_y_min"))
    # The +y room wall: thick segment across the room span, normal brick
    # continuing left and right of it.
    y_wall = room.max_corner[1]
    thick = BRICK.scaled(config.thick_wall_thickness_m)
    walls.append(
        Wall(
            1,
            y_wall,
            ((room.min_corner[0], room.max_corner[0]), (bz, ez)),
            thick,
            name="room_y_max_thick",
        )
    )
    walls.append(
        Wall(1, y_wall, ((bx, room.min_corner[0]), (bz, ez)), brick, name="y_max_left")
    )
    walls.append(
        Wall(1, y_wall, ((room.max_corner[0], ex), (bz, ez)), brick, name="y_max_right")
    )

    # --- floor slabs ----------------------------------------------------
    slab_zs = [0.0, room.max_corner[2]]
    z = 0.0
    while z - config.floor_height_m > bz:
        z -= config.floor_height_m
        slab_zs.append(round(z, 3))
    z = room.max_corner[2]
    while z + config.floor_height_m < ez:
        z += config.floor_height_m
        slab_zs.append(round(z, 3))
    for z in sorted(set(slab_zs)):
        walls.append(Wall(2, z, xy_span, REINFORCED_CONCRETE, name=f"slab_z{z:+.1f}"))
    return walls


def build_demo_scenario(
    seed: int = 63, config: DemoScenarioConfig = None
) -> DemoScenario:
    """Build the demo environment with the given master ``seed``.

    ``config`` overrides the full tunable set; when provided, its own
    ``seed`` field is replaced by the ``seed`` argument.
    """
    if config is None:
        config = DemoScenarioConfig(seed=seed)
    elif config.seed != seed:
        config = replace(config, seed=seed)

    streams = RandomStreams(seed=config.seed)
    flight_volume = config.flight_volume
    room = _room_cuboid(config)
    building = config.building

    aps = generate_population(
        n_aps=config.n_aps,
        n_ssids=config.n_ssids,
        building_center=config.ap_center,
        spread_m=config.ap_spread,
        rng=streams.get("ap_population"),
        bounds_min=tuple(c + 0.5 for c in building.min_corner),
        bounds_max=tuple(c - 0.5 for c in building.max_corner),
        tx_power_range_dbm=config.ap_tx_power_range_dbm,
        exclusion_center=tuple(flight_volume.center),
        exclusion_radius_m=config.ap_exclusion_radius_m,
        uniform_fraction=config.ap_uniform_fraction,
    )
    walls = build_building_walls(config)
    environment = IndoorEnvironment(
        walls=walls,
        access_points=aps,
        budget=config.budget,
        seed=config.seed,
        name="demo_apartment",
    )
    return DemoScenario(
        config=config,
        environment=environment,
        flight_volume=flight_volume,
        room=room,
        building=building,
        anchor_positions=flight_volume.corners(),
        streams=streams,
    )
