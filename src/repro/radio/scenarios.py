"""RF scenarios: the paper's condo demo plus a registry of alternates.

Every scenario builder returns a :class:`DemoScenario` — a fully built
RF world (walls, AP population, link budget) plus its reference
geometry — and is looked up by name through the **scenario registry**
(:func:`register_scenario` / :func:`get_scenario` /
:func:`build_scenario`).  Built-ins:

* ``condo`` (alias ``demo``) — the paper's validation environment;
* ``office`` — an open-plan office floor: glass/drywall partitions, a
  denser ceiling-mounted corporate AP deployment under few SSIDs;
* ``warehouse`` — a multi-room warehouse: concrete dividers, a high
  ceiling, and a sparse population of high-power APs.

Beyond the registry, ``generated:<template>?field=value&...`` names
(e.g. ``generated:room-grid?floors=3&seed=7``) resolve to procedurally
generated buildings — parameterized floor plans, multi-floor stacking,
material palettes and AP placement policies — see :mod:`~.generator`,
which also registers ready-made presets (``office-tower``,
``residential-block``).

The demo scenario reconstructs, synthetically, the environment of the
paper's validation (§III): a 3.74 m × 3.20 m × 2.10 m flight volume
inside a living room, embedded in a multi-storey apartment building
populated with 73 Wi-Fi APs under 49 SSIDs.  Three empirical
observations from the paper pin the geometry:

* the building center lies toward **+x / −y** of the room, so AP density
  (and collected sample counts) rises in that direction (Figs. 6-7);
* a **wall segment 40 cm wide(r)** sits on the side of the room where
  UAV B scans (the +y room wall here), further attenuating signals
  reaching B's half (Fig. 6);
* 8 UWB anchors sit at the corners of the flight volume (§III-A).

All tunables live in :class:`DemoScenarioConfig`; the defaults are
calibrated so campaign statistics land near the paper's (≈2700 samples,
mean RSS ≈ −73 dBm — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..sim.rng import RandomStreams
from .accesspoint import AccessPoint, generate_population
from .environment import IndoorEnvironment, LinkBudget
from .geometry import Cuboid, Wall
from .materials import BRICK, CONCRETE, DRYWALL, GLASS, REINFORCED_CONCRETE

__all__ = [
    "DemoScenarioConfig",
    "DemoScenario",
    "build_demo_scenario",
    "build_office_scenario",
    "build_warehouse_scenario",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "build_scenario",
    "GENERATED_SCENARIO_PREFIX",
]

#: A scenario builder: (seed, optional config overrides) → built world.
ScenarioBuilder = Callable[..., "DemoScenario"]


@dataclass(frozen=True)
class DemoScenarioConfig:
    """All tunables of the demo environment."""

    seed: int = 63
    # Flight volume dimensions from §III-A.
    flight_volume_size: Tuple[float, float, float] = (3.74, 3.20, 2.10)
    # Building envelope in the room-local frame (room min corner at origin).
    # The demo room sits at the building's +y edge and near its -x edge:
    # beyond the +y wall is outdoors, so the AP population lies almost
    # entirely toward +x / -y — the density gradient behind Figs. 6-7.
    building_min: Tuple[float, float, float] = (-3.0, -12.0, -8.4)
    building_max: Tuple[float, float, float] = (14.0, 4.2, 8.4)
    # AP population: sized so the *observed* campaign statistics match
    # §III-A (73 distinct MACs / 49 SSIDs seen) — many weaker units are
    # never detected, exactly like a real building.
    n_aps: int = 120
    n_ssids: int = 68
    ap_center: Tuple[float, float, float] = (6.0, -4.0, 0.0)
    ap_spread: Tuple[float, float, float] = (4.5, 3.5, 2.5)
    ap_tx_power_range_dbm: Tuple[float, float] = (14.0, 24.0)
    ap_uniform_fraction: float = 0.35
    ap_exclusion_radius_m: float = 2.0
    # Geometry of the synthetic building.
    floor_height_m: float = 2.8
    ceiling_height_m: float = 2.6
    wall_grid_m: float = 3.0
    thick_wall_thickness_m: float = 0.4
    normal_wall_thickness_m: float = 0.2
    # Link budget calibration.
    budget: LinkBudget = field(default_factory=LinkBudget)

    @property
    def flight_volume(self) -> Cuboid:
        """The scan cuboid, with its min corner at the origin."""
        return Cuboid((0.0, 0.0, 0.0), self.flight_volume_size)

    @property
    def building(self) -> Cuboid:
        """The building envelope."""
        return Cuboid(self.building_min, self.building_max)


@dataclass
class DemoScenario:
    """A fully built demo environment plus its reference geometry."""

    config: DemoScenarioConfig
    environment: IndoorEnvironment
    flight_volume: Cuboid
    room: Cuboid
    building: Cuboid
    anchor_positions: np.ndarray
    streams: RandomStreams

    @property
    def access_points(self) -> Tuple[AccessPoint, ...]:
        """The AP population of the environment."""
        return self.environment.access_points


def _room_cuboid(config: DemoScenarioConfig) -> Cuboid:
    sx, sy, sz = config.flight_volume_size
    return Cuboid((-0.4, -0.4, 0.0), (sx + 0.5, sy + 0.5, config.ceiling_height_m))


def build_building_walls(config: DemoScenarioConfig) -> List[Wall]:
    """Construct the wall set of the synthetic apartment building.

    * Vertical brick walls on a unit grid in x and y spanning the whole
      building (flats are ~4 m modules);
    * drywall partitions bounding the living room inside its flat;
    * reinforced-concrete floor slabs every ``floor_height_m``;
    * the +y room wall is a brick segment scaled to
      ``thick_wall_thickness_m`` — the "40 cm" segment on UAV B's side.
    """
    room = _room_cuboid(config)
    building = config.building
    bx, by, bz = building.min_corner
    ex, ey, ez = building.max_corner
    walls: List[Wall] = []

    brick = BRICK.scaled(config.normal_wall_thickness_m)
    y_span = ((by, ey), (bz, ez))  # (y, z) extents for x-normal walls
    x_span = ((bx, ex), (bz, ez))  # (x, z) extents for y-normal walls
    xy_span = ((bx, ex), (by, ey))  # (x, y) extents for slabs

    def _grid_planes(
        lo: float, hi: float, room_lo: float, room_hi: float
    ) -> List[float]:
        """Grid planes every wall_grid_m, skipping the room's interior span."""
        step = config.wall_grid_m
        planes: List[float] = []
        p = 0.0
        while p - step > lo:
            p -= step
        while p < hi:
            if lo < p < hi and not (room_lo - 0.3 < p < room_hi + 0.3):
                planes.append(round(p, 3))
            p += step
        return planes

    # --- x-normal walls (flat boundaries along x) ---------------------
    for x in _grid_planes(bx, ex, room.min_corner[0], room.max_corner[0]):
        walls.append(Wall(0, x, y_span, brick, name=f"brick_x{x:+.1f}"))
    # Living-room partitions inside the flat (light construction).
    walls.append(Wall(0, room.min_corner[0], y_span, DRYWALL, name="room_x_min"))
    walls.append(Wall(0, room.max_corner[0], y_span, DRYWALL, name="room_x_max"))

    # --- y-normal walls ------------------------------------------------
    for y in _grid_planes(by, ey, room.min_corner[1], room.max_corner[1]):
        walls.append(Wall(1, y, x_span, brick, name=f"brick_y{y:+.1f}"))
    walls.append(Wall(1, room.min_corner[1], x_span, DRYWALL, name="room_y_min"))
    # The +y room wall: thick segment across the room span, normal brick
    # continuing left and right of it.
    y_wall = room.max_corner[1]
    thick = BRICK.scaled(config.thick_wall_thickness_m)
    walls.append(
        Wall(
            1,
            y_wall,
            ((room.min_corner[0], room.max_corner[0]), (bz, ez)),
            thick,
            name="room_y_max_thick",
        )
    )
    walls.append(
        Wall(1, y_wall, ((bx, room.min_corner[0]), (bz, ez)), brick, name="y_max_left")
    )
    walls.append(
        Wall(1, y_wall, ((room.max_corner[0], ex), (bz, ez)), brick, name="y_max_right")
    )

    # --- floor slabs ----------------------------------------------------
    slab_zs = [0.0, room.max_corner[2]]
    z = 0.0
    while z - config.floor_height_m > bz:
        z -= config.floor_height_m
        slab_zs.append(round(z, 3))
    z = room.max_corner[2]
    while z + config.floor_height_m < ez:
        z += config.floor_height_m
        slab_zs.append(round(z, 3))
    for z in sorted(set(slab_zs)):
        walls.append(Wall(2, z, xy_span, REINFORCED_CONCRETE, name=f"slab_z{z:+.1f}"))
    return walls


def build_demo_scenario(
    seed: int = 63, config: Optional[DemoScenarioConfig] = None
) -> DemoScenario:
    """Build the demo environment with the given master ``seed``.

    ``config`` overrides the full tunable set; when provided, its own
    ``seed`` field is replaced by the ``seed`` argument.
    """
    if config is None:
        config = DemoScenarioConfig(seed=seed)
    elif config.seed != seed:
        config = replace(config, seed=seed)
    return _assemble_scenario(
        config, build_building_walls(config), "demo_apartment", _room_cuboid(config)
    )


# ----------------------------------------------------------------------
# additional scenarios
# ----------------------------------------------------------------------
def _assemble_scenario(
    config: DemoScenarioConfig,
    walls: List[Wall],
    name: str,
    room: Cuboid,
) -> DemoScenario:
    """Common tail of every builder: population + environment + frame."""
    streams = RandomStreams(seed=config.seed)
    flight_volume = config.flight_volume
    building = config.building
    aps = generate_population(
        n_aps=config.n_aps,
        n_ssids=config.n_ssids,
        building_center=config.ap_center,
        spread_m=config.ap_spread,
        rng=streams.get("ap_population"),
        bounds_min=tuple(c + 0.5 for c in building.min_corner),
        bounds_max=tuple(c - 0.5 for c in building.max_corner),
        tx_power_range_dbm=config.ap_tx_power_range_dbm,
        exclusion_center=tuple(flight_volume.center),
        exclusion_radius_m=config.ap_exclusion_radius_m,
        uniform_fraction=config.ap_uniform_fraction,
    )
    environment = IndoorEnvironment(
        walls=walls,
        access_points=aps,
        budget=config.budget,
        seed=config.seed,
        name=name,
    )
    return DemoScenario(
        config=config,
        environment=environment,
        flight_volume=flight_volume,
        room=room,
        building=building,
        anchor_positions=flight_volume.corners(),
        streams=streams,
    )


def build_office_scenario(
    seed: int = 63, config: Optional[DemoScenarioConfig] = None
) -> DemoScenario:
    """An open-plan office floor.

    One storey of a commercial building: a large open area swept by the
    fleet, a glass-walled meeting-room block along +x, a drywall service
    core toward −y, and concrete slabs above and below.  The AP
    deployment is corporate — ceiling-mounted units spread fairly
    uniformly under a handful of SSIDs (mesh/managed networks own many
    BSSIDs each), with a moderate one-slope exponent for the lightly
    obstructed floor.
    """
    if config is None:
        config = DemoScenarioConfig(
            seed=seed,
            flight_volume_size=(6.4, 5.0, 2.2),
            building_min=(-6.0, -8.0, -3.0),
            building_max=(14.0, 10.0, 3.0),
            n_aps=36,
            n_ssids=7,
            ap_center=(4.0, 1.0, 2.4),
            ap_spread=(5.0, 4.5, 0.3),
            ap_tx_power_range_dbm=(15.0, 20.0),
            ap_uniform_fraction=0.5,
            ap_exclusion_radius_m=1.2,
            ceiling_height_m=2.7,
            budget=LinkBudget(path_loss_exponent=3.0, shadowing_sigma_db=2.5),
        )
    elif config.seed != seed:
        config = replace(config, seed=seed)

    fx, fy, fz = config.flight_volume_size
    room = Cuboid((-0.5, -0.5, 0.0), (fx + 0.5, fy + 0.5, config.ceiling_height_m))
    building = config.building
    bx, by, bz = building.min_corner
    ex, ey, ez = building.max_corner
    z_span = (bz, ez)

    walls: List[Wall] = [
        # Building envelope: brick on all four sides.
        Wall(0, bx, ((by, ey), z_span), BRICK.scaled(0.25), name="shell_x_min"),
        Wall(0, ex, ((by, ey), z_span), BRICK.scaled(0.25), name="shell_x_max"),
        Wall(1, by, ((bx, ex), z_span), BRICK.scaled(0.25), name="shell_y_min"),
        Wall(1, ey, ((bx, ex), z_span), BRICK.scaled(0.25), name="shell_y_max"),
        # Meeting-room block beyond the +x edge of the open area.
        Wall(
            0, fx + 1.0, ((by, ey), z_span), GLASS.scaled(0.012), name="meeting_glass"
        ),
        Wall(
            1, 2.5, ((fx + 1.0, ex), z_span), GLASS.scaled(0.012), name="meeting_split"
        ),
        # Service core (stairs, printers) toward -y, light construction.
        Wall(1, -1.5, ((bx, ex), z_span), DRYWALL, name="core_y"),
        Wall(0, -2.5, ((by, -1.5), z_span), DRYWALL, name="core_x"),
        # Floor and ceiling slabs of this storey and its neighbors.
        Wall(2, 0.0, ((bx, ex), (by, ey)), REINFORCED_CONCRETE, name="slab_floor"),
        Wall(
            2,
            config.ceiling_height_m,
            ((bx, ex), (by, ey)),
            REINFORCED_CONCRETE,
            name="slab_ceiling",
        ),
    ]
    return _assemble_scenario(config, walls, "office_floor", room)


def build_warehouse_scenario(
    seed: int = 63, config: Optional[DemoScenarioConfig] = None
) -> DemoScenario:
    """A multi-room warehouse with concrete dividers and a high ceiling.

    Three halls split by full-height concrete walls, a 6 m ceiling, and
    a sparse population of high-power APs mounted near the roof — the
    opposite regime from the condo: few strong emitters, hard interior
    walls, and large open spans (a near-free-space exponent).
    """
    if config is None:
        config = DemoScenarioConfig(
            seed=seed,
            flight_volume_size=(9.0, 6.0, 3.5),
            building_min=(-2.0, -14.0, -0.5),
            building_max=(24.0, 8.0, 6.5),
            n_aps=14,
            n_ssids=4,
            ap_center=(11.0, -3.0, 5.5),
            ap_spread=(7.0, 6.0, 0.4),
            ap_tx_power_range_dbm=(20.0, 27.0),
            ap_uniform_fraction=0.4,
            ap_exclusion_radius_m=1.5,
            ceiling_height_m=6.0,
            budget=LinkBudget(
                path_loss_exponent=2.4,
                shadowing_sigma_db=3.0,
                fading_sigma_db=5.0,
            ),
        )
    elif config.seed != seed:
        config = replace(config, seed=seed)

    fx, fy, fz = config.flight_volume_size
    room = Cuboid((-1.0, -1.0, 0.0), (fx + 1.0, fy + 1.0, config.ceiling_height_m))
    building = config.building
    bx, by, bz = building.min_corner
    ex, ey, ez = building.max_corner
    z_span = (bz, ez)

    thick_concrete = CONCRETE.scaled(0.3)
    walls: List[Wall] = [
        # Envelope: heavy concrete shell.
        Wall(0, bx, ((by, ey), z_span), thick_concrete, name="shell_x_min"),
        Wall(0, ex, ((by, ey), z_span), thick_concrete, name="shell_x_max"),
        Wall(1, by, ((bx, ex), z_span), thick_concrete, name="shell_y_min"),
        Wall(1, ey, ((bx, ex), z_span), thick_concrete, name="shell_y_max"),
        # Interior hall dividers: full-height concrete.
        Wall(0, fx + 2.0, ((by, ey), z_span), CONCRETE.scaled(0.2), name="divider_x"),
        Wall(1, -2.0, ((bx, ex), z_span), CONCRETE.scaled(0.2), name="divider_y"),
        # Roof slab and ground slab.
        Wall(2, bz, ((bx, ex), (by, ey)), REINFORCED_CONCRETE, name="slab_ground"),
        Wall(2, ez, ((bx, ex), (by, ey)), REINFORCED_CONCRETE, name="slab_roof"),
    ]
    return _assemble_scenario(config, walls, "warehouse", room)


# ----------------------------------------------------------------------
# the scenario registry
# ----------------------------------------------------------------------
_SCENARIOS: Dict[str, ScenarioBuilder] = {}

#: Names with this prefix bypass the registry and are parsed as
#: procedural building specs.  This module owns the constant (the
#: generator imports it back) because routing happens here and the
#: generator is only imported lazily when such a name is requested.
GENERATED_SCENARIO_PREFIX = "generated:"


def register_scenario(
    name: str,
    builder: Optional[ScenarioBuilder] = None,
    *,
    overwrite: bool = False,
):
    """Register ``builder`` under ``name`` (usable as a decorator).

    ``register_scenario("lab")`` decorates a builder function;
    ``register_scenario("lab", build_lab)`` registers directly.
    Registering a name that is already taken by a *different* builder
    raises ``ValueError`` unless ``overwrite=True`` — silent shadowing
    of a built-in (or of another plugin's world) made experiment
    configs lie about what they ran.  Re-registering the same builder
    is a no-op, so repeated imports stay safe.
    """

    def _register(fn: ScenarioBuilder) -> ScenarioBuilder:
        existing = _SCENARIOS.get(name)
        if existing is not None and existing is not fn and not overwrite:
            raise ValueError(
                f"scenario {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        _SCENARIOS[name] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def get_scenario(name: str) -> ScenarioBuilder:
    """The builder for ``name`` (KeyError with choices when unknown).

    Besides registry lookups, ``generated:<template>?field=value&...``
    names resolve dynamically to procedural builders (see
    :mod:`~.generator`) — e.g. ``generated:room-grid?floors=3&seed=7``.
    """
    if name.startswith(GENERATED_SCENARIO_PREFIX):
        from .generator import generated_builder

        return generated_builder(name)
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()} "
            f"or a {GENERATED_SCENARIO_PREFIX}<template> name"
        ) from None


def available_scenarios() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def build_scenario(name: str, seed: int = 63, **kwargs) -> DemoScenario:
    """Build the named scenario: ``get_scenario(name)(seed=seed, ...)``.

    ``generated:`` names carry their spec in the query string; a seed
    pinned there wins over the ``seed`` argument, so the name alone
    reproduces the world.
    """
    return get_scenario(name)(seed=seed, **kwargs)


register_scenario("condo", build_demo_scenario)
register_scenario("demo", build_demo_scenario)
register_scenario("office", build_office_scenario)
register_scenario("warehouse", build_warehouse_scenario)
