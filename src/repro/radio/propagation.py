"""Path-loss models: free space, log-distance, and multi-wall.

The multi-wall model is the workhorse: deterministic log-distance loss
plus the summed penetration losses of every wall/floor crossed by the
direct path (COST 231 multi-wall style).  The stochastic parts of the
link budget — correlated shadowing and per-sample fast fading — live in
:mod:`repro.radio.shadowing` and :mod:`repro.radio.noise` and are
composed by :class:`repro.radio.environment.IndoorEnvironment`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, Sequence

import numpy as np

from .geometry import Wall, WallSet, crossed_walls

__all__ = [
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "MultiWallPathLoss",
    "fspl_db",
    "SPEED_OF_LIGHT",
]

SPEED_OF_LIGHT: float = 299_792_458.0


def fspl_db(distance_m, freq_mhz: float):
    """Free-space path loss in dB at ``distance_m`` / ``freq_mhz``.

    Accepts a scalar distance (returns a float) or an ndarray of
    distances (returns an elementwise ndarray).  Distances below 10 cm
    are clamped: the scan receiver is never closer than that to any
    transmitter of interest, and the far-field formula diverges at zero.
    """
    freq_hz = freq_mhz * 1e6
    if isinstance(distance_m, np.ndarray):
        d = np.maximum(distance_m, 0.1)
        return 20.0 * np.log10(4.0 * np.pi * d * freq_hz / SPEED_OF_LIGHT)
    d = max(distance_m, 0.1)
    return 20.0 * math.log10(4.0 * math.pi * d * freq_hz / SPEED_OF_LIGHT)


def _distance_matrix(tx_positions: np.ndarray, rx_points: np.ndarray) -> np.ndarray:
    """Pairwise TX→RX distances as an ``(n_tx, n_points)`` matrix."""
    tx = np.asarray(tx_positions, dtype=float).reshape(-1, 3)
    rx = np.asarray(rx_points, dtype=float).reshape(-1, 3)
    deltas = rx[None, :, :] - tx[:, None, :]
    return np.sqrt((deltas**2).sum(axis=2))


class PathLossModel(Protocol):
    """Anything mapping a TX→RX geometry to a loss in dB.

    Models may additionally expose ``path_loss_db_many(tx_positions,
    rx_points) -> (n_tx, n_points)``; batched consumers use it when
    present and fall back to the scalar method per pair otherwise.
    """

    def path_loss_db(self, tx: Sequence[float], rx: Sequence[float]) -> float:
        """Deterministic path loss between ``tx`` and ``rx`` in dB."""
        ...


@dataclass(frozen=True)
class FreeSpacePathLoss:
    """Free-space (Friis) path loss at a fixed carrier frequency."""

    freq_mhz: float = 2442.0

    def path_loss_db(self, tx: Sequence[float], rx: Sequence[float]) -> float:
        """Friis loss along the direct path."""
        distance = float(np.linalg.norm(np.asarray(rx, float) - np.asarray(tx, float)))
        return fspl_db(distance, self.freq_mhz)

    def path_loss_db_many(
        self, tx_positions: np.ndarray, rx_points: np.ndarray
    ) -> np.ndarray:
        """Friis loss for every TX→RX pair, ``(n_tx, n_points)``."""
        return fspl_db(_distance_matrix(tx_positions, rx_points), self.freq_mhz)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance model: ``PL(d) = PL(d0) + 10 n log10(d / d0)``.

    Defaults are calibrated for 2.4 GHz indoor LoS: ``pl0_db`` is the
    free-space loss at 1 m and the exponent ``n`` slightly below 2
    captures corridor/room waveguiding.
    """

    exponent: float = 1.9
    pl0_db: float = 40.05
    d0_m: float = 1.0

    def path_loss_db(self, tx: Sequence[float], rx: Sequence[float]) -> float:
        """Log-distance loss along the direct path."""
        distance = float(np.linalg.norm(np.asarray(rx, float) - np.asarray(tx, float)))
        d = max(distance, 0.1)
        return self.pl0_db + 10.0 * self.exponent * math.log10(d / self.d0_m)

    def path_loss_db_many(
        self, tx_positions: np.ndarray, rx_points: np.ndarray
    ) -> np.ndarray:
        """Log-distance loss for every TX→RX pair, ``(n_tx, n_points)``."""
        d = np.maximum(_distance_matrix(tx_positions, rx_points), 0.1)
        return self.pl0_db + 10.0 * self.exponent * np.log10(d / self.d0_m)


class MultiWallPathLoss:
    """Log-distance loss plus per-crossing wall/floor penetration losses.

    Parameters
    ----------
    walls:
        The environment's wall set.
    base:
        Distance-dependent component (defaults to indoor log-distance).
    max_wall_loss_db:
        Cap on the summed wall losses.  Measured multi-wall data shows
        the *marginal* loss of each additional wall shrinking (signals
        find alternative paths); the cap is a cheap surrogate for that
        saturation.
    """

    def __init__(
        self,
        walls: Iterable[Wall],
        base: Optional[PathLossModel] = None,
        max_wall_loss_db: float = 60.0,
    ):
        self.wall_set = WallSet(walls)
        self.walls = self.wall_set.walls
        self.base = base if base is not None else LogDistancePathLoss()
        self.max_wall_loss_db = float(max_wall_loss_db)

    def wall_loss_db(self, tx: Sequence[float], rx: Sequence[float]) -> float:
        """Summed (capped) penetration loss of all crossed walls."""
        total = sum(
            w.material.attenuation_db for w in crossed_walls(tx, rx, self.walls)
        )
        return min(total, self.max_wall_loss_db)

    def wall_loss_db_many(
        self, tx_positions: np.ndarray, rx_points: np.ndarray
    ) -> np.ndarray:
        """Capped penetration loss for every TX→RX pair, ``(n_tx, n_points)``."""
        return np.minimum(
            self.wall_set.crossing_matrix(tx_positions, rx_points),
            self.max_wall_loss_db,
        )

    def crossings(self, tx: Sequence[float], rx: Sequence[float]) -> list:
        """The walls crossed by the direct path (for diagnostics/tests)."""
        return crossed_walls(tx, rx, self.walls)

    def path_loss_db(self, tx: Sequence[float], rx: Sequence[float]) -> float:
        """Total deterministic loss: distance trend + wall penetration."""
        return self.base.path_loss_db(tx, rx) + self.wall_loss_db(tx, rx)

    def base_loss_db_many(
        self, tx_positions: np.ndarray, rx_points: np.ndarray
    ) -> np.ndarray:
        """Distance-trend loss for every TX→RX pair, ``(n_tx, n_points)``.

        Uses the base model's own batched path when it has one; a
        custom scalar-only base still works through a per-pair
        fallback.
        """
        base_many = getattr(self.base, "path_loss_db_many", None)
        if base_many is not None:
            return base_many(tx_positions, rx_points)
        tx = np.asarray(tx_positions, dtype=float).reshape(-1, 3)
        rx = np.asarray(rx_points, dtype=float).reshape(-1, 3)
        return np.array(
            [[self.base.path_loss_db(t, r) for r in rx] for t in tx]
        ).reshape(len(tx), len(rx))

    def path_loss_db_many(
        self, tx_positions: np.ndarray, rx_points: np.ndarray
    ) -> np.ndarray:
        """Total deterministic loss for every TX→RX pair (batched)."""
        return self.base_loss_db_many(
            tx_positions, rx_points
        ) + self.wall_loss_db_many(tx_positions, rx_points)
