"""3-D geometry primitives for the indoor radio environment.

Walls are axis-aligned planar rectangles.  The only geometric query the
propagation model needs is "which walls does the straight line between
transmitter and receiver cross?", which reduces to segment/axis-plane
intersection tests.

Two evaluation paths answer it:

* :func:`crossed_walls` — the scalar reference, one TX→RX segment at a
  time, returning the :class:`Wall` objects hit (diagnostics and tests
  want the identities);
* :class:`WallSet` — a structure-of-arrays copy of the wall list whose
  :meth:`~WallSet.crossing_matrix` broadcasts the same segment/plane
  test over an ``(n_tx, n_points)`` batch in a handful of array ops.
  This is the geometry kernel under every batched link-budget query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .materials import Material

__all__ = [
    "Wall",
    "WallSet",
    "Cuboid",
    "segment_plane_intersection",
    "crossed_walls",
]

_AXIS_NAMES = {0: "x", 1: "y", 2: "z"}


@dataclass(frozen=True)
class Wall:
    """An axis-aligned rectangular wall (or floor slab).

    Parameters
    ----------
    axis:
        Normal axis: 0 for walls perpendicular to x, 1 for y, 2 for z
        (i.e. floor/ceiling slabs).
    offset:
        Coordinate of the wall plane along ``axis``.
    bounds:
        ``((u_min, u_max), (v_min, v_max))`` extents in the two remaining
        axes, ordered by increasing axis index (e.g. for ``axis=1`` the
        bounds are in (x, z)).
    material:
        Material determining the per-crossing attenuation.
    name:
        Optional label used in debug output and tests.
    """

    axis: int
    offset: float
    bounds: Tuple[Tuple[float, float], Tuple[float, float]]
    material: Material
    name: str = ""

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {self.axis}")
        (u0, u1), (v0, v1) = self.bounds
        if u0 > u1 or v0 > v1:
            raise ValueError(f"degenerate wall bounds {self.bounds}")

    @property
    def in_plane_axes(self) -> Tuple[int, int]:
        """The two axes spanning the wall plane, in increasing order."""
        axes = tuple(a for a in (0, 1, 2) if a != self.axis)
        return axes  # type: ignore[return-value]

    def contains_in_plane(self, point: np.ndarray, tol: float = 1e-9) -> bool:
        """True if ``point`` (on the wall plane) lies within the rectangle."""
        (u_axis, v_axis) = self.in_plane_axes
        (u0, u1), (v0, v1) = self.bounds
        u, v = point[u_axis], point[v_axis]
        return (u0 - tol) <= u <= (u1 + tol) and (v0 - tol) <= v <= (v1 + tol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.material.name
        return f"Wall({_AXIS_NAMES[self.axis]}={self.offset:.2f}, {label})"


@dataclass(frozen=True)
class Cuboid:
    """An axis-aligned box, used for room volumes and building envelopes."""

    min_corner: Tuple[float, float, float]
    max_corner: Tuple[float, float, float]

    def __post_init__(self) -> None:
        for lo, hi in zip(self.min_corner, self.max_corner):
            if lo > hi:
                raise ValueError(
                    f"degenerate cuboid: {self.min_corner} .. {self.max_corner}"
                )

    @property
    def size(self) -> Tuple[float, float, float]:
        """Edge lengths along (x, y, z)."""
        return tuple(
            hi - lo for lo, hi in zip(self.min_corner, self.max_corner)
        )  # type: ignore[return-value]

    @property
    def center(self) -> np.ndarray:
        """Geometric center."""
        return (np.asarray(self.min_corner) + np.asarray(self.max_corner)) / 2.0

    @property
    def volume(self) -> float:
        """Volume in cubic meters."""
        sx, sy, sz = self.size
        return sx * sy * sz

    def contains(self, point: Sequence[float], tol: float = 1e-9) -> bool:
        """True if ``point`` lies inside (or on the boundary of) the box."""
        return all(
            lo - tol <= p <= hi + tol
            for p, lo, hi in zip(point, self.min_corner, self.max_corner)
        )

    def contains_many(self, points: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Boolean mask of which ``(N, 3)`` points lie inside the box."""
        pts = np.asarray(points, dtype=float).reshape(-1, 3)
        lo = np.asarray(self.min_corner, dtype=float) - tol
        hi = np.asarray(self.max_corner, dtype=float) + tol
        return np.all((pts >= lo) & (pts <= hi), axis=1)

    def corners(self) -> np.ndarray:
        """The 8 corner points as an (8, 3) array."""
        lo = np.asarray(self.min_corner, dtype=float)
        hi = np.asarray(self.max_corner, dtype=float)
        out = np.empty((8, 3))
        for i in range(8):
            out[i] = [
                hi[0] if i & 1 else lo[0],
                hi[1] if i & 2 else lo[1],
                hi[2] if i & 4 else lo[2],
            ]
        return out

    def grid(self, nx: int, ny: int, nz: int, margin: float = 0.0) -> np.ndarray:
        """An evenly spread ``nx*ny*nz`` lattice of points inside the box.

        ``margin`` shrinks the box on every side before gridding, which is
        how waypoint lattices keep clearance from walls/ceiling.
        """
        if min(nx, ny, nz) < 1:
            raise ValueError("grid dimensions must be >= 1")
        lo = np.asarray(self.min_corner, dtype=float) + margin
        hi = np.asarray(self.max_corner, dtype=float) - margin
        if np.any(hi < lo):
            raise ValueError(f"margin {margin} exceeds cuboid half-size")
        axes = [
            np.linspace(lo[d], hi[d], n) if n > 1 else np.array([(lo[d] + hi[d]) / 2])
            for d, n in enumerate((nx, ny, nz))
        ]
        xs, ys, zs = np.meshgrid(*axes, indexing="ij")
        return np.column_stack([xs.ravel(), ys.ravel(), zs.ravel()])


def segment_plane_intersection(
    p: np.ndarray, q: np.ndarray, axis: int, offset: float
) -> Optional[np.ndarray]:
    """Intersection of segment ``p→q`` with the plane ``coord[axis]=offset``.

    Returns the intersection point, or ``None`` when the segment does not
    cross the plane.  Touching endpoints (either endpoint exactly on the
    plane) do not count as crossings: a transmitter mounted *on* a wall is
    not attenuated by it.
    """
    a, b = p[axis], q[axis]
    da, db = a - offset, b - offset
    if da == 0.0 or db == 0.0 or (da > 0) == (db > 0):
        return None
    t = da / (da - db)
    return p + t * (q - p)


def crossed_walls(
    p: Sequence[float], q: Sequence[float], walls: Iterable[Wall]
) -> List[Wall]:
    """Walls whose rectangle is crossed by the straight segment ``p→q``."""
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    hits: List[Wall] = []
    for wall in walls:
        point = segment_plane_intersection(p_arr, q_arr, wall.axis, wall.offset)
        if point is not None and wall.contains_in_plane(point):
            hits.append(wall)
    return hits


#: The two in-plane axes for each wall normal axis, in increasing order.
_IN_PLANE_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}


class WallSet:
    """Structure-of-arrays wall list for batched crossing queries.

    Walls are grouped by normal axis at construction; each group keeps
    its offsets, in-plane bounds and per-crossing attenuations as flat
    ndarrays so that :meth:`crossing_matrix` can evaluate every
    (transmitter, receive point, wall) triple with broadcast
    segment/axis-plane tests — the same math as
    :func:`segment_plane_intersection` + ``Wall.contains_in_plane``,
    one array expression instead of a per-query Python loop.
    """

    #: Soft cap on (n_tx * point_block * n_walls) elements per broadcast
    #: temporary (~16 MB of float64), enforced by chunking the points.
    _BLOCK_ELEMENTS = 2_000_000

    def __init__(self, walls: Iterable[Wall]):
        self.walls: Tuple[Wall, ...] = tuple(walls)
        self._groups = []
        for axis in (0, 1, 2):
            group = [w for w in self.walls if w.axis == axis]
            if not group:
                continue
            u_axis, v_axis = _IN_PLANE_AXES[axis]
            self._groups.append(
                (
                    axis,
                    u_axis,
                    v_axis,
                    np.array([w.offset for w in group], dtype=float),
                    np.array([w.bounds[0][0] for w in group], dtype=float),
                    np.array([w.bounds[0][1] for w in group], dtype=float),
                    np.array([w.bounds[1][0] for w in group], dtype=float),
                    np.array([w.bounds[1][1] for w in group], dtype=float),
                    np.array(
                        [w.material.attenuation_db for w in group], dtype=float
                    ),
                )
            )

    def __len__(self) -> int:
        return len(self.walls)

    # ------------------------------------------------------------------
    def crossing_matrix(
        self,
        tx_positions: np.ndarray,
        rx_points: np.ndarray,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """Summed wall attenuation for every TX→RX pair, in dB.

        Parameters
        ----------
        tx_positions:
            ``(n_tx, 3)`` transmitter coordinates.
        rx_points:
            ``(n_points, 3)`` receive coordinates.
        tol:
            In-plane rectangle tolerance (matches ``contains_in_plane``).

        Returns the ``(n_tx, n_points)`` matrix of *uncapped* summed
        penetration losses; callers apply their own saturation cap.
        Touching endpoints (TX or RX exactly on a wall plane) do not
        count as crossings, exactly like the scalar path.
        """
        return self._weighted_matrix(tx_positions, rx_points, tol, counts=False)

    def crossing_counts(
        self,
        tx_positions: np.ndarray,
        rx_points: np.ndarray,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """Number of walls crossed per TX→RX pair (diagnostics/tests)."""
        return self._weighted_matrix(tx_positions, rx_points, tol, counts=True)

    # ------------------------------------------------------------------
    def _weighted_matrix(
        self,
        tx_positions: np.ndarray,
        rx_points: np.ndarray,
        tol: float,
        counts: bool,
    ) -> np.ndarray:
        tx = np.asarray(tx_positions, dtype=float).reshape(-1, 3)
        rx = np.asarray(rx_points, dtype=float).reshape(-1, 3)
        total = np.zeros((len(tx), len(rx)))
        if not self._groups or not len(tx) or not len(rx):
            return total
        max_group = max(len(g[3]) for g in self._groups)
        block = max(1, self._BLOCK_ELEMENTS // max(1, len(tx) * max_group))
        for start in range(0, len(rx), block):
            stop = min(start + block, len(rx))
            total[:, start:stop] = self._crossing_block(
                tx, rx[start:stop], tol, counts
            )
        return total

    def _crossing_block(
        self, tx: np.ndarray, rx: np.ndarray, tol: float, counts: bool
    ) -> np.ndarray:
        """One un-chunked ``(n_tx, n_points)`` weighted-crossings block."""
        total = np.zeros((len(tx), len(rx)))
        for axis, u_axis, v_axis, off, u_lo, u_hi, v_lo, v_hi, atten in self._groups:
            # Signed plane distances: (n_tx, 1, k) and (1, n_pts, k).
            da = (tx[:, axis, None] - off)[:, None, :]
            db = (rx[:, axis, None] - off)[None, :, :]
            crosses = (da != 0.0) & (db != 0.0) & ((da > 0.0) != (db > 0.0))
            # Where `crosses` holds, da and db have opposite signs, so
            # the denominator is nonzero; elsewhere the quotient is
            # meaningless and replaced before it can poison the
            # in-plane interpolation below.
            with np.errstate(divide="ignore", invalid="ignore"):
                t = np.where(crosses, da / (da - db), 0.0)
            tu = tx[:, u_axis][:, None, None]
            tv = tx[:, v_axis][:, None, None]
            pu = tu + t * (rx[:, u_axis][None, :, None] - tu)
            pv = tv + t * (rx[:, v_axis][None, :, None] - tv)
            hit = (
                crosses
                & (pu >= u_lo - tol)
                & (pu <= u_hi + tol)
                & (pv >= v_lo - tol)
                & (pv <= v_hi + tol)
            )
            if counts:
                total += hit.sum(axis=2)
            else:
                total += hit @ atten
        return total
