"""Indoor RF substrate: geometry, propagation, shadowing, interference.

This package synthesises the radio environment the paper measured in a
real apartment: a multi-wall 3-D indoor propagation model with
spatially-correlated shadowing and fast fading, a 2.4 GHz AP population,
and the control-link self-interference model behind Fig. 5.
"""

from .accesspoint import AccessPoint, format_mac, generate_population
from .diagnostics import ScenarioDiagnostics, diagnose_scenario
from .environment import IndoorEnvironment, LinkBudget
from .generator import (
    AP_POLICIES,
    GENERATED_PRESETS,
    PALETTES,
    TEMPLATES,
    BuildingSpec,
    GeneratedScenario,
    MaterialPalette,
    build_generated_scenario,
    generate_building,
)
from .geometry import Cuboid, Wall, WallSet, crossed_walls, segment_plane_intersection
from .interference import (
    CrazyradioInterference,
    InterferenceSource,
    ReceiverSelectivity,
    crazyradio_source,
)
from .materials import (
    BRICK,
    CONCRETE,
    DRYWALL,
    GLASS,
    MATERIALS,
    REINFORCED_CONCRETE,
    WOOD,
    Material,
)
from .noise import (
    GaussianFading,
    NoiseModel,
    RicianFading,
    db_to_linear,
    linear_to_db,
    power_sum_dbm,
    thermal_noise_dbm,
)
from .propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
    fspl_db,
)
from .scenario_cache import (
    ScenarioCache,
    cache_enabled,
    configure_default_cache,
    default_cache,
    scenario_digest,
)
from .scenarios import (
    DemoScenario,
    DemoScenarioConfig,
    available_scenarios,
    build_demo_scenario,
    build_office_scenario,
    build_scenario,
    build_warehouse_scenario,
    get_scenario,
    register_scenario,
)
from .shadowing import GaussianRandomField, ShadowingModel
from .spectrum import (
    WIFI_CHANNELS,
    BandSegment,
    band_overlap_mhz,
    nrf24_band,
    nrf24_channel_center_mhz,
    nrf24_channel_for_mhz,
    overlap_fraction,
    overlapping_wifi_channels,
    wifi_band,
    wifi_channel_center_mhz,
)

__all__ = [
    "AccessPoint",
    "format_mac",
    "generate_population",
    "AP_POLICIES",
    "GENERATED_PRESETS",
    "PALETTES",
    "TEMPLATES",
    "BuildingSpec",
    "GeneratedScenario",
    "MaterialPalette",
    "build_generated_scenario",
    "generate_building",
    "ScenarioDiagnostics",
    "diagnose_scenario",
    "ScenarioCache",
    "cache_enabled",
    "configure_default_cache",
    "default_cache",
    "scenario_digest",
    "IndoorEnvironment",
    "LinkBudget",
    "Cuboid",
    "Wall",
    "WallSet",
    "crossed_walls",
    "segment_plane_intersection",
    "CrazyradioInterference",
    "InterferenceSource",
    "ReceiverSelectivity",
    "crazyradio_source",
    "Material",
    "MATERIALS",
    "DRYWALL",
    "BRICK",
    "CONCRETE",
    "REINFORCED_CONCRETE",
    "GLASS",
    "WOOD",
    "GaussianFading",
    "RicianFading",
    "NoiseModel",
    "db_to_linear",
    "linear_to_db",
    "power_sum_dbm",
    "thermal_noise_dbm",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "MultiWallPathLoss",
    "fspl_db",
    "DemoScenario",
    "DemoScenarioConfig",
    "available_scenarios",
    "build_demo_scenario",
    "build_office_scenario",
    "build_scenario",
    "build_warehouse_scenario",
    "get_scenario",
    "register_scenario",
    "GaussianRandomField",
    "ShadowingModel",
    "WIFI_CHANNELS",
    "BandSegment",
    "band_overlap_mhz",
    "nrf24_band",
    "nrf24_channel_center_mhz",
    "nrf24_channel_for_mhz",
    "overlap_fraction",
    "overlapping_wifi_channels",
    "wifi_band",
    "wifi_channel_center_mhz",
]
