"""Building materials and their 2.4 GHz penetration losses.

Per-crossing attenuation values follow the ranges commonly used by
multi-wall indoor propagation models (COST 231 / ITU-R P.1238 style):
light interior partitions cost a few dB, load-bearing masonry closer to
ten, and reinforced-concrete floor slabs substantially more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "Material",
    "DRYWALL",
    "BRICK",
    "CONCRETE",
    "REINFORCED_CONCRETE",
    "GLASS",
    "WOOD",
    "MATERIALS",
]


@dataclass(frozen=True)
class Material:
    """A wall/floor material.

    Parameters
    ----------
    name:
        Human-readable identifier.
    attenuation_db:
        Signal loss in dB for one perpendicular crossing at 2.4 GHz.
    thickness_m:
        Nominal thickness; only used to scale losses for explicitly
        thicker wall segments (e.g. the 40 cm-wider segment on UAV B's
        side of the demo room).
    """

    name: str
    attenuation_db: float
    thickness_m: float = 0.10

    def scaled(self, thickness_m: float) -> "Material":
        """Return a variant with attenuation scaled by relative thickness."""
        if thickness_m <= 0:
            raise ValueError(f"thickness must be positive, got {thickness_m}")
        factor = thickness_m / self.thickness_m
        return Material(
            name=f"{self.name}[{thickness_m:.2f}m]",
            attenuation_db=self.attenuation_db * factor,
            thickness_m=thickness_m,
        )


DRYWALL = Material("drywall", attenuation_db=3.0, thickness_m=0.10)
BRICK = Material("brick", attenuation_db=8.0, thickness_m=0.20)
CONCRETE = Material("concrete", attenuation_db=12.0, thickness_m=0.20)
REINFORCED_CONCRETE = Material(
    "reinforced_concrete", attenuation_db=18.0, thickness_m=0.30
)
GLASS = Material("glass", attenuation_db=2.0, thickness_m=0.01)
WOOD = Material("wood", attenuation_db=4.0, thickness_m=0.05)

MATERIALS: Dict[str, Material] = {
    m.name: m
    for m in (DRYWALL, BRICK, CONCRETE, REINFORCED_CONCRETE, GLASS, WOOD)
}
