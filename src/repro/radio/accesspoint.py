"""Wi-Fi access points and synthetic AP populations.

The demo environment (a condo flat in a large apartment building in
Antwerp) saw 73 distinct BSSIDs across 49 SSIDs with channel occupancy
concentrated on 1/6/11.  :func:`generate_population` synthesises a
population with those statistics: AP locations cluster toward the
building center (which, seen from the demo room, lies toward +x / -y —
the gradient Figs. 6-7 visualise), several SSIDs own multiple BSSIDs
(dual-radio APs, mesh nodes), and channels follow the usual mixture of
the three non-overlapping channels plus stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .spectrum import WIFI_CHANNELS

__all__ = ["AccessPoint", "generate_population", "format_mac"]

#: Default 802.11 beacon interval (102.4 ms = 100 TU).
BEACON_INTERVAL_S: float = 0.1024

_SSID_WORDS_A = (
    "telenet", "proximus", "orange", "home", "wifi", "net", "link",
    "air", "casa", "flat", "blue", "fast", "sky", "zen", "hive",
)
_SSID_WORDS_B = (
    "alpha", "24ghz", "plus", "pro", "max", "one", "x", "lan", "zone",
    "spot", "box", "hub", "mesh", "ap", "south", "north",
)


def format_mac(value: int) -> str:
    """Format a 48-bit integer as a colon-separated MAC address."""
    if not 0 <= value < 2**48:
        raise ValueError(f"MAC value out of range: {value}")
    raw = f"{value:012x}"
    return ":".join(raw[i : i + 2] for i in range(0, 12, 2))


@dataclass(frozen=True)
class AccessPoint:
    """A beaconing 2.4 GHz Wi-Fi access point.

    Attributes
    ----------
    mac:
        BSSID; the unique key the ML stage groups samples by.
    ssid:
        Network name; shared between co-managed APs, so *not* unique.
    channel:
        2.4 GHz channel (1-13).
    position:
        Transmitter coordinates in the global frame, meters.
    tx_power_dbm:
        EIRP of beacon transmissions.
    beacon_interval_s:
        Time between beacons (default 102.4 ms).
    """

    mac: str
    ssid: str
    channel: int
    position: Tuple[float, float, float]
    tx_power_dbm: float = 17.0
    beacon_interval_s: float = BEACON_INTERVAL_S

    def __post_init__(self) -> None:
        if self.channel not in WIFI_CHANNELS:
            raise ValueError(f"invalid channel {self.channel}")
        if self.beacon_interval_s <= 0:
            raise ValueError("beacon interval must be positive")

    @property
    def position_array(self) -> np.ndarray:
        """Position as a numpy array."""
        return np.asarray(self.position, dtype=float)


def _make_ssid(rng: np.random.Generator, index: int) -> str:
    a = _SSID_WORDS_A[int(rng.integers(len(_SSID_WORDS_A)))]
    b = _SSID_WORDS_B[int(rng.integers(len(_SSID_WORDS_B)))]
    suffix = int(rng.integers(10, 99))
    return f"{a}-{b}-{suffix}_{index:02d}"


def _sample_channel(rng: np.random.Generator) -> int:
    # Real-world 2.4 GHz occupancy: ~80 % of APs sit on 1/6/11.
    primary = (1, 6, 11)
    if rng.random() < 0.8:
        return int(primary[int(rng.integers(3))])
    return int(rng.choice([c for c in WIFI_CHANNELS if c not in primary]))


def generate_population(
    n_aps: int,
    n_ssids: int,
    building_center: Sequence[float],
    spread_m: Sequence[float],
    rng: np.random.Generator,
    bounds_min: Optional[Sequence[float]] = None,
    bounds_max: Optional[Sequence[float]] = None,
    tx_power_range_dbm: Tuple[float, float] = (14.0, 20.0),
    exclusion_center: Optional[Sequence[float]] = None,
    exclusion_radius_m: float = 0.0,
    uniform_fraction: float = 0.0,
) -> List[AccessPoint]:
    """Generate a synthetic AP population.

    Positions are drawn from a mixture: a fraction ``uniform_fraction``
    uniformly over the bounding box (the long tail of far, barely
    detectable units that real buildings exhibit) and the rest from an
    anisotropic Gaussian around ``building_center``.  Both components
    put more APs toward the building center than toward the room, so AP
    density — and with it the number of beacon samples collected — rises
    in that direction, reproducing the spatial gradient of Figs. 6-7.

    Parameters
    ----------
    n_aps:
        Number of BSSIDs to create.
    n_ssids:
        Number of distinct SSIDs; must not exceed ``n_aps``.  The first
        ``n_ssids`` APs get fresh SSIDs, the rest reuse existing ones.
    building_center / spread_m:
        Mean and per-axis standard deviation of the location distribution.
    bounds_min / bounds_max:
        Optional clipping box (the building envelope).
    exclusion_center / exclusion_radius_m:
        Optional sphere APs must keep out of (e.g. the flight volume
        itself — nobody mounts an AP mid-air in the living room).
    uniform_fraction:
        Fraction of APs drawn uniformly over the bounds box instead of
        from the Gaussian core.
    """
    if not 0.0 <= uniform_fraction <= 1.0:
        raise ValueError(f"uniform_fraction must be in [0,1], got {uniform_fraction}")
    if uniform_fraction > 0.0 and (bounds_min is None or bounds_max is None):
        raise ValueError("uniform_fraction requires bounds_min/bounds_max")
    if n_ssids > n_aps:
        raise ValueError(f"n_ssids ({n_ssids}) cannot exceed n_aps ({n_aps})")
    if n_aps < 0:
        raise ValueError("n_aps must be >= 0")

    center = np.asarray(building_center, dtype=float)
    spread = np.asarray(spread_m, dtype=float)
    ssids: List[str] = [_make_ssid(rng, i) for i in range(n_ssids)]

    aps: List[AccessPoint] = []
    base_mac = int(rng.integers(2**40)) << 8
    for i in range(n_aps):
        from_uniform = rng.random() < uniform_fraction
        for _attempt in range(200):
            if from_uniform:
                pos = rng.uniform(np.asarray(bounds_min), np.asarray(bounds_max))
            else:
                pos = rng.normal(center, spread)
            if bounds_min is not None and bounds_max is not None:
                pos = np.clip(pos, np.asarray(bounds_min), np.asarray(bounds_max))
            if (
                exclusion_center is not None
                and np.linalg.norm(pos - np.asarray(exclusion_center, float))
                < exclusion_radius_m
            ):
                continue
            break
        ssid = ssids[i] if i < n_ssids else ssids[int(rng.integers(n_ssids))]
        mac = format_mac((base_mac + i * 7 + int(rng.integers(7))) % 2**48)
        power = float(rng.uniform(*tx_power_range_dbm))
        aps.append(
            AccessPoint(
                mac=mac,
                ssid=ssid,
                channel=_sample_channel(rng),
                position=tuple(float(v) for v in pos),
                tx_power_dbm=power,
            )
        )
    return aps
