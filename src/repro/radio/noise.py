"""Receiver noise and small-scale fading.

* Thermal noise floor for a given bandwidth and noise figure;
* dB-domain power combination helpers;
* Fast fading: per-sample Gaussian dB jitter (the log-domain
  approximation of Rician fading around the local mean), plus an exact
  Rayleigh/Rician amplitude model for components that want it.

Fast fading is what sets the irreducible error floor of the RSS
predictors in Fig. 8: even a perfect spatial interpolator cannot predict
the per-beacon fading draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "thermal_noise_dbm",
    "power_sum_dbm",
    "db_to_linear",
    "linear_to_db",
    "GaussianFading",
    "RicianFading",
    "NoiseModel",
]

BOLTZMANN_DBM_PER_HZ = -173.8  # kT at ~300 K, in dBm/Hz


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 6.0) -> float:
    """Thermal noise floor in dBm for ``bandwidth_hz`` and a receiver NF."""
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return BOLTZMANN_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


def db_to_linear(value_db: float) -> float:
    """dB (or dBm) to linear ratio (or mW)."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Linear ratio (or mW) to dB (or dBm); ``-inf`` for 0."""
    if value < 0:
        raise ValueError(f"cannot convert negative power {value} to dB")
    if value == 0:
        return float("-inf")
    return 10.0 * math.log10(value)


def power_sum_dbm(levels_dbm: Iterable[float]) -> float:
    """Sum of powers given in dBm, returned in dBm."""
    total = sum(db_to_linear(p) for p in levels_dbm if p != float("-inf"))
    return linear_to_db(total)


@dataclass
class GaussianFading:
    """Per-sample Gaussian dB jitter around the local mean power.

    A standard log-domain surrogate for moderate-K Rician fading; cheap,
    and symmetric, which keeps the calibration of mean RSS simple.
    """

    sigma_db: float = 2.5

    def sample_db(self, rng: np.random.Generator) -> float:
        """One fading realisation in dB (signed)."""
        if self.sigma_db == 0.0:
            return 0.0
        return float(rng.normal(0.0, self.sigma_db))

    def sample_db_many(self, rng: np.random.Generator, shape) -> np.ndarray:
        """A block of independent fading draws of the given ``shape``.

        Zero sigma returns zeros *without consuming the generator*, the
        same contract as :meth:`sample_db` — fading-free configurations
        must not perturb a consumer's RNG stream.
        """
        if self.sigma_db == 0.0:
            return np.zeros(shape)
        return rng.normal(0.0, self.sigma_db, size=shape)


@dataclass
class RicianFading:
    """Rician amplitude fading with K-factor ``k_db``.

    ``sample_db`` returns the instantaneous power deviation from the mean
    in dB.  For K → inf this degenerates to no fading; K = -inf dB is
    Rayleigh.
    """

    k_db: float = 6.0

    def sample_db(self, rng: np.random.Generator) -> float:
        """One fading realisation in dB (signed, mean-power normalised)."""
        k = db_to_linear(self.k_db)
        # LoS component amplitude nu and scatter sigma for unit mean power.
        nu = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        x = rng.normal(nu, sigma)
        y = rng.normal(0.0, sigma)
        power = x * x + y * y
        return linear_to_db(max(power, 1e-12))


@dataclass
class NoiseModel:
    """Receiver-side noise description for a scanning radio."""

    bandwidth_hz: float = 20e6
    noise_figure_db: float = 6.0

    @property
    def floor_dbm(self) -> float:
        """Thermal noise floor of the receiver."""
        return thermal_noise_dbm(self.bandwidth_hz, self.noise_figure_db)
