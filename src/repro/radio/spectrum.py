"""The 2.4 GHz ISM band: IEEE 802.11b/g/n channels and nRF24 channels.

The demo's self-interference problem lives entirely in this band: the
ESP8266 scans Wi-Fi channels 1-13 (2412-2472 MHz centers, 22 MHz wide)
while the Crazyradio hops over 126 nRF24 channels spanning 2400-2525 MHz
(1 MHz raster).  Spectral overlap between the two determines the
co-channel component of the interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "WIFI_CHANNELS",
    "WIFI_CHANNEL_WIDTH_MHZ",
    "NRF24_CHANNEL_WIDTH_MHZ",
    "CRAZYRADIO_MIN_MHZ",
    "CRAZYRADIO_MAX_MHZ",
    "wifi_channel_center_mhz",
    "nrf24_channel_center_mhz",
    "nrf24_channel_for_mhz",
    "band_overlap_mhz",
    "overlap_fraction",
    "BandSegment",
]

#: Valid IEEE 802.11b/g/n channels in the EU regulatory domain.
WIFI_CHANNELS: Tuple[int, ...] = tuple(range(1, 14))

#: Occupied bandwidth of a DSSS/OFDM 2.4 GHz Wi-Fi channel (simplified to a
#: rectangular mask; the real spectral mask has skirts, which only soften
#: the overlap edges).
WIFI_CHANNEL_WIDTH_MHZ: float = 22.0

#: Occupied bandwidth of an nRF24LU1 channel (2 Mbps GFSK).
NRF24_CHANNEL_WIDTH_MHZ: float = 2.0

#: Crazyradio tuning range as stated in the paper (126 channels,
#: uniformly distributed over 2400-2525 MHz).
CRAZYRADIO_MIN_MHZ: float = 2400.0
CRAZYRADIO_MAX_MHZ: float = 2525.0


@dataclass(frozen=True)
class BandSegment:
    """A rectangular spectral occupancy: center frequency and width."""

    center_mhz: float
    width_mhz: float

    @property
    def low_mhz(self) -> float:
        """Lower band edge."""
        return self.center_mhz - self.width_mhz / 2.0

    @property
    def high_mhz(self) -> float:
        """Upper band edge."""
        return self.center_mhz + self.width_mhz / 2.0


def wifi_channel_center_mhz(channel: int) -> float:
    """Center frequency of 2.4 GHz Wi-Fi ``channel`` (1-13)."""
    if channel not in WIFI_CHANNELS:
        raise ValueError(f"invalid 2.4 GHz Wi-Fi channel {channel}")
    return 2407.0 + 5.0 * channel


def nrf24_channel_center_mhz(channel: int) -> float:
    """Center frequency of nRF24 ``channel`` (0-125): 2400 + k MHz."""
    if not 0 <= channel <= 125:
        raise ValueError(f"invalid nRF24 channel {channel}")
    return 2400.0 + float(channel)


def nrf24_channel_for_mhz(freq_mhz: float) -> int:
    """The nRF24 channel index whose center is ``freq_mhz``."""
    channel = round(freq_mhz - 2400.0)
    if not 0 <= channel <= 125:
        raise ValueError(f"{freq_mhz} MHz is outside the Crazyradio range")
    return int(channel)


def band_overlap_mhz(a: BandSegment, b: BandSegment) -> float:
    """Width of the spectral overlap between two rectangular bands."""
    return max(0.0, min(a.high_mhz, b.high_mhz) - max(a.low_mhz, b.low_mhz))


def overlap_fraction(interferer: BandSegment, victim: BandSegment) -> float:
    """Fraction of the interferer's power landing inside the victim band.

    With the rectangular-mask simplification this is the overlap width
    divided by the interferer bandwidth, in [0, 1].
    """
    if interferer.width_mhz <= 0:
        raise ValueError("interferer bandwidth must be positive")
    fraction = band_overlap_mhz(interferer, victim) / interferer.width_mhz
    # Edge arithmetic can exceed 1 by a few ulps; clamp to the physical range.
    return min(max(fraction, 0.0), 1.0)


def wifi_band(channel: int) -> BandSegment:
    """The occupied band of a Wi-Fi channel."""
    return BandSegment(wifi_channel_center_mhz(channel), WIFI_CHANNEL_WIDTH_MHZ)


def nrf24_band(freq_mhz: float) -> BandSegment:
    """The occupied band of an nRF24 carrier at ``freq_mhz``."""
    return BandSegment(freq_mhz, NRF24_CHANNEL_WIDTH_MHZ)


def overlapping_wifi_channels(freq_mhz: float) -> List[int]:
    """Wi-Fi channels whose band overlaps an nRF24 carrier at ``freq_mhz``."""
    segment = nrf24_band(freq_mhz)
    return [c for c in WIFI_CHANNELS if band_overlap_mhz(segment, wifi_band(c)) > 0]


__all__ += ["wifi_band", "nrf24_band", "overlapping_wifi_channels"]
