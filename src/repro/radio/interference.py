"""Self-interference from the UAV control link onto the scan receiver.

The paper's Fig. 5 shows that an active Crazyradio link degrades the
ESP8266's AP scans *on every Wi-Fi channel*, not only on channels that
spectrally overlap the nRF24 carrier.  Two mechanisms explain this and
both are modelled here:

1. **Co-/adjacent-channel leakage** — the part of the nRF24 carrier that
   falls inside (or near) the scanned Wi-Fi channel, scaled by spectral
   overlap and the receiver's selectivity roll-off.
2. **Front-end desensitisation (blocking)** — the UAV-side nRF51 radio
   ACKs centimeters from the ESP antenna; even fully out-of-band, such a
   strong blocker compresses the low-cost receiver front end and raises
   its effective noise floor band-wide.  Receiver selectivity is finite
   (``ultimate_rejection_db``), which is what makes the degradation
   frequency-independent at large separations.

The model collapses the dongle and the UAV-side radio into one effective
interferer co-located with the receiver, active for ``duty_cycle`` of the
scan time (CRTP is a polled protocol: when the link is up, the dongle
polls continuously and the UAV answers in ACK payloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .noise import power_sum_dbm
from .spectrum import (
    NRF24_CHANNEL_WIDTH_MHZ,
    BandSegment,
    overlap_fraction,
    wifi_band,
    wifi_channel_center_mhz,
)

__all__ = ["InterferenceSource", "ReceiverSelectivity", "CrazyradioInterference"]


@dataclass(frozen=True)
class InterferenceSource:
    """A narrowband interferer as seen *at the victim receiver*.

    Attributes
    ----------
    freq_mhz:
        Carrier center frequency.
    bandwidth_mhz:
        Occupied bandwidth.
    power_at_receiver_dbm:
        Total carrier power delivered to the victim antenna port.
    duty_cycle:
        Fraction of time the carrier is actually transmitting, in [0, 1].
    label:
        Free-form description for reports.
    """

    freq_mhz: float
    bandwidth_mhz: float
    power_at_receiver_dbm: float
    duty_cycle: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ValueError(f"duty cycle must be in [0,1], got {self.duty_cycle}")
        if self.bandwidth_mhz <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def band(self) -> BandSegment:
        """Occupied band of the interferer."""
        return BandSegment(self.freq_mhz, self.bandwidth_mhz)


@dataclass(frozen=True)
class ReceiverSelectivity:
    """Frequency selectivity of a (cheap) scanning receiver front end.

    ``rejection_db(separation)`` grows linearly from
    ``adjacent_rejection_db`` with slope ``rolloff_db_per_mhz`` and
    saturates at ``ultimate_rejection_db`` — the finite stop-band
    rejection that lets a strong nearby blocker leak band-wide.
    """

    adjacent_rejection_db: float = 20.0
    rolloff_db_per_mhz: float = 1.0
    ultimate_rejection_db: float = 55.0
    adjacent_start_mhz: float = 11.0

    def rejection_db(self, separation_mhz: float) -> float:
        """Rejection applied to a carrier ``separation_mhz`` off-center."""
        sep = abs(separation_mhz)
        if sep <= self.adjacent_start_mhz:
            return 0.0
        extra = (sep - self.adjacent_start_mhz) * self.rolloff_db_per_mhz
        return min(self.adjacent_rejection_db + extra, self.ultimate_rejection_db)


class CrazyradioInterference:
    """Computes the effective interference floor per Wi-Fi channel.

    Parameters
    ----------
    selectivity:
        Victim receiver selectivity model.
    """

    def __init__(self, selectivity: Optional[ReceiverSelectivity] = None):
        self.selectivity = selectivity or ReceiverSelectivity()

    def in_band_power_dbm(
        self, source: InterferenceSource, channel: int
    ) -> float:
        """Interference power effective inside ``channel`` while TX is on.

        Combines direct spectral overlap with selectivity-limited leakage
        of the out-of-band remainder and returns the stronger of the two
        (they describe the same carrier, not independent powers).
        """
        victim = wifi_band(channel)
        frac = overlap_fraction(source.band, victim)
        contributions: List[float] = []
        if frac > 0:
            contributions.append(source.power_at_receiver_dbm + _safe_db(frac))
        separation = abs(source.freq_mhz - wifi_channel_center_mhz(channel))
        rejection = self.selectivity.rejection_db(separation)
        contributions.append(source.power_at_receiver_dbm - rejection)
        return max(contributions)

    def floor_dbm(
        self,
        sources: Iterable[InterferenceSource],
        channel: int,
        thermal_floor_dbm: float,
    ) -> float:
        """Effective noise floor on ``channel`` with all ``sources`` active."""
        levels = [thermal_floor_dbm]
        levels.extend(self.in_band_power_dbm(s, channel) for s in sources)
        return power_sum_dbm(levels)

    def combined_duty_cycle(self, sources: Iterable[InterferenceSource]) -> float:
        """Probability that at least one source is transmitting.

        Sources are treated as independent on-off processes.
        """
        off_probability = 1.0
        for source in sources:
            off_probability *= 1.0 - source.duty_cycle
        return 1.0 - off_probability


def _safe_db(fraction: float) -> float:
    import math

    return -300.0 if fraction <= 0 else 10.0 * math.log10(fraction)


def crazyradio_source(
    freq_mhz: float,
    power_at_receiver_dbm: float = -20.0,
    duty_cycle: float = 0.9,
) -> InterferenceSource:
    """The combined control-link interferer used by the demo scenario.

    ``power_at_receiver_dbm`` defaults to the UAV-side nRF51 ACK carrier a
    few centimeters from the ESP antenna (0 dBm TX minus near-field
    coupling/mismatch losses); the distant dongle is folded into the same
    effective source.
    """
    return InterferenceSource(
        freq_mhz=freq_mhz,
        bandwidth_mhz=NRF24_CHANNEL_WIDTH_MHZ,
        power_at_receiver_dbm=power_at_receiver_dbm,
        duty_cycle=duty_cycle,
        label=f"crazyradio@{freq_mhz:.0f}MHz",
    )


__all__ += ["crazyradio_source"]
