"""Scenario diagnostics: is an RF world paper-shaped?

Building a synthetic environment that behaves like the paper's flat
takes calibration (see DESIGN.md §2).  This module packages the probes
used for that calibration so users building *their own* scenarios can
check them: per-scan detection counts, mean detected RSS, and the
spatial gradients that drive Figs. 6-7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..wifi.scanner import ChannelSweepScanner, ScanConfig
from .scenarios import DemoScenario

__all__ = ["ScenarioDiagnostics", "diagnose_scenario"]


@dataclass
class ScenarioDiagnostics:
    """Aggregate probe results over a waypoint-like lattice."""

    mean_aps_per_scan: float
    mean_detected_rss_dbm: float
    distinct_macs_seen: int
    x_gradient_ratio: float
    y_gradient_ratio: float
    samples_projected_72_waypoints: int

    def paper_shape_warnings(self) -> List[str]:
        """Deviations from the §III-A campaign shape, human-readable."""
        warnings: List[str] = []
        if not 25 <= self.mean_aps_per_scan <= 50:
            warnings.append(
                f"mean APs per scan {self.mean_aps_per_scan:.1f} outside "
                "the paper-like 25-50 band"
            )
        if not -80.0 <= self.mean_detected_rss_dbm <= -65.0:
            warnings.append(
                f"mean detected RSS {self.mean_detected_rss_dbm:.1f} dBm far "
                "from the paper's ≈ -73 dBm"
            )
        if self.x_gradient_ratio < 1.0:
            warnings.append(
                "sample mass does not increase toward +x "
                f"(ratio {self.x_gradient_ratio:.2f})"
            )
        if self.y_gradient_ratio < 1.0:
            warnings.append(
                "sample mass does not decrease toward +y "
                f"(ratio {self.y_gradient_ratio:.2f})"
            )
        return warnings


def diagnose_scenario(
    scenario: DemoScenario,
    scan_config: Optional[ScanConfig] = None,
    scan_duration_s: float = 3.0,
    seed: int = 1,
    nx: int = 6,
    ny: int = 4,
    nz: int = 3,
    margin: float = 0.25,
) -> ScenarioDiagnostics:
    """Probe ``scenario`` over its waypoint lattice.

    Runs one scan per lattice point (no flight, no interference) and
    aggregates the statistics the calibration targets.
    """
    environment = scenario.environment
    environment.clear_interference()
    scanner = ChannelSweepScanner(environment, scan_config)
    rng = np.random.default_rng(seed)
    grid = scenario.flight_volume.grid(nx, ny, nz, margin=margin)

    counts = []
    rss_values: List[int] = []
    macs = set()
    xs, ys = [], []
    for point in grid:
        report = scanner.scan(point, rng, duration_s=scan_duration_s)
        counts.append(len(report))
        xs.append(point[0])
        ys.append(point[1])
        rss_values.extend(r.rssi_dbm for r in report.records)
        macs.update(report.macs())

    counts_arr = np.asarray(counts, dtype=float)
    xs_arr = np.asarray(xs)
    ys_arr = np.asarray(ys)
    x_mid = (xs_arr.min() + xs_arr.max()) / 2.0
    y_mid = (ys_arr.min() + ys_arr.max()) / 2.0

    def _ratio(upper_mask) -> float:
        upper = counts_arr[upper_mask].sum()
        lower = counts_arr[~upper_mask].sum()
        return float(upper / lower) if lower > 0 else float("inf")

    return ScenarioDiagnostics(
        mean_aps_per_scan=float(counts_arr.mean()),
        mean_detected_rss_dbm=(
            float(np.mean(rss_values)) if rss_values else float("nan")
        ),
        distinct_macs_seen=len(macs),
        x_gradient_ratio=_ratio(xs_arr > x_mid),
        y_gradient_ratio=1.0 / max(_ratio(ys_arr > y_mid), 1e-9),
        samples_projected_72_waypoints=int(counts_arr.mean() * 72),
    )
