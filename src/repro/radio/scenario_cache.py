"""Cross-job scenario and campaign caching for sweep workloads.

A :class:`~repro.serve.jobset.JobSetSpec` sweep varies predictors,
resolutions and seeds over a handful of scenarios — yet every cell used
to rebuild its RF world from scratch: the scenario geometry, and (far
more expensively) the simulated measurement campaign, which profiling
shows is ~85% of a quick build's wall time.  Both are *pure functions*
of their configuration: scenario construction is seeded, and the
campaign sim derives every random draw from stateless
:meth:`repro.sim.rng.RandomStreams.fork` forks of the scenario's
streams, so re-running a campaign on a cached scenario object is
bit-identical to running it on a fresh one (the artifact byte-identity
tests pin this).

:class:`ScenarioCache` therefore keeps two process-level LRUs —
content-addressed built scenarios and flown campaign results — plus an
on-disk ``.npy`` tier for derived fields (ground-truth maps most
notably) that parallel sweep workers memory-map instead of recomputing.
A 24-cell sweep over 4 scenarios builds each world once, not 24 times.

Cached objects are shared, so consumers must treat them as immutable —
every in-tree consumer already does (campaign logs are only read, the
environment's internal caches are pure memos).  Set
``REPRO_SCENARIO_CACHE=0`` to disable the cache process-wide.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

from .scenarios import DemoScenario, build_scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..station.campaign import CampaignConfig

__all__ = [
    "ScenarioCache",
    "scenario_digest",
    "default_cache",
    "configure_default_cache",
    "cache_enabled",
]

#: Environment switch: set to ``"0"`` to bypass the process cache.
_ENV_TOGGLE = "REPRO_SCENARIO_CACHE"
#: Optional default location of the on-disk field tier.
_ENV_DISK_ROOT = "REPRO_SCENARIO_CACHE_DIR"

_KEY_RE = re.compile(r"^[A-Za-z0-9._-]{1,200}$")


def scenario_digest(
    name: str, seed: int, resolution: Optional[float] = None
) -> str:
    """Content address of a ``(scenario, seed[, resolution])`` world.

    The digest keys both the in-process LRUs and the on-disk field
    tier; ``resolution`` participates only for resolution-dependent
    derivations (ground-truth lattices), not for the scenario object
    itself.
    """
    payload = {"scenario": str(name), "seed": int(seed)}
    if resolution is not None:
        payload["resolution_m"] = float(resolution)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def cache_enabled() -> bool:
    """Whether the process-level cache is active (`REPRO_SCENARIO_CACHE`)."""
    return os.environ.get(_ENV_TOGGLE, "") != "0"


class ScenarioCache:
    """Process-level LRU of built scenarios and flown campaigns.

    Parameters
    ----------
    capacity:
        Entries kept per tier (scenarios and campaigns independently).
    disk_root:
        Directory of the on-disk ``.npy`` field tier; created lazily on
        first write.  ``None`` (the default) keeps :meth:`fields`
        purely in-process.  Defaults to ``$REPRO_SCENARIO_CACHE_DIR``
        when that is set.
    """

    def __init__(
        self,
        capacity: int = 8,
        disk_root: Optional[os.PathLike] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        if disk_root is None and os.environ.get(_ENV_DISK_ROOT):
            disk_root = os.environ[_ENV_DISK_ROOT]
        self.disk_root = None if disk_root is None else Path(disk_root)
        self._lock = threading.Lock()
        self._scenarios: "OrderedDict[str, DemoScenario]" = OrderedDict()
        self._campaigns: "OrderedDict[str, object]" = OrderedDict()
        self._field_memo: Dict[str, np.ndarray] = {}
        self.stats_counters: Dict[str, int] = {
            "scenario_hits": 0,
            "scenario_builds": 0,
            "campaign_hits": 0,
            "campaign_builds": 0,
            "field_hits": 0,
            "field_builds": 0,
        }

    # ------------------------------------------------------------------
    def scenario(self, name: str, seed: int) -> DemoScenario:
        """The built scenario for ``(name, seed)``, cached.

        Equivalent to :func:`repro.radio.scenarios.build_scenario` —
        construction is seeded and campaign randomness forks statelessly
        from the scenario streams, so the returned (shared) object must
        be treated as immutable but is otherwise interchangeable with a
        fresh build.
        """
        key = scenario_digest(name, seed)
        with self._lock:
            hit = self._scenarios.get(key)
            if hit is not None:
                self._scenarios.move_to_end(key)
                self.stats_counters["scenario_hits"] += 1
                return hit
        built = build_scenario(name, seed=seed)
        with self._lock:
            self.stats_counters["scenario_builds"] += 1
            self._insert(self._scenarios, key, built)
        return built

    def campaign(
        self,
        config: "CampaignConfig",
        scenario: Optional[DemoScenario] = None,
        fly: Optional[Callable] = None,
    ):
        """The flown campaign for a job-representable config, cached.

        The key is the config's JSON job-field form (scenario, seed,
        acquisition, active tunables); configs that customize hardware
        fields have no JSON form and are flown uncached.  ``scenario``
        must be the canonical build for ``(config.scenario,
        config.seed)`` when provided (the toolchain's is); it is built
        through the scenario tier when omitted.  ``fly`` overrides the
        campaign runner on a miss (callers pass their own
        ``run_campaign`` reference so test doubles stay effective).
        """
        if fly is None:
            from ..station.campaign import run_campaign

            fly = run_campaign
        key = self._campaign_key(config)
        if key is not None:
            with self._lock:
                hit = self._campaigns.get(key)
                if hit is not None:
                    self._campaigns.move_to_end(key)
                    self.stats_counters["campaign_hits"] += 1
                    return hit
        if scenario is None:
            scenario = self.scenario(config.scenario, config.seed)
        result = fly(scenario=scenario, config=config)
        if key is not None:
            with self._lock:
                self.stats_counters["campaign_builds"] += 1
                self._insert(self._campaigns, key, result)
        return result

    # ------------------------------------------------------------------
    def fields(
        self, key: str, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """A derived array under content address ``key``, cached.

        With a ``disk_root`` the array lives as ``<key>.npy`` written
        atomically (tmp + rename) and is returned memory-mapped, so
        parallel sweep workers sharing the directory page the same
        bytes instead of recomputing; without one it is memoized
        in-process.  ``compute`` runs at most once per tier miss and
        must return the full array.
        """
        if not _KEY_RE.match(key):
            raise ValueError(f"invalid field cache key {key!r}")
        if self.disk_root is None:
            with self._lock:
                hit = self._field_memo.get(key)
            if hit is not None:
                self.stats_counters["field_hits"] += 1
                return hit
            value = np.asarray(compute())
            with self._lock:
                self.stats_counters["field_builds"] += 1
                self._field_memo[key] = value
            return value
        path = self.disk_root / f"{key}.npy"
        if path.exists():
            self.stats_counters["field_hits"] += 1
            return np.load(path, mmap_mode="r")
        value = np.asarray(compute())
        self.disk_root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        with open(tmp, "wb") as handle:
            np.save(handle, value)
        os.replace(tmp, path)
        self.stats_counters["field_builds"] += 1
        return np.load(path, mmap_mode="r")

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/build counters per tier (a copy)."""
        with self._lock:
            return dict(self.stats_counters)

    def clear(self) -> None:
        """Drop every in-process entry (the disk tier is left alone)."""
        with self._lock:
            self._scenarios.clear()
            self._campaigns.clear()
            self._field_memo.clear()

    # ------------------------------------------------------------------
    def _insert(self, tier: OrderedDict, key: str, value) -> None:
        tier[key] = value
        tier.move_to_end(key)
        while len(tier) > self.capacity:
            tier.popitem(last=False)

    @staticmethod
    def _campaign_key(config: "CampaignConfig") -> Optional[str]:
        """Digest of a job-representable config; ``None`` otherwise."""
        try:
            fields = config.to_job_fields()
        except ValueError:
            return None
        canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


_default: Optional[ScenarioCache] = None
_default_lock = threading.Lock()


def default_cache() -> ScenarioCache:
    """The process-wide :class:`ScenarioCache` (created on first use)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = ScenarioCache()
        return _default


def configure_default_cache(
    disk_root: Optional[os.PathLike] = None,
    capacity: Optional[int] = None,
) -> ScenarioCache:
    """Adjust the process-wide cache (sweep workers point the disk tier
    at a directory shared under the artifact store root)."""
    cache = default_cache()
    if disk_root is not None:
        cache.disk_root = Path(disk_root)
    if capacity is not None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        cache.capacity = int(capacity)
    return cache
