"""repro — reproduction of "Small UAVs-supported Autonomous Generation
of Fine-grained 3D Indoor Radio Environmental Maps" (ICDCS 2022).

The package rebuilds the paper's full toolchain on a discrete-event
simulation of its hardware context:

* :mod:`repro.sim` — deterministic event kernel and seeded RNG streams;
* :mod:`repro.radio` — synthetic 3-D indoor RF environment (multi-wall
  propagation, correlated shadowing, AP population, self-interference);
* :mod:`repro.wifi` — channel-sweep scanner, ESP-01 AT device, driver;
* :mod:`repro.uwb` — Loco-Positioning anchors, TWR/TDoA ranging, EKF;
* :mod:`repro.uav` — Crazyflie vehicle, battery, commander, firmware;
* :mod:`repro.link` — Crazyradio, CRTP packets, bounded TX queue;
* :mod:`repro.station` — mission planning, control client, campaigns;
* :mod:`repro.core` — the REM toolchain: preprocessing, predictors,
  REM product, end-to-end pipeline;
* :mod:`repro.serve` — the job/artifact/serving API: JSON job specs,
  the content-addressed artifact store, the REM query service and its
  HTTP front end;
* :mod:`repro.analysis` — figure-by-figure reproduction of the
  evaluation.

Quickstart::

    from repro import generate_rem
    result = generate_rem()
    print(result.summary())
"""

from .core import (
    RadioEnvironmentMap,
    REMDataset,
    ToolchainConfig,
    ToolchainResult,
    build_rem,
    generate_rem,
    preprocess,
)
from .radio import (
    DemoScenario,
    DemoScenarioConfig,
    available_scenarios,
    build_demo_scenario,
    build_scenario,
    register_scenario,
)
from .serve import (
    ArtifactStore,
    RemArtifact,
    RemJobSpec,
    RemService,
    create_server,
    run_job,
)
from .station import (
    CampaignConfig,
    CampaignResult,
    SampleLog,
    run_campaign,
    run_endurance_test,
)

__version__ = "1.1.0"

__all__ = [
    "generate_rem",
    "ToolchainConfig",
    "ToolchainResult",
    "RadioEnvironmentMap",
    "REMDataset",
    "build_rem",
    "preprocess",
    "DemoScenario",
    "DemoScenarioConfig",
    "available_scenarios",
    "build_demo_scenario",
    "build_scenario",
    "register_scenario",
    "CampaignConfig",
    "CampaignResult",
    "SampleLog",
    "run_campaign",
    "run_endurance_test",
    "RemJobSpec",
    "run_job",
    "RemArtifact",
    "ArtifactStore",
    "RemService",
    "create_server",
    "__version__",
]
