"""A second REM-receiver technology: BLE advertisement scanning.

§II-A claims the UAV↔receiver interface is modular: "a simple
integration of different REM-sampling device (e.g., Wi-Fi, LoRa, BLE,
mmWave) with the UAV".  This module makes that claim executable: a BLE
observer module (think nRF52 deck) scanning the three BLE advertising
channels (37/38/39 at 2402/2426/2480 MHz), wrapped in a driver that
implements the same four-instruction :class:`RemReceiverDriver`
contract as the ESP-01 — so the identical firmware scan task, CRTP
result path and ML pipeline run unchanged on BLE data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..radio.accesspoint import format_mac
from ..radio.environment import IndoorEnvironment
from .beacon import ScanRecord
from .driver import DriverError, ReceiverState, RemReceiverDriver

__all__ = [
    "BLE_ADV_CHANNELS",
    "BleDevice",
    "BleScanConfig",
    "BleObserverModule",
    "BleReceiverDriver",
    "generate_ble_population",
]

#: BLE advertising channels and their center frequencies (MHz).
BLE_ADV_CHANNELS = {37: 2402.0, 38: 2426.0, 39: 2480.0}

_BLE_NAMES = (
    "tile", "band", "watch", "tag", "bulb", "lock", "scale", "sensor",
    "buds", "tv", "speaker", "thermo", "plug", "toothbrush",
)


@dataclass(frozen=True)
class BleDevice:
    """A BLE advertiser (wearable, beacon, smart-home gadget).

    Exposes the transmitter surface (:attr:`mac`, :attr:`position`,
    :attr:`tx_power_dbm`) that :class:`IndoorEnvironment` link-budget
    queries expect, so the same propagation/shadowing substrate serves
    both technologies.
    """

    mac: str
    name: str
    position: Tuple[float, float, float]
    tx_power_dbm: float = 0.0
    adv_interval_s: float = 0.2

    @property
    def position_array(self) -> np.ndarray:
        """Position as a numpy array."""
        return np.asarray(self.position, dtype=float)


@dataclass(frozen=True)
class BleScanConfig:
    """BLE observer parameters (nRF52-class)."""

    sensitivity_dbm: float = -96.0
    snr_min_db: float = 4.0
    collision_miss_probability: float = 0.15
    rx_gain_offset_db: float = 0.0


def generate_ble_population(
    n_devices: int,
    rng: np.random.Generator,
    center: Sequence[float],
    spread_m: Sequence[float],
    tx_power_range_dbm: Tuple[float, float] = (-8.0, 4.0),
) -> List[BleDevice]:
    """Scatter BLE advertisers around the flat (they live close by)."""
    devices: List[BleDevice] = []
    base = int(rng.integers(2**40)) << 8 | 0x02  # locally administered
    for i in range(n_devices):
        position = rng.normal(np.asarray(center, float), np.asarray(spread_m, float))
        prefix = _BLE_NAMES[int(rng.integers(len(_BLE_NAMES)))]
        name = f"{prefix}-{int(rng.integers(100)):02d}"
        devices.append(
            BleDevice(
                mac=format_mac((base + 13 * i) % 2**48),
                name=name,
                position=tuple(float(v) for v in position),
                tx_power_dbm=float(rng.uniform(*tx_power_range_dbm)),
                adv_interval_s=float(rng.choice([0.1, 0.2, 0.5, 1.0])),
            )
        )
    return devices


class BleObserverModule:
    """The BLE counterpart of :class:`Esp01Module` (SPI deck, no AT).

    Exposes the same carrier surface the UAV firmware expects:
    ``set_position`` and ``scan_duration_s``; the scan itself listens on
    each advertising channel in turn.
    """

    def __init__(
        self,
        environment: IndoorEnvironment,
        devices: Sequence[BleDevice],
        rng: np.random.Generator,
        config: Optional[BleScanConfig] = None,
        scan_duration_s: float = 2.0,
    ):
        self.environment = environment
        self.devices = tuple(devices)
        self.rng = rng
        self.config = config or BleScanConfig()
        self.scan_duration_s = float(scan_duration_s)
        self.position: Tuple[float, float, float] = (0.0, 0.0, 0.0)
        self.powered = False

    # ------------------------------------------------------------------
    def set_position(self, position: Sequence[float]) -> None:
        """Update the module's physical location."""
        self.position = tuple(float(v) for v in position)

    def power_on(self) -> bool:
        """Bring the radio observer up."""
        self.powered = True
        return True

    # ------------------------------------------------------------------
    def run_scan(self) -> List[ScanRecord]:
        """One observation window across the 3 advertising channels.

        A device is listed once if at least one of its advertisements is
        captured; the reported RSSI is the mean of captured frames.
        """
        if not self.powered:
            raise DriverError("BLE observer not powered")
        cfg = self.config
        dwell = self.scan_duration_s / len(BLE_ADV_CHANNELS)
        thermal = self.environment.thermal_floor_dbm()
        duty = self.environment.interference_duty_cycle()
        records: List[ScanRecord] = []
        for channel in BLE_ADV_CHANNELS:
            for device in self.devices:
                opportunities = max(1, int(dwell / device.adv_interval_s))
                captured: List[float] = []
                for _ in range(opportunities):
                    if self.rng.random() < cfg.collision_miss_probability:
                        continue
                    rss = (
                        self.environment.sample_rss_dbm(device, self.position, self.rng)
                        + cfg.rx_gain_offset_db
                    )
                    if rss < cfg.sensitivity_dbm:
                        continue
                    # BLE advertising survives narrowband interference on
                    # 2/3 channels; approximate with the duty-cycle gate.
                    if duty > 0.0 and self.rng.random() < duty:
                        floor = self.environment.interference_floor_dbm(1)
                        if rss - floor < cfg.snr_min_db:
                            continue
                    captured.append(rss)
                if captured and not any(r.mac == device.mac for r in records):
                    records.append(
                        ScanRecord(
                            ssid=device.name,
                            rssi_dbm=int(round(float(np.mean(captured)))),
                            mac=device.mac,
                            channel=channel,
                        )
                    )
        return records


class BleReceiverDriver(RemReceiverDriver):
    """The §II-A four-instruction driver for the BLE observer."""

    def __init__(self, module: BleObserverModule):
        self.module = module
        self._state = ReceiverState.UNINITIALIZED
        self._pending: List[ScanRecord] = []

    def initialize(self) -> None:
        """Power the observer (instruction i)."""
        if not self.module.power_on():
            self._state = ReceiverState.FAILED
            raise DriverError("BLE observer failed to power on")
        self._state = ReceiverState.READY

    def check_state(self) -> ReceiverState:
        """Report driver state (instruction ii)."""
        return self._state

    def start_measurement(self) -> float:
        """Run one observation window (instruction iii)."""
        if self._state is not ReceiverState.READY:
            raise DriverError(f"receiver not ready (state={self._state})")
        self._state = ReceiverState.MEASURING
        self._pending = self.module.run_scan()
        return self.module.scan_duration_s

    def parse_output(self) -> List[ScanRecord]:
        """Return the buffered records (instruction iv)."""
        if self._state is not ReceiverState.MEASURING:
            raise DriverError("no measurement in progress")
        records, self._pending = self._pending, []
        self._state = ReceiverState.READY
        return records
