"""Parsing of ESP8266 AT responses (``+CWLAP`` lines in particular).

The paper's driver configures ``AT+CWLAPOPT`` so that ``AT+CWLAP``
returns one line per AP of the form::

    +CWLAP:("MySSID",-56,"aa:bb:cc:dd:ee:ff",6)

SSIDs are arbitrary user strings — they may contain commas, parentheses
and escaped quotes — so the parser is a small state machine rather than
a ``split(',')``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .beacon import ScanRecord

__all__ = [
    "AtParseError",
    "parse_cwlap_line",
    "parse_cwlap_response",
    "split_at_fields",
]

CWLAP_PREFIX = "+CWLAP:"


class AtParseError(ValueError):
    """Raised when an AT response line cannot be parsed."""


def split_at_fields(body: str) -> List[str]:
    """Split the parenthesised body of an AT record into raw fields.

    Handles quoted strings with backslash escapes; returned fields keep
    their quotes stripped (for quoted fields) or raw text (for numbers).
    """
    fields: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\" and in_quotes:
            escaped = True
        elif ch == '"':
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes:
        raise AtParseError(f"unterminated quote in AT fields: {body!r}")
    fields.append("".join(current))
    return fields


def parse_cwlap_line(line: str) -> Optional[ScanRecord]:
    """Parse one ``+CWLAP:(...)`` line into a :class:`ScanRecord`.

    Returns ``None`` for unrelated lines (echo, blank, ``OK``).  Raises
    :class:`AtParseError` for malformed ``+CWLAP`` records.
    """
    stripped = line.strip()
    if not stripped.startswith(CWLAP_PREFIX):
        return None
    body = stripped[len(CWLAP_PREFIX):].strip()
    if not (body.startswith("(") and body.endswith(")")):
        raise AtParseError(f"malformed CWLAP record: {line!r}")
    fields = split_at_fields(body[1:-1])
    if len(fields) != 4:
        raise AtParseError(
            f"expected 4 fields (ssid,rssi,mac,channel), got {len(fields)}: {line!r}"
        )
    ssid, rssi_text, mac, channel_text = fields
    try:
        rssi = int(rssi_text)
        channel = int(channel_text)
    except ValueError as exc:
        raise AtParseError(f"non-numeric rssi/channel in {line!r}") from exc
    return ScanRecord(ssid=ssid, rssi_dbm=rssi, mac=mac.lower(), channel=channel)


def parse_cwlap_response(lines: Sequence[str]) -> List[ScanRecord]:
    """Parse a full ``AT+CWLAP`` response into scan records.

    ``ERROR`` anywhere in the response raises; ``OK`` and echo lines are
    skipped.
    """
    records: List[ScanRecord] = []
    for line in lines:
        if line.strip() == "ERROR":
            raise AtParseError("AT+CWLAP returned ERROR")
        record = parse_cwlap_line(line)
        if record is not None:
            records.append(record)
    return records
