"""Wi-Fi scanning substrate: scanner, ESP-01 AT device, driver contract.

Reproduces the paper's REM-sampling receiver stack: a channel-sweep
scanner with SINR-based beacon detection, the AI-Thinker ESP-01 module
behind its AT-over-UART protocol, and the modular four-instruction
driver interface (§II-A) that makes the toolchain technology-agnostic.
"""

from .at_parser import (
    AtParseError,
    parse_cwlap_line,
    parse_cwlap_response,
    split_at_fields,
)
from .beacon import ScanRecord, ScanReport
from .ble import (
    BLE_ADV_CHANNELS,
    BleDevice,
    BleObserverModule,
    BleReceiverDriver,
    BleScanConfig,
    generate_ble_population,
)
from .driver import DriverError, Esp01Driver, ReceiverState, RemReceiverDriver
from .esp8266 import CwlapOutputMask, Esp01Module, UartTransport
from .scanner import ChannelSweepScanner, ScanConfig

__all__ = [
    "ScanRecord",
    "ScanReport",
    "BLE_ADV_CHANNELS",
    "BleDevice",
    "BleObserverModule",
    "BleReceiverDriver",
    "BleScanConfig",
    "generate_ble_population",
    "ScanConfig",
    "ChannelSweepScanner",
    "Esp01Module",
    "UartTransport",
    "CwlapOutputMask",
    "AtParseError",
    "parse_cwlap_line",
    "parse_cwlap_response",
    "split_at_fields",
    "RemReceiverDriver",
    "Esp01Driver",
    "ReceiverState",
    "DriverError",
]
