"""Channel-sweep Wi-Fi scanner with an SINR-based detection model.

The ESP-01's ``AT+CWLAP`` performs a sweep over the 2.4 GHz channels,
dwelling long enough on each to catch beacon transmissions (the default
802.11 beacon interval is 102.4 ms).  An AP is listed when at least one
of its beacons is decoded during the dwell; decoding requires the beacon
to clear both the receiver sensitivity and a minimum SINR over the
*effective* noise floor — which the active control link can raise
dramatically (see :mod:`repro.radio.interference`).

Detection bookkeeping is per-beacon: each beacon opportunity draws its
own fast-fading realisation and its own interference on/off state, so a
bursty interferer lets some beacons through — matching the partial (not
total) degradation visible in Fig. 5.

The implementation is batched end to end: one
:meth:`~repro.radio.environment.IndoorEnvironment.mean_rss_dbm_many`
call prices the whole sweep's link budgets, and every AP's dwell draws
its collision/fading/jam opportunities as one vectorized Bernoulli +
Gaussian block.  APs are visited in a fixed (channel, population)
order, so a given consumer generator still produces one deterministic
scan sequence per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..radio.accesspoint import AccessPoint
from ..radio.environment import IndoorEnvironment
from ..radio.spectrum import WIFI_CHANNELS
from .beacon import ScanRecord, ScanReport

__all__ = ["ScanConfig", "ChannelSweepScanner"]


@dataclass(frozen=True)
class ScanConfig:
    """Tunables of the scanning receiver.

    Defaults model the ESP8266: ~-91 dBm sensitivity for beacon-rate
    frames and a few dB of required SINR margin.

    ``collision_miss_probability`` models everything that makes a single
    sweep miss even a strong AP in a busy 2.4 GHz band: beacon/data
    collisions, dwell-vs-beacon timing misalignment, and scan-engine
    truncation.  It is what keeps per-scan AP counts well below the
    number of theoretically detectable APs — and what gives individual
    scan counts the location-to-location spread visible in Fig. 6.

    ``rx_gain_offset_db`` is a per-receiver gain calibration: the demo's
    ESP-01 decks are hand-soldered, and unit-to-unit sensitivity spread
    of a couple of dB is normal.  The campaign assigns each UAV's module
    its own offset.
    """

    channels: Tuple[int, ...] = WIFI_CHANNELS
    sensitivity_dbm: float = -89.0
    snr_min_db: float = 4.0
    beacon_interval_s: float = 0.1024
    min_opportunities: int = 1
    collision_miss_probability: float = 0.55
    rx_gain_offset_db: float = 0.0

    def dwell_s(self, duration_s: float) -> float:
        """Dwell per channel for a sweep of ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError(f"scan duration must be positive, got {duration_s}")
        return duration_s / len(self.channels)

    def opportunities(self, duration_s: float) -> int:
        """Beacon reception opportunities per AP during one dwell."""
        dwell = self.dwell_s(duration_s)
        return max(self.min_opportunities, int(dwell / self.beacon_interval_s))


class ChannelSweepScanner:
    """Simulated AP scanner bound to an environment.

    Parameters
    ----------
    environment:
        The RF world to scan (APs, propagation, interference state).
    config:
        Receiver parameters.
    """

    def __init__(
        self, environment: IndoorEnvironment, config: Optional[ScanConfig] = None
    ):
        self.environment = environment
        self.config = config or ScanConfig()

    # ------------------------------------------------------------------
    def scan(
        self,
        position: Sequence[float],
        rng: np.random.Generator,
        duration_s: float = 3.0,
    ) -> ScanReport:
        """Run one channel sweep at ``position``.

        The environment's currently registered interference sources are
        applied; callers model "radio off during scan" by clearing the
        environment's sources before invoking this.
        """
        cfg = self.config
        env = self.environment
        opportunities = cfg.opportunities(duration_s)
        duty = env.interference_duty_cycle()
        interference_active = duty > 0.0
        thermal = env.thermal_floor_dbm()

        # One batched link-budget pass for the whole sweep: the wall
        # set and every shadowing field are evaluated exactly once.
        channel_map = env.channel_map()
        by_channel = {ch: channel_map.get(ch, ()) for ch in cfg.channels}
        sweep_aps = [ap for ch in cfg.channels for ap in by_channel[ch]]
        means = {}
        if sweep_aps:
            rows = env.mean_rss_dbm_many(
                [ap.mac for ap in sweep_aps], [position]
            )[:, 0]
            means = dict(zip((ap.mac for ap in sweep_aps), rows))

        records: List[ScanRecord] = []
        for channel in cfg.channels:
            aps = by_channel[channel]
            if not aps:
                continue
            if interference_active:
                raised = env.interference_floor_dbm(channel)
            else:
                raised = thermal
            # One Bernoulli+fading block covers every AP's dwell on
            # this channel: (n_aps, opportunities).
            channel_means = np.array([means[ap.mac] for ap in aps])
            decoded, rss = self._detect_beacons(
                channel_means[:, None],
                rng,
                (len(aps), opportunities),
                duty,
                thermal,
                raised,
            )
            for row, ap in enumerate(aps):
                detected_levels = rss[row][decoded[row]]
                if detected_levels.size:
                    records.append(
                        ScanRecord(
                            ssid=ap.ssid,
                            rssi_dbm=int(round(float(np.mean(detected_levels)))),
                            mac=ap.mac,
                            channel=channel,
                        )
                    )
        return ScanReport(
            records=records,
            position=tuple(float(v) for v in position),
            duration_s=float(duration_s),
            channel_dwell_s=cfg.dwell_s(duration_s),
            interference_active=interference_active,
        )

    # ------------------------------------------------------------------
    def _detect_beacons(
        self,
        mean_rss_dbm,
        rng: np.random.Generator,
        shape: Tuple[int, ...],
        duty: float,
        thermal_floor_dbm: float,
        raised_floor_dbm: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode mask and RSS of a block of beacon opportunities.

        ``shape`` is ``(n_aps, opportunities)`` for one channel dwell
        (with ``mean_rss_dbm`` an ``(n_aps, 1)`` column) or ``(trials,
        opportunities)`` for a Monte-Carlo block with a scalar mean;
        every opportunity draws its collision, fading and interference
        state from one vectorized block on the caller's generator.
        """
        cfg = self.config
        if cfg.collision_miss_probability > 0.0:
            missed = rng.random(shape) < cfg.collision_miss_probability
        else:
            missed = np.zeros(shape, dtype=bool)
        rss = (
            mean_rss_dbm
            + self.environment.fading.sample_db_many(rng, shape)
            + cfg.rx_gain_offset_db
        )
        if duty > 0.0:
            jammed = rng.random(shape) < duty
            floor = np.where(jammed, raised_floor_dbm, thermal_floor_dbm)
        else:
            floor = thermal_floor_dbm
        decoded = (
            ~missed & (rss >= cfg.sensitivity_dbm) & (rss - floor >= cfg.snr_min_db)
        )
        return decoded, rss

    # ------------------------------------------------------------------
    def detection_probability(
        self,
        ap: AccessPoint,
        position: Sequence[float],
        rng: np.random.Generator,
        duration_s: float = 3.0,
        trials: int = 200,
    ) -> float:
        """Monte-Carlo estimate of P(AP listed) for analysis/calibration.

        All ``trials × opportunities`` beacon outcomes come from one
        vectorized block — the scan model evaluated once, not per trial.
        """
        cfg = self.config
        env = self.environment
        opportunities = cfg.opportunities(duration_s)
        duty = env.interference_duty_cycle()
        thermal = env.thermal_floor_dbm()
        raised = env.interference_floor_dbm(ap.channel) if duty > 0 else thermal
        mean = env.mean_rss_dbm(ap, position)
        decoded, _ = self._detect_beacons(
            mean, rng, (trials, opportunities), duty, thermal, raised
        )
        return float(decoded.any(axis=1).mean())
