"""Simulated AI-Thinker ESP-01 (ESP8266) module with AT firmware.

The real module is soldered on a Crazyflie prototyping deck and spoken
to over UART with AT commands.  This simulation reproduces the protocol
surface the paper's driver uses (§III-A):

* ``AT`` — liveness test;
* ``AT+CWMODE_CUR=1`` — put the module in station mode;
* ``AT+CWLAPOPT=<sort>,<mask>`` — configure the CWLAP output format
  (the paper selects the ``(ssid, rssi, mac, channel)`` tuple);
* ``AT+CWLAP`` — sweep for APs and list them.

The module is *not* time-aware: ``AT+CWLAP`` computes its result
synchronously and reports the sweep duration that the caller (the
firmware scan task) must burn in simulated time.  A byte-level
:class:`UartTransport` wraps the module so the Crazyflie-side driver
exercises real framing (``\\r\\n`` termination, echo, ``busy p...``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..radio.environment import IndoorEnvironment
from .beacon import ScanReport
from .scanner import ChannelSweepScanner, ScanConfig

__all__ = ["Esp01Module", "UartTransport", "CwlapOutputMask"]


@dataclass(frozen=True)
class CwlapOutputMask:
    """The AT+CWLAPOPT print mask (bit layout of the real AT firmware)."""

    ecn: bool = False
    ssid: bool = True
    rssi: bool = True
    mac: bool = True
    channel: bool = True

    @classmethod
    def from_int(cls, mask: int) -> "CwlapOutputMask":
        """Decode the integer mask: bit0=ecn,1=ssid,2=rssi,3=mac,4=channel."""
        return cls(
            ecn=bool(mask & 1),
            ssid=bool(mask & 2),
            rssi=bool(mask & 4),
            mac=bool(mask & 8),
            channel=bool(mask & 16),
        )

    def to_int(self) -> int:
        """Encode back to the integer form."""
        return (
            (1 if self.ecn else 0)
            | (2 if self.ssid else 0)
            | (4 if self.rssi else 0)
            | (8 if self.mac else 0)
            | (16 if self.channel else 0)
        )


#: Mask selecting the paper's (ssid, rssi, mac, channel) tuple.
PAPER_MASK = CwlapOutputMask(ecn=False, ssid=True, rssi=True, mac=True, channel=True)


class Esp01Module:
    """AT-command engine bound to a scanner and a carrier position.

    Parameters
    ----------
    environment:
        RF world the module scans.
    scan_config:
        Receiver parameters.
    rng:
        Randomness for fading/detection draws.
    scan_duration_s:
        Simulated duration of one full AT+CWLAP sweep (the paper budgets
        ~2-3 s per scan).
    """

    def __init__(
        self,
        environment: IndoorEnvironment,
        rng: np.random.Generator,
        scan_config: Optional[ScanConfig] = None,
        scan_duration_s: float = 2.0,
    ):
        self.scanner = ChannelSweepScanner(environment, scan_config)
        self.rng = rng
        self.scan_duration_s = float(scan_duration_s)
        self.position: Tuple[float, float, float] = (0.0, 0.0, 0.0)
        self.station_mode = False
        self.output_mask = CwlapOutputMask()
        self.last_report: Optional[ScanReport] = None
        self.commands_seen: List[str] = []

    # ------------------------------------------------------------------
    def set_position(self, position: Sequence[float]) -> None:
        """Update the module's physical location (it rides on the UAV,
        so this runs every control tick — no generator machinery)."""
        self.position = (
            float(position[0]),
            float(position[1]),
            float(position[2]),
        )

    # ------------------------------------------------------------------
    def execute(self, command: str) -> List[str]:
        """Execute one AT command; returns the response lines.

        The final line is always ``OK`` or ``ERROR`` like the real
        firmware.
        """
        cmd = command.strip()
        self.commands_seen.append(cmd)
        if cmd == "AT":
            return ["OK"]
        if cmd.startswith("AT+CWMODE_CUR="):
            return self._set_mode(cmd)
        if cmd.startswith("AT+CWLAPOPT="):
            return self._set_lap_options(cmd)
        if cmd == "AT+CWLAP":
            return self._run_scan()
        return ["ERROR"]

    # ------------------------------------------------------------------
    def _set_mode(self, cmd: str) -> List[str]:
        value = cmd.split("=", 1)[1]
        if value not in ("1", "2", "3"):
            return ["ERROR"]
        self.station_mode = value in ("1", "3")
        return ["OK"]

    def _set_lap_options(self, cmd: str) -> List[str]:
        try:
            parts = cmd.split("=", 1)[1].split(",")
            _sort_enable = int(parts[0])
            mask = int(parts[1])
        except (IndexError, ValueError):
            return ["ERROR"]
        self.output_mask = CwlapOutputMask.from_int(mask)
        return ["OK"]

    def _run_scan(self) -> List[str]:
        if not self.station_mode:
            return ["ERROR"]
        report = self.scanner.scan(
            self.position, self.rng, duration_s=self.scan_duration_s
        )
        self.last_report = report
        lines = [self._format_record(r) for r in report.records]
        lines.append("OK")
        return lines

    def _format_record(self, record) -> str:
        mask = self.output_mask
        fields: List[str] = []
        if mask.ecn:
            fields.append("4")  # WPA2-PSK placeholder; not modelled further
        if mask.ssid:
            escaped = record.ssid.replace("\\", "\\\\").replace('"', '\\"')
            fields.append(f'"{escaped}"')
        if mask.rssi:
            fields.append(str(record.rssi_dbm))
        if mask.mac:
            fields.append(f'"{record.mac}"')
        if mask.channel:
            fields.append(str(record.channel))
        return f"+CWLAP:({','.join(fields)})"


class UartTransport:
    """Byte-level UART framing between the Crazyflie deck and the ESP-01.

    The host writes command bytes terminated by CRLF; the device answers
    with an echo of the command followed by its response lines, each
    CRLF-terminated.  Reads drain the device-to-host buffer.
    """

    def __init__(self, module: Esp01Module, echo: bool = True):
        self.module = module
        self.echo = echo
        self._rx_buffer = bytearray()  # host -> device accumulation
        self._tx_buffer = bytearray()  # device -> host pending output

    def write(self, data: bytes) -> None:
        """Host writes bytes toward the device."""
        self._rx_buffer.extend(data)
        while b"\r\n" in self._rx_buffer:
            line, _, rest = bytes(self._rx_buffer).partition(b"\r\n")
            self._rx_buffer = bytearray(rest)
            self._handle_command(line.decode("utf-8", errors="replace"))

    def _handle_command(self, command: str) -> None:
        if self.echo:
            self._tx_buffer.extend((command + "\r\n").encode("utf-8"))
        for line in self.module.execute(command):
            self._tx_buffer.extend((line + "\r\n").encode("utf-8"))

    def read(self, max_bytes: int = None) -> bytes:
        """Host reads pending device output (all of it by default)."""
        if max_bytes is None:
            max_bytes = len(self._tx_buffer)
        out = bytes(self._tx_buffer[:max_bytes])
        del self._tx_buffer[:max_bytes]
        return out

    def read_lines(self) -> List[str]:
        """Drain complete output lines (decoded, CRLF stripped)."""
        data = bytes(self._tx_buffer)
        if b"\r\n" not in data:
            return []
        complete, _, remainder = data.rpartition(b"\r\n")
        self._tx_buffer = bytearray(remainder)
        return [
            line.decode("utf-8", errors="replace")
            for line in complete.split(b"\r\n")
        ]

    @property
    def pending_output_bytes(self) -> int:
        """Bytes waiting to be read by the host."""
        return len(self._tx_buffer)
