"""Scan record types shared across the Wi-Fi substrate.

The unit of data in the whole toolchain is the tuple the paper
configures the ESP-01 to emit for every detected AP:
``(ssid, rssi, mac, channel)`` — see §III-A (AT+CWLAPOPT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["ScanRecord", "ScanReport"]


@dataclass(frozen=True)
class ScanRecord:
    """One detected access point in one scan.

    Field order deliberately mirrors the AT+CWLAPOPT configuration used
    in the paper: ``(ssid, rssi, mac, channel)``.
    """

    ssid: str
    rssi_dbm: int
    mac: str
    channel: int

    def as_tuple(self) -> Tuple[str, int, str, int]:
        """The raw 4-tuple as produced by the receiver."""
        return (self.ssid, self.rssi_dbm, self.mac, self.channel)


@dataclass
class ScanReport:
    """The outcome of one channel sweep at one position.

    Attributes
    ----------
    records:
        One entry per detected AP (an AP appears at most once per scan).
    position:
        Receiver position at which the sweep ran (true position; the
        *annotated* position attached later comes from the UWB estimate).
    duration_s:
        Wall time of the sweep in simulated seconds.
    channel_dwell_s:
        Dwell time spent per scanned channel.
    interference_active:
        Whether the control link was transmitting during the sweep.
    """

    records: List[ScanRecord]
    position: Tuple[float, float, float]
    duration_s: float
    channel_dwell_s: float
    interference_active: bool = False

    def __len__(self) -> int:
        return len(self.records)

    def macs(self) -> List[str]:
        """BSSIDs detected in this sweep."""
        return [r.mac for r in self.records]

    def count_on_channel(self, channel: int) -> int:
        """Number of detected APs on ``channel``."""
        return sum(1 for r in self.records if r.channel == channel)

    def mean_rssi_dbm(self) -> float:
        """Mean reported RSSI, NaN for an empty report."""
        if not self.records:
            return float("nan")
        return sum(r.rssi_dbm for r in self.records) / len(self.records)
