"""The Crazyflie-side REM-receiver driver contract and its ESP-01 driver.

§II-A of the paper defines a *modular* interface between the UAV and any
REM-sampling receiver: the user supplies a driver implementing four
instructions — initialize, check state, start a measurement, parse the
output.  That contract is :class:`RemReceiverDriver`; any receiver
technology (Wi-Fi, BLE, LoRa, mmWave...) integrates by subclassing it.

:class:`Esp01Driver` is the concrete driver used in the demo: it speaks
AT over the UART transport and produces :class:`ScanRecord` tuples.
"""

from __future__ import annotations

import abc
import enum
from typing import List, Optional, Sequence

from .at_parser import AtParseError, parse_cwlap_response
from .beacon import ScanRecord
from .esp8266 import Esp01Module, UartTransport

__all__ = ["ReceiverState", "RemReceiverDriver", "Esp01Driver", "DriverError"]


class DriverError(RuntimeError):
    """Raised when a receiver driver operation fails."""


class ReceiverState(enum.Enum):
    """Lifecycle states of a REM-sampling receiver."""

    UNINITIALIZED = "uninitialized"
    READY = "ready"
    MEASURING = "measuring"
    FAILED = "failed"


class RemReceiverDriver(abc.ABC):
    """The four-instruction driver contract of §II-A.

    Implementations are deliberately tiny ("a four instructions-long
    C-flavored driver" in the paper); anything heavier belongs in the
    receiver firmware, not on the UAV.
    """

    @abc.abstractmethod
    def initialize(self) -> None:
        """Bring the receiver to the READY state (instruction i)."""

    @abc.abstractmethod
    def check_state(self) -> ReceiverState:
        """Report the receiver state (instruction ii)."""

    @abc.abstractmethod
    def start_measurement(self) -> float:
        """Trigger one measurement (instruction iii).

        Returns the expected measurement duration in seconds so the
        caller can budget its radio-off window.
        """

    @abc.abstractmethod
    def parse_output(self) -> List[ScanRecord]:
        """Parse and return the last measurement (instruction iv)."""


class Esp01Driver(RemReceiverDriver):
    """AT-over-UART driver for the simulated ESP-01 module.

    Parameters
    ----------
    module:
        The device to drive.  A fresh UART transport is created unless
        one is supplied (tests inject their own to fault-inject framing).
    """

    #: CWLAPOPT: sort by RSSI disabled, mask = ssid|rssi|mac|channel.
    LAPOPT_COMMAND = "AT+CWLAPOPT=0,30"

    def __init__(self, module: Esp01Module, transport: Optional[UartTransport] = None):
        self.module = module
        self.transport = transport or UartTransport(module)
        self._state = ReceiverState.UNINITIALIZED
        self._pending_lines: List[str] = []

    # ------------------------------------------------------------------
    def _command(self, command: str) -> List[str]:
        self.transport.write((command + "\r\n").encode("utf-8"))
        lines = self.transport.read_lines()
        # Drop the echo of our own command if present.
        return [l for l in lines if l.strip() != command]

    @staticmethod
    def _ok(lines: Sequence[str]) -> bool:
        return any(l.strip() == "OK" for l in lines)

    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Probe with AT, set station mode, configure the output tuple."""
        if not self._ok(self._command("AT")):
            self._state = ReceiverState.FAILED
            raise DriverError("ESP-01 did not answer AT probe")
        if not self._ok(self._command("AT+CWMODE_CUR=1")):
            self._state = ReceiverState.FAILED
            raise DriverError("failed to enter station mode")
        if not self._ok(self._command(self.LAPOPT_COMMAND)):
            self._state = ReceiverState.FAILED
            raise DriverError("failed to configure CWLAP output")
        self._state = ReceiverState.READY

    def check_state(self) -> ReceiverState:
        """Current driver-visible receiver state."""
        return self._state

    def start_measurement(self) -> float:
        """Issue AT+CWLAP; response lines are buffered for parse_output."""
        if self._state is not ReceiverState.READY:
            raise DriverError(f"receiver not ready (state={self._state})")
        self._state = ReceiverState.MEASURING
        lines = self._command("AT+CWLAP")
        if not self._ok(lines):
            self._state = ReceiverState.FAILED
            raise DriverError("AT+CWLAP failed")
        self._pending_lines = lines
        return self.module.scan_duration_s

    def parse_output(self) -> List[ScanRecord]:
        """Parse the buffered CWLAP response into scan records."""
        if self._state is not ReceiverState.MEASURING:
            raise DriverError("no measurement in progress")
        try:
            records = parse_cwlap_response(self._pending_lines)
        except AtParseError as exc:
            self._state = ReceiverState.FAILED
            raise DriverError(f"unparseable scan output: {exc}") from exc
        finally:
            self._pending_lines = []
        self._state = ReceiverState.READY
        return records
