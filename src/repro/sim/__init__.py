"""Discrete-event simulation kernel used by every substrate.

Public surface:

* :class:`Simulator` — event-heap simulator with simulated seconds;
* :class:`Event` — cancellable scheduled callback;
* :func:`spawn`, :class:`Process`, :class:`Timeout`, :class:`WaitFor`,
  :class:`Condition` — generator-based cooperative processes;
* :class:`RandomStreams` — named, independently seeded numpy generators.
"""

from .kernel import Event, SimulationError, Simulator
from .process import Condition, Interrupted, Process, Timeout, WaitFor, spawn
from .resources import Mutex, Semaphore, Store
from .rng import RandomStreams, stable_hash

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Process",
    "Timeout",
    "WaitFor",
    "Condition",
    "Interrupted",
    "spawn",
    "Mutex",
    "Semaphore",
    "Store",
    "RandomStreams",
    "stable_hash",
]
