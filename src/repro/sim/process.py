"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields scheduling directives:

* ``Timeout(seconds)`` — resume the generator after the given delay;
* ``WaitFor(condition_event)`` — resume when another process triggers the
  condition;
* another :class:`Process` — resume when that process finishes.

This mirrors the structure of the real system's concurrency: the Crazyflie
firmware runs FreeRTOS tasks (commander watchdog, position-feedback task,
scan task) while the base-station client runs its own control loop.  Each of
those maps onto one process here.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Union

from .kernel import Simulator, SimulationError

__all__ = ["Timeout", "Condition", "WaitFor", "Process", "spawn"]


class Timeout:
    """Directive: suspend the yielding process for ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"timeout duration must be >= 0, got {duration}")
        self.duration = float(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.duration})"


class Condition:
    """A one-shot condition that processes can wait on.

    ``trigger(value)`` wakes every waiter with ``value`` as the result of
    their ``yield``.  Triggering twice is an error; conditions are one-shot,
    mirroring e.g. "scan finished" notifications.
    """

    __slots__ = ("_sim", "_waiters", "triggered", "value")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._waiters: List[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Wake all waiting processes at the current simulated time."""
        if self.triggered:
            raise SimulationError("condition already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self._sim.schedule(0.0, lambda resume=resume: resume(value))

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self.triggered:
            self._sim.schedule(0.0, lambda: resume(self.value))
        else:
            self._waiters.append(resume)


class WaitFor:
    """Directive: suspend until ``condition`` is triggered."""

    __slots__ = ("condition",)

    def __init__(self, condition: Condition):
        self.condition = condition


ProcessGenerator = Generator[Union[Timeout, WaitFor, "Process"], Any, Any]


class Process:
    """Wraps a generator and steps it through the simulator.

    The process starts immediately (at the current simulated time) when
    constructed via :func:`spawn`.
    """

    def __init__(self, sim: Simulator, generator: ProcessGenerator, name: str = ""):
        self._sim = sim
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done = Condition(sim)
        self._interrupted = False

    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._sim.schedule(0.0, lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            if self._interrupted:
                directive = self._generator.throw(Interrupted())
                self._interrupted = False
            else:
                directive = self._generator.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except Interrupted:
            self._finish(None)
            return
        self._dispatch(directive)

    def _dispatch(self, directive: Any) -> None:
        if isinstance(directive, Timeout):
            self._sim.schedule(directive.duration, lambda: self._resume(None))
        elif isinstance(directive, WaitFor):
            directive.condition._add_waiter(self._resume)
        elif isinstance(directive, Process):
            directive._done._add_waiter(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported directive {directive!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self._done.trigger(result)

    # ------------------------------------------------------------------
    def interrupt(self) -> None:
        """Raise :class:`Interrupted` inside the process at its next resume."""
        if not self.finished:
            self._interrupted = True
            self._sim.schedule(0.0, lambda: self._resume(None))

    @property
    def done(self) -> Condition:
        """Condition triggered (with the process result) on completion."""
        return self._done


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted."""


def spawn(sim: Simulator, generator: ProcessGenerator, name: str = "") -> Process:
    """Create and immediately start a process on ``sim``."""
    process = Process(sim, generator, name=name)
    process._start()
    return process
