"""Seeded random-number streams.

Every stochastic component of the reproduction (shadowing fields, fading,
UWB ranging noise, IMU noise, ...) draws from its own named stream derived
from a single master seed.  Independent streams mean a change in how one
component consumes randomness does not perturb the others — essential for
stable, reviewable experiment outputs.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

__all__ = ["RandomStreams", "stable_hash"]


def stable_hash(text: str) -> int:
    """Deterministic 64-bit FNV-1a hash of ``text``.

    ``hash()`` is salted per interpreter run, so named streams use this
    instead to stay reproducible across processes.
    """
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class RandomStreams:
    """A registry of named, independently-seeded numpy generators.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> fading = streams.get("fading")
    >>> ranging = streams.get("uwb.ranging")
    >>> fading is streams.get("fading")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            seq = np.random.SeedSequence([self.seed, stable_hash(name)])
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive an independent child registry (e.g. one per UAV)."""
        return RandomStreams(seed=(self.seed * 0x9E3779B9 + stable_hash(name)) % 2**63)

    def names(self) -> Iterable[str]:
        """Names of the streams created so far."""
        return tuple(self._streams)
