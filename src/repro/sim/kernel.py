"""Discrete-event simulation kernel.

The kernel is a classic event-heap simulator: callbacks are scheduled at
absolute simulated times and executed in time order.  Generator-based
processes (see :mod:`repro.sim.process`) are layered on top of the raw
callback interface.

The whole reproduction runs on this kernel so that campaigns are fully
deterministic given a seed: flight time, scan windows, radio-off periods and
battery drain are all advanced through simulated — never wall-clock — time.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulator is driven into an invalid state."""


# Internal heap records are plain (time, seq, event) tuples: ordering is
# (time, sequence number) and the unique sequence number guarantees the
# event itself is never compared.  Tuples keep the per-event scheduling
# cost (tens of thousands of heap pushes per campaign) at C speed.


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled before they fire.
    """

    __slots__ = ("time", "callback", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[[], Any]):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        )
        return f"Event(t={self.time:.6f}, {state})"


class Simulator:
    """Event-heap discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(1.0, lambda: seen.append(sim.now))
    >>> _ = sim.schedule(0.5, lambda: seen.append(sim.now))
    >>> sim.run()
    >>> seen
    [0.5, 1.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, callback)
        heapq.heappush(self._heap, (time, next(self._counter), event))
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if event.cancelled:
                continue
            self._now = event.time
            event.fired = True
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event heap drains or simulated time reaches ``until``.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                next_time = self._heap[0][0]
                if until is not None and next_time > until:
                    self._now = until
                    break
                if not self.step():
                    break
            else:
                if until is not None and self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events still scheduled (including cancelled stragglers)."""
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        for time, _, event in sorted(self._heap, key=lambda e: e[:2]):
            if not event.cancelled:
                return time
        return None
