"""Cooperative resources for processes: mutex, semaphore, store.

The campaign's central scheduling constraint — one Crazyradio, one UAV
in the air at a time, missions flown *sequentially* — is a resource
acquisition problem.  These primitives make such constraints explicit
for processes on the event kernel.

All primitives are cooperative (single-threaded DES): acquisition
completes either immediately or when a holder releases; fairness is
strict FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .kernel import SimulationError, Simulator
from .process import Condition, WaitFor

__all__ = ["Semaphore", "Mutex", "Store"]


class Semaphore:
    """Counting semaphore with FIFO wakeups.

    ``acquire()`` returns a directive to ``yield from``; ``release()``
    wakes the longest-waiting process.

    Example
    -------
    ::

        def mission(sim, radio_slots):
            yield from radio_slots.acquire()
            try:
                ...  # fly
            finally:
                radio_slots.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Condition] = deque()

    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        """Free slots."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Generator:
        """Directive generator: completes once a slot is held."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return
            yield  # pragma: no cover - makes this a generator
        condition = Condition(self._sim)
        self._waiters.append(condition)
        yield WaitFor(condition)

    def try_acquire(self) -> bool:
        """Non-blocking acquire."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Free one slot; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            # Slot passes directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().trigger(None)
        else:
            self._in_use -= 1


class Mutex(Semaphore):
    """A binary semaphore (one holder)."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=1)

    @property
    def locked(self) -> bool:
        """True while held."""
        return self.available == 0


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    The producer/consumer shape of the scan-result path: the firmware
    produces records; the client consumes them when the link is up.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Condition] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        """Directive generator yielding the next item (blocks if empty).

        Use as ``item = yield from store.get()``.
        """
        if self._items:
            return self._items.popleft()
        condition = Condition(self._sim)
        self._getters.append(condition)
        item = yield WaitFor(condition)
        return item

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def drain(self) -> List[Any]:
        """Remove and return everything currently stored."""
        items = list(self._items)
        self._items.clear()
        return items
