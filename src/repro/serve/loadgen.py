"""Concurrent HTTP load generation with latency percentiles.

The measurement half of the serving tier: a minimal keep-alive
HTTP/1.1 client (raw sockets, ``TCP_NODELAY``, one reusable buffer) and
two drivers over it —

* :func:`run_closed_loop` — C connections, each waiting for every
  response before sending the next request.  The honest latency
  probe: per-request wall times aggregate into p50/p95/p99.
* :func:`run_pipelined` — HTTP/1.1 pipelining, ``depth`` requests in
  flight per connection.  The peak-throughput probe: syscalls and
  turnaround amortize over the pipeline, the way a batching client or
  sidecar proxy drives the service.

Both report a :class:`LoadResult` (throughput, latency percentiles,
error count) ready for the ``BENCH_loadgen.json`` record written by
``benchmarks/bench_loadgen.py``.  The load generator is intentionally
server-agnostic: point it at a single-process
:class:`~repro.serve.http.RemHttpServer` or a
:class:`~repro.serve.cluster.RemCluster` address alike.
"""

from __future__ import annotations

import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LoadResult",
    "HttpLoadClient",
    "encode_request",
    "latency_percentiles",
    "run_closed_loop",
    "run_pipelined",
]


def encode_request(path: str, body: bytes, host: str = "bench") -> bytes:
    """One pre-encoded ``POST`` request (keep-alive HTTP/1.1)."""
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode("ascii") + body


class HttpLoadClient:
    """A keep-alive HTTP/1.1 connection tuned for load generation.

    ``http.client`` costs ~100 µs of bookkeeping per round trip; at
    thousands of requests/s the *client* becomes the bottleneck being
    measured.  This client pre-encodes requests, disables Nagle and
    parses responses with two ``bytes.find`` calls.
    """

    def __init__(self, address: Tuple[str, int], timeout: float = 30.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""

    def close(self) -> None:
        """Close the underlying socket."""
        self.sock.close()

    def __enter__(self) -> "HttpLoadClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the socket."""
        self.close()

    def send_raw(self, data: bytes) -> None:
        """Push pre-encoded request bytes (one or many requests)."""
        self.sock.sendall(data)

    def read_response(self) -> Tuple[int, bytes]:
        """Read one response; returns ``(status_code, body_bytes)``."""
        while True:
            split = self._buffer.find(b"\r\n\r\n")
            if split >= 0:
                break
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            self._buffer += chunk
        header = self._buffer[:split]
        status = int(header[9:12])
        lower = header.lower()
        mark = lower.find(b"content-length:")
        if mark < 0:
            raise ValueError("response without Content-Length")
        end = lower.find(b"\r\n", mark)
        length = int(header[mark + 15 : end if end >= 0 else len(header)])
        total = split + 4 + length
        while len(self._buffer) < total:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            self._buffer += chunk
        body = self._buffer[split + 4 : total]
        self._buffer = self._buffer[total:]
        return status, body

    def post(self, path: str, body: bytes) -> Tuple[int, bytes]:
        """One closed-loop round trip."""
        self.send_raw(encode_request(path, body))
        return self.read_response()

    def post_json(self, path: str, payload) -> Tuple[int, object]:
        """Convenience: JSON in, parsed JSON out."""
        status, body = self.post(path, json.dumps(payload).encode("utf-8"))
        return status, json.loads(body)


@dataclass
class LoadResult:
    """One load-generation run, summarized."""

    mode: str
    connections: int
    requests: int
    errors: int
    elapsed_s: float
    #: Completed requests per second over the whole run.
    throughput_rps: float
    #: p50/p95/p99/mean in milliseconds (closed loop only).
    latency_ms: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form for the BENCH record."""
        record: Dict[str, object] = {
            "mode": self.mode,
            "connections": self.connections,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
        }
        if self.latency_ms is not None:
            record["latency_ms"] = dict(self.latency_ms)
        return record


def latency_percentiles(latencies_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean of per-request wall times, in milliseconds."""
    ordered = sorted(latencies_s)
    if not ordered:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0}

    def rank(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index] * 1e3

    return {
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
        "mean": sum(ordered) / len(ordered) * 1e3,
    }


def run_closed_loop(
    address: Tuple[str, int],
    path: str,
    bodies: Sequence[bytes],
    connections: int = 4,
    requests_per_connection: int = 200,
) -> LoadResult:
    """C keep-alive connections, one request in flight each.

    Every connection cycles through ``bodies`` and records a wall time
    per round trip; the result aggregates throughput and latency
    percentiles across all connections.
    """
    encoded = [encode_request(path, body) for body in bodies]

    def drive(worker: int) -> Tuple[List[float], int]:
        client = HttpLoadClient(address)
        latencies: List[float] = []
        errors = 0
        try:
            for i in range(requests_per_connection):
                request = encoded[(worker + i) % len(encoded)]
                start = time.perf_counter()
                client.send_raw(request)
                status, _ = client.read_response()
                latencies.append(time.perf_counter() - start)
                if status != 200:
                    errors += 1
        finally:
            client.close()
        return latencies, errors

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=connections) as pool:
        outcomes = list(pool.map(drive, range(connections)))
    elapsed = time.perf_counter() - start
    latencies = [value for worker_latencies, _ in outcomes for value in worker_latencies]
    errors = sum(count for _, count in outcomes)
    total = connections * requests_per_connection
    return LoadResult(
        mode="closed_loop",
        connections=connections,
        requests=total,
        errors=errors,
        elapsed_s=elapsed,
        throughput_rps=total / elapsed if elapsed > 0 else 0.0,
        latency_ms=latency_percentiles(latencies),
    )


def run_pipelined(
    address: Tuple[str, int],
    path: str,
    bodies: Sequence[bytes],
    depth: int = 32,
    requests_per_connection: int = 2000,
    connections: int = 1,
) -> LoadResult:
    """HTTP/1.1 pipelining: ``depth`` requests in flight per connection.

    Requests go out in pre-encoded bursts of ``depth`` and the
    responses are drained before the next burst — the server processes
    back-to-back requests without per-round-trip turnaround, which is
    what a batching client or reverse proxy looks like on the wire.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    encoded = [encode_request(path, body) for body in bodies]

    def drive(worker: int) -> Tuple[int, int]:
        client = HttpLoadClient(address)
        sent = completed = errors = 0
        try:
            while completed < requests_per_connection:
                burst = min(depth, requests_per_connection - sent)
                if burst > 0:
                    chunk = b"".join(
                        encoded[(worker + sent + i) % len(encoded)]
                        for i in range(burst)
                    )
                    client.send_raw(chunk)
                    sent += burst
                for _ in range(sent - completed):
                    status, _ = client.read_response()
                    if status != 200:
                        errors += 1
                    completed += 1
        finally:
            client.close()
        return completed, errors

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=connections) as pool:
        outcomes = list(pool.map(drive, range(connections)))
    elapsed = time.perf_counter() - start
    completed = sum(done for done, _ in outcomes)
    errors = sum(count for _, count in outcomes)
    return LoadResult(
        mode=f"pipelined(depth={depth})",
        connections=connections,
        requests=completed,
        errors=errors,
        elapsed_s=elapsed,
        throughput_rps=completed / elapsed if elapsed > 0 else 0.0,
    )
