"""The job spec: one JSON record that names a complete REM build.

A :class:`RemJobSpec` pins everything a reproducible map build needs —
the scenario name (registry entries and ``generated:`` specs alike),
the acquisition mode, the predictor and its hyper-parameters, the
lattice resolution, the preprocessing knobs and the master seed — and
round-trips through JSON.  Its canonical JSON form is hashed into the
job **digest**: because every build is a pure function of its spec,
the digest doubles as the content address of the finished artifact
(see :mod:`~repro.serve.artifact`).

The spec *subsumes* the layered ``ToolchainConfig`` /
``CampaignConfig`` / ``ActiveSamplingConfig`` plumbing: those configs
stay as the implementation layer, reached through
:meth:`RemJobSpec.toolchain_config`, and a config built only from
JSON-representable fields converts back via
:meth:`RemJobSpec.from_toolchain_config`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from ..core.pipeline import ToolchainConfig
from ..core.predictors import (
    IdwRegressor,
    KnnRegressor,
    MeanPerMacBaseline,
    MlpRegressor,
    OrdinaryKrigingRegressor,
    PerMacKnnRegressor,
    Predictor,
)
from ..core.preprocessing import PreprocessConfig
from ..station.campaign import ACQUISITION_STRATEGIES, CampaignConfig

__all__ = ["RemJobSpec", "PREDICTOR_FACTORIES"]

#: Predictor registry: spec ``predictor`` name → estimator class.  The
#: spec's ``hyperparameters`` dict is splatted into the constructor.
PREDICTOR_FACTORIES = {
    "knn": KnnRegressor,
    "per_mac_knn": PerMacKnnRegressor,
    "idw": IdwRegressor,
    "kriging": OrdinaryKrigingRegressor,
    "baseline": MeanPerMacBaseline,
    "mlp": MlpRegressor,
}


@dataclass(frozen=True)
class RemJobSpec:
    """Everything a reproducible REM build needs, as one JSON record.

    Defaults mirror :class:`~repro.core.pipeline.ToolchainConfig`: the
    condo scenario, the paper's 72-waypoint lattice campaign and a
    grid-search-tuned k-NN at a 0.25 m lattice.
    """

    #: Scenario name: a registry entry or a ``generated:...`` spec name.
    scenario: str = "condo"
    #: Master seed (scenario build + campaign RNG streams).
    seed: int = 63
    #: ``"lattice"`` (the paper's fixed grid) or ``"active"``.
    acquisition: str = "lattice"
    #: Predictor registry name (see :data:`PREDICTOR_FACTORIES`).
    predictor: str = "knn"
    #: Constructor overrides for ``predictor`` (empty = its defaults,
    #: or the paper-best k-NN when ``predictor == "knn"``).
    hyperparameters: Dict[str, object] = field(default_factory=dict)
    #: Grid-search the k-NN hyper-parameters (§III-B).  Only valid for
    #: ``predictor == "knn"`` with no explicit ``hyperparameters``.
    tune: bool = True
    cv_folds: int = 4
    #: REM lattice step (m).
    resolution_m: float = 0.25
    # Preprocessing (§III-B) knobs.
    min_samples_per_mac: int = 16
    test_fraction: float = 0.25
    split_seed: int = 7
    #: Active-sampling tunables (with ``acquisition == "active"`` or
    #: ``"fleet"`` — the fleet loop shares them; ``None`` = the
    #: :class:`~repro.station.ActiveSamplingConfig` defaults).  Keys
    #: follow ``ActiveSamplingConfig.from_job_fields``.
    active: Optional[Dict[str, object]] = None
    #: Fleet tunables (only with ``acquisition == "fleet"``; ``None`` =
    #: the :class:`~repro.station.FleetConfig` defaults).  Keys follow
    #: ``FleetConfig.from_job_fields``.
    fleet: Optional[Dict[str, object]] = None
    #: Also build the predictive-uncertainty layer of the artifact.
    with_uncertainty: bool = True
    #: Artifact tensor dtype: ``"float64"`` (exact) or ``"float32"``
    #: (half the storage/page-cache footprint; served values stay
    #: within 1e-3 dB of the float64 build).
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("scenario name must be non-empty")
        # Resolve the scenario eagerly (registry lookup / generated-name
        # parse, no build) so a typo'd name is a spec error at the API
        # boundary, not a traceback from the middle of a job.
        from ..radio.scenarios import get_scenario

        try:
            get_scenario(self.scenario)
        except KeyError as exc:
            raise ValueError(f"unknown scenario in job spec: {exc}") from None
        if self.acquisition not in ACQUISITION_STRATEGIES:
            raise ValueError(
                f"unknown acquisition {self.acquisition!r}; "
                f"choose from {ACQUISITION_STRATEGIES}"
            )
        if self.predictor not in PREDICTOR_FACTORIES:
            raise ValueError(
                f"unknown predictor {self.predictor!r}; "
                f"choose from {sorted(PREDICTOR_FACTORIES)}"
            )
        if self.resolution_m <= 0:
            raise ValueError("resolution_m must be positive")
        if self.min_samples_per_mac < 1:
            raise ValueError("min_samples_per_mac must be >= 1")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        if self.cv_folds < 2:
            raise ValueError("cv_folds must be >= 2")
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )
        if self.tune and (self.predictor != "knn" or self.hyperparameters):
            raise ValueError(
                "tune=True grid-searches the k-NN family; it requires "
                "predictor='knn' with no explicit hyperparameters"
            )
        # Normalize numeric field types so JSON spellings of the same
        # job (48 vs 48.0, "seed": 7.0) hash to the same digest.
        for name in ("seed", "cv_folds", "min_samples_per_mac", "split_seed"):
            object.__setattr__(self, name, int(getattr(self, name)))
        for name in ("resolution_m", "test_fraction"):
            object.__setattr__(self, name, float(getattr(self, name)))
        # Detach from caller-owned mutable dicts (the spec is a value).
        object.__setattr__(self, "hyperparameters", dict(self.hyperparameters))
        if self.active is not None and self.acquisition not in (
            "active",
            "fleet",
        ):
            raise ValueError(
                "active tunables require acquisition='active' or 'fleet'"
            )
        if self.fleet is not None and self.acquisition != "fleet":
            raise ValueError("fleet tunables require acquisition='fleet'")
        if self.acquisition in ("active", "fleet"):
            # Validate eagerly and canonicalize to the *full*, typed
            # field dict, so equivalent spellings of the same
            # acquisition loop (``None`` vs ``{}`` vs defaults spelled
            # out, ints vs floats) cannot hash to different digests.
            object.__setattr__(self, "active", dict(self.active or {}))
            if self.acquisition == "fleet":
                object.__setattr__(self, "fleet", dict(self.fleet or {}))
            campaign = self._campaign_config()
            object.__setattr__(self, "active", campaign.active.to_job_fields())
            if self.acquisition == "fleet":
                object.__setattr__(
                    self, "fleet", campaign.fleet.to_job_fields()
                )
        try:
            self.canonical_json()
        except TypeError as exc:
            raise ValueError(
                f"job-spec fields must be JSON-serializable: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # JSON round-trip and content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-compatible dict with every field explicit."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RemJobSpec":
        """Inverse of :meth:`to_dict` (unknown keys raise)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown job-spec field(s) {unknown}; choose from {sorted(known)}"
            )
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Human-friendly JSON form (see :meth:`canonical_json`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RemJobSpec":
        """Parse a spec from JSON text."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a job spec must be a JSON object")
        return cls.from_dict(data)

    def canonical_json(self) -> str:
        """The canonical (sorted, minimal) JSON form behind the digest."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Content address of this job: SHA-256 of the canonical JSON.

        Builds are pure functions of their spec, so equal specs (same
        scenario, seed, predictor, ...) always produce byte-identical
        artifacts — the spec digest therefore addresses the artifact.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # the implementation-layer adapters
    # ------------------------------------------------------------------
    def _campaign_config(self) -> CampaignConfig:
        return CampaignConfig.from_job_fields(
            {
                "scenario": self.scenario,
                "seed": self.seed,
                "acquisition": self.acquisition,
                "active": self.active,
                "fleet": self.fleet,
            }
        )

    def toolchain_config(self) -> ToolchainConfig:
        """The :class:`ToolchainConfig` this spec describes."""
        return ToolchainConfig(
            campaign=self._campaign_config(),
            preprocess=PreprocessConfig(
                min_samples_per_mac=self.min_samples_per_mac,
                test_fraction=self.test_fraction,
                split_seed=self.split_seed,
            ),
            rem_resolution_m=self.resolution_m,
            tune_hyperparameters=self.tune,
            cv_folds=self.cv_folds,
        )

    def build_predictor(self) -> Optional[Predictor]:
        """Instantiate the spec's estimator (unfitted).

        Returns ``None`` for the default k-NN family with no explicit
        hyper-parameters — the pipeline then grid-searches (``tune``)
        or applies the paper-best configuration itself.
        """
        if self.predictor == "knn" and not self.hyperparameters:
            return None
        return PREDICTOR_FACTORIES[self.predictor](**self.hyperparameters)

    @classmethod
    def from_toolchain_config(
        cls, config: ToolchainConfig, with_uncertainty: bool = True
    ) -> Optional["RemJobSpec"]:
        """The spec equivalent of ``config``, or ``None``.

        ``None`` means the config customizes something a JSON spec
        cannot carry (firmware, radio, client timing, no-fly zones,
        predictor factories, ...) and must take the direct
        implementation path.
        """
        try:
            campaign = config.campaign.to_job_fields()
        except ValueError:
            return None
        try:
            return cls._from_campaign_fields(config, campaign, with_uncertainty)
        except ValueError:
            # e.g. active tunables attached to a lattice campaign.
            return None

    @classmethod
    def _from_campaign_fields(
        cls,
        config: ToolchainConfig,
        campaign: Dict[str, object],
        with_uncertainty: bool,
    ) -> "RemJobSpec":
        return cls(
            scenario=campaign["scenario"],
            seed=campaign["seed"],
            acquisition=campaign["acquisition"],
            active=campaign["active"],
            fleet=campaign.get("fleet"),
            tune=config.tune_hyperparameters,
            cv_folds=config.cv_folds,
            resolution_m=config.rem_resolution_m,
            min_samples_per_mac=config.preprocess.min_samples_per_mac,
            test_fraction=config.preprocess.test_fraction,
            split_seed=config.preprocess.split_seed,
            with_uncertainty=with_uncertainty,
        )
