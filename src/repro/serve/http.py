"""Stdlib JSON/HTTP front end over :class:`~repro.serve.RemService`.

A :class:`ThreadingHTTPServer` (one thread per connection, no
third-party dependencies) exposing the serving API:

* ``GET  /healthz`` — liveness plus store/LRU statistics (the artifact
  count comes from the store's cached counter, so probes stay O(1));
* ``GET  /v1/artifacts`` — sidecar records of every stored artifact;
* ``POST /v1/jobs`` — body is a :class:`~repro.serve.RemJobSpec` JSON;
  builds the artifact (201) or answers the stored one (200 on a cache
  hit) and returns its record;
* ``POST /v1/artifacts/<digest>/query`` — body is a typed request
  (``{"type": "query" | "strongest_ap" | "coverage" | "dark_regions",
  ...}``) whose point payloads are batched: hundreds of points amortize
  one HTTP+JSON round trip;
* ``POST /v1/batch`` — body is a JSON array of typed requests, each
  carrying its own ``digest``; answers
  ``{"responses": [...]}`` in order — the cross-request batch shape.

Errors share one envelope: ``{"error": {"code": <slug>, "message":
<human>}}`` with 400 ``malformed_json`` (body empty or not JSON), 404
``not_found`` (unknown digest or route), 422 ``invalid_spec``
(well-formed JSON describing an invalid spec/request) and 500
``internal`` (anything else).

The handler keeps connections alive (HTTP/1.1), disables Nagle's
algorithm and buffers each response into a single ``send`` — without
those, a keep-alive round trip on Linux stalls ~40 ms in the delayed-ACK
/ Nagle interaction, which is the difference between ~20 and ~4000
round trips/s per connection.

Use :func:`create_server` and drive ``serve_forever`` yourself (the
CLI's single-process ``repro serve`` does exactly that;
:mod:`~repro.serve.cluster` runs one such server per worker process).
"""

from __future__ import annotations

import json
import socket
import socketserver
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .service import RemService, request_from_dict, requests_from_list
from .spec import RemJobSpec

__all__ = ["RemHttpServer", "create_server"]


class RemHttpServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`RemService`.

    ``listener`` adopts an already-bound, already-listening socket
    instead of binding a fresh one (the cluster's inherited-listener
    fork path); ``reuse_port`` binds with ``SO_REUSEPORT`` so several
    worker processes can share one address and let the kernel balance
    accepts across them.
    """

    daemon_threads = True
    #: Listen backlog: the socketserver default (5) drops bursts of
    #: simultaneous connects that a load generator routinely produces.
    request_queue_size = 128
    #: Per-connection socket timeout handed to handlers (``None`` =
    #: block forever).  Cluster workers set a finite value so graceful
    #: drain is bounded by idle keep-alive connections.
    handler_timeout: Optional[float] = None
    #: When True, handlers close their connection after the in-flight
    #: response — flipped by the cluster worker's drain sequence.
    draining = False

    def __init__(
        self,
        service: RemService,
        address: Tuple[str, int],
        listener: Optional[socket.socket] = None,
        reuse_port: bool = False,
    ):
        self._reuse_port = reuse_port
        if listener is None:
            super().__init__(address, _Handler)
        else:
            socketserver.BaseServer.__init__(
                self, listener.getsockname()[:2], _Handler
            )
            self.socket = listener
            self.server_address = listener.getsockname()[:2]
        self.service = service

    def server_bind(self) -> None:
        """Bind, optionally with ``SO_REUSEPORT`` (see class docstring)."""
        if self._reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
                raise OSError("SO_REUSEPORT is not available on this platform")
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class _LeanHeaders(dict):
    """Case-insensitive header lookup over lowercased keys."""

    def get(self, name, default=None):
        """Lookup by header name, any case."""
        return dict.get(self, name.lower(), default)


#: Reason phrases for the status codes this API emits.
_PHRASES = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    414: "URI Too Long",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


class _MalformedBody(ValueError):
    """A request body that is not JSON at all (empty or undecodable).

    Distinguishes transport-level malformation (400) from a
    well-formed JSON payload describing an invalid spec/request (422).
    """


class _Handler(BaseHTTPRequestHandler):
    """Routes the fixed endpoint set onto the service."""

    server: RemHttpServer
    protocol_version = "HTTP/1.1"
    # One TCP segment per response instead of header/body trickling
    # through Nagle: send immediately, and buffer writes until the
    # per-request flush.
    disable_nagle_algorithm = True
    wbufsize = -1

    #: Date-header cache (the stdlib formats a fresh RFC-2822 string
    #: per response; at thousands of responses/s that is real time).
    _date_cache: Tuple[int, str] = (-1, "")

    # -- plumbing ------------------------------------------------------
    def setup(self) -> None:
        """Per-connection setup honoring the server's handler timeout."""
        self.timeout = self.server.handler_timeout
        super().setup()

    def handle_one_request(self) -> None:
        """One lean request/response cycle (keep-alive aware).

        Replaces the stdlib parse loop: ``email``-based header parsing
        alone costs ~100 µs/request, several times this service's
        actual per-query work.  This API only ever needs the request
        line, a flat header dict and a ``Content-Length`` body, so
        that is all that gets parsed; anything malformed falls back to
        the stdlib error responses.
        """
        self.close_connection = True
        try:
            line = self.rfile.readline(65537)
            if not line:
                return
            if len(line) > 65536:
                self.requestline = self.command = self.path = ""
                self.request_version = self.protocol_version
                self.send_error(414)
                return
            self.requestline = line.strip().decode("latin-1")
            parts = self.requestline.split()
            if len(parts) != 3:
                self.command = self.path = ""
                self.request_version = self.protocol_version
                self.send_error(400, f"bad request line {self.requestline!r}")
                return
            self.command, self.path, self.request_version = parts
            headers = _LeanHeaders()
            while True:
                field = self.rfile.readline(65537)
                if field in (b"\r\n", b"\n", b""):
                    break
                name, _, value = field.partition(b":")
                headers[name.strip().lower().decode("latin-1")] = (
                    value.strip().decode("latin-1")
                )
            self.headers = headers
            connection = (headers.get("connection") or "").lower()
            if self.request_version >= "HTTP/1.1":
                self.close_connection = connection == "close"
            else:
                self.close_connection = connection != "keep-alive"
            if (headers.get("expect") or "").lower() == "100-continue":
                self.wfile.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            method = getattr(self, f"do_{self.command}", None)
            if method is None:
                self.send_error(501, f"Unsupported method ({self.command!r})")
                return
            method()
            self.wfile.flush()
        except TimeoutError:
            # Idle keep-alive connection hit the handler timeout.
            self.close_connection = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (the service is the API)."""

    def date_time_string(self, timestamp=None) -> str:
        """The Date header value, cached per wall-clock second."""
        if timestamp is not None:
            return super().date_time_string(timestamp)
        now = int(time.time())
        second, value = _Handler._date_cache
        if second != now:
            value = super().date_time_string(now)
            _Handler._date_cache = (now, value)
        return value

    def _send_json(self, code: int, payload) -> None:
        self._send_body(code, json.dumps(payload).encode("utf-8"))

    def _send_body(self, code: int, body: bytes) -> None:
        if self.server.draining:
            self.close_connection = True
        connection = "close" if self.close_connection else "keep-alive"
        head = (
            f"HTTP/1.1 {code} {_PHRASES.get(code, '')}\r\n"
            f"Server: {self.version_string()}\r\n"
            f"Date: {self.date_time_string()}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        self.wfile.write(head.encode("latin-1") + body)

    def _send_error(self, status: int, code: str, message: str) -> None:
        """The error envelope every endpoint shares.

        Body shape: ``{"error": {"code": <slug>, "message": <human>}}``
        with ``code`` one of ``malformed_json`` (400), ``invalid_spec``
        (422), ``not_found`` (404) or ``internal`` (500).
        """
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _MalformedBody("empty request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _MalformedBody(f"request body is not valid JSON: {exc}") from exc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        """GET routing: /healthz and /v1/artifacts."""
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "artifacts": service.artifact_count(),
                    "cache": service.cache_info(),
                },
            )
        elif self.path == "/v1/artifacts":
            self._send_json(200, {"artifacts": service.artifacts()})
        else:
            self._send_error(404, "not_found", f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        """POST routing: /v1/jobs, /v1/batch, /v1/artifacts/<digest>/query."""
        service = self.server.service
        try:
            if self.path == "/v1/jobs":
                spec = RemJobSpec.from_dict(self._read_json())
                artifact = service.submit(spec)
                record = artifact.record()
                record["cache_hit"] = artifact.cache_hit
                # 201 announces a fresh build; answering a spec whose
                # artifact already existed is a plain 200.
                self._send_json(200 if artifact.cache_hit else 201, record)
                return
            if self.path == "/v1/batch":
                requests = requests_from_list(self._read_json())
                responses = service.handle_many(requests)
                body = (
                    '{"responses": ['
                    + ", ".join(r.to_json() for r in responses)
                    + "]}"
                )
                self._send_body(200, body.encode("utf-8"))
                return
            parts = [p for p in self.path.split("/") if p]
            if (
                len(parts) == 4
                and parts[:2] == ["v1", "artifacts"]
                and parts[3] == "query"
            ):
                request = request_from_dict(parts[2], self._read_json())
                response = service.handle(request)
                self._send_body(200, response.to_json().encode("utf-8"))
            else:
                self._send_error(404, "not_found", f"no route {self.path!r}")
        except _MalformedBody as exc:
            self._send_error(400, "malformed_json", str(exc))
        except KeyError as exc:
            self._send_error(404, "not_found", str(exc).strip('"'))
        except (ValueError, TypeError) as exc:
            self._send_error(422, "invalid_spec", str(exc))
        except Exception as exc:  # noqa: BLE001 - API boundary backstop
            self._send_error(500, "internal", f"{type(exc).__name__}: {exc}")


def create_server(
    service: RemService,
    host: str = "127.0.0.1",
    port: int = 8000,
    listener: Optional[socket.socket] = None,
    reuse_port: bool = False,
) -> RemHttpServer:
    """Bind a :class:`RemHttpServer` (``port=0`` picks a free port).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()``/``server_close()`` to stop.  The bound address is
    ``server.server_address``.  ``listener``/``reuse_port`` are the
    cluster workers' socket-sharing hooks (see :class:`RemHttpServer`).
    """
    return RemHttpServer(
        service, (host, port), listener=listener, reuse_port=reuse_port
    )
