"""Stdlib JSON/HTTP front end over :class:`~repro.serve.RemService`.

A :class:`ThreadingHTTPServer` (one thread per connection, no
third-party dependencies) exposing the serving API:

* ``GET  /healthz`` — liveness plus store/LRU statistics;
* ``GET  /v1/artifacts`` — sidecar records of every stored artifact;
* ``POST /v1/jobs`` — body is a :class:`~repro.serve.RemJobSpec` JSON;
  builds (or cache-hits) the artifact and returns its record;
* ``POST /v1/artifacts/<digest>/query`` — body is a typed request
  (``{"type": "query" | "strongest_ap" | "coverage" | "dark_regions",
  ...}``); answers with the matching reduction.

Use :func:`create_server` and drive ``serve_forever`` yourself (the
CLI's ``repro serve`` does exactly that).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from .service import RemService, request_from_dict
from .spec import RemJobSpec

__all__ = ["RemHttpServer", "create_server"]


class RemHttpServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`RemService`."""

    daemon_threads = True

    def __init__(self, service: RemService, address: Tuple[str, int]):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    """Routes the fixed endpoint set onto the service."""

    server: RemHttpServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (the service is the API)."""

    def _send_json(self, code: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw.decode("utf-8"))

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        """GET routing: /healthz and /v1/artifacts."""
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "artifacts": len(service.store.digests()),
                    "cache": service.cache_info(),
                },
            )
        elif self.path == "/v1/artifacts":
            self._send_json(200, {"artifacts": service.artifacts()})
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        """POST routing: /v1/jobs and /v1/artifacts/<digest>/query."""
        service = self.server.service
        parts = [p for p in self.path.split("/") if p]
        try:
            if parts == ["v1", "jobs"]:
                spec = RemJobSpec.from_dict(self._read_json())
                artifact = service.submit(spec)
                record = artifact.record()
                record["cache_hit"] = artifact.cache_hit
                self._send_json(201, record)
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "artifacts"]
                and parts[3] == "query"
            ):
                request = request_from_dict(parts[2], self._read_json())
                response = service.handle(request)
                self._send_json(200, response.to_dict())
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})


def create_server(
    service: RemService, host: str = "127.0.0.1", port: int = 8000
) -> RemHttpServer:
    """Bind a :class:`RemHttpServer` (``port=0`` picks a free port).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()``/``server_close()`` to stop.  The bound address is
    ``server.server_address``.
    """
    return RemHttpServer(service, (host, port))
