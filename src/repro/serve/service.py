"""The REM-serving layer: typed queries over stored artifacts.

:class:`RemService` is the in-process query engine the HTTP front end
(and any embedded consumer) talks to.  It keeps a thread-safe LRU of
loaded artifacts over an :class:`~repro.serve.artifact.ArtifactStore`
and answers four typed request shapes — batched point/MAC queries,
strongest-AP handover lookups, per-AP coverage fractions and
dark-region extraction — each as one vectorized reduction on the
artifact's stacked REM tensor (§I's downstream uses of the map).
Served answers are bit-for-bit the direct
:class:`~repro.core.rem.RadioEnvironmentMap` calls.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .artifact import ArtifactStore, RemArtifact
from .spec import RemJobSpec

__all__ = [
    "QueryRequest",
    "StrongestApRequest",
    "CoverageRequest",
    "DarkRegionsRequest",
    "QueryResponse",
    "StrongestApResponse",
    "CoverageResponse",
    "DarkRegionsResponse",
    "RemService",
    "request_from_dict",
    "requests_from_list",
]


# ----------------------------------------------------------------------
# typed requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """Batched RSS lookup: ``points × macs`` against one artifact."""

    digest: str
    points: Sequence[Sequence[float]]
    #: MACs to evaluate (``None`` = every mapped AP).
    macs: Optional[Sequence[str]] = None


@dataclass(frozen=True)
class StrongestApRequest:
    """Best-serving AP and its RSS at every point (handover planning)."""

    digest: str
    points: Sequence[Sequence[float]]


@dataclass(frozen=True)
class CoverageRequest:
    """Per-AP coverage fractions above a service threshold."""

    digest: str
    threshold_dbm: float


@dataclass(frozen=True)
class DarkRegionsRequest:
    """Lattice points no AP serves above the threshold (§I planning)."""

    digest: str
    threshold_dbm: float
    #: Cap on returned points (0 = all); the fraction is always exact.
    max_points: int = 0

    def __post_init__(self) -> None:
        if self.max_points < 0:
            raise ValueError(
                f"max_points must be >= 0 (0 = no cap), got {self.max_points}"
            )


# ----------------------------------------------------------------------
# typed responses
# ----------------------------------------------------------------------
def _format_values(values: np.ndarray) -> str:
    """Compact JSON for a 2-D float array, 9-decimal fixed point.

    Fixed-point formatting perturbs each value by ≤ 5e-10 dB — inside
    the 1e-9 served-vs-direct pin — and beats the stdlib encoder's
    shortest-repr float algorithm by ~2x, which matters at thousands
    of query responses per second.  Non-finite values fall back to the
    stdlib encoder (fixed point cannot spell them).
    """
    array = np.asarray(values, dtype=float)
    if not np.isfinite(array).all():
        return json.dumps(np.round(array, 9).tolist())
    rows = array.tolist()
    if not rows:
        return "[]"
    return (
        "[["
        + "],[".join(",".join([f"{v:.9f}" for v in row]) for row in rows)
        + "]]"
    )


@dataclass
class QueryResponse:
    """Answer to a :class:`QueryRequest`."""

    digest: str
    macs: List[str]
    #: ``(n_points, n_macs)`` interpolated RSS (dBm).
    values: np.ndarray

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form.

        Values are rounded to 9 decimals (≤ 5e-10 dB perturbation,
        inside the 1e-9 served-vs-direct pin): the shorter reprs cut
        the JSON-encode cost and payload size of the serving hot path.
        """
        return {
            "digest": self.digest,
            "macs": list(self.macs),
            "values": np.round(self.values, 9).tolist(),
        }

    def to_json(self) -> str:
        """Wire JSON, using the fast fixed-point value encoder."""
        return (
            f'{{"digest": {json.dumps(self.digest)}, '
            f'"macs": {json.dumps(list(self.macs))}, '
            f'"values": {_format_values(self.values)}}}'
        )


@dataclass
class StrongestApResponse:
    """Answer to a :class:`StrongestApRequest`."""

    digest: str
    macs: List[str]
    rss_dbm: np.ndarray

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form."""
        return {
            "digest": self.digest,
            "macs": list(self.macs),
            "rss_dbm": self.rss_dbm.tolist(),
        }

    def to_json(self) -> str:
        """Wire JSON (stdlib encoding of :meth:`to_dict`)."""
        return json.dumps(self.to_dict())


@dataclass
class CoverageResponse:
    """Answer to a :class:`CoverageRequest`."""

    digest: str
    threshold_dbm: float
    by_mac: Dict[str, float]
    dark_fraction: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form."""
        return {
            "digest": self.digest,
            "threshold_dbm": self.threshold_dbm,
            "by_mac": dict(self.by_mac),
            "dark_fraction": self.dark_fraction,
        }

    def to_json(self) -> str:
        """Wire JSON (stdlib encoding of :meth:`to_dict`)."""
        return json.dumps(self.to_dict())


@dataclass
class DarkRegionsResponse:
    """Answer to a :class:`DarkRegionsRequest`."""

    digest: str
    threshold_dbm: float
    dark_fraction: float
    points: np.ndarray
    truncated: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form."""
        return {
            "digest": self.digest,
            "threshold_dbm": self.threshold_dbm,
            "dark_fraction": self.dark_fraction,
            "points": self.points.tolist(),
            "truncated": self.truncated,
        }

    def to_json(self) -> str:
        """Wire JSON (stdlib encoding of :meth:`to_dict`)."""
        return json.dumps(self.to_dict())


#: Wire names of the request types (the HTTP body's ``type`` field).
_REQUEST_TYPES = {
    "query": QueryRequest,
    "strongest_ap": StrongestApRequest,
    "coverage": CoverageRequest,
    "dark_regions": DarkRegionsRequest,
}


def request_from_dict(digest: str, data: Dict[str, object]):
    """Build the typed request a JSON body describes.

    ``data`` carries a ``type`` key naming the request shape plus its
    parameters; ``digest`` comes from the URL.  Raises ``ValueError``
    on unknown types or parameters.
    """
    if not isinstance(data, dict):
        raise ValueError("request body must be a JSON object")
    kind = data.get("type", "query")
    cls = _REQUEST_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown request type {kind!r}; choose from {sorted(_REQUEST_TYPES)}"
        )
    params = {k: v for k, v in data.items() if k != "type"}
    params.pop("digest", None)  # the URL owns the digest
    try:
        return cls(digest=digest, **params)
    except TypeError as exc:
        raise ValueError(f"bad {kind!r} request: {exc}") from None


def requests_from_list(items) -> List:
    """Typed requests for a ``POST /v1/batch`` body.

    ``items`` is a list of request objects, each carrying its own
    ``digest`` alongside the ``type`` and parameters that
    :func:`request_from_dict` understands.  Raises ``ValueError`` on
    malformed envelopes so the HTTP layer can answer 400.
    """
    if not isinstance(items, list) or not items:
        raise ValueError("batch body must be a non-empty JSON array of requests")
    requests = []
    for index, item in enumerate(items):
        if not isinstance(item, dict):
            raise ValueError(f"batch item {index} must be a JSON object")
        digest = item.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ValueError(f"batch item {index} is missing its 'digest'")
        payload = {k: v for k, v in item.items() if k != "digest"}
        requests.append(request_from_dict(digest, payload))
    return requests


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class RemService:
    """Thread-safe serving facade over an artifact store.

    Loaded artifacts live in an LRU bounded by ``capacity``; every
    request type dispatches through :meth:`handle` to a vectorized
    reduction on the artifact's REM.  The service is safe to hammer
    from many threads: the LRU is lock-protected and the reductions
    only read the (effectively immutable) loaded tensors.
    """

    def __init__(self, store: ArtifactStore, capacity: int = 4, mmap: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.store = store
        self.capacity = int(capacity)
        #: Load ``npy``-format artifacts as read-only memory maps, so
        #: concurrent worker processes share one page-cache copy (the
        #: cluster workers run with ``mmap=True``).
        self.mmap = bool(mmap)
        self._lock = threading.RLock()
        self._cache: "OrderedDict[str, RemArtifact]" = OrderedDict()
        self._stats = {"hits": 0, "misses": 0, "evictions": 0, "peak_size": 0}

    # ------------------------------------------------------------------
    def artifact(self, digest: str) -> RemArtifact:
        """The loaded artifact for ``digest`` (LRU-cached)."""
        with self._lock:
            cached = self._cache.get(digest)
            if cached is not None:
                self._cache.move_to_end(digest)
                self._stats["hits"] += 1
                return cached
            artifact = self.store.load(digest, mmap=self.mmap)
            self._stats["misses"] += 1
            self._insert(digest, artifact)
            return artifact

    def _insert(self, digest: str, artifact: RemArtifact) -> None:
        self._cache[digest] = artifact
        self._cache.move_to_end(digest)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self._stats["evictions"] += 1
        self._stats["peak_size"] = max(self._stats["peak_size"], len(self._cache))

    def cache_info(self) -> Dict[str, int]:
        """LRU statistics (size, capacity, hits, misses, evictions)."""
        with self._lock:
            return {
                "size": len(self._cache),
                "capacity": self.capacity,
                **self._stats,
            }

    # ------------------------------------------------------------------
    def submit(self, spec: RemJobSpec) -> RemArtifact:
        """Run (or fetch) a job through the store and prime the LRU.

        The LRU gets a copy stripped of the in-memory toolchain result
        (campaign log, fitted predictor, ...): serving only ever reads
        the map tensors, and a long-lived server must not retain one
        whole build state per cached artifact.
        """
        from dataclasses import replace

        from .jobs import run_job

        artifact = run_job(spec, self.store)
        with self._lock:
            self._insert(artifact.digest, replace(artifact, result=None))
        return artifact

    def artifacts(self) -> List[Dict[str, object]]:
        """Sidecar records of everything the store holds."""
        return self.store.list()

    def artifact_count(self) -> int:
        """Stored-artifact count, O(1) amortized (liveness probes)."""
        return self.store.count()

    # ------------------------------------------------------------------
    def handle(self, request):
        """Dispatch any typed request to its reduction."""
        handler = self._HANDLERS.get(type(request))
        if handler is None:
            raise TypeError(f"unsupported request {type(request).__name__}")
        return handler(self, request)

    def handle_many(self, requests: Sequence) -> List:
        """Answer a heterogeneous batch of typed requests in order.

        The cross-request batch primitive behind ``POST /v1/batch``:
        one HTTP+JSON round trip amortized over many reductions.
        """
        return [self.handle(request) for request in requests]

    def query(self, request: QueryRequest) -> QueryResponse:
        """Batched trilinear RSS lookup (≡ ``rem.query_many``)."""
        rem = self.artifact(request.digest).rem
        if request.macs is not None:
            macs = list(request.macs)
            values = rem.query_many(request.points, macs)
        else:
            # Let query_many take its cached all-APs fast path instead
            # of re-validating an explicit (identical) MAC list.
            macs = list(rem.macs)
            values = rem.query_many(request.points)
        return QueryResponse(digest=request.digest, macs=macs, values=values)

    def strongest_ap(self, request: StrongestApRequest) -> StrongestApResponse:
        """Best-serving AP per point (≡ ``rem.strongest_ap_many``)."""
        rem = self.artifact(request.digest).rem
        macs, rss = rem.strongest_ap_many(request.points)
        return StrongestApResponse(digest=request.digest, macs=macs, rss_dbm=rss)

    def coverage(self, request: CoverageRequest) -> CoverageResponse:
        """Per-AP coverage + dark fraction (≡ the REM reductions)."""
        rem = self.artifact(request.digest).rem
        return CoverageResponse(
            digest=request.digest,
            threshold_dbm=float(request.threshold_dbm),
            by_mac=rem.coverage_by_mac(float(request.threshold_dbm)),
            dark_fraction=rem.dark_fraction(float(request.threshold_dbm)),
        )

    def dark_regions(self, request: DarkRegionsRequest) -> DarkRegionsResponse:
        """Unserved lattice points (≡ ``rem.dark_points``)."""
        rem = self.artifact(request.digest).rem
        threshold = float(request.threshold_dbm)
        points = rem.dark_points(threshold)
        truncated = False
        if request.max_points and len(points) > request.max_points:
            points = points[: int(request.max_points)]
            truncated = True
        return DarkRegionsResponse(
            digest=request.digest,
            threshold_dbm=threshold,
            dark_fraction=rem.dark_fraction(threshold),
            points=points,
            truncated=truncated,
        )

    _HANDLERS = {
        QueryRequest: query,
        StrongestApRequest: strongest_ap,
        CoverageRequest: coverage,
        DarkRegionsRequest: dark_regions,
    }
