"""REM artifacts and the content-addressed artifact store.

A :class:`RemArtifact` is the persisted end product of one job: the
RSS map, its optional predictive-uncertainty layer, the
:class:`~repro.serve.spec.RemJobSpec` that produced it and a
provenance record (seed, sample counts, test RMSE, wall time).  The
:class:`ArtifactStore` keeps artifacts under their spec digest as a
compressed ``.npz`` (the tensors) plus a JSON sidecar (spec,
provenance, content hash) — so "build once, persist, serve many" is
one ``save`` and any number of ``load``/``get`` calls, and re-running
a job whose digest is already stored is a cache hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..core.rem import (
    RadioEnvironmentMap,
    _rem_from_npz_payload,
    _rem_npz_payload,
)
from .spec import RemJobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids eager import
    from ..core.pipeline import ToolchainResult

__all__ = ["RemArtifact", "ArtifactStore"]

#: Sidecar format version (bump on incompatible layout changes).
_FORMAT = 1


@dataclass
class RemArtifact:
    """One built REM plus everything needed to trust and replay it."""

    spec: RemJobSpec
    rem: RadioEnvironmentMap
    #: Predictive-uncertainty layer (std, dB); ``None`` when the spec
    #: opted out.
    uncertainty: Optional[RadioEnvironmentMap]
    #: Build record: seed, sample counts, test RMSE, wall time, ...
    provenance: Dict[str, object] = field(default_factory=dict)
    #: The in-memory toolchain result of a fresh build (predictor,
    #: campaign log, ...).  Never persisted; ``None`` after a load.
    result: Optional["ToolchainResult"] = None
    #: True when this instance came out of a store instead of a build.
    cache_hit: bool = False

    @property
    def digest(self) -> str:
        """The content address (the spec digest — builds are pure)."""
        return self.spec.digest()

    def content_hash(self) -> str:
        """SHA-256 over the actual tensor bytes and MAC lists.

        The digest addresses the artifact *a priori* (same spec ⇒ same
        build); the content hash lets tests and audits verify that two
        builds really were byte-identical.
        """
        blake = hashlib.sha256()
        for rem in (self.rem, self.uncertainty):
            if rem is None:
                blake.update(b"absent")
                continue
            blake.update(",".join(rem.mac_vocabulary).encode())
            blake.update(",".join(rem.macs).encode())
            blake.update(np.ascontiguousarray(rem.field_tensor()).tobytes())
        return blake.hexdigest()

    def record(self) -> Dict[str, object]:
        """The JSON sidecar payload (digest, spec, provenance, hash)."""
        return {
            "format": _FORMAT,
            "digest": self.digest,
            "content_hash": self.content_hash(),
            "spec": self.spec.to_dict(),
            "provenance": dict(self.provenance),
        }


class ArtifactStore:
    """Content-addressed on-disk artifact collection.

    Layout: ``<root>/<digest>.npz`` (tensors) + ``<root>/<digest>.json``
    (sidecar).  All methods are safe under concurrent use from one
    process; saves write via a temp file + atomic rename so readers
    never observe a half-written archive.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _paths(self, digest: str) -> tuple:
        return self.root / f"{digest}.npz", self.root / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        npz, sidecar = self._paths(digest)
        return npz.exists() and sidecar.exists()

    def digests(self) -> List[str]:
        """Digests of every stored artifact, sorted."""
        return sorted(
            p.stem
            for p in self.root.glob("*.json")
            if (self.root / f"{p.stem}.npz").exists()
        )

    # ------------------------------------------------------------------
    def save(self, artifact: RemArtifact) -> Path:
        """Persist ``artifact`` under its digest; returns the npz path.

        Saving an already-stored digest is a no-op (content addressing:
        equal digests mean equal bytes).
        """
        digest = artifact.digest
        npz_path, sidecar_path = self._paths(digest)
        with self._lock:
            if digest in self:
                return npz_path
            payload = _rem_npz_payload(artifact.rem, prefix="rem_")
            if artifact.uncertainty is not None:
                payload.update(
                    _rem_npz_payload(artifact.uncertainty, prefix="unc_")
                )
            tmp_npz = npz_path.with_suffix(".npz.tmp")
            tmp_sidecar = sidecar_path.with_suffix(".json.tmp")
            try:
                with open(tmp_npz, "wb") as handle:
                    np.savez_compressed(handle, **payload)
                tmp_sidecar.write_text(
                    json.dumps(artifact.record(), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                os.replace(tmp_npz, npz_path)
                os.replace(tmp_sidecar, sidecar_path)
            finally:
                for tmp in (tmp_npz, tmp_sidecar):
                    if tmp.exists():
                        tmp.unlink()
        return npz_path

    def load(self, digest: str) -> RemArtifact:
        """Rebuild the artifact stored under ``digest`` (KeyError if absent)."""
        npz_path, sidecar_path = self._paths(digest)
        if digest not in self:
            raise KeyError(f"no artifact {digest!r} in {self.root}")
        sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
        with np.load(npz_path) as data:
            rem = _rem_from_npz_payload(data, prefix="rem_")
            uncertainty = (
                _rem_from_npz_payload(data, prefix="unc_")
                if any(k.startswith("unc_") for k in data.files)
                else None
            )
        return RemArtifact(
            spec=RemJobSpec.from_dict(sidecar["spec"]),
            rem=rem,
            uncertainty=uncertainty,
            provenance=dict(sidecar.get("provenance", {})),
        )

    def get(self, digest: str) -> RemArtifact:
        """Alias of :meth:`load` — the lookup half of the store API."""
        return self.load(digest)

    def list(self) -> List[Dict[str, object]]:
        """Sidecar records of every stored artifact, sorted by digest."""
        records = []
        for digest in self.digests():
            _, sidecar_path = self._paths(digest)
            records.append(json.loads(sidecar_path.read_text(encoding="utf-8")))
        return records
