"""REM artifacts and the content-addressed artifact store.

A :class:`RemArtifact` is the persisted end product of one job: the
RSS map, its optional predictive-uncertainty layer, the
:class:`~repro.serve.spec.RemJobSpec` that produced it and a
provenance record (seed, sample counts, test RMSE, wall time).  The
:class:`ArtifactStore` keeps artifacts under their spec digest in one
of two storage formats, chosen per artifact and recorded in the JSON
sidecar:

* ``"npz"`` — the tensors as one compressed archive
  (``<root>/<digest>.npz``): smallest on disk, but every loader
  decompresses its own private copy;
* ``"npy"`` — one uncompressed ``.npy`` file per tensor under
  ``<root>/<digest>/``: larger on disk, but loadable with
  ``np.load(mmap_mode="r")`` so N serving processes share one
  page-cache copy of the map instead of N heap copies (the
  :mod:`~repro.serve.cluster` workers' format).

Either way "build once, persist, serve many" is one ``save`` and any
number of ``load``/``get`` calls, and re-running a job whose digest is
already stored is a cache hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..core.rem import (
    RadioEnvironmentMap,
    RemGrid,
    _rem_from_npz_payload,
    _rem_npz_payload,
)
from ..radio.geometry import Cuboid
from .spec import RemJobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids eager import
    from ..core.pipeline import ToolchainResult

__all__ = ["RemArtifact", "ArtifactStore", "STORAGE_FORMATS"]

#: Sidecar format version (bump on incompatible layout changes).
#: Version 2 added the ``storage`` and ``dtype`` keys; version-1
#: sidecars (no ``storage`` key) read as float64 npz archives.
_FORMAT = 2

#: The storage layouts :meth:`ArtifactStore.save` understands.
STORAGE_FORMATS = ("npz", "npy")

#: Tensor file name per layer in the ``npy`` layout.
_LAYER_FILES = {"rem_": "rem_stack.npy", "unc_": "unc_stack.npy"}


@dataclass
class RemArtifact:
    """One built REM plus everything needed to trust and replay it."""

    spec: RemJobSpec
    rem: RadioEnvironmentMap
    #: Predictive-uncertainty layer (std, dB); ``None`` when the spec
    #: opted out.
    uncertainty: Optional[RadioEnvironmentMap]
    #: Build record: seed, sample counts, test RMSE, wall time, ...
    provenance: Dict[str, object] = field(default_factory=dict)
    #: The in-memory toolchain result of a fresh build (predictor,
    #: campaign log, ...).  Never persisted; ``None`` after a load.
    result: Optional["ToolchainResult"] = None
    #: True when this instance came out of a store instead of a build.
    cache_hit: bool = False

    @property
    def digest(self) -> str:
        """The content address (the spec digest — builds are pure)."""
        return self.spec.digest()

    @property
    def dtype(self) -> str:
        """Tensor dtype of the artifact (``float64`` or ``float32``)."""
        return str(self.rem.dtype)

    def astype(self, dtype) -> "RemArtifact":
        """A copy with both map layers cast to ``dtype``.

        ``run_job`` uses this to honor ``spec.dtype == "float32"``: the
        build always runs in float64, the persisted artifact carries
        the cast tensors (half the footprint, served values within
        1e-3 dB).
        """
        return replace(
            self,
            rem=self.rem.astype(dtype),
            uncertainty=(
                None if self.uncertainty is None else self.uncertainty.astype(dtype)
            ),
        )

    def content_hash(self) -> str:
        """SHA-256 over the actual tensor bytes and MAC lists.

        The digest addresses the artifact *a priori* (same spec ⇒ same
        build); the content hash lets tests and audits verify that two
        builds really were byte-identical.
        """
        blake = hashlib.sha256()
        for rem in (self.rem, self.uncertainty):
            if rem is None:
                blake.update(b"absent")
                continue
            blake.update(",".join(rem.mac_vocabulary).encode())
            blake.update(",".join(rem.macs).encode())
            blake.update(np.ascontiguousarray(rem.field_tensor()).tobytes())
        return blake.hexdigest()

    def record(self) -> Dict[str, object]:
        """The JSON sidecar payload (digest, spec, dtype, provenance)."""
        return {
            "format": _FORMAT,
            "digest": self.digest,
            "content_hash": self.content_hash(),
            "dtype": self.dtype,
            "spec": self.spec.to_dict(),
            "provenance": dict(self.provenance),
        }


def _layer_meta(rem: RadioEnvironmentMap) -> Dict[str, object]:
    """JSON-sidecar geometry/vocabulary record of one map layer."""
    return {
        "volume_min": [float(v) for v in rem.grid.volume.min_corner],
        "volume_max": [float(v) for v in rem.grid.volume.max_corner],
        "resolution_m": float(rem.grid.resolution_m),
        "vocabulary": list(rem.mac_vocabulary),
        "macs": list(rem.macs),
        "dtype": str(rem.dtype),
    }


def _layer_from_meta(
    meta: Dict[str, object], stack: np.ndarray
) -> RadioEnvironmentMap:
    """Rebuild one map layer from its sidecar record plus its tensor."""
    grid = RemGrid(
        volume=Cuboid(
            tuple(float(v) for v in meta["volume_min"]),
            tuple(float(v) for v in meta["volume_max"]),
        ),
        resolution_m=float(meta["resolution_m"]),
    )
    return RadioEnvironmentMap.from_stack(
        grid, list(meta["vocabulary"]), list(meta["macs"]), stack
    )


class ArtifactStore:
    """Content-addressed on-disk artifact collection.

    Layout per artifact: a ``<root>/<digest>.json`` sidecar (spec,
    provenance, storage record) plus the tensors in one of the
    :data:`STORAGE_FORMATS` — ``<digest>.npz`` (compressed archive) or
    ``<digest>/<layer>_stack.npy`` (uncompressed, mmap-able).  All
    methods are safe under concurrent use from one process; saves
    write via a temp file + atomic rename so readers never observe a
    half-written artifact.  :meth:`digests` results are cached against
    the root directory's mtime, keeping :meth:`count` (the liveness
    probe's artifact counter) O(1) instead of a directory scan.
    """

    def __init__(self, root, default_format: str = "npz"):
        if default_format not in STORAGE_FORMATS:
            raise ValueError(
                f"unknown storage format {default_format!r}; "
                f"choose from {STORAGE_FORMATS}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.default_format = default_format
        self._lock = threading.RLock()
        self._digest_cache: Optional[List[str]] = None
        self._digest_stamp: Optional[int] = None

    # ------------------------------------------------------------------
    def _paths(self, digest: str) -> tuple:
        return self.root / f"{digest}.npz", self.root / f"{digest}.json"

    def _npy_dir(self, digest: str) -> Path:
        return self.root / digest

    def _has_payload(self, digest: str) -> bool:
        npz, _ = self._paths(digest)
        return npz.exists() or (self._npy_dir(digest) / _LAYER_FILES["rem_"]).exists()

    def __contains__(self, digest: str) -> bool:
        _, sidecar = self._paths(digest)
        return sidecar.exists() and self._has_payload(digest)

    def digests(self) -> List[str]:
        """Digests of every stored artifact, sorted.

        The scan is cached against the root directory's mtime: saves
        (from this or any other process) touch the directory, anything
        else reuses the cached listing at the cost of one ``stat``.
        """
        with self._lock:
            stamp = self.root.stat().st_mtime_ns
            if self._digest_cache is None or stamp != self._digest_stamp:
                self._digest_cache = sorted(
                    p.stem for p in self.root.glob("*.json") if p.stem in self
                )
                self._digest_stamp = stamp
            return list(self._digest_cache)

    def count(self) -> int:
        """Number of stored artifacts — O(1) amortized (see digests)."""
        return len(self.digests())

    # ------------------------------------------------------------------
    def save(self, artifact: RemArtifact, storage_format: Optional[str] = None):
        """Persist ``artifact`` under its digest; returns the payload path.

        ``storage_format`` overrides the store default for this
        artifact (``"npz"`` compressed, ``"npy"`` mmap-able); the
        choice is recorded in the sidecar.  Saving an already-stored
        digest is a no-op (content addressing: equal digests mean
        equal bytes) and returns the existing payload path whatever
        its format.
        """
        fmt = storage_format or self.default_format
        if fmt not in STORAGE_FORMATS:
            raise ValueError(
                f"unknown storage format {fmt!r}; choose from {STORAGE_FORMATS}"
            )
        digest = artifact.digest
        npz_path, sidecar_path = self._paths(digest)
        with self._lock:
            self._digest_cache = None
            if digest in self:
                return npz_path if npz_path.exists() else self._npy_dir(digest)
            record = artifact.record()
            if fmt == "npz":
                payload_path = self._save_npz(artifact, npz_path)
                record["storage"] = {"format": "npz"}
            else:
                payload_path = self._save_npy(artifact, digest)
                layers: Dict[str, object] = {"rem": _layer_meta(artifact.rem)}
                if artifact.uncertainty is not None:
                    layers["unc"] = _layer_meta(artifact.uncertainty)
                record["storage"] = {"format": "npy", "layers": layers}
            tmp_sidecar = sidecar_path.with_suffix(".json.tmp")
            try:
                tmp_sidecar.write_text(
                    json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                os.replace(tmp_sidecar, sidecar_path)
            finally:
                if tmp_sidecar.exists():
                    tmp_sidecar.unlink()
        return payload_path

    def _save_npz(self, artifact: RemArtifact, npz_path: Path) -> Path:
        payload = _rem_npz_payload(artifact.rem, prefix="rem_")
        if artifact.uncertainty is not None:
            payload.update(_rem_npz_payload(artifact.uncertainty, prefix="unc_"))
        tmp_npz = npz_path.with_suffix(".npz.tmp")
        try:
            with open(tmp_npz, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_npz, npz_path)
        finally:
            if tmp_npz.exists():
                tmp_npz.unlink()
        return npz_path

    def _save_npy(self, artifact: RemArtifact, digest: str) -> Path:
        final_dir = self._npy_dir(digest)
        tmp_dir = self.root / f"{digest}.npy-tmp"
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir()
        try:
            layers = [("rem_", artifact.rem)]
            if artifact.uncertainty is not None:
                layers.append(("unc_", artifact.uncertainty))
            for prefix, rem in layers:
                stack = np.ascontiguousarray(rem.field_tensor())
                np.save(tmp_dir / _LAYER_FILES[prefix], stack, allow_pickle=False)
            os.replace(tmp_dir, final_dir)
        finally:
            if tmp_dir.exists():
                shutil.rmtree(tmp_dir)
        return final_dir

    # ------------------------------------------------------------------
    def load(self, digest: str, mmap: bool = False) -> RemArtifact:
        """Rebuild the artifact stored under ``digest`` (KeyError if absent).

        With ``mmap=True``, ``npy``-format artifacts come back backed
        by read-only memory maps (``np.load(mmap_mode="r")``): pages
        fault in on first touch and live in the shared page cache, so
        concurrent worker processes serving the same artifact cost one
        physical copy.  ``npz`` artifacts cannot be mapped (zip
        archives) and always load eagerly.
        """
        npz_path, sidecar_path = self._paths(digest)
        if digest not in self:
            raise KeyError(f"no artifact {digest!r} in {self.root}")
        sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
        storage = sidecar.get("storage", {"format": "npz"})
        if storage.get("format") == "npy":
            rem, uncertainty = self._load_npy(digest, storage, mmap)
        else:
            with np.load(npz_path) as data:
                rem = _rem_from_npz_payload(data, prefix="rem_")
                uncertainty = (
                    _rem_from_npz_payload(data, prefix="unc_")
                    if any(k.startswith("unc_") for k in data.files)
                    else None
                )
        return RemArtifact(
            spec=RemJobSpec.from_dict(sidecar["spec"]),
            rem=rem,
            uncertainty=uncertainty,
            provenance=dict(sidecar.get("provenance", {})),
        )

    def _load_npy(self, digest: str, storage: Dict, mmap: bool) -> tuple:
        directory = self._npy_dir(digest)
        mode = "r" if mmap else None
        layers = storage["layers"]
        rem = _layer_from_meta(
            layers["rem"],
            np.load(directory / _LAYER_FILES["rem_"], mmap_mode=mode),
        )
        uncertainty = None
        if "unc" in layers:
            uncertainty = _layer_from_meta(
                layers["unc"],
                np.load(directory / _LAYER_FILES["unc_"], mmap_mode=mode),
            )
        return rem, uncertainty

    def get(self, digest: str) -> RemArtifact:
        """Alias of :meth:`load` — the lookup half of the store API."""
        return self.load(digest)

    def sidecar(self, digest: str) -> Dict[str, object]:
        """The JSON sidecar record of one artifact (KeyError if absent).

        This is the cheap half of :meth:`load`: spec, provenance and
        storage record without touching the tensors — what the report
        stage aggregates over.
        """
        _, sidecar_path = self._paths(digest)
        if digest not in self:
            raise KeyError(f"no artifact {digest!r} in {self.root}")
        return json.loads(sidecar_path.read_text(encoding="utf-8"))

    def list(self) -> List[Dict[str, object]]:
        """Sidecar records of every stored artifact, sorted by digest."""
        return [self.sidecar(digest) for digest in self.digests()]
