"""``repro.serve`` — build once, persist, serve many.

The unified job/artifact API over the whole toolchain:

* :class:`RemJobSpec` (:mod:`~repro.serve.spec`) — one JSON record
  naming a complete, reproducible REM build; its canonical-JSON
  SHA-256 is the job digest;
* :func:`run_job` (:mod:`~repro.serve.jobs`) — the single build
  facade: spec in, :class:`RemArtifact` out, cache hit when the spec's
  digest is already stored;
* :class:`RemArtifact` / :class:`ArtifactStore`
  (:mod:`~repro.serve.artifact`) — the persisted product (REM +
  uncertainty tensors as compressed ``.npz`` or mmap-able
  ``.npy``-per-tensor layout, spec + provenance as a JSON sidecar)
  under a content-addressed store;
* :class:`JobSetSpec` / :class:`JobSetRunner`
  (:mod:`~repro.serve.jobset`) — the campaign factory: a cartesian
  sweep grid expanded into job specs and fanned out over worker
  processes, resumable against the store (``repro jobs sweep``);
* :class:`RemService` (:mod:`~repro.serve.service`) — thread-safe LRU
  serving layer answering typed query/strongest-AP/coverage/dark-region
  requests as vectorized REM reductions;
* :func:`create_server` (:mod:`~repro.serve.http`) — the stdlib
  JSON/HTTP front end (``repro serve`` on the CLI);
* :class:`RemCluster` (:mod:`~repro.serve.cluster`) — pre-forked
  multi-process serving over one ``SO_REUSEPORT`` address with
  shared-page-cache artifacts (``repro serve --workers N``);
* :mod:`~repro.serve.loadgen` — the keep-alive/pipelined load
  generator behind ``benchmarks/bench_loadgen.py``.
"""

from .artifact import STORAGE_FORMATS, ArtifactStore, RemArtifact
from .cluster import RemCluster, process_rss_bytes
from .http import RemHttpServer, create_server
from .jobs import run_job
from .jobset import (
    JobRecord,
    JobSetProgress,
    JobSetResult,
    JobSetRunner,
    JobSetSpec,
    run_jobset,
)
from .service import (
    CoverageRequest,
    CoverageResponse,
    DarkRegionsRequest,
    DarkRegionsResponse,
    QueryRequest,
    QueryResponse,
    RemService,
    StrongestApRequest,
    StrongestApResponse,
    request_from_dict,
    requests_from_list,
)
from .spec import PREDICTOR_FACTORIES, RemJobSpec

__all__ = [
    "RemJobSpec",
    "PREDICTOR_FACTORIES",
    "run_job",
    "RemArtifact",
    "ArtifactStore",
    "STORAGE_FORMATS",
    "JobSetSpec",
    "JobSetRunner",
    "JobSetResult",
    "JobRecord",
    "JobSetProgress",
    "run_jobset",
    "RemService",
    "QueryRequest",
    "QueryResponse",
    "StrongestApRequest",
    "StrongestApResponse",
    "CoverageRequest",
    "CoverageResponse",
    "DarkRegionsRequest",
    "DarkRegionsResponse",
    "request_from_dict",
    "requests_from_list",
    "RemHttpServer",
    "RemCluster",
    "process_rss_bytes",
    "create_server",
]
