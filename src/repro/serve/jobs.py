"""The job facade: one call from spec to (cached) artifact.

``run_job(spec)`` is the system's single build entry point: it adapts
the JSON :class:`~repro.serve.spec.RemJobSpec` onto the implementation
layer (``ToolchainConfig`` → campaign → preprocessing → predictor →
REM), adds the uncertainty layer, stamps provenance and — when an
:class:`~repro.serve.artifact.ArtifactStore` is supplied — persists
the artifact under its digest.  Because builds are pure functions of
their spec, a second ``run_job`` with the same spec and store is a
cache hit: the artifact is loaded, no campaign is re-flown.

``repro.generate_rem`` is a thin shim over this facade for every
config it can express as a spec.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.pipeline import _run_toolchain
from ..core.rem import build_uncertainty_rem
from ..perf import StageTimer
from .artifact import ArtifactStore, RemArtifact
from .spec import RemJobSpec

__all__ = ["run_job"]


def run_job(spec: RemJobSpec, store: Optional[ArtifactStore] = None) -> RemArtifact:
    """Build (or fetch) the REM artifact the spec describes.

    Parameters
    ----------
    spec:
        The complete job description; equal specs always produce
        byte-identical artifacts.
    store:
        Optional artifact store.  When the spec's digest is already
        present, the stored artifact is returned with
        ``cache_hit=True`` and nothing is re-flown; otherwise the
        fresh artifact is saved before returning.
    """
    if store is not None:
        try:
            artifact = store.load(spec.digest())
        except KeyError:
            pass
        else:
            artifact.cache_hit = True
            return artifact

    timer = StageTimer()
    start = time.perf_counter()
    result = _run_toolchain(
        scenario=None,
        predictor=spec.build_predictor(),
        config=spec.toolchain_config(),
        timer=timer,
    )
    uncertainty = None
    if spec.with_uncertainty:
        with timer.span("uncertainty"):
            uncertainty = build_uncertainty_rem(
                result.predictor,
                result.preprocessing.dataset,
                result.scenario.flight_volume,
                resolution_m=spec.resolution_m,
            )
    wall_s = time.perf_counter() - start

    rem = result.rem
    if spec.dtype != "float64":
        # Builds always run in float64; the artifact carries the cast
        # tensors (half the footprint, served values within 1e-3 dB).
        rem = rem.astype(spec.dtype)
        if uncertainty is not None:
            uncertainty = uncertainty.astype(spec.dtype)
    artifact = RemArtifact(
        spec=spec,
        rem=rem,
        uncertainty=uncertainty,
        provenance={
            "scenario": spec.scenario,
            "seed": spec.seed,
            "acquisition": spec.acquisition,
            "predictor": spec.predictor,
            "samples": len(result.campaign.log),
            "retained_samples": result.preprocessing.retained_samples,
            "test_rmse_dbm": float(result.test_rmse_dbm),
            "n_macs": len(result.rem.macs),
            "resolution_m": spec.resolution_m,
            "wall_time_s": wall_s,
            # Stage breakdown (repro.perf.StageTimer): scenario /
            # campaign / preprocess / fit / rem (+ uncertainty), so
            # `repro report` can attribute build-time regressions.
            "stage_wall_s": {
                stage: round(seconds, 6)
                for stage, seconds in timer.wall_s().items()
            },
        },
        result=result,
    )
    if store is not None:
        store.save(artifact)
    return artifact
