"""The campaign factory: spec grids, parallel fan-out, resumable sweeps.

One :class:`~repro.serve.spec.RemJobSpec` names one build; a
:class:`JobSetSpec` names a whole *campaign* — the cartesian grid over
scenario templates × seeds × predictors × acquisition modes ×
resolutions — and expands it deterministically into concrete job
specs.  Like a job spec, a job set round-trips through JSON and hashes
into a digest of its own, so a sweep is as reproducible (and as
content-addressable) as a single build.

The :class:`JobSetRunner` fans the grid out over a pool of worker
processes (one per core by default, spawn-safe: workers re-import the
package and rebuild their own :class:`~repro.serve.ArtifactStore`
handle) and is **resumable by construction**: every finished job lives
in the content-addressed store under its digest, so a crashed,
SIGKILL-ed or Ctrl-C-ed sweep simply restarts and skips everything
already built.  Per-job robustness comes from three knobs:

* ``timeout_s`` — a worker stuck past the deadline is killed and
  replaced, the job is recorded as failed;
* a ``failed.json`` ledger in the store root capturing the spec,
  error and traceback of every failure (rewritten atomically after
  each one, so a crashed sweep keeps its ledger);
* ``max_failures`` — a circuit breaker: once more than this many jobs
  have failed the sweep stops dispatching and marks the remainder
  ``skipped``.

Progress (including an ETA extrapolated from completed builds) is
reported through an optional callback after every job settles.  The
CLI verbs ``repro jobs sweep`` and ``repro report`` sit on top.
"""

from __future__ import annotations

import itertools
import json
import hashlib
import os
import time
import traceback
from dataclasses import dataclass, field, fields
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Tuple

from .artifact import STORAGE_FORMATS, ArtifactStore
from .jobs import run_job
from .spec import PREDICTOR_FACTORIES, RemJobSpec

__all__ = [
    "JobSetSpec",
    "JobSetRunner",
    "JobSetResult",
    "JobRecord",
    "JobSetProgress",
    "run_jobset",
    "FAILED_LEDGER",
]

#: Grid axes in expansion order; each maps to the RemJobSpec field it
#: overrides per cell.
_AXES = (
    ("scenarios", "scenario"),
    ("seeds", "seed"),
    ("predictors", "predictor"),
    ("acquisitions", "acquisition"),
    ("resolutions", "resolution_m"),
)

#: File name of the per-sweep failure ledger inside the store root.
FAILED_LEDGER = "failed.json"

#: Test/ops hook: seconds every job execution sleeps before building
#: (read from the environment in the worker, so kill/timeout behavior
#: can be exercised deterministically).
_DELAY_ENV = "REPRO_JOBSET_DELAY_S"


@dataclass(frozen=True)
class JobSetSpec:
    """A cartesian sweep grid over :class:`RemJobSpec` fields.

    Every combination of the five axes becomes one job; ``base``
    carries the non-axis spec fields shared by every cell (active
    tunables, preprocessing knobs, dtype, ...).  Two conveniences keep
    arbitrary grids valid without per-cell surgery:

    * ``tune`` (from ``base``) only applies to cells it is legal for —
      the k-NN predictor with no explicit hyperparameters; every other
      cell runs untuned.  When ``base`` omits ``tune``, all cells run
      untuned so predictors compare at fixed hyperparameters.
    * ``active`` tunables and ``hyperparameters`` attach only to the
      cells they describe (``acquisition == "active"`` respectively
      ``predictor == "knn"``-family members that accept them) — see
      :meth:`jobs`.
    """

    scenarios: Tuple[str, ...] = ("condo",)
    seeds: Tuple[int, ...] = (63,)
    predictors: Tuple[str, ...] = ("knn",)
    acquisitions: Tuple[str, ...] = ("lattice",)
    resolutions: Tuple[float, ...] = (0.25,)
    #: Shared non-axis :class:`RemJobSpec` fields for every cell.
    base: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "predictors", tuple(self.predictors))
        object.__setattr__(self, "acquisitions", tuple(self.acquisitions))
        object.__setattr__(
            self, "resolutions", tuple(float(r) for r in self.resolutions)
        )
        object.__setattr__(self, "base", dict(self.base))
        for axis, _ in _AXES:
            values = getattr(self, axis)
            if not values:
                raise ValueError(f"job-set axis {axis!r} must be non-empty")
            if len(set(values)) != len(values):
                raise ValueError(f"job-set axis {axis!r} has duplicates: {values}")
        spec_fields = {f.name for f in fields(RemJobSpec)}
        axis_fields = {spec_field for _, spec_field in _AXES}
        bad = sorted(set(self.base) - (spec_fields - axis_fields))
        if bad:
            raise ValueError(
                f"base may not carry {bad}; grid axes own "
                f"{sorted(axis_fields)} and all keys must be RemJobSpec fields"
            )
        unknown = sorted(set(self.predictors) - set(PREDICTOR_FACTORIES))
        if unknown:
            raise ValueError(
                f"unknown predictor(s) {unknown}; "
                f"choose from {sorted(PREDICTOR_FACTORIES)}"
            )
        # Expand eagerly: a typo'd scenario / invalid field combination
        # is a spec error at the API boundary, not a failed sweep cell.
        self.jobs()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of grid cells (jobs) the spec expands to."""
        total = 1
        for axis, _ in _AXES:
            total *= len(getattr(self, axis))
        return total

    def jobs(self) -> List[RemJobSpec]:
        """The grid, expanded deterministically (axis-product order)."""
        specs = []
        axis_values = [getattr(self, axis) for axis, _ in _AXES]
        for cell in itertools.product(*axis_values):
            params = dict(self.base)
            for (_, spec_field), value in zip(_AXES, cell):
                params[spec_field] = value
            # tune is only legal for the untouched k-NN family; active
            # tunables only for active cells.  Dropping them elsewhere
            # keeps one base valid across a heterogeneous grid.
            if params.get("predictor") != "knn" or params.get("hyperparameters"):
                params["tune"] = False
            else:
                params.setdefault("tune", False)
            if params.get("acquisition") not in ("active", "fleet"):
                params.pop("active", None)
            if params.get("acquisition") != "fleet":
                params.pop("fleet", None)
            specs.append(RemJobSpec.from_dict(params))
        return specs

    # ------------------------------------------------------------------
    # JSON round-trip and content addressing (mirrors RemJobSpec)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-compatible dict with every field explicit."""
        return {
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "predictors": list(self.predictors),
            "acquisitions": list(self.acquisitions),
            "resolutions": list(self.resolutions),
            "base": dict(self.base),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSetSpec":
        """Inverse of :meth:`to_dict` (unknown keys raise)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown job-set field(s) {unknown}; choose from {sorted(known)}"
            )
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Human-friendly JSON form."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobSetSpec":
        """Parse a job-set spec from JSON text."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a job-set spec must be a JSON object")
        return cls.from_dict(data)

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — the sweep's identity."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class JobRecord:
    """Outcome of one grid cell."""

    digest: str
    spec: Dict[str, object]
    #: ``built`` (fresh build), ``cached`` (already in the store —
    #: a resume hit), ``failed`` (error/timeout/worker death) or
    #: ``skipped`` (never dispatched: the circuit breaker tripped).
    status: str
    wall_s: float = 0.0
    error: Optional[str] = None


@dataclass(frozen=True)
class JobSetProgress:
    """One progress tick, delivered after every job settles."""

    total: int
    done: int
    built: int
    cached: int
    failed: int
    elapsed_s: float
    #: Remaining wall-clock estimate from the mean build time so far:
    #: ``None`` until the first fresh build lands, ``0.0`` once every
    #: job has settled (notably the all-cache-hit sweep, which never
    #: sees a build to extrapolate from).
    eta_s: Optional[float]
    #: The job that just settled.
    digest: str
    status: str


@dataclass
class JobSetResult:
    """Everything one sweep produced (or skipped)."""

    jobset_digest: str
    records: List[JobRecord]
    elapsed_s: float
    #: True when the ``max_failures`` circuit breaker tripped (or the
    #: sweep was interrupted) before every job was dispatched.
    aborted: bool = False

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    @property
    def built(self) -> int:
        """Jobs built fresh by this run."""
        return self._count("built")

    @property
    def cached(self) -> int:
        """Jobs already in the store (resume cache hits)."""
        return self._count("cached")

    @property
    def failed(self) -> int:
        """Jobs that errored, timed out, or lost their worker."""
        return self._count("failed")

    @property
    def skipped(self) -> int:
        """Jobs never dispatched (circuit breaker tripped)."""
        return self._count("skipped")

    def summary(self) -> Dict[str, object]:
        """JSON-ready headline record of the sweep."""
        return {
            "jobset_digest": self.jobset_digest,
            "total": len(self.records),
            "built": self.built,
            "cached": self.cached,
            "failed": self.failed,
            "skipped": self.skipped,
            "aborted": self.aborted,
            "elapsed_s": self.elapsed_s,
        }


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _execute_job(spec_dict: Dict[str, object], store: ArtifactStore) -> Dict:
    """Run one job against the store; returns the result payload."""
    delay = float(os.environ.get(_DELAY_ENV, "0") or 0.0)
    if delay > 0:
        time.sleep(delay)
    start = time.perf_counter()
    spec = RemJobSpec.from_dict(spec_dict)
    artifact = run_job(spec, store)
    return {
        "digest": artifact.digest,
        "cache_hit": artifact.cache_hit,
        "wall_s": time.perf_counter() - start,
    }


def _worker_main(
    conn, store_root: str, storage_format: str, cache_dir: Optional[str] = None
) -> None:
    """Worker-process loop: recv job dicts, build, send results.

    Spawn-safe by construction — everything arrives through the pipe
    or the picklable arguments, and the store handle is rebuilt here.
    Each worker keeps its own process-level scenario/campaign LRU (so
    sweep cells sharing a world fly it once per worker) and points the
    on-disk field tier at a directory shared under the store root, so
    derived arrays (ground-truth fields) are memory-mapped across the
    pool instead of recomputed.
    """
    if cache_dir:
        from ..radio.scenario_cache import configure_default_cache

        configure_default_cache(disk_root=cache_dir)
    store = ArtifactStore(store_root, default_format=storage_format)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died: exit quietly
            return
        if message[0] == "stop":
            return
        _, spec_dict = message
        start = time.perf_counter()
        try:
            payload = _execute_job(spec_dict, store)
            conn.send(("done", payload))
        except BaseException as exc:  # noqa: BLE001 - ledger wants everything
            conn.send(
                (
                    "fail",
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                        "wall_s": time.perf_counter() - start,
                    },
                )
            )


class _Worker:
    """Parent-side handle of one worker process."""

    def __init__(
        self,
        ctx,
        store_root: str,
        storage_format: str,
        cache_dir: Optional[str] = None,
    ):
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, store_root, storage_format, cache_dir),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        #: The in-flight (digest, spec_dict, started_at) or None.
        self.current: Optional[Tuple[str, Dict[str, object], float]] = None

    @property
    def busy(self) -> bool:
        return self.current is not None

    def dispatch(self, digest: str, spec_dict: Dict[str, object]) -> None:
        self.conn.send(("job", spec_dict))
        self.current = (digest, spec_dict, time.monotonic())

    def deadline_exceeded(self, timeout_s: Optional[float]) -> bool:
        if timeout_s is None or self.current is None:
            return False
        return time.monotonic() - self.current[2] > timeout_s

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self.process.join(timeout=5.0)
        self.conn.close()

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.kill()
        else:
            self.conn.close()


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class JobSetRunner:
    """Fan a :class:`JobSetSpec` out over worker processes.

    Parameters
    ----------
    store:
        The content-addressed artifact store shared by every worker.
        It doubles as the resume journal: cells whose digest is
        already present are recorded as ``cached`` without dispatch.
    workers:
        Worker-process count; ``None`` = one per core, ``0`` = run
        inline in this process (serial — no subprocesses, and
        ``timeout_s`` cannot interrupt a running build).
    timeout_s:
        Per-job wall-clock budget.  A worker past it is SIGKILL-ed and
        replaced; the job is recorded as failed.
    max_failures:
        Circuit breaker: once failures exceed this count the sweep
        stops dispatching and marks the remaining cells ``skipped``
        (``None`` = never trip).
    progress:
        Callback invoked with a :class:`JobSetProgress` after every
        job settles (cache hits included).
    start_method:
        ``multiprocessing`` start method (``"spawn"`` by default —
        the safe-everywhere choice; ``"fork"`` starts faster where
        available).
    storage_format:
        Storage layout for fresh artifacts (store default when
        ``None``); see :data:`~repro.serve.STORAGE_FORMATS`.
    """

    def __init__(
        self,
        store: ArtifactStore,
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        max_failures: Optional[int] = None,
        progress: Optional[Callable[[JobSetProgress], None]] = None,
        start_method: str = "spawn",
        storage_format: Optional[str] = None,
    ):
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be >= 0")
        fmt = storage_format or store.default_format
        if fmt not in STORAGE_FORMATS:
            raise ValueError(
                f"unknown storage format {fmt!r}; choose from {STORAGE_FORMATS}"
            )
        self.store = store
        self.workers = workers
        self.timeout_s = timeout_s
        self.max_failures = max_failures
        self.progress = progress
        self.start_method = start_method
        self.storage_format = fmt
        self._workers: List[_Worker] = []

    # -- bookkeeping ---------------------------------------------------
    def _start_run(self, jobset: JobSetSpec) -> None:
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._failures: List[Dict[str, object]] = []
        self._build_wall_sum = 0.0
        self._t0 = time.perf_counter()
        self._total = jobset.count
        ledger = self.store.root / FAILED_LEDGER
        if ledger.exists():
            ledger.unlink()

    def _settle(
        self,
        digest: str,
        spec_dict: Dict[str, object],
        status: str,
        wall_s: float = 0.0,
        error: Optional[str] = None,
    ) -> None:
        if digest not in self._records:
            self._order.append(digest)
        self._records[digest] = JobRecord(
            digest=digest, spec=spec_dict, status=status, wall_s=wall_s, error=error
        )
        if status == "built":
            self._build_wall_sum += wall_s
        if self.progress is not None and status != "skipped":
            built = sum(1 for r in self._records.values() if r.status == "built")
            cached = sum(1 for r in self._records.values() if r.status == "cached")
            failed = sum(1 for r in self._records.values() if r.status == "failed")
            done = built + cached + failed
            remaining = self._total - done
            eta = None
            if remaining == 0:
                # Nothing left — in particular the all-cache-hit sweep,
                # where no build ever lands to extrapolate a rate from:
                # the only honest ETA is zero, not "unknown".
                eta = 0.0
            elif built:
                parallelism = max(1, len(self._workers)) if self._workers else 1
                eta = (self._build_wall_sum / built) * remaining / parallelism
            self.progress(
                JobSetProgress(
                    total=self._total,
                    done=done,
                    built=built,
                    cached=cached,
                    failed=failed,
                    elapsed_s=time.perf_counter() - self._t0,
                    eta_s=eta,
                    digest=digest,
                    status=status,
                )
            )

    def _record_failure(
        self,
        digest: str,
        spec_dict: Dict[str, object],
        error: str,
        wall_s: float,
        trace: Optional[str] = None,
    ) -> None:
        self._settle(digest, spec_dict, "failed", wall_s=wall_s, error=error)
        self._failures.append(
            {
                "digest": digest,
                "spec": spec_dict,
                "error": error,
                "traceback": trace,
                "wall_s": wall_s,
            }
        )
        self._write_ledger()

    def _write_ledger(self) -> None:
        """Atomically (re)write ``failed.json`` in the store root."""
        ledger = self.store.root / FAILED_LEDGER
        tmp = ledger.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps({"failures": self._failures}, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, ledger)

    def _tripped(self) -> bool:
        return (
            self.max_failures is not None
            and len(self._failures) > self.max_failures
        )

    # -- execution -----------------------------------------------------
    def run(self, jobset: JobSetSpec) -> JobSetResult:
        """Execute (or resume) the sweep; returns the per-job records."""
        self._start_run(jobset)
        pending: List[Tuple[str, Dict[str, object]]] = []
        existing = set(self.store.digests())
        for spec in jobset.jobs():
            digest = spec.digest()
            if digest in self._records:
                continue  # distinct cells, identical job: run once
            if digest in existing:
                self._settle(digest, spec.to_dict(), "cached")
            else:
                self._records[digest] = JobRecord(
                    digest=digest, spec=spec.to_dict(), status="skipped"
                )
                self._order.append(digest)
                pending.append((digest, spec.to_dict()))

        aborted = False
        if pending:
            n_workers = self.workers
            if n_workers is None:
                n_workers = os.cpu_count() or 1
            n_workers = min(n_workers, len(pending))
            try:
                if n_workers == 0:
                    aborted = self._run_inline(pending)
                else:
                    aborted = self._run_pool(pending, n_workers)
            finally:
                for worker in self._workers:
                    worker.kill()
                self._workers = []

        records = [self._records[d] for d in self._order]
        return JobSetResult(
            jobset_digest=jobset.digest(),
            records=records,
            elapsed_s=time.perf_counter() - self._t0,
            aborted=aborted,
        )

    def _run_inline(self, pending) -> bool:
        """Serial in-process execution (``workers=0``)."""
        for index, (digest, spec_dict) in enumerate(pending):
            if self._tripped():
                return True
            start = time.perf_counter()
            try:
                payload = _execute_job(spec_dict, self.store)
            except Exception as exc:  # noqa: BLE001 - ledger wants everything
                self._record_failure(
                    digest,
                    spec_dict,
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - start,
                    traceback.format_exc(),
                )
            else:
                status = "cached" if payload["cache_hit"] else "built"
                self._settle(digest, spec_dict, status, wall_s=payload["wall_s"])
        return self._tripped()

    def _spawn_worker(self, ctx) -> _Worker:
        return _Worker(
            ctx,
            str(self.store.root),
            self.storage_format,
            cache_dir=str(self.store.root / "scenario_cache"),
        )

    def _run_pool(self, pending, n_workers: int) -> bool:
        """Parallel execution over ``n_workers`` worker processes."""
        ctx = get_context(self.start_method)
        queue = list(pending)
        self._workers = [self._spawn_worker(ctx) for _ in range(n_workers)]
        in_flight = 0

        def dispatch_all() -> int:
            count = 0
            if self._tripped():
                return 0
            for worker in self._workers:
                if not queue:
                    break
                if not worker.busy and worker.process.is_alive():
                    digest, spec_dict = queue.pop(0)
                    worker.dispatch(digest, spec_dict)
                    count += 1
            return count

        in_flight += dispatch_all()
        while in_flight:
            conns = [w.conn for w in self._workers if w.busy]
            tick = 0.05 if self.timeout_s is not None else 0.5
            ready = connection_wait(conns, timeout=tick)
            for conn in ready:
                worker = next(w for w in self._workers if w.conn is conn)
                digest, spec_dict, started = worker.current
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    # The worker died under us (SIGKILL, OOM, crash):
                    # record the in-flight job and replace the worker.
                    exitcode = worker.process.exitcode
                    worker.kill()
                    self._workers.remove(worker)
                    self._record_failure(
                        digest,
                        spec_dict,
                        f"worker died (exitcode {exitcode})",
                        time.monotonic() - started,
                    )
                    in_flight -= 1
                    if queue and not self._tripped():
                        self._workers.append(self._spawn_worker(ctx))
                    continue
                worker.current = None
                in_flight -= 1
                if kind == "done":
                    status = "cached" if payload["cache_hit"] else "built"
                    self._settle(
                        digest, spec_dict, status, wall_s=payload["wall_s"]
                    )
                else:
                    self._record_failure(
                        digest,
                        spec_dict,
                        payload["error"],
                        payload["wall_s"],
                        payload.get("traceback"),
                    )
            # Enforce per-job deadlines on whoever is still busy.
            for worker in list(self._workers):
                if worker.busy and worker.deadline_exceeded(self.timeout_s):
                    digest, spec_dict, started = worker.current
                    worker.kill()
                    self._workers.remove(worker)
                    self._record_failure(
                        digest,
                        spec_dict,
                        f"timeout after {self.timeout_s:g}s (worker killed)",
                        time.monotonic() - started,
                    )
                    in_flight -= 1
                    if queue and not self._tripped():
                        self._workers.append(self._spawn_worker(ctx))
            in_flight += dispatch_all()

        for worker in self._workers:
            worker.stop()
        self._workers = []
        return self._tripped() and bool(queue)


def run_jobset(
    jobset: JobSetSpec, store: ArtifactStore, **runner_kwargs
) -> JobSetResult:
    """One-call sweep: ``JobSetRunner(store, **kwargs).run(jobset)``."""
    return JobSetRunner(store, **runner_kwargs).run(jobset)
