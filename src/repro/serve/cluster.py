"""Pre-forked multi-process REM serving: the GIL-escape tier.

A single :class:`~repro.serve.http.RemHttpServer` tops out when its
numpy reductions serialize on the GIL (threads buy ~nothing past one
core).  :class:`RemCluster` runs N **worker processes**, each hosting
the unchanged handler stack over a shared address:

* with ``SO_REUSEPORT`` (Linux; the default when available) every
  worker binds its own listening socket to the same port and the
  kernel balances incoming connections across them;
* otherwise the parent binds **one** listener and forks workers that
  inherit it, accepting from the shared queue (the classic pre-fork
  shape).

Workers open artifacts through ``np.load(mmap_mode="r")`` over the
store's ``npy`` layout (``RemService(..., mmap=True)``), so all N
processes page the same physical copy of each map out of the page
cache — memory stays flat as the worker count grows.

The parent is a **supervisor**: it spawns workers, waits for each to
report ready, respawns any that die, and on SIGTERM/SIGINT drains
them gracefully (stop accepting, finish in-flight requests, exit 0).

::

    cluster = RemCluster(store_root, workers=4, port=8000)
    cluster.start()               # returns once every worker is ready
    ...                           # traffic against cluster.address
    cluster.stop()                # graceful drain

``repro serve --workers N`` is the CLI face of this module.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from .artifact import ArtifactStore
from .http import RemHttpServer
from .service import RemService

__all__ = ["RemCluster", "process_rss_bytes"]


def _reuse_port_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def process_rss_bytes(pid: Optional[int] = None) -> Optional[int]:
    """Resident-set size of ``pid`` (default: this process) in bytes.

    Reads ``/proc/<pid>/status`` (Linux); returns ``None`` where that
    interface is missing.  The load harness uses this to verify that
    mmap-backed workers keep per-worker RSS flat as the cluster grows.
    """
    path = f"/proc/{os.getpid() if pid is None else pid}/status"
    try:
        with open(path, encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


class _WorkerServer(RemHttpServer):
    """The per-worker server: drains in-flight requests on close."""

    # Graceful drain joins the per-connection handler threads, so they
    # must be tracked (non-daemon) and joined on server_close().
    daemon_threads = False
    block_on_close = True
    # Idle keep-alive connections would otherwise pin their handler
    # thread forever and make drain unbounded.
    handler_timeout: Optional[float] = 5.0


def _worker_main(
    store_root: str,
    capacity: int,
    address: Tuple[str, int],
    listener: Optional[socket.socket],
    reuse_port: bool,
    handler_timeout: float,
    ready_queue,
) -> None:
    """One pre-forked worker: serve until SIGTERM, then drain and exit.

    Runs ``serve_forever`` on a thread so the main thread can sit on a
    signal-triggered event and call the (blocking) ``shutdown`` safely.
    """
    service = RemService(
        ArtifactStore(store_root), capacity=capacity, mmap=True
    )
    server = _WorkerServer(
        service, address, listener=listener, reuse_port=reuse_port
    )
    server.handler_timeout = handler_timeout

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    ready_queue.put(("ready", os.getpid()))
    stop.wait()
    # Graceful drain: stop accepting, let in-flight handlers finish
    # (server_close joins them), close keep-alive connections.
    server.draining = True
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class RemCluster:
    """Supervisor for N pre-forked REM-serving worker processes.

    Parameters
    ----------
    store_root:
        Artifact-store directory every worker opens (read-mostly;
        workers load with ``mmap=True``).
    workers:
        Worker-process count (>= 1).
    host, port:
        Bind address; ``port=0`` resolves an ephemeral port before the
        workers spawn.
    capacity:
        Per-worker loaded-artifact LRU capacity.
    reuse_port:
        ``True`` forces ``SO_REUSEPORT`` per-worker sockets, ``False``
        forces the inherited-listener fork fallback, ``None`` (default)
        picks ``SO_REUSEPORT`` when the platform has it.
    handler_timeout:
        Per-connection idle timeout inside workers (bounds drain).
    """

    #: Seconds between supervisor liveness sweeps over the workers.
    MONITOR_INTERVAL_S = 0.2

    def __init__(
        self,
        store_root,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = 4,
        reuse_port: Optional[bool] = None,
        handler_timeout: float = 5.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if reuse_port is None:
            reuse_port = _reuse_port_available()
        elif reuse_port and not _reuse_port_available():
            raise OSError("SO_REUSEPORT is not available on this platform")
        self.store_root = str(store_root)
        self.workers = int(workers)
        self.capacity = int(capacity)
        self.reuse_port = bool(reuse_port)
        self.handler_timeout = float(handler_timeout)
        self._requested_address = (host, int(port))
        self.address: Optional[Tuple[str, int]] = None
        self._ctx = multiprocessing.get_context("fork")
        self._listener: Optional[socket.socket] = None
        self._processes: List = []
        self._ready_queue = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._respawns = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, ready_timeout: float = 30.0) -> "RemCluster":
        """Spawn the workers; returns once every worker reported ready.

        Resolves :attr:`address` first, so callers can aim traffic the
        moment this returns.
        """
        if self._processes:
            raise RuntimeError("cluster already started")
        self._stopping.clear()
        host, port = self._requested_address
        if self.reuse_port:
            # Reserve the port with a probe socket so an ephemeral
            # request (port=0) resolves before workers bind their own
            # SO_REUSEPORT sockets; the probe closes once they have.
            probe = self._bind_socket(host, port)
            self.address = probe.getsockname()[:2]
            self._listener = probe
        else:
            # Fork fallback: one shared listener, inherited by workers.
            listener = self._bind_socket(host, port, reuse_port=False)
            listener.listen(128)
            self.address = listener.getsockname()[:2]
            self._listener = listener
        self._ready_queue = self._ctx.SimpleQueue()
        for _ in range(self.workers):
            self._spawn_worker()
        self._await_ready(self.workers, ready_timeout)
        if self.reuse_port:
            # Workers own their sockets now; drop the probe so the
            # kernel only balances accepts across live workers.
            self._listener.close()
            self._listener = None
        self._monitor = threading.Thread(target=self._monitor_loop, daemon=True)
        self._monitor.start()
        return self

    def _bind_socket(
        self, host: str, port: int, reuse_port: Optional[bool] = None
    ) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.reuse_port if reuse_port is None else reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        return sock

    def _spawn_worker(self) -> None:
        listener = None if self.reuse_port else self._listener
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.store_root,
                self.capacity,
                self.address,
                listener,
                self.reuse_port,
                self.handler_timeout,
                self._ready_queue,
            ),
            daemon=False,
        )
        process.start()
        self._processes.append(process)

    def _await_ready(self, count: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        ready = 0
        while ready < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.stop(graceful=False)
                raise TimeoutError(
                    f"only {ready}/{count} workers ready within {timeout}s"
                )
            # SimpleQueue has no timeout; poll the underlying pipe.
            if self._ready_queue._reader.poll(min(remaining, 0.5)):
                self._ready_queue.get()
                ready += 1

    def _monitor_loop(self) -> None:
        """Respawn workers that die while the cluster is running."""
        while not self._stopping.wait(self.MONITOR_INTERVAL_S):
            with self._lock:
                if self._stopping.is_set():
                    return
                for index, process in enumerate(self._processes):
                    if process.is_alive():
                        continue
                    process.join()
                    self._respawns += 1
                    listener = None if self.reuse_port else self._listener
                    fresh = self._ctx.Process(
                        target=_worker_main,
                        args=(
                            self.store_root,
                            self.capacity,
                            self.address,
                            listener,
                            self.reuse_port,
                            self.handler_timeout,
                            self._ready_queue,
                        ),
                        daemon=False,
                    )
                    fresh.start()
                    self._processes[index] = fresh

    # ------------------------------------------------------------------
    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes."""
        with self._lock:
            return [p.pid for p in self._processes if p.is_alive()]

    @property
    def respawns(self) -> int:
        """How many dead workers the supervisor has replaced."""
        return self._respawns

    def worker_rss(self) -> Dict[int, Optional[int]]:
        """Per-worker RSS in bytes (``None`` where /proc is missing)."""
        return {pid: process_rss_bytes(pid) for pid in self.worker_pids()}

    def stop(self, graceful: bool = True, timeout: float = 10.0) -> List[int]:
        """Stop the cluster; returns the workers' exit codes.

        ``graceful`` sends SIGTERM (workers drain in-flight requests
        and exit 0); workers still alive after ``timeout`` — and all
        workers when ``graceful=False`` — are killed.
        """
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        with self._lock:
            processes = list(self._processes)
        if graceful:
            for process in processes:
                if process.is_alive():
                    process.terminate()  # SIGTERM -> worker drain
            deadline = time.monotonic() + timeout
            for process in processes:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        exit_codes = [process.exitcode for process in processes]
        with self._lock:
            self._processes = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        return exit_codes

    def run_forever(self) -> None:
        """Block until SIGTERM/SIGINT, then drain and return (the CLI).

        Installs parent signal handlers, so call it from the main
        thread only.
        """
        done = threading.Event()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, lambda *_: done.set())
        try:
            done.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.stop(graceful=True)

    def __enter__(self) -> "RemCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(graceful=True)
