"""UAV substrate: the simulated Crazyflie 2.1 and its firmware behaviour.

Models the vehicle the toolchain rides on: kinematic flight, the
battery/endurance envelope, the two expansion decks, the commander with
its setpoint watchdog, and the §II-C scan task with the position
feedback that keeps the UAV stable while its radio is off.
"""

from . import app_protocol
from .battery import Battery, BatteryConfig
from .commander import Commander, CommanderState
from .crazyflie import Crazyflie, FlightState, UavConfig
from .decks import ESP_DECK, LOCO_DECK, MAX_DECKS, Deck, DeckSlots
from .dynamics import DynamicsConfig, FlightDynamics
from .firmware import FirmwareConfig
from .imu import Imu, ImuConfig
from .trajectory import (
    QuinticSegment,
    Trajectory,
    plan_min_jerk_leg,
    plan_trajectory,
)

__all__ = [
    "app_protocol",
    "Battery",
    "BatteryConfig",
    "Commander",
    "CommanderState",
    "Crazyflie",
    "FlightState",
    "UavConfig",
    "Deck",
    "DeckSlots",
    "LOCO_DECK",
    "ESP_DECK",
    "MAX_DECKS",
    "DynamicsConfig",
    "FlightDynamics",
    "FirmwareConfig",
    "Imu",
    "ImuConfig",
    "QuinticSegment",
    "Trajectory",
    "plan_min_jerk_leg",
    "plan_trajectory",
]
