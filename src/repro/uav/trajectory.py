"""Minimum-jerk trajectory generation (Crazyflie high-level commander).

The real Crazyflie's high-level commander flies waypoint legs as
polynomial trajectories with smooth boundary conditions rather than
velocity steps.  This module implements the standard minimum-jerk
(quintic) segment and a planner that strings segments through a
waypoint list under speed/acceleration limits — the firmware-fidelity
upgrade over the first-order kinematics in :mod:`repro.uav.dynamics`.

A quintic with zero boundary velocity/acceleration has the closed form

    s(τ) = 10 τ³ − 15 τ⁴ + 6 τ⁵,   τ = t / T

per axis, with peak speed ``1.875 · d / T`` and peak acceleration
``5.774 · d / T²`` over a displacement ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["QuinticSegment", "Trajectory", "plan_min_jerk_leg", "plan_trajectory"]

#: max |s'(τ)| of the normalized quintic (at τ = 1/2).
_PEAK_SPEED_FACTOR = 1.875
#: max |s''(τ)| of the normalized quintic (at τ = (5±√5)/10).
_PEAK_ACCEL_FACTOR = 5.7735


@dataclass(frozen=True)
class QuinticSegment:
    """One minimum-jerk leg from ``start`` to ``end`` in ``duration_s``."""

    start: Tuple[float, float, float]
    end: Tuple[float, float, float]
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")

    @property
    def displacement(self) -> np.ndarray:
        """End minus start."""
        return np.asarray(self.end, float) - np.asarray(self.start, float)

    @property
    def length_m(self) -> float:
        """Straight-line leg length."""
        return float(np.linalg.norm(self.displacement))

    # ------------------------------------------------------------------
    def _tau(self, t: float) -> float:
        return min(max(t / self.duration_s, 0.0), 1.0)

    def position(self, t: float) -> np.ndarray:
        """Position at ``t`` seconds into the segment (clamped)."""
        tau = self._tau(t)
        s = 10 * tau**3 - 15 * tau**4 + 6 * tau**5
        return np.asarray(self.start, float) + s * self.displacement

    def velocity(self, t: float) -> np.ndarray:
        """Velocity at ``t`` (zero at both endpoints)."""
        tau = self._tau(t)
        ds = (30 * tau**2 - 60 * tau**3 + 30 * tau**4) / self.duration_s
        return ds * self.displacement

    def acceleration(self, t: float) -> np.ndarray:
        """Acceleration at ``t`` (zero at both endpoints)."""
        tau = self._tau(t)
        dds = (60 * tau - 180 * tau**2 + 120 * tau**3) / self.duration_s**2
        return dds * self.displacement

    @property
    def peak_speed_mps(self) -> float:
        """Maximum speed along the segment."""
        return _PEAK_SPEED_FACTOR * self.length_m / self.duration_s

    @property
    def peak_accel_mps2(self) -> float:
        """Maximum acceleration magnitude along the segment."""
        return _PEAK_ACCEL_FACTOR * self.length_m / self.duration_s**2


def plan_min_jerk_leg(
    start: Sequence[float],
    end: Sequence[float],
    max_speed_mps: float = 0.7,
    max_accel_mps2: float = 1.5,
    min_duration_s: float = 0.5,
) -> QuinticSegment:
    """The shortest-duration quintic leg honoring the motion limits."""
    if max_speed_mps <= 0 or max_accel_mps2 <= 0:
        raise ValueError("motion limits must be positive")
    displacement = np.asarray(end, float) - np.asarray(start, float)
    length = float(np.linalg.norm(displacement))
    t_speed = _PEAK_SPEED_FACTOR * length / max_speed_mps
    t_accel = float(np.sqrt(_PEAK_ACCEL_FACTOR * length / max_accel_mps2))
    duration = max(t_speed, t_accel, min_duration_s)
    return QuinticSegment(
        start=tuple(float(v) for v in start),
        end=tuple(float(v) for v in end),
        duration_s=duration,
    )


class Trajectory:
    """A sequence of quintic segments with global time lookup."""

    def __init__(self, segments: Sequence[QuinticSegment]):
        if not segments:
            raise ValueError("trajectory needs at least one segment")
        for a, b in zip(segments, segments[1:]):
            if not np.allclose(a.end, b.start):
                raise ValueError("segments must be position-continuous")
        self.segments: Tuple[QuinticSegment, ...] = tuple(segments)
        self._offsets = np.concatenate(
            [[0.0], np.cumsum([s.duration_s for s in segments])]
        )

    @property
    def duration_s(self) -> float:
        """Total trajectory time."""
        return float(self._offsets[-1])

    @property
    def length_m(self) -> float:
        """Total straight-line path length."""
        return float(sum(s.length_m for s in self.segments))

    def _locate(self, t: float) -> Tuple[QuinticSegment, float]:
        t = min(max(t, 0.0), self.duration_s)
        index = int(np.searchsorted(self._offsets, t, side="right") - 1)
        index = min(index, len(self.segments) - 1)
        return self.segments[index], t - self._offsets[index]

    def position(self, t: float) -> np.ndarray:
        """Position at global time ``t`` (clamped to the trajectory)."""
        segment, local = self._locate(t)
        return segment.position(local)

    def velocity(self, t: float) -> np.ndarray:
        """Velocity at global time ``t``."""
        segment, local = self._locate(t)
        return segment.velocity(local)

    def max_speed_mps(self) -> float:
        """Peak speed over all segments."""
        return max(s.peak_speed_mps for s in self.segments)


def plan_trajectory(
    waypoints: Sequence[Sequence[float]],
    max_speed_mps: float = 0.7,
    max_accel_mps2: float = 1.5,
    min_leg_duration_s: float = 0.5,
) -> Trajectory:
    """Plan a full mission trajectory through ``waypoints``.

    Each leg is an independent minimum-jerk segment (the vehicle stops
    at every waypoint — exactly what the scan protocol wants).
    """
    points = [tuple(float(v) for v in p) for p in waypoints]
    if len(points) < 2:
        raise ValueError("need at least two waypoints")
    segments = [
        plan_min_jerk_leg(
            a,
            b,
            max_speed_mps=max_speed_mps,
            max_accel_mps2=max_accel_mps2,
            min_duration_s=min_leg_duration_s,
        )
        for a, b in zip(points, points[1:])
    ]
    return Trajectory(segments)
