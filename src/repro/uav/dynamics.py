"""Kinematic flight model for a small indoor quadrotor.

The REM toolchain does not need aerodynamic fidelity — it needs correct
*timing* (4 s waypoint legs), plausible hold jitter while scanning, and
drift when position control is lost (the commander leveling out after
setpoint starvation).  The model is therefore first-order kinematic:
velocity tracks the direction to the setpoint with speed and
acceleration limits, hovering adds small Gaussian jitter, and leveled
(uncontrolled) flight random-walks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["DynamicsConfig", "FlightDynamics"]


def _norm3(v: np.ndarray) -> float:
    """Euclidean norm of a 3-vector without the ``linalg`` call overhead
    (this runs several times per control tick, ~10^5 times a campaign)."""
    return math.sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2])


@dataclass(frozen=True)
class DynamicsConfig:
    """Motion limits and disturbance levels."""

    max_speed_mps: float = 0.7
    max_accel_mps2: float = 1.5
    #: Position error below which the UAV is considered "at" a setpoint.
    arrival_tolerance_m: float = 0.08
    #: Hover jitter around a held setpoint.
    hover_jitter_std_m: float = 0.015
    #: Random-walk rate of leveled, uncontrolled flight.
    drift_std_mps: float = 0.15
    #: Velocity decay time-constant while leveled (attitude-level flight
    #: sheds horizontal/vertical speed over roughly a second).
    drift_damping_tau_s: float = 1.0


class FlightDynamics:
    """Point-mass kinematics with setpoint tracking."""

    def __init__(
        self,
        initial_position: Sequence[float],
        config: Optional[DynamicsConfig] = None,
    ):
        self.config = config or DynamicsConfig()
        self.position = np.asarray(initial_position, dtype=float).copy()
        self.velocity = np.zeros(3)
        self.setpoint: Optional[np.ndarray] = None
        self.airborne = False

    # ------------------------------------------------------------------
    def set_setpoint(self, target: Sequence[float]) -> None:
        """Command a new position setpoint."""
        self.setpoint = np.asarray(target, dtype=float).copy()

    def clear_setpoint(self) -> None:
        """Remove position control (commander leveled out)."""
        self.setpoint = None

    def distance_to_setpoint(self) -> float:
        """Distance to the current setpoint (inf if none)."""
        if self.setpoint is None:
            return float("inf")
        return _norm3(self.setpoint - self.position)

    @property
    def at_setpoint(self) -> bool:
        """True when within the arrival tolerance of the setpoint."""
        return self.distance_to_setpoint() <= self.config.arrival_tolerance_m

    @property
    def moving(self) -> bool:
        """True while translating toward a setpoint."""
        return (
            self.airborne
            and self.setpoint is not None
            and not self.at_setpoint
        )

    # ------------------------------------------------------------------
    def update(self, dt: float, rng: np.random.Generator) -> None:
        """Advance the state by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if not self.airborne or dt == 0:
            return
        cfg = self.config
        if self.setpoint is None:
            # Leveled attitude, no position control: residual speed decays
            # while disturbances random-walk the vehicle.
            self.velocity *= np.exp(-dt / cfg.drift_damping_tau_s)
            self.velocity += rng.normal(0.0, cfg.drift_std_mps, size=3) * dt
            speed = _norm3(self.velocity)
            if speed > cfg.max_speed_mps:
                self.velocity *= cfg.max_speed_mps / speed
            self.position += self.velocity * dt
            return
        error = self.setpoint - self.position
        distance = _norm3(error)
        if distance <= cfg.arrival_tolerance_m:
            # Station keeping: damp velocity, jitter around the setpoint.
            self.velocity = np.zeros(3)
            self.position = self.setpoint + rng.normal(
                0.0, cfg.hover_jitter_std_m, size=3
            )
            return
        # Velocity command toward the setpoint, capped by speed and accel.
        desired = error / distance * min(cfg.max_speed_mps, distance / dt * 0.5)
        dv = desired - self.velocity
        dv_norm = _norm3(dv)
        max_dv = cfg.max_accel_mps2 * dt
        if dv_norm > max_dv:
            dv *= max_dv / dv_norm
        self.velocity += dv
        self.position += self.velocity * dt
