"""IMU measurement model (BMI088-class accelerometer/gyroscope).

The Crazyflie's 10-DOF IMU feeds the on-board EKF.  For REM generation
only the translational channel matters; the model provides bias + white
noise accelerometer readings the estimator can integrate, plus a
pressure-based altitude channel (the 2.1's high-precision barometer)
used as a coarse sanity reference in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ImuConfig", "Imu"]

GRAVITY = np.array([0.0, 0.0, -9.81])


@dataclass(frozen=True)
class ImuConfig:
    """Noise parameters of the accelerometer and barometer channels."""

    accel_noise_std: float = 0.08
    accel_bias_std: float = 0.02
    baro_noise_std_m: float = 0.25


class Imu:
    """Noisy inertial measurements from ground-truth motion."""

    def __init__(self, config: ImuConfig, rng: np.random.Generator):
        self.config = config
        self._bias = rng.normal(0.0, config.accel_bias_std, size=3)

    def read_accel(
        self, true_accel: Sequence[float], rng: np.random.Generator
    ) -> np.ndarray:
        """Specific-force reading for a given true acceleration."""
        accel = np.asarray(true_accel, dtype=float)
        noise = rng.normal(0.0, self.config.accel_noise_std, size=3)
        return accel - GRAVITY + self._bias + noise

    def read_altitude(
        self, true_altitude_m: float, rng: np.random.Generator
    ) -> float:
        """Barometric altitude reading."""
        return float(true_altitude_m + rng.normal(0.0, self.config.baro_noise_std_m))
