"""The integrated Crazyflie vehicle: firmware tasks over the sim kernel.

One :class:`Crazyflie` instance wires together every on-board
subsystem of the demo UAV:

* flight dynamics + battery + expansion decks,
* the commander with its setpoint watchdog,
* the UWB position estimator (EKF) used for sample annotation,
* the ESP-01 REM receiver behind its AT driver,
* the CRTP link endpoint with the firmware's bounded TX queue,
* the §II-C scan task, including the position-feedback task that keeps
  the commander fed while the radio is off.

The control loop runs as a generator process on the simulation kernel
at 25 Hz, which also matches the TDoA measurement rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..link.crazyradio import CrazyradioLink
from ..link.crtp import CrtpPacket, CrtpPort
from ..radio.environment import IndoorEnvironment
from ..sim.kernel import Simulator
from ..sim.process import Process, Timeout, spawn
from ..sim.rng import RandomStreams
from ..uwb.anchors import AnchorLayout
from ..uwb.localization import LocalizationMode, PositionEstimator
from ..uwb.ranging import RangingConfig
from ..wifi.driver import Esp01Driver
from ..wifi.esp8266 import Esp01Module
from ..wifi.scanner import ScanConfig
from . import app_protocol as proto
from .battery import Battery, BatteryConfig
from .commander import Commander, CommanderState
from .decks import ESP_DECK, LOCO_DECK, DeckSlots
from .dynamics import DynamicsConfig, FlightDynamics
from .firmware import FirmwareConfig

__all__ = ["FlightState", "UavConfig", "Crazyflie"]


class FlightState(enum.Enum):
    """Top-level vehicle state."""

    IDLE = 0
    FLYING = 1
    LANDED = 2
    CRASHED = 3


@dataclass(frozen=True)
class UavConfig:
    """Per-UAV configuration (§III-A: address, start position, timing)."""

    name: str = "uav"
    start_position: Tuple[float, float, float] = (0.2, 0.2, 0.0)
    control_period_s: float = 0.04
    scan_duration_s: float = 2.3
    scan_startup_s: float = 0.3
    landing_time_s: float = 1.5
    localization_mode: str = LocalizationMode.TDOA
    rx_gain_offset_db: float = 0.0


class Crazyflie:
    """A simulated Crazyflie 2.1 with LPS and ESP-01 decks."""

    def __init__(
        self,
        sim: Simulator,
        environment: IndoorEnvironment,
        anchor_layout: AnchorLayout,
        link: CrazyradioLink,
        firmware: FirmwareConfig,
        streams: RandomStreams,
        config: Optional[UavConfig] = None,
        scan_config: Optional[ScanConfig] = None,
        battery_config: Optional[BatteryConfig] = None,
        dynamics_config: Optional[DynamicsConfig] = None,
        ranging_config: Optional[RangingConfig] = None,
        receiver_module=None,
        receiver_driver=None,
    ):
        self.sim = sim
        self.environment = environment
        self.config = config or UavConfig()
        self.firmware = firmware
        self.link = link
        name = self.config.name
        self._rng = streams.get(f"uav.{name}.flight")

        # Airframe.
        self.battery = Battery(battery_config)
        self.decks = DeckSlots()
        self.decks.attach(LOCO_DECK)
        self.decks.attach(ESP_DECK)
        self.dynamics = FlightDynamics(self.config.start_position, dynamics_config)
        self.commander = Commander(firmware)

        # Localization (EKF over UWB).
        self.estimator = PositionEstimator(
            anchor_layout,
            mode=self.config.localization_mode,
            ranging_config=ranging_config,
            initial_position=self.config.start_position,
        )
        self._uwb_rng = streams.get(f"uav.{name}.uwb")
        self._uwb_accum_s = 0.0

        # REM receiver.  Defaults to the ESP-01 Wi-Fi deck; any module
        # implementing set_position()/scan_duration_s plus a driver
        # honoring the §II-A four-instruction contract can be carried
        # instead (e.g. the BLE observer) — the toolchain is receiver-
        # technology-agnostic by design.
        if receiver_module is None:
            base_scan_config = scan_config or ScanConfig()
            if self.config.rx_gain_offset_db != base_scan_config.rx_gain_offset_db:
                from dataclasses import replace

                base_scan_config = replace(
                    base_scan_config, rx_gain_offset_db=self.config.rx_gain_offset_db
                )
            receiver_module = Esp01Module(
                environment,
                streams.get(f"uav.{name}.scan"),
                scan_config=base_scan_config,
                scan_duration_s=self.config.scan_duration_s,
            )
            if receiver_driver is None:
                receiver_driver = Esp01Driver(receiver_module)
        elif receiver_driver is None:
            raise ValueError("receiver_module requires a matching receiver_driver")
        self.receiver_module = receiver_module
        self.receiver_module.set_position(self.config.start_position)
        self.driver = receiver_driver

        # State.
        self.state = FlightState.IDLE
        self.scanning = False
        self.crash_reason: Optional[str] = None
        self.scans_completed = 0
        self.flight_started_at: Optional[float] = None
        self.flight_ended_at: Optional[float] = None

        link.attach_uav(self._handle_packet)
        self._control_process = spawn(sim, self._control_loop(), name=f"{name}.control")

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def position(self) -> np.ndarray:
        """Ground-truth position (the simulator's view)."""
        return self.dynamics.position.copy()

    @property
    def estimated_position(self) -> np.ndarray:
        """The on-board EKF estimate (what annotates samples)."""
        return self.estimator.position

    @property
    def flying(self) -> bool:
        """True while airborne."""
        return self.state is FlightState.FLYING

    @property
    def active_time_s(self) -> float:
        """Airborne seconds so far (or of the finished flight)."""
        if self.flight_started_at is None:
            return 0.0
        end = self.flight_ended_at if self.flight_ended_at is not None else self.sim.now
        return end - self.flight_started_at

    # ------------------------------------------------------------------
    # control loop
    # ------------------------------------------------------------------
    def _control_loop(self):
        dt = self.config.control_period_s
        uwb_period = 1.0 / self.estimator.update_rate_hz
        while self.state not in (FlightState.CRASHED, FlightState.LANDED):
            yield Timeout(dt)
            now = self.sim.now
            if self.state is not FlightState.FLYING:
                continue
            # Watchdog.
            cmd_state = self.commander.state(now)
            if cmd_state is CommanderState.SHUTDOWN:
                self._crash("commander watchdog timeout")
                continue
            if cmd_state is CommanderState.CONTROLLED:
                setpoint = self.commander.setpoint
                if setpoint is not None:
                    self.dynamics.set_setpoint(setpoint)
            else:
                self.dynamics.clear_setpoint()
            # Dynamics + localization.
            self.dynamics.update(dt, self._rng)
            self._uwb_accum_s += dt
            if self._uwb_accum_s >= uwb_period:
                self.estimator.step(
                    self._uwb_accum_s, self.dynamics.position, self._uwb_rng
                )
                self._uwb_accum_s = 0.0
            self.receiver_module.set_position(self.dynamics.position)
            # Power.
            current = self.battery.config.hover_current_ma
            if self.dynamics.moving:
                current += self.battery.config.translate_extra_ma
            current += self.decks.total_current_ma(scanning=self.scanning)
            self.battery.draw(current, dt)
            if self.battery.depleted:
                self._crash("battery depleted")

    def _crash(self, reason: str) -> None:
        if self.state is FlightState.CRASHED:
            return
        self.state = FlightState.CRASHED
        self.crash_reason = reason
        self.flight_ended_at = self.sim.now
        self.dynamics.airborne = False

    # ------------------------------------------------------------------
    # packet handling (the firmware app)
    # ------------------------------------------------------------------
    def _handle_packet(self, packet: CrtpPacket) -> None:
        if packet.port != CrtpPort.APP:
            return
        message = proto.decode(packet)
        if isinstance(message, proto.Takeoff):
            self._do_takeoff(message.height_m)
        elif isinstance(message, proto.Goto):
            if self.state is FlightState.FLYING:
                self.commander.feed(message.position, self.sim.now)
        elif isinstance(message, proto.StartScan):
            if self.state is FlightState.FLYING and not self.scanning:
                spawn(self.sim, self._scan_task(), name=f"{self.config.name}.scan")
        elif isinstance(message, proto.Land):
            if self.state is FlightState.FLYING:
                spawn(self.sim, self._land_task(), name=f"{self.config.name}.land")
        elif isinstance(message, proto.StatusRequest):
            self._send_status()

    def _do_takeoff(self, height_m: float) -> None:
        if self.state is not FlightState.IDLE:
            return
        self.state = FlightState.FLYING
        self.dynamics.airborne = True
        self.flight_started_at = self.sim.now
        target = self.dynamics.position.copy()
        target[2] = height_m
        self.commander.feed(target, self.sim.now)
        try:
            self.driver.initialize()
        except Exception:
            self._crash("REM receiver initialization failed")

    def _send_status(self) -> None:
        est = self.estimated_position
        self.link.uav_send(
            proto.encode(
                proto.Status(
                    state=self.state.value,
                    battery_fraction=self.battery.remaining_fraction,
                    x=float(est[0]),
                    y=float(est[1]),
                    z=float(est[2]),
                )
            )
        )

    # ------------------------------------------------------------------
    # scan task (§II-C) with the position-feedback task
    # ------------------------------------------------------------------
    def _scan_task(self):
        self.scanning = True
        feedback: Optional[Process] = None
        if self.firmware.feedback_task_enabled:
            feedback = spawn(
                self.sim, self._feedback_task(), name=f"{self.config.name}.feedback"
            )
        try:
            # Mode switches / scan engine startup before sampling begins;
            # the client uses this window to shut the radio down.
            yield Timeout(self.config.scan_startup_s)
            duration = self.driver.start_measurement()
            yield Timeout(duration)
            records = self.driver.parse_output()
            for record in records:
                self.link.uav_send(
                    proto.encode(
                        proto.ScanRecordMsg(
                            mac=record.mac,
                            rssi_dbm=record.rssi_dbm,
                            channel=record.channel,
                            ssid=record.ssid,
                        )
                    )
                )
            est = self.estimated_position
            self.link.uav_send(
                proto.encode(
                    proto.ScanEnd(
                        record_count=len(records),
                        x=float(est[0]),
                        y=float(est[1]),
                        z=float(est[2]),
                        battery_fraction=self.battery.remaining_fraction,
                    )
                )
            )
            self.scans_completed += 1
        finally:
            self.scanning = False
            if feedback is not None:
                feedback.interrupt()

    def _feedback_task(self):
        """Feed the commander the scan position every 100 ms (§II-C)."""
        hold = self.dynamics.position.copy()
        while self.scanning and self.state is FlightState.FLYING:
            self.commander.feed(hold, self.sim.now)
            yield Timeout(self.firmware.feedback_period_s)

    # ------------------------------------------------------------------
    def _land_task(self):
        target = self.dynamics.position.copy()
        target[2] = 0.05
        self.commander.feed(target, self.sim.now)
        yield Timeout(self.config.landing_time_s)
        if self.state is FlightState.FLYING:
            self.state = FlightState.LANDED
            self.dynamics.airborne = False
            self.flight_ended_at = self.sim.now
