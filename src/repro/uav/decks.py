"""Crazyflie expansion decks and the two-slot constraint.

The Crazyflie 2.1 exposes two expansion slots (§II); the demo uses both:
the Loco Positioning Deck for UWB localization and a custom prototyping
deck carrying the ESP-01 REM receiver.  Decks contribute to the power
budget — idle draw plus an extra draw while active (scanning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Deck", "DeckSlots", "LOCO_DECK", "ESP_DECK", "MAX_DECKS"]

#: The Crazyflie 2.1 has exactly two expansion slots.
MAX_DECKS: int = 2


@dataclass(frozen=True)
class Deck:
    """An expansion deck with its power profile."""

    name: str
    idle_current_ma: float
    active_current_ma: float = 0.0

    def current_ma(self, active: bool) -> float:
        """Draw for the given activity state."""
        return self.idle_current_ma + (self.active_current_ma if active else 0.0)


#: Loco Positioning Deck (DWM1000 UWB transceiver).
LOCO_DECK = Deck(name="loco_positioning", idle_current_ma=95.0)

#: Custom prototyping deck with the AI-Thinker ESP-01 (extra draw while
#: actively scanning / transmitting).
ESP_DECK = Deck(name="esp8266_rem", idle_current_ma=85.0, active_current_ma=280.0)


class DeckSlots:
    """The UAV's expansion slots with attachment validation."""

    def __init__(self):
        self._decks: List[Deck] = []

    def attach(self, deck: Deck) -> None:
        """Mount a deck; at most :data:`MAX_DECKS` fit, no duplicates."""
        if len(self._decks) >= MAX_DECKS:
            raise ValueError(f"both expansion slots already used: {self.names}")
        if any(d.name == deck.name for d in self._decks):
            raise ValueError(f"deck {deck.name!r} already attached")
        self._decks.append(deck)

    @property
    def decks(self) -> Tuple[Deck, ...]:
        """Currently attached decks."""
        return tuple(self._decks)

    @property
    def names(self) -> Tuple[str, ...]:
        """Names of attached decks."""
        return tuple(d.name for d in self._decks)

    def total_current_ma(self, scanning: bool = False) -> float:
        """Summed deck draw; the ESP deck is *active* while scanning."""
        total = 0.0
        for deck in self._decks:
            active = scanning and deck.active_current_ma > 0
            total += deck.current_ma(active)
        return total
