"""Battery and endurance model of the Crazyflie 2.1.

The paper's endurance observations anchor this model (§III-A):

* the bare Crazyflie is advertised with "up to 7 min" of flight;
* with the Loco deck and the custom ESP8266 deck attached, hovering
  ~1 m above ground in TWR mode with a periodic scan every ~8 s (scan
  duration ~2 s), the UAV managed **36 scans in 6 min 12 s** before its
  motions became erratic.

The model is a simple coulomb counter: currents for hover, translation
and deck activity integrate over simulated time; behaviour becomes
*erratic* when the remaining charge drops below a small reserve, which
is the operational end-of-flight the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BatteryConfig", "Battery"]


@dataclass(frozen=True)
class BatteryConfig:
    """Electrical parameters (defaults calibrated to §III-A)."""

    capacity_mah: float = 250.0
    #: Hover current of the bare airframe.
    hover_current_ma: float = 2080.0
    #: Extra current while translating between waypoints.
    translate_extra_ma: float = 260.0
    #: Below this remaining fraction the UAV flies erratically (the
    #: operational endurance limit used in the paper's test).
    erratic_reserve_fraction: float = 0.04

    def endurance_s(self, average_current_ma: float) -> float:
        """Time until erratic behaviour at a constant average current."""
        if average_current_ma <= 0:
            raise ValueError("current must be positive")
        usable_mah = self.capacity_mah * (1.0 - self.erratic_reserve_fraction)
        return usable_mah / average_current_ma * 3600.0

    def endurance_waypoints(
        self,
        flight_leg_s: float = 4.0,
        scan_window_s: float = 3.0,
        deck_current_ma: float = 0.0,
        safety_fraction: float = 0.15,
    ) -> int:
        """Waypoints one charge supports under the §III-A duty cycle.

        Each waypoint costs a translating leg plus a hovering scan
        window; ``safety_fraction`` of the usable endurance is reserved
        for take-off, landing and return.  This bounds how large an
        active-sampling batch a single flight may be.
        """
        if flight_leg_s <= 0 or scan_window_s <= 0:
            raise ValueError("leg and scan durations must be positive")
        if not 0.0 <= safety_fraction < 1.0:
            raise ValueError("safety_fraction must be in [0, 1)")
        leg_ma = self.hover_current_ma + self.translate_extra_ma + deck_current_ma
        hover_ma = self.hover_current_ma + deck_current_ma
        per_waypoint_mah = (
            leg_ma * flight_leg_s + hover_ma * scan_window_s
        ) / 3600.0
        usable_mah = (
            self.capacity_mah
            * (1.0 - self.erratic_reserve_fraction)
            * (1.0 - safety_fraction)
        )
        return max(int(usable_mah / per_waypoint_mah), 1)


class Battery:
    """Coulomb-counting battery state."""

    def __init__(self, config: Optional[BatteryConfig] = None):
        self.config = config or BatteryConfig()
        self.consumed_mah = 0.0

    def draw(self, current_ma: float, dt_s: float) -> None:
        """Consume ``current_ma`` for ``dt_s`` seconds."""
        if current_ma < 0 or dt_s < 0:
            raise ValueError("current and dt must be >= 0")
        self.consumed_mah += current_ma * dt_s / 3600.0

    @property
    def remaining_mah(self) -> float:
        """Charge left, clamped at zero."""
        return max(self.config.capacity_mah - self.consumed_mah, 0.0)

    @property
    def remaining_fraction(self) -> float:
        """Remaining charge as a fraction of capacity."""
        return self.remaining_mah / self.config.capacity_mah

    @property
    def erratic(self) -> bool:
        """True once the usable charge is spent (flight should end)."""
        return self.remaining_fraction <= self.config.erratic_reserve_fraction

    @property
    def depleted(self) -> bool:
        """True when the battery is completely empty."""
        return self.remaining_mah <= 0.0

    def reset(self) -> None:
        """Swap in a fully charged battery."""
        self.consumed_mah = 0.0
