"""Firmware configuration: the stock 2021.06 release vs the paper's mods.

§II-C describes two firmware changes needed to survive the radio-off
scan window, plus one added task:

* ``CRTP_TX_QUEUE_SIZE`` enlarged so a full scan result fits in the
  downlink queue until the radio returns;
* ``COMMANDER_WDT_TIMEOUT_SHUTDOWN`` raised to 10 s so the setpoint
  watchdog does not kill the flight while the link is down;
* a FreeRTOS task on the ESP deck driver that feeds the current
  scanning position back to the commander every 100 ms during a scan.

Both configurations are first-class here so the ablation bench can show
what happens with the stock values (spoiler: the watchdog fires and the
scan results overflow the queue).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FirmwareConfig"]


@dataclass(frozen=True)
class FirmwareConfig:
    """Tunables of the (simulated) Crazyflie firmware."""

    #: Downlink packet queue capacity (packets).
    crtp_tx_queue_size: int = 16
    #: Setpoint watchdog: no setpoint for this long → emergency shutdown.
    commander_watchdog_timeout_s: float = 2.0
    #: No setpoint for this long → level attitude (position control off).
    setpoint_level_timeout_s: float = 0.5
    #: Whether the ESP-deck position-feedback task exists.
    feedback_task_enabled: bool = False
    #: Period of the feedback task while a scan is running.
    feedback_period_s: float = 0.1

    @classmethod
    def stock_2021_06(cls) -> "FirmwareConfig":
        """The unmodified 2021.06 release the paper starts from."""
        return cls()

    @classmethod
    def paper_modified(cls) -> "FirmwareConfig":
        """The release with the paper's three §II-C modifications."""
        return cls(
            crtp_tx_queue_size=256,
            commander_watchdog_timeout_s=10.0,
            setpoint_level_timeout_s=0.5,
            feedback_task_enabled=True,
            feedback_period_s=0.1,
        )
