"""The setpoint commander and its watchdog.

The Crazyflie accepts position setpoints from two producers: the base
station (over CRTP, Fig. 4's Commander framework) and — during scans,
when the radio is off — the ESP-deck feedback task added by the paper.
The commander watches setpoint freshness:

* fresh setpoint → position control toward it;
* stale for > 0.5 s → attitude leveled, position control off (drift);
* stale for > ``COMMANDER_WDT_TIMEOUT_SHUTDOWN`` → emergency shutdown.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

from .firmware import FirmwareConfig

__all__ = ["CommanderState", "Commander"]


class CommanderState(enum.Enum):
    """Watchdog-derived control state."""

    CONTROLLED = "controlled"
    LEVELED = "leveled"
    SHUTDOWN = "shutdown"


class Commander:
    """Setpoint bookkeeping + watchdog evaluation."""

    def __init__(self, firmware: FirmwareConfig):
        self.firmware = firmware
        self._setpoint: Optional[np.ndarray] = None
        self._last_fed_at: Optional[float] = None
        self.setpoints_received = 0
        self.watchdog_fired = False

    # ------------------------------------------------------------------
    def feed(self, position: Sequence[float], now: float) -> None:
        """Accept a position setpoint at simulated time ``now``."""
        self._setpoint = np.asarray(position, dtype=float).copy()
        self._last_fed_at = now
        self.setpoints_received += 1

    @property
    def setpoint(self) -> Optional[np.ndarray]:
        """Latest setpoint (None before the first feed)."""
        return None if self._setpoint is None else self._setpoint.copy()

    def staleness(self, now: float) -> float:
        """Seconds since the last setpoint (inf before the first)."""
        if self._last_fed_at is None:
            return float("inf")
        return now - self._last_fed_at

    # ------------------------------------------------------------------
    def state(self, now: float) -> CommanderState:
        """Evaluate the watchdog at time ``now``.

        Once the shutdown watchdog has fired the state latches at
        SHUTDOWN — the real firmware stops the motors for good.
        """
        if self.watchdog_fired:
            return CommanderState.SHUTDOWN
        stale = self.staleness(now)
        if (
            self._last_fed_at is not None
            and stale > self.firmware.commander_watchdog_timeout_s
        ):
            self.watchdog_fired = True
            return CommanderState.SHUTDOWN
        if stale > self.firmware.setpoint_level_timeout_s:
            return CommanderState.LEVELED
        return CommanderState.CONTROLLED
