"""Application-level CRTP protocol between the station and the UAV.

The REM app speaks over :data:`repro.link.CrtpPort.APP` with small
struct-packed messages.  Scan results stream down one record per packet
(a CRTP payload holds 30 bytes: MAC + RSSI + channel + a truncated
SSID), terminated by an END message carrying the UAV's EKF position
estimate — the location annotation attached to every sample — plus the
battery state.

SSIDs longer than :data:`MAX_SSID_BYTES` are truncated on the wire; the
ML stage keys on MAC addresses, so truncation only affects display
strings (documented in DESIGN.md).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Tuple, Union

from ..link.crtp import MAX_PAYLOAD_BYTES, CrtpPacket, CrtpPort

__all__ = [
    "MessageType",
    "Takeoff",
    "Goto",
    "StartScan",
    "Land",
    "StatusRequest",
    "Status",
    "ScanRecordMsg",
    "ScanEnd",
    "encode",
    "decode",
    "MAX_SSID_BYTES",
]

MAX_SSID_BYTES = 20

_MAC_BYTES = 6


class MessageType(enum.IntEnum):
    """First payload byte of every app message."""

    TAKEOFF = 0x01
    GOTO = 0x02
    START_SCAN = 0x03
    LAND = 0x04
    STATUS_REQUEST = 0x05
    STATUS = 0x81
    SCAN_RECORD = 0x82
    SCAN_END = 0x83


@dataclass(frozen=True)
class Takeoff:
    """Command: take off to ``height_m`` above the current position."""

    height_m: float


@dataclass(frozen=True)
class Goto:
    """Command: fly to the absolute position (x, y, z)."""

    x: float
    y: float
    z: float

    @property
    def position(self) -> Tuple[float, float, float]:
        """The target as a tuple."""
        return (self.x, self.y, self.z)


@dataclass(frozen=True)
class StartScan:
    """Command: run one REM measurement at the current position."""


@dataclass(frozen=True)
class Land:
    """Command: land at the current horizontal position."""


@dataclass(frozen=True)
class StatusRequest:
    """Command: report flight status."""


@dataclass(frozen=True)
class Status:
    """Telemetry: flight state + battery + position estimate."""

    state: int
    battery_fraction: float
    x: float
    y: float
    z: float

    @property
    def position(self) -> Tuple[float, float, float]:
        """Estimated position as a tuple."""
        return (self.x, self.y, self.z)


@dataclass(frozen=True)
class ScanRecordMsg:
    """One detected AP: the (ssid, rssi, mac, channel) tuple on the wire."""

    mac: str
    rssi_dbm: int
    channel: int
    ssid: str


@dataclass(frozen=True)
class ScanEnd:
    """End of a scan result stream.

    ``record_count`` lets the station detect queue-overflow losses;
    the position estimate is the sample annotation.
    """

    record_count: int
    x: float
    y: float
    z: float
    battery_fraction: float

    @property
    def position(self) -> Tuple[float, float, float]:
        """Annotated scan position."""
        return (self.x, self.y, self.z)


Message = Union[
    Takeoff, Goto, StartScan, Land, StatusRequest, Status, ScanRecordMsg, ScanEnd
]


def _mac_to_bytes(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != _MAC_BYTES:
        raise ValueError(f"malformed MAC address {mac!r}")
    return bytes(int(p, 16) for p in parts)


def _mac_from_bytes(raw: bytes) -> str:
    return ":".join(f"{b:02x}" for b in raw)


def encode(message: Message) -> CrtpPacket:
    """Serialize a message into an APP-port CRTP packet."""
    if isinstance(message, Takeoff):
        payload = struct.pack("<Bf", MessageType.TAKEOFF, message.height_m)
    elif isinstance(message, Goto):
        payload = struct.pack(
            "<Bfff", MessageType.GOTO, message.x, message.y, message.z
        )
    elif isinstance(message, StartScan):
        payload = struct.pack("<B", MessageType.START_SCAN)
    elif isinstance(message, Land):
        payload = struct.pack("<B", MessageType.LAND)
    elif isinstance(message, StatusRequest):
        payload = struct.pack("<B", MessageType.STATUS_REQUEST)
    elif isinstance(message, Status):
        payload = struct.pack(
            "<BBffff",
            MessageType.STATUS,
            message.state,
            message.battery_fraction,
            message.x,
            message.y,
            message.z,
        )
    elif isinstance(message, ScanRecordMsg):
        ssid_bytes = message.ssid.encode("utf-8")[:MAX_SSID_BYTES]
        payload = (
            struct.pack(
                "<B6sbBB",
                MessageType.SCAN_RECORD,
                _mac_to_bytes(message.mac),
                max(-128, min(127, message.rssi_dbm)),
                message.channel,
                len(ssid_bytes),
            )
            + ssid_bytes
        )
    elif isinstance(message, ScanEnd):
        payload = struct.pack(
            "<BHffff",
            MessageType.SCAN_END,
            message.record_count,
            message.x,
            message.y,
            message.z,
            message.battery_fraction,
        )
    else:
        raise TypeError(f"cannot encode {message!r}")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ValueError(f"encoded message exceeds CRTP payload: {len(payload)}B")
    return CrtpPacket(port=CrtpPort.APP, channel=0, payload=payload)


def decode(packet: CrtpPacket) -> Message:
    """Deserialize an APP-port CRTP packet."""
    if packet.port != CrtpPort.APP:
        raise ValueError(f"not an APP packet: {packet!r}")
    payload = packet.payload
    if not payload:
        raise ValueError("empty APP payload")
    msg_type = payload[0]
    if msg_type == MessageType.TAKEOFF:
        (height,) = struct.unpack_from("<f", payload, 1)
        return Takeoff(height_m=height)
    if msg_type == MessageType.GOTO:
        x, y, z = struct.unpack_from("<fff", payload, 1)
        return Goto(x=x, y=y, z=z)
    if msg_type == MessageType.START_SCAN:
        return StartScan()
    if msg_type == MessageType.LAND:
        return Land()
    if msg_type == MessageType.STATUS_REQUEST:
        return StatusRequest()
    if msg_type == MessageType.STATUS:
        state, battery, x, y, z = struct.unpack_from("<Bffff", payload, 1)
        return Status(state=state, battery_fraction=battery, x=x, y=y, z=z)
    if msg_type == MessageType.SCAN_RECORD:
        mac_raw, rssi, channel, ssid_len = struct.unpack_from("<6sbBB", payload, 1)
        offset = 1 + struct.calcsize("<6sbBB")
        ssid = payload[offset : offset + ssid_len].decode("utf-8", errors="replace")
        return ScanRecordMsg(
            mac=_mac_from_bytes(mac_raw), rssi_dbm=rssi, channel=channel, ssid=ssid
        )
    if msg_type == MessageType.SCAN_END:
        count, x, y, z, battery = struct.unpack_from("<Hffff", payload, 1)
        return ScanEnd(record_count=count, x=x, y=y, z=z, battery_fraction=battery)
    raise ValueError(f"unknown APP message type 0x{msg_type:02x}")
