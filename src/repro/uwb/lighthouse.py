"""Lighthouse-style optical positioning (the paper's §IV future work).

"Future work will focus on integrating the BitCraze's infrared system
called Lighthouse for UAV localization, which features comparable
precision, while requiring less anchors and being cheaper.  In addition
to further self-interference mitigation, this effort is expected to
make the system even easier to deploy."

A Lighthouse base station sweeps the volume with infrared laser planes;
the deck timestamps the sweeps and recovers the *azimuth* and
*elevation* angles toward each visible base station.  Two base stations
suffice for a 3-D fix.  Crucially for the REM use case, the system is
optical: it adds **zero** interference in the 2.4 GHz band, so the
REM-sampling receiver can even share the band used for control.

This module implements the sweep-angle measurement model and an EKF
estimator with the same surface as :class:`~repro.uwb.localization.
PositionEstimator`, so campaigns can swap localization backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..radio.geometry import Cuboid
from .kalman import EkfConfig, PositionVelocityEkf

__all__ = [
    "LighthouseBaseStation",
    "LighthouseConfig",
    "LighthouseEstimator",
    "default_base_stations",
]


@dataclass(frozen=True)
class LighthouseBaseStation:
    """A sweeping infrared base station mounted high in a room corner."""

    station_id: int
    position: Tuple[float, float, float]

    @property
    def position_array(self) -> np.ndarray:
        """Position as a numpy array."""
        return np.asarray(self.position, dtype=float)


@dataclass(frozen=True)
class LighthouseConfig:
    """Measurement-model parameters.

    ``angle_sigma_rad`` reflects sweep-timing jitter of the deck
    (sub-millirad class hardware; the default is conservative).
    ``sweep_rate_hz`` is the per-station sweep pair rate.
    ``occlusion_probability`` models momentary LoS loss (props, body).
    """

    angle_sigma_rad: float = 0.002
    #: Measurement sigma the *filter* assumes.  Deliberately inflated
    #: over the raw sweep jitter: the hovering platform itself wobbles
    #: a couple of centimeters between sweeps, which the constant-
    #: velocity process model does not capture.  Using the raw 2 mrad
    #: would make the innovation gate reject the (correct) updates and
    #: the filter would diverge.
    filter_angle_sigma_rad: float = 0.012
    sweep_rate_hz: float = 30.0
    occlusion_probability: float = 0.05
    max_range_m: float = 6.0


def default_base_stations(
    volume: Cuboid, margin: float = 0.1
) -> List[LighthouseBaseStation]:
    """Two base stations in opposite upper corners (the standard setup)."""
    lo = np.asarray(volume.min_corner, dtype=float)
    hi = np.asarray(volume.max_corner, dtype=float)
    return [
        LighthouseBaseStation(0, (lo[0] - margin, lo[1] - margin, hi[2] + margin)),
        LighthouseBaseStation(1, (hi[0] + margin, hi[1] + margin, hi[2] + margin)),
    ]


class LighthouseEstimator:
    """EKF localization from sweep angles of ≥2 base stations.

    Mirrors the :class:`PositionEstimator` surface: ``step(dt,
    true_position, rng)`` ingests one sweep batch and returns the new
    estimate.
    """

    def __init__(
        self,
        base_stations: Sequence[LighthouseBaseStation],
        config: Optional[LighthouseConfig] = None,
        ekf_config: Optional[EkfConfig] = None,
        initial_position: Sequence[float] = (0.0, 0.0, 0.0),
    ):
        if len(base_stations) < 2:
            raise ValueError("Lighthouse needs at least 2 base stations for 3-D")
        self.base_stations = tuple(base_stations)
        self.config = config or LighthouseConfig()
        self.ekf = PositionVelocityEkf(initial_position, ekf_config)

    # ------------------------------------------------------------------
    @property
    def update_rate_hz(self) -> float:
        """Sweep batch rate."""
        return self.config.sweep_rate_hz

    @property
    def position(self) -> np.ndarray:
        """Current position estimate."""
        return self.ekf.position

    def error_m(self, true_position: Sequence[float]) -> float:
        """Euclidean error of the current estimate."""
        return float(
            np.linalg.norm(self.ekf.position - np.asarray(true_position, dtype=float))
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _angles(delta: np.ndarray) -> Tuple[float, float]:
        """(azimuth, elevation) of a direction vector."""
        azimuth = float(np.arctan2(delta[1], delta[0]))
        horizontal = float(np.hypot(delta[0], delta[1]))
        elevation = float(np.arctan2(delta[2], horizontal))
        return azimuth, elevation

    def step(
        self, dt: float, true_position: Sequence[float], rng: np.random.Generator
    ) -> np.ndarray:
        """Advance by ``dt`` and ingest one sweep-angle batch."""
        self.ekf.predict(dt)
        truth = np.asarray(true_position, dtype=float)
        cfg = self.config
        for station in self.base_stations:
            delta_true = truth - station.position_array
            if float(np.linalg.norm(delta_true)) > cfg.max_range_m:
                continue
            if (
                cfg.occlusion_probability > 0
                and rng.random() < cfg.occlusion_probability
            ):
                continue
            az_true, el_true = self._angles(delta_true)
            az_meas = az_true + rng.normal(0.0, cfg.angle_sigma_rad)
            el_meas = el_true + rng.normal(0.0, cfg.angle_sigma_rad)
            self._update_azimuth(station, az_meas)
            self._update_elevation(station, el_meas)
        return self.ekf.position

    # ------------------------------------------------------------------
    def _update_azimuth(self, station: LighthouseBaseStation, measured: float) -> None:
        delta = self.ekf.position - station.position_array
        dx, dy = float(delta[0]), float(delta[1])
        r2 = dx * dx + dy * dy
        if r2 < 1e-9:
            return
        predicted = float(np.arctan2(dy, dx))
        innovation = _wrap_angle(measured - predicted)
        jacobian = np.array([-dy / r2, dx / r2, 0.0])
        self.ekf.update_linearized(
            innovation, jacobian, self.config.filter_angle_sigma_rad
        )

    def _update_elevation(
        self, station: LighthouseBaseStation, measured: float
    ) -> None:
        delta = self.ekf.position - station.position_array
        dx, dy, dz = (float(v) for v in delta)
        horizontal = float(np.hypot(dx, dy))
        r2 = horizontal * horizontal + dz * dz
        if horizontal < 1e-6 or r2 < 1e-9:
            return
        predicted = float(np.arctan2(dz, horizontal))
        innovation = _wrap_angle(measured - predicted)
        jacobian = np.array(
            [
                -dx * dz / (horizontal * r2),
                -dy * dz / (horizontal * r2),
                horizontal / r2,
            ]
        )
        self.ekf.update_linearized(
            innovation, jacobian, self.config.filter_angle_sigma_rad
        )


def _wrap_angle(angle: float) -> float:
    """Wrap to (-pi, pi]."""
    return float((angle + np.pi) % (2.0 * np.pi) - np.pi)


def evaluate_lighthouse_hovering(
    volume: Cuboid,
    hover_position: Sequence[float],
    rng: np.random.Generator,
    duration_s: float = 10.0,
    settle_s: float = 3.0,
    config: Optional[LighthouseConfig] = None,
    hover_jitter_std_m: float = 0.02,
) -> float:
    """Mean hovering error of the 2-base-station Lighthouse setup."""
    estimator = LighthouseEstimator(
        default_base_stations(volume),
        config=config,
        initial_position=hover_position,
    )
    dt = 1.0 / estimator.update_rate_hz
    hover = np.asarray(hover_position, dtype=float)
    errors: List[float] = []
    t = 0.0
    while t < duration_s:
        truth = hover + rng.normal(0.0, hover_jitter_std_m, size=3)
        estimator.step(dt, truth, rng)
        if t >= settle_s:
            errors.append(estimator.error_m(truth))
        t += dt
    return float(np.mean(errors))


__all__ += ["evaluate_lighthouse_hovering"]
