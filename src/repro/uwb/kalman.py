"""Extended Kalman filter for UAV state estimation from UWB + IMU.

The Crazyflie fuses UWB measurements with its IMU in an EKF whose
implementation follows Mueller et al., "Fusing ultra-wideband range
measurements with accelerometers and rate gyroscopes for quadrocopter
state estimation" (ICRA 2015) — the reference the paper cites for the
on-board estimator.

This module implements the position/velocity core of that filter:

* state ``x = [px, py, pz, vx, vy, vz]``;
* constant-velocity process model driven by white acceleration noise
  (the IMU's role is reduced to setting that noise level — the full
  attitude filter is out of scope and does not affect REM annotation);
* nonlinear range (TWR) and range-difference (TDoA) updates with
  analytic Jacobians, Joseph-form covariance updates and innovation
  gating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["EkfConfig", "PositionVelocityEkf"]


@dataclass(frozen=True)
class EkfConfig:
    """Filter tuning.

    ``accel_noise_std`` is the white-acceleration process noise: larger
    values track aggressive flight at the cost of hovering jitter.
    ``gate_sigma`` rejects innovations beyond that many standard
    deviations (NLoS outlier protection).
    """

    accel_noise_std: float = 0.8
    initial_position_std: float = 1.0
    initial_velocity_std: float = 0.5
    gate_sigma: float = 4.0


class PositionVelocityEkf:
    """EKF over [position, velocity] with UWB range-type updates."""

    STATE_DIM = 6

    def __init__(
        self,
        initial_position: Sequence[float],
        config: Optional[EkfConfig] = None,
        initial_velocity: Optional[Sequence[float]] = None,
    ):
        self.config = config or EkfConfig()
        self.x = np.zeros(self.STATE_DIM)
        self.x[:3] = np.asarray(initial_position, dtype=float)
        if initial_velocity is not None:
            self.x[3:] = np.asarray(initial_velocity, dtype=float)
        p0 = self.config.initial_position_std**2
        v0 = self.config.initial_velocity_std**2
        self.P = np.diag([p0, p0, p0, v0, v0, v0])
        self.rejected_updates = 0
        self.accepted_updates = 0

    # ------------------------------------------------------------------
    @property
    def position(self) -> np.ndarray:
        """Current position estimate."""
        return self.x[:3].copy()

    @property
    def velocity(self) -> np.ndarray:
        """Current velocity estimate."""
        return self.x[3:].copy()

    def position_std(self) -> np.ndarray:
        """Per-axis position standard deviation."""
        return np.sqrt(np.clip(np.diag(self.P)[:3], 0.0, None))

    # ------------------------------------------------------------------
    def predict(self, dt: float) -> None:
        """Propagate the constant-velocity model by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if dt == 0:
            return
        F = np.eye(self.STATE_DIM)
        F[0, 3] = F[1, 4] = F[2, 5] = dt
        q = self.config.accel_noise_std**2
        dt2, dt3, dt4 = dt * dt, dt**3, dt**4
        Q = np.zeros((self.STATE_DIM, self.STATE_DIM))
        for i in range(3):
            Q[i, i] = q * dt4 / 4.0
            Q[i, i + 3] = Q[i + 3, i] = q * dt3 / 2.0
            Q[i + 3, i + 3] = q * dt2
        self.x = F @ self.x
        self.P = F @ self.P @ F.T + Q
        self._symmetrize()

    # ------------------------------------------------------------------
    def update_range(
        self, anchor_position: Sequence[float], measured_range_m: float, sigma_m: float
    ) -> bool:
        """TWR update: ``z = |p - anchor| + noise``.

        Returns True if the measurement passed the innovation gate.
        """
        a = np.asarray(anchor_position, dtype=float)
        delta = self.x[:3] - a
        predicted = float(np.linalg.norm(delta))
        if predicted < 1e-6:
            return False
        H = np.zeros((1, self.STATE_DIM))
        H[0, :3] = delta / predicted
        return self._scalar_update(measured_range_m - predicted, H, sigma_m**2)

    def update_tdoa(
        self,
        anchor_a: Sequence[float],
        anchor_b: Sequence[float],
        measured_difference_m: float,
        sigma_m: float,
    ) -> bool:
        """TDoA update: ``z = |p - b| - |p - a| + noise``."""
        a = np.asarray(anchor_a, dtype=float)
        b = np.asarray(anchor_b, dtype=float)
        da = self.x[:3] - a
        db = self.x[:3] - b
        norm_a = float(np.linalg.norm(da))
        norm_b = float(np.linalg.norm(db))
        if norm_a < 1e-6 or norm_b < 1e-6:
            return False
        predicted = norm_b - norm_a
        H = np.zeros((1, self.STATE_DIM))
        H[0, :3] = db / norm_b - da / norm_a
        return self._scalar_update(measured_difference_m - predicted, H, sigma_m**2)

    def update_linearized(
        self,
        innovation: float,
        position_jacobian: Sequence[float],
        sigma: float,
    ) -> bool:
        """Generic scalar update for position-only measurement models.

        ``innovation`` is ``measured - predicted`` and
        ``position_jacobian`` is ∂h/∂p evaluated at the current estimate
        (velocity rows are zero).  Used by alternative localization
        backends such as the Lighthouse sweep-angle model.
        """
        H = np.zeros((1, self.STATE_DIM))
        H[0, :3] = np.asarray(position_jacobian, dtype=float)
        return self._scalar_update(innovation, H, sigma**2)

    # ------------------------------------------------------------------
    def _scalar_update(self, innovation: float, H: np.ndarray, r_var: float) -> bool:
        S = float((H @ self.P @ H.T).item()) + r_var
        if S <= 0:
            return False
        if innovation * innovation > (self.config.gate_sigma**2) * S:
            self.rejected_updates += 1
            return False
        K = (self.P @ H.T) / S  # (6,1)
        self.x = self.x + (K * innovation).ravel()
        ikh = np.eye(self.STATE_DIM) - K @ H
        # Joseph form keeps P positive semi-definite under roundoff.
        self.P = ikh @ self.P @ ikh.T + K @ K.T * r_var
        self._symmetrize()
        self.accepted_updates += 1
        return True

    def _symmetrize(self) -> None:
        self.P = (self.P + self.P.T) / 2.0
