"""Extended Kalman filter for UAV state estimation from UWB + IMU.

The Crazyflie fuses UWB measurements with its IMU in an EKF whose
implementation follows Mueller et al., "Fusing ultra-wideband range
measurements with accelerometers and rate gyroscopes for quadrocopter
state estimation" (ICRA 2015) — the reference the paper cites for the
on-board estimator.

This module implements the position/velocity core of that filter:

* state ``x = [px, py, pz, vx, vy, vz]``;
* constant-velocity process model driven by white acceleration noise
  (the IMU's role is reduced to setting that noise level — the full
  attitude filter is out of scope and does not affect REM annotation);
* nonlinear range (TWR) and range-difference (TDoA) updates with
  analytic Jacobians, Joseph-form covariance updates and innovation
  gating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["EkfConfig", "PositionVelocityEkf"]


@dataclass(frozen=True)
class EkfConfig:
    """Filter tuning.

    ``accel_noise_std`` is the white-acceleration process noise: larger
    values track aggressive flight at the cost of hovering jitter.
    ``gate_sigma`` rejects innovations beyond that many standard
    deviations (NLoS outlier protection).
    """

    accel_noise_std: float = 0.8
    initial_position_std: float = 1.0
    initial_velocity_std: float = 0.5
    gate_sigma: float = 4.0


class PositionVelocityEkf:
    """EKF over [position, velocity] with UWB range-type updates."""

    STATE_DIM = 6

    def __init__(
        self,
        initial_position: Sequence[float],
        config: Optional[EkfConfig] = None,
        initial_velocity: Optional[Sequence[float]] = None,
    ):
        self.config = config or EkfConfig()
        self.x = np.zeros(self.STATE_DIM)
        self.x[:3] = np.asarray(initial_position, dtype=float)
        if initial_velocity is not None:
            self.x[3:] = np.asarray(initial_velocity, dtype=float)
        p0 = self.config.initial_position_std**2
        v0 = self.config.initial_velocity_std**2
        self.P = np.diag([p0, p0, p0, v0, v0, v0])
        self.rejected_updates = 0
        self.accepted_updates = 0
        # The control loop calls predict() at a fixed rate, so the
        # process matrices are almost always reusable.
        self._last_dt: Optional[float] = None
        self._F = np.eye(self.STATE_DIM)
        self._Q = np.zeros((self.STATE_DIM, self.STATE_DIM))

    # ------------------------------------------------------------------
    @property
    def position(self) -> np.ndarray:
        """Current position estimate."""
        return self.x[:3].copy()

    @property
    def velocity(self) -> np.ndarray:
        """Current velocity estimate."""
        return self.x[3:].copy()

    def position_std(self) -> np.ndarray:
        """Per-axis position standard deviation."""
        return np.sqrt(np.clip(np.diag(self.P)[:3], 0.0, None))

    # ------------------------------------------------------------------
    def predict(self, dt: float) -> None:
        """Propagate the constant-velocity model by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if dt == 0:
            return
        if dt != self._last_dt:
            F = self._F
            F[0, 3] = F[1, 4] = F[2, 5] = dt
            q = self.config.accel_noise_std**2
            dt2, dt3, dt4 = dt * dt, dt**3, dt**4
            Q = self._Q
            for i in range(3):
                Q[i, i] = q * dt4 / 4.0
                Q[i, i + 3] = Q[i + 3, i] = q * dt3 / 2.0
                Q[i + 3, i + 3] = q * dt2
            self._last_dt = dt
        self.x = self._F @ self.x
        self.P = self._F @ self.P @ self._F.T + self._Q
        self._symmetrize()

    # ------------------------------------------------------------------
    def update_range(
        self, anchor_position: Sequence[float], measured_range_m: float, sigma_m: float
    ) -> bool:
        """TWR update: ``z = |p - anchor| + noise``.

        Returns True if the measurement passed the innovation gate.
        """
        x = self.x
        dx, dy, dz = (
            x[0] - anchor_position[0],
            x[1] - anchor_position[1],
            x[2] - anchor_position[2],
        )
        predicted = math.sqrt(dx * dx + dy * dy + dz * dz)
        if predicted < 1e-6:
            return False
        h = np.array([dx, dy, dz]) / predicted
        return self._scalar_update(measured_range_m - predicted, h, sigma_m**2)

    def update_tdoa(
        self,
        anchor_a: Sequence[float],
        anchor_b: Sequence[float],
        measured_difference_m: float,
        sigma_m: float,
    ) -> bool:
        """TDoA update: ``z = |p - b| - |p - a| + noise``."""
        x = self.x
        dax, day, daz = x[0] - anchor_a[0], x[1] - anchor_a[1], x[2] - anchor_a[2]
        dbx, dby, dbz = x[0] - anchor_b[0], x[1] - anchor_b[1], x[2] - anchor_b[2]
        norm_a = math.sqrt(dax * dax + day * day + daz * daz)
        norm_b = math.sqrt(dbx * dbx + dby * dby + dbz * dbz)
        if norm_a < 1e-6 or norm_b < 1e-6:
            return False
        predicted = norm_b - norm_a
        h = np.array(
            [
                dbx / norm_b - dax / norm_a,
                dby / norm_b - day / norm_a,
                dbz / norm_b - daz / norm_a,
            ]
        )
        return self._scalar_update(measured_difference_m - predicted, h, sigma_m**2)

    def update_tdoa_batch(
        self,
        anchors_a: np.ndarray,
        anchors_b: np.ndarray,
        measured_differences_m: np.ndarray,
        sigma_m: float,
    ) -> int:
        """Ingest one TDoA packet burst as a joint vector measurement.

        The burst's rows share one timestamp, so they are fused as a
        single m-dimensional linear-Gaussian update (``R = sigma^2 I``)
        linearized at the pre-burst estimate — the textbook batch
        measurement update, equivalent to iterating scalar updates
        *without* per-row relinearization and exact for simultaneous
        measurements.  Each row is still innovation-gated individually
        against its marginal variance before the joint solve, matching
        :meth:`update_tdoa`'s NLoS protection.  One small linear solve
        replaces ~m scalar Joseph updates — the difference between the
        flight simulation being EKF-bound or not.

        Returns how many rows passed the gate.
        """
        a = np.asarray(anchors_a, dtype=float).reshape(-1, 3)
        b = np.asarray(anchors_b, dtype=float).reshape(-1, 3)
        z = np.asarray(measured_differences_m, dtype=float).reshape(-1)
        if not len(z):
            return 0
        return self.update_tdoa_stacked(np.concatenate([a, b]), z, sigma_m)

    def update_tdoa_stacked(
        self,
        stacked_anchors: np.ndarray,
        measured_differences_m: np.ndarray,
        sigma_m: float,
    ) -> int:
        """:meth:`update_tdoa_batch` over pre-stacked pair anchors.

        ``stacked_anchors`` is ``(2m, 3)`` — a-side rows first, then the
        matching b-side rows — the zero-copy layout
        :meth:`~repro.uwb.ranging.TdoaRanging.measure_stacked` serves
        from its cache on the flight-control hot path.
        """
        z = measured_differences_m
        m = len(z)
        if not m:
            return 0
        p = self.x[:3]
        # Distances and unit directions to both pair anchors in one
        # stacked pass (rows 0..m-1 are the a-side, m.. the b-side).
        delta = p - stacked_anchors
        norms = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        if norms.min() < 1e-6:
            usable = (norms[:m] >= 1e-6) & (norms[m:] >= 1e-6)
            keep = np.concatenate([usable, usable])
            delta, norms = delta[keep], norms[keep]
            z = z[usable]
            m = len(z)
            if not m:
                return 0
        unit = delta / norms[:, None]
        h = unit[m:] - unit[:m]  # (m, 3)
        innovation = z - (norms[m:] - norms[:m])
        r_var = sigma_m * sigma_m
        pht = self.P[:, :3] @ h.T  # (6, m)
        S = h @ pht[:3]
        S.flat[:: m + 1] += r_var
        # Marginal gate per row: nu_i^2 <= gate^2 S_ii.
        passed = innovation * innovation <= (self.config.gate_sigma**2) * S.flat[
            :: m + 1
        ]
        accepted = int(passed.sum())
        if accepted < m:
            self.rejected_updates += m - accepted
            if not accepted:
                return 0
            h = h[passed]
            pht = pht[:, passed]
            innovation = innovation[passed]
            S = S[np.ix_(passed, passed)]
        # K = P H^T S^-1 applied without forming K: one solve covers
        # both the weighted innovations (first column) and the
        # covariance correction (the rest).  The downdate form is safe
        # here: S carries the full r_var I regularization, the result
        # is re-symmetrized, and every predict() re-inflates P with Q
        # — a long-run PSD test guards this path.
        rhs = np.empty((accepted, 7))
        rhs[:, 0] = innovation
        rhs[:, 1:] = pht.T
        solved = np.linalg.solve(S, rhs)
        self.x += pht @ solved[:, 0]
        self.P -= pht @ solved[:, 1:]
        self._symmetrize()
        self.accepted_updates += accepted
        return accepted

    def update_linearized(
        self,
        innovation: float,
        position_jacobian: Sequence[float],
        sigma: float,
    ) -> bool:
        """Generic scalar update for position-only measurement models.

        ``innovation`` is ``measured - predicted`` and
        ``position_jacobian`` is ∂h/∂p evaluated at the current estimate
        (velocity rows are zero).  Used by alternative localization
        backends such as the Lighthouse sweep-angle model.
        """
        h = np.asarray(position_jacobian, dtype=float)
        return self._scalar_update(innovation, h, sigma**2)

    # ------------------------------------------------------------------
    def _scalar_update(self, innovation: float, h: np.ndarray, r_var: float) -> bool:
        """One scalar measurement with position-only Jacobian ``h`` (3,).

        Every supported measurement model has zero velocity rows, which
        collapses the textbook ``(1, 6)`` matrix update to vector and
        outer-product arithmetic.  The covariance keeps the Joseph
        form, expanded for a scalar measurement as ``P - K(PH^T)^T -
        (PH^T)K^T + S KK^T + ...``: it costs a couple of extra outer
        products but stays positive semi-definite under roundoff,
        which matters for the long sequential TWR/lighthouse runs that
        still use this path (TDoA bursts go through the joint
        :meth:`update_tdoa_stacked`).
        """
        pht = self.P[:, :3] @ h  # P H^T, (6,)
        S = float(h[0] * pht[0] + h[1] * pht[1] + h[2] * pht[2]) + r_var
        if S <= 0:
            return False
        if innovation * innovation > (self.config.gate_sigma**2) * S:
            self.rejected_updates += 1
            return False
        K = pht * (1.0 / S)
        self.x += K * innovation
        ikh = np.eye(self.STATE_DIM)
        ikh[:, :3] -= K[:, None] * h
        # Joseph form keeps P positive semi-definite under roundoff.
        self.P = ikh @ self.P @ ikh.T + (K[:, None] * K) * r_var
        self._symmetrize()
        self.accepted_updates += 1
        return True

    def _symmetrize(self) -> None:
        self.P = (self.P + self.P.T) / 2.0
