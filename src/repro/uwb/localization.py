"""The tag-side position estimator and accuracy evaluation harness.

:class:`PositionEstimator` is what the UAV carries: it owns the EKF and
consumes TWR or TDoA measurement batches.  The campaign uses its output
to *annotate* REM samples with locations (the whole point of §II-B).

:func:`evaluate_hovering_accuracy` reproduces the experiment behind the
paper's quoted numbers — a tag hovering at a fixed point, filtered with
an EKF against N anchors, reporting the mean 3-D error (the paper cites
≈9 cm with 6 anchors while hovering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .anchors import AnchorLayout
from .kalman import EkfConfig, PositionVelocityEkf
from .ranging import RangingConfig, TdoaRanging, TwrRanging

__all__ = [
    "LocalizationMode",
    "PositionEstimator",
    "HoveringAccuracyResult",
    "evaluate_hovering_accuracy",
    "multilaterate",
]


def multilaterate(
    anchor_positions: np.ndarray,
    ranges: np.ndarray,
    iterations: int = 20,
    initial_guess: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Gauss-Newton multilateration from ranges to known anchors.

    Used to initialize the EKF before any filtering history exists
    (e.g. right after the tag powers up on the launch pad).
    """
    anchors = np.asarray(anchor_positions, dtype=float)
    r = np.asarray(ranges, dtype=float)
    if anchors.shape[0] != r.shape[0]:
        raise ValueError("anchor/range count mismatch")
    if anchors.shape[0] < 4:
        raise ValueError("multilateration needs at least 4 ranges")
    x = (
        np.asarray(initial_guess, dtype=float)
        if initial_guess is not None
        else anchors.mean(axis=0)
    )
    for _ in range(iterations):
        deltas = x - anchors
        dists = np.linalg.norm(deltas, axis=1)
        dists = np.maximum(dists, 1e-9)
        residuals = dists - r
        J = deltas / dists[:, None]
        step, *_ = np.linalg.lstsq(J, residuals, rcond=None)
        x = x - step
        if np.linalg.norm(step) < 1e-10:
            break
    return x


class LocalizationMode:
    """String constants for the two LPS modes."""

    TWR = "twr"
    TDOA = "tdoa"


class PositionEstimator:
    """EKF-based tag localization against an anchor layout.

    Parameters
    ----------
    layout:
        The deployed anchors.
    mode:
        ``LocalizationMode.TWR`` or ``LocalizationMode.TDOA``.
    ranging_config / ekf_config:
        Noise/tuning parameter bundles.
    initial_position:
        Where the filter starts (e.g. the take-off pad).
    """

    def __init__(
        self,
        layout: AnchorLayout,
        mode: str = LocalizationMode.TDOA,
        ranging_config: Optional[RangingConfig] = None,
        ekf_config: Optional[EkfConfig] = None,
        initial_position: Sequence[float] = (0.0, 0.0, 0.0),
    ):
        if mode not in (LocalizationMode.TWR, LocalizationMode.TDOA):
            raise ValueError(f"unknown localization mode {mode!r}")
        if not layout.supports_3d():
            raise ValueError("anchor layout cannot localize in 3-D")
        self.layout = layout
        self.mode = mode
        self.ranging_config = ranging_config or RangingConfig()
        self.ekf = PositionVelocityEkf(initial_position, ekf_config)
        self._twr = TwrRanging(layout, self.ranging_config)
        self._tdoa = TdoaRanging(layout, self.ranging_config)

    # ------------------------------------------------------------------
    @property
    def update_rate_hz(self) -> float:
        """Measurement batch rate of the active mode."""
        if self.mode == LocalizationMode.TWR:
            return self._twr.rate_hz()
        return self._tdoa.rate_hz()

    @property
    def position(self) -> np.ndarray:
        """Current position estimate."""
        return self.ekf.position

    def step(
        self, dt: float, true_position: Sequence[float], rng: np.random.Generator
    ) -> np.ndarray:
        """Advance the filter by ``dt`` and ingest one measurement batch.

        ``true_position`` is the ground-truth tag location the simulated
        radio measurements are generated from.  Returns the new estimate.
        """
        self.ekf.predict(dt)
        if self.mode == LocalizationMode.TWR:
            for m in self._twr.measure_all(true_position, rng):
                self.ekf.update_range(
                    m.anchor.position, m.range_m, self.ranging_config.twr_sigma_m
                )
        else:
            stacked, diffs = self._tdoa.measure_stacked(true_position, rng)
            self.ekf.update_tdoa_stacked(
                stacked, diffs, self.ranging_config.tdoa_sigma_m
            )
        return self.ekf.position

    def error_m(self, true_position: Sequence[float]) -> float:
        """Euclidean error of the current estimate."""
        return float(
            np.linalg.norm(self.ekf.position - np.asarray(true_position, dtype=float))
        )


@dataclass
class HoveringAccuracyResult:
    """Monte-Carlo hovering accuracy for one configuration."""

    mode: str
    anchor_count: int
    mean_error_m: float
    p95_error_m: float
    rmse_m: float


def evaluate_hovering_accuracy(
    layout: AnchorLayout,
    mode: str,
    hover_position: Sequence[float],
    rng: np.random.Generator,
    duration_s: float = 10.0,
    settle_s: float = 3.0,
    ranging_config: Optional[RangingConfig] = None,
    ekf_config: Optional[EkfConfig] = None,
    hover_jitter_std_m: float = 0.02,
) -> HoveringAccuracyResult:
    """Simulate a hovering tag and report filtered localization error.

    The tag wobbles around ``hover_position`` with small Gaussian jitter
    (a hovering Crazyflie is never perfectly still); errors are collected
    after ``settle_s`` of filter convergence.
    """
    estimator = PositionEstimator(
        layout,
        mode=mode,
        ranging_config=ranging_config,
        ekf_config=ekf_config,
        initial_position=hover_position,
    )
    dt = 1.0 / estimator.update_rate_hz
    hover = np.asarray(hover_position, dtype=float)
    errors: List[float] = []
    t = 0.0
    while t < duration_s:
        true_pos = hover + rng.normal(0.0, hover_jitter_std_m, size=3)
        estimator.step(dt, true_pos, rng)
        if t >= settle_s:
            errors.append(estimator.error_m(true_pos))
        t += dt
    err = np.asarray(errors)
    return HoveringAccuracyResult(
        mode=mode,
        anchor_count=len(layout),
        mean_error_m=float(err.mean()),
        p95_error_m=float(np.percentile(err, 95)),
        rmse_m=float(np.sqrt((err**2).mean())),
    )
