"""UWB ranging measurement models: Two-Way Ranging and TDoA.

The LPS supports two modes (§II-B):

* **TWR** — the tag ranges to one anchor at a time; each measurement is
  a distance.  Accurate per measurement but the tag must transact with
  every anchor in turn, limiting the update rate and supporting only
  one tag.
* **TDoA** — anchors transmit on a synchronized schedule and the tag
  passively timestamps; each measurement is a *difference* of distances
  to an anchor pair.  Noisier per measurement, but the update rate is
  much higher and any number of tags can listen, which is why the demo
  campaign runs TDoA — and why the paper calls its accuracy slightly
  better once filtered.

Both models include optional NLoS excess-delay bias: a body or wall in
the path stretches the first path, always *adding* range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .anchors import Anchor, AnchorLayout

__all__ = [
    "RangingConfig",
    "TwrMeasurement",
    "TdoaMeasurement",
    "TwrRanging",
    "TdoaRanging",
]


@dataclass(frozen=True)
class RangingConfig:
    """Noise and timing parameters of the DWM1000-based LPS.

    Defaults follow the accuracy the paper reports (§II-B): with ≥6
    anchors the filtered hovering accuracy lands near 9 cm.
    """

    twr_sigma_m: float = 0.10
    tdoa_sigma_m: float = 0.18
    nlos_probability: float = 0.05
    nlos_bias_max_m: float = 0.30
    #: Full TWR round-robin rate (all anchors serviced per cycle), Hz.
    twr_cycle_hz: float = 8.0
    #: TDoA packet rate delivered to the tag, Hz.
    tdoa_rate_hz: float = 25.0
    max_range_m: float = 10.0


@dataclass(frozen=True)
class TwrMeasurement:
    """One two-way range to a single anchor."""

    anchor: Anchor
    range_m: float


@dataclass(frozen=True)
class TdoaMeasurement:
    """One distance-difference between an anchor pair."""

    anchor_a: Anchor
    anchor_b: Anchor
    difference_m: float


class _RangingBase:
    """Shared noise machinery for both ranging modes."""

    def __init__(self, layout: AnchorLayout, config: Optional[RangingConfig] = None):
        self.layout = layout
        self.config = config or RangingConfig()

    def _nlos_bias(self, rng: np.random.Generator) -> float:
        cfg = self.config
        if cfg.nlos_probability > 0 and rng.random() < cfg.nlos_probability:
            return float(rng.uniform(0.0, cfg.nlos_bias_max_m))
        return 0.0

    def _nlos_bias_block(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """One NLoS excess-delay draw per measurement, vectorized.

        Like :meth:`_nlos_bias`, the uniform bias is only drawn for the
        measurements whose Bernoulli gate fired.
        """
        cfg = self.config
        biases = np.zeros(count)
        if cfg.nlos_probability <= 0:
            return biases
        hits = rng.random(count) < cfg.nlos_probability
        n_hits = int(hits.sum())
        if n_hits:
            biases[hits] = rng.uniform(0.0, cfg.nlos_bias_max_m, size=n_hits)
        return biases

    def _visible(self, position: Sequence[float]) -> List[Anchor]:
        return self.layout.in_range(position, self.config.max_range_m)

    def _visible_with_distances(self, p: np.ndarray):
        """In-range anchors plus their true distances, one batched pass."""
        positions = self.layout.positions
        distances = np.sqrt(((positions - p) ** 2).sum(axis=1))
        mask = distances <= self.config.max_range_m
        if mask.all():
            # The common whole-layout case (indoor volumes are far
            # smaller than UWB range) skips the filtering pass.
            return self.layout.anchors, distances
        visible = [a for a, ok in zip(self.layout.anchors, mask) if ok]
        return visible, distances[mask]


class TwrRanging(_RangingBase):
    """Two-way ranging: one noisy distance per in-range anchor."""

    def measure_all(
        self, position: Sequence[float], rng: np.random.Generator
    ) -> List[TwrMeasurement]:
        """Ranges to every in-range anchor (one TWR cycle).

        The whole cycle's noise comes from vectorized blocks: one
        Gaussian draw per anchor plus the NLoS bias block.
        """
        p = np.asarray(position, dtype=float)
        visible, true_ranges = self._visible_with_distances(p)
        if not visible:
            return []
        noisy = (
            true_ranges
            + rng.normal(0.0, self.config.twr_sigma_m, size=len(visible))
            + self._nlos_bias_block(rng, len(visible))
        )
        return [
            TwrMeasurement(anchor=anchor, range_m=max(float(r), 0.0))
            for anchor, r in zip(visible, noisy)
        ]

    @property
    def measurement_sigma_m(self) -> float:
        """Per-measurement standard deviation."""
        return self.config.twr_sigma_m

    def rate_hz(self) -> float:
        """Measurement batches per second (full cycles)."""
        return self.config.twr_cycle_hz


class TdoaRanging(_RangingBase):
    """TDoA: distance differences against a rotating reference anchor."""

    def __init__(self, layout: AnchorLayout, config: Optional[RangingConfig] = None):
        super().__init__(layout, config)
        self._pair_cache = None

    def measure_all(
        self, position: Sequence[float], rng: np.random.Generator
    ) -> List[TdoaMeasurement]:
        """One TDoA packet burst: differences between consecutive anchors.

        The LPS TDoA3 schedule effectively yields differences between
        successive transmitters; this model pairs each in-range anchor
        with the next one.
        """
        visible, differences = self._measure_visible(position, rng)
        return [
            TdoaMeasurement(anchor_a=a, anchor_b=b, difference_m=float(diff))
            for (a, b), diff in zip(
                zip(visible, visible[1:] + visible[:1]), differences
            )
        ]

    def measure_stacked(self, position: Sequence[float], rng: np.random.Generator):
        """One burst as ``(stacked_pair_anchors, differences)``.

        ``stacked_pair_anchors`` is ``(2m, 3)`` — the m a-side anchors
        followed by the m b-side anchors — exactly the layout
        :meth:`~repro.uwb.kalman.PositionVelocityEkf.update_tdoa_stacked`
        consumes without any per-call concatenation; for the common
        whole-layout-visible burst (indoor volumes are far smaller than
        UWB range) it is a cached read-only array.
        """
        p = np.asarray(position, dtype=float)
        delta = self.layout.positions - p
        distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        if len(distances) >= 2 and distances.max() <= self.config.max_range_m:
            return self._all_anchor_pairs(), self._noisy_differences(
                distances, rng
            )
        visible, differences = self._measure_visible(position, rng)
        m = len(differences)
        if not m:
            return np.zeros((0, 3)), differences
        stacked = np.empty((2 * m, 3))
        stacked[:m] = [a.position for a in visible]
        stacked[m:-1] = stacked[1:m]
        stacked[-1] = stacked[0]
        return stacked, differences

    def _all_anchor_pairs(self) -> np.ndarray:
        if self._pair_cache is None:
            positions = self.layout.positions
            count = len(positions)
            stacked = np.empty((2 * count, 3))
            stacked[:count] = positions
            stacked[count:-1] = positions[1:]
            stacked[-1] = positions[0]
            # Handed out by reference on every fast-path burst: freeze
            # it so a caller mutation cannot corrupt later bursts.
            stacked.setflags(write=False)
            self._pair_cache = stacked
        return self._pair_cache

    def _measure_visible(self, position: Sequence[float], rng: np.random.Generator):
        """Visible anchors and their noisy consecutive-pair differences."""
        p = np.asarray(position, dtype=float)
        visible, distances = self._visible_with_distances(p)
        if len(visible) < 2:
            return visible, np.zeros(0)
        return visible, self._noisy_differences(distances, rng)

    def _noisy_differences(
        self, distances: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Noisy db - da for consecutive (wrap-around) anchor pairs.

        One noise block per term: Gaussian timestamping noise plus the
        two independent NLoS biases of each pair's anchors (drawn as
        one 2*count block, split between the a- and b-side).  The fast
        cached-geometry path and the partial-visibility path both rely
        on this single implementation for their RNG stream contract.
        """
        count = len(distances)
        db = np.empty_like(distances)
        db[:-1], db[-1] = distances[1:], distances[0]
        biases = self._nlos_bias_block(rng, 2 * count)
        return (
            db
            - distances
            + rng.normal(0.0, self.config.tdoa_sigma_m, size=count)
            + biases[:count]
            - biases[count:]
        )

    @property
    def measurement_sigma_m(self) -> float:
        """Per-measurement standard deviation (approximate)."""
        return self.config.tdoa_sigma_m

    def rate_hz(self) -> float:
        """Measurement batches per second."""
        return self.config.tdoa_rate_hz
