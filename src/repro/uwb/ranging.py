"""UWB ranging measurement models: Two-Way Ranging and TDoA.

The LPS supports two modes (§II-B):

* **TWR** — the tag ranges to one anchor at a time; each measurement is
  a distance.  Accurate per measurement but the tag must transact with
  every anchor in turn, limiting the update rate and supporting only
  one tag.
* **TDoA** — anchors transmit on a synchronized schedule and the tag
  passively timestamps; each measurement is a *difference* of distances
  to an anchor pair.  Noisier per measurement, but the update rate is
  much higher and any number of tags can listen, which is why the demo
  campaign runs TDoA — and why the paper calls its accuracy slightly
  better once filtered.

Both models include optional NLoS excess-delay bias: a body or wall in
the path stretches the first path, always *adding* range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .anchors import Anchor, AnchorLayout

__all__ = [
    "RangingConfig",
    "TwrMeasurement",
    "TdoaMeasurement",
    "TwrRanging",
    "TdoaRanging",
]


@dataclass(frozen=True)
class RangingConfig:
    """Noise and timing parameters of the DWM1000-based LPS.

    Defaults follow the accuracy the paper reports (§II-B): with ≥6
    anchors the filtered hovering accuracy lands near 9 cm.
    """

    twr_sigma_m: float = 0.10
    tdoa_sigma_m: float = 0.18
    nlos_probability: float = 0.05
    nlos_bias_max_m: float = 0.30
    #: Full TWR round-robin rate (all anchors serviced per cycle), Hz.
    twr_cycle_hz: float = 8.0
    #: TDoA packet rate delivered to the tag, Hz.
    tdoa_rate_hz: float = 25.0
    max_range_m: float = 10.0


@dataclass(frozen=True)
class TwrMeasurement:
    """One two-way range to a single anchor."""

    anchor: Anchor
    range_m: float


@dataclass(frozen=True)
class TdoaMeasurement:
    """One distance-difference between an anchor pair."""

    anchor_a: Anchor
    anchor_b: Anchor
    difference_m: float


class _RangingBase:
    """Shared noise machinery for both ranging modes."""

    def __init__(self, layout: AnchorLayout, config: Optional[RangingConfig] = None):
        self.layout = layout
        self.config = config or RangingConfig()

    def _nlos_bias(self, rng: np.random.Generator) -> float:
        cfg = self.config
        if cfg.nlos_probability > 0 and rng.random() < cfg.nlos_probability:
            return float(rng.uniform(0.0, cfg.nlos_bias_max_m))
        return 0.0

    def _visible(self, position: Sequence[float]) -> List[Anchor]:
        return self.layout.in_range(position, self.config.max_range_m)


class TwrRanging(_RangingBase):
    """Two-way ranging: one noisy distance per in-range anchor."""

    def measure_all(
        self, position: Sequence[float], rng: np.random.Generator
    ) -> List[TwrMeasurement]:
        """Ranges to every in-range anchor (one TWR cycle)."""
        p = np.asarray(position, dtype=float)
        out: List[TwrMeasurement] = []
        for anchor in self._visible(p):
            true_range = float(np.linalg.norm(anchor.position_array - p))
            noisy = (
                true_range
                + rng.normal(0.0, self.config.twr_sigma_m)
                + self._nlos_bias(rng)
            )
            out.append(TwrMeasurement(anchor=anchor, range_m=max(noisy, 0.0)))
        return out

    @property
    def measurement_sigma_m(self) -> float:
        """Per-measurement standard deviation."""
        return self.config.twr_sigma_m

    def rate_hz(self) -> float:
        """Measurement batches per second (full cycles)."""
        return self.config.twr_cycle_hz


class TdoaRanging(_RangingBase):
    """TDoA: distance differences against a rotating reference anchor."""

    def measure_all(
        self, position: Sequence[float], rng: np.random.Generator
    ) -> List[TdoaMeasurement]:
        """One TDoA packet burst: differences between consecutive anchors.

        The LPS TDoA3 schedule effectively yields differences between
        successive transmitters; this model pairs each in-range anchor
        with the next one.
        """
        p = np.asarray(position, dtype=float)
        visible = self._visible(p)
        if len(visible) < 2:
            return []
        out: List[TdoaMeasurement] = []
        for a, b in zip(visible, visible[1:] + visible[:1]):
            da = float(np.linalg.norm(a.position_array - p))
            db = float(np.linalg.norm(b.position_array - p))
            noisy = (
                (db - da)
                + rng.normal(0.0, self.config.tdoa_sigma_m)
                + self._nlos_bias(rng)
                - self._nlos_bias(rng)
            )
            out.append(TdoaMeasurement(anchor_a=a, anchor_b=b, difference_m=noisy))
        return out

    @property
    def measurement_sigma_m(self) -> float:
        """Per-measurement standard deviation (approximate)."""
        return self.config.tdoa_sigma_m

    def rate_hz(self) -> float:
        """Measurement batches per second."""
        return self.config.tdoa_rate_hz
