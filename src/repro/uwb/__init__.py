"""UWB localization substrate: anchors, TWR/TDoA ranging, EKF.

Simulates the Crazyflie Loco Positioning System the paper relies on for
location-annotating REM samples: anchor layouts, the two ranging modes,
and the on-board extended Kalman filter (after Mueller et al. 2015).
"""

from .anchors import LPS_RANGE_M, MIN_ANCHORS_3D, Anchor, AnchorLayout, corner_layout
from .kalman import EkfConfig, PositionVelocityEkf
from .lighthouse import (
    LighthouseBaseStation,
    LighthouseConfig,
    LighthouseEstimator,
    default_base_stations,
    evaluate_lighthouse_hovering,
)
from .localization import (
    HoveringAccuracyResult,
    LocalizationMode,
    PositionEstimator,
    evaluate_hovering_accuracy,
    multilaterate,
)
from .ranging import (
    RangingConfig,
    TdoaMeasurement,
    TdoaRanging,
    TwrMeasurement,
    TwrRanging,
)

__all__ = [
    "Anchor",
    "AnchorLayout",
    "corner_layout",
    "LighthouseBaseStation",
    "LighthouseConfig",
    "LighthouseEstimator",
    "default_base_stations",
    "evaluate_lighthouse_hovering",
    "LPS_RANGE_M",
    "MIN_ANCHORS_3D",
    "EkfConfig",
    "PositionVelocityEkf",
    "LocalizationMode",
    "PositionEstimator",
    "HoveringAccuracyResult",
    "evaluate_hovering_accuracy",
    "multilaterate",
    "RangingConfig",
    "TwrRanging",
    "TdoaRanging",
    "TwrMeasurement",
    "TdoaMeasurement",
]
