"""UWB anchor descriptions and layouts.

The Loco Positioning System localizes a tag (the deck on the UAV) from
UWB signals exchanged with fixed anchors.  The demo deployment puts one
anchor at each of the 8 corners of the flight cuboid; Bitcraze advises
at least 6 for robustness, and 4 is the geometric minimum for 3-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..radio.geometry import Cuboid

__all__ = ["Anchor", "AnchorLayout", "corner_layout"]

#: Practical LPS range quoted by the paper (§II-B): about 10 m.
LPS_RANGE_M: float = 10.0

#: Minimum anchors for 3-D localization.
MIN_ANCHORS_3D: int = 4


@dataclass(frozen=True)
class Anchor:
    """A fixed UWB anchor with a surveyed position."""

    anchor_id: int
    position: Tuple[float, float, float]

    @property
    def position_array(self) -> np.ndarray:
        """Position as a numpy array."""
        return np.asarray(self.position, dtype=float)


class AnchorLayout:
    """An ordered set of anchors with geometry helpers."""

    def __init__(self, anchors: Sequence[Anchor]):
        if len({a.anchor_id for a in anchors}) != len(anchors):
            raise ValueError("duplicate anchor ids in layout")
        self.anchors: Tuple[Anchor, ...] = tuple(anchors)
        self._positions = np.array([a.position for a in self.anchors], dtype=float)
        self._positions.setflags(write=False)

    def __len__(self) -> int:
        return len(self.anchors)

    def __iter__(self):
        return iter(self.anchors)

    @property
    def positions(self) -> np.ndarray:
        """(N, 3) array of anchor positions (read-only view)."""
        return self._positions

    def subset(self, count: int) -> "AnchorLayout":
        """The first ``count`` anchors (ablation studies sweep this).

        Corner layouts are ordered so that prefixes stay well spread:
        see :func:`corner_layout`.
        """
        if not MIN_ANCHORS_3D <= count <= len(self.anchors):
            raise ValueError(
                f"anchor count must be in [{MIN_ANCHORS_3D}, {len(self.anchors)}]"
            )
        return AnchorLayout(self.anchors[:count])

    def supports_3d(self) -> bool:
        """True when the layout can localize in 3-D (≥4 non-coplanar)."""
        if len(self.anchors) < MIN_ANCHORS_3D:
            return False
        pts = self.positions
        centered = pts - pts.mean(axis=0)
        return bool(np.linalg.matrix_rank(centered, tol=1e-9) >= 3)

    def range_mask(
        self, position: Sequence[float], max_range: float = LPS_RANGE_M
    ) -> np.ndarray:
        """Boolean mask of anchors within UWB range, one distance pass."""
        p = np.asarray(position, dtype=float)
        distances = np.sqrt(((self._positions - p) ** 2).sum(axis=1))
        return distances <= max_range

    def in_range(
        self, position: Sequence[float], max_range: float = LPS_RANGE_M
    ) -> List[Anchor]:
        """Anchors within UWB range of ``position``."""
        mask = self.range_mask(position, max_range)
        return [a for a, ok in zip(self.anchors, mask) if ok]


def corner_layout(volume: Cuboid) -> AnchorLayout:
    """One anchor per corner of ``volume`` (the demo's 8-anchor setup).

    Corners are ordered so every prefix is geometrically diverse: the
    first four form a tetrahedron (alternating corners), so
    ``layout.subset(k)`` remains usable for k from 4 to 8.
    """
    corners = volume.corners()
    # Alternating-corner order: indices whose bit-parity differs first.
    tetra = [0, 3, 5, 6]
    rest = [i for i in range(8) if i not in tetra]
    order = tetra + rest
    return AnchorLayout(
        [
            Anchor(anchor_id=i, position=tuple(corners[idx]))
            for i, idx in enumerate(order)
        ]
    )
