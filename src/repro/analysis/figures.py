"""Reproduction of every figure in the paper's evaluation.

Each ``figureN`` function regenerates the *data series* behind the
corresponding figure; rendering is left to
:mod:`repro.analysis.report` (ASCII) or any external plotting tool.

* Figure 5 — mean APs detected per Wi-Fi channel for each Crazyradio
  frequency setting (and radio off);
* Figure 6 — samples per UAV and scanned location;
* Figure 7 — histograms of samples per 0.5 m bin along x and y;
* Figure 8 — RMSE of each RSS predictor;
* campaign statistics — the §III-A in-text numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.predictors import (
    KnnRegressor,
    MeanPerMacBaseline,
    MlpRegressor,
    OrdinaryKrigingRegressor,
    Predictor,
    PerMacKnnRegressor,
    rmse,
)
from ..core.preprocessing import PreprocessConfig, preprocess
from ..link.crazyradio import Crazyradio, RadioConfig
from ..radio.scenarios import DemoScenario, build_demo_scenario
from ..radio.spectrum import WIFI_CHANNELS
from ..station.campaign import CampaignResult
from ..station.storage import SampleLog
from ..wifi.scanner import ChannelSweepScanner, ScanConfig
from .stats import Histogram, bin_by_axis

__all__ = [
    "Figure5Result",
    "figure5",
    "Figure6Result",
    "figure6",
    "Figure7Result",
    "figure7",
    "Figure8Result",
    "figure8",
    "CampaignStats",
    "campaign_stats",
    "PAPER_FIG8_RMSE",
]

#: The RMSE values the paper reports in Fig. 8 (dBm).
PAPER_FIG8_RMSE: Dict[str, float] = {
    "baseline-mean-per-mac": 4.8107,
    "knn-onehot3-k16": 4.4186,
    "neural-network": 4.4870,
}

#: Crazyradio frequencies swept in the paper's Fig. 5 experiment.
FIG5_FREQUENCIES_MHZ: Tuple[float, ...] = (
    2400.0,
    2425.0,
    2450.0,
    2475.0,
    2500.0,
    2525.0,
)


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
@dataclass
class Figure5Result:
    """Mean AP count per channel for each radio setting.

    ``series`` maps a setting label ("off" or "2450 MHz") to a dict of
    channel → mean detected APs over the scan repetitions.
    """

    series: Dict[str, Dict[int, float]]
    scans_per_setting: int

    def total(self, label: str) -> float:
        """Summed mean AP count across channels for one setting."""
        return float(sum(self.series[label].values()))

    def channels_with_detections(self) -> List[int]:
        """Channels detected under at least one setting (plot x-axis)."""
        seen = set()
        for counts in self.series.values():
            seen.update(c for c, v in counts.items() if v > 0)
        return sorted(seen)


def figure5(
    scenario: Optional[DemoScenario] = None,
    seed: int = 63,
    scans_per_setting: int = 3,
    scan_duration_s: float = 3.0,
    frequencies_mhz: Sequence[float] = FIG5_FREQUENCIES_MHZ,
    scan_config: Optional[ScanConfig] = None,
) -> Figure5Result:
    """Reproduce Fig. 5: the Crazyradio self-interference experiment.

    The UAV sits still; for each radio setting (off + each frequency)
    the ESP scans ``scans_per_setting`` times and mean per-channel AP
    counts are recorded.
    """
    if scenario is None:
        scenario = build_demo_scenario(seed=seed)
    environment = scenario.environment
    scanner = ChannelSweepScanner(environment, scan_config)
    rng = scenario.streams.get("figure5")
    position = scenario.flight_volume.center

    def run_setting() -> Dict[int, float]:
        sums = {c: 0.0 for c in WIFI_CHANNELS}
        for _ in range(scans_per_setting):
            report = scanner.scan(position, rng, duration_s=scan_duration_s)
            for channel in WIFI_CHANNELS:
                sums[channel] += report.count_on_channel(channel)
        return {c: sums[c] / scans_per_setting for c in WIFI_CHANNELS}

    series: Dict[str, Dict[int, float]] = {}
    environment.clear_interference()
    series["off"] = run_setting()
    radio = Crazyradio(environment, RadioConfig())
    for freq in frequencies_mhz:
        radio.set_frequency(freq)
        radio.turn_on()
        series[f"{freq:.0f} MHz"] = run_setting()
        radio.turn_off()
    return Figure5Result(series=series, scans_per_setting=scans_per_setting)


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
@dataclass
class Figure6Result:
    """Samples per UAV and scanned location."""

    #: uav name → list of (waypoint index, sample count, position).
    per_location: Dict[str, List[Tuple[int, int, Tuple[float, float, float]]]]

    def totals(self) -> Dict[str, int]:
        """uav name → total samples."""
        return {
            name: sum(count for _, count, _ in rows)
            for name, rows in self.per_location.items()
        }

    def counts(self, uav: str) -> List[int]:
        """Sample counts by waypoint order for one UAV."""
        rows = sorted(self.per_location[uav])
        return [count for _, count, _ in rows]


def figure6(campaign: CampaignResult) -> Figure6Result:
    """Reproduce Fig. 6 from a campaign result."""
    per_location: Dict[str, List[Tuple[int, int, Tuple[float, float, float]]]] = {}
    counts = campaign.log.samples_per_waypoint()
    positions: Dict[Tuple[str, int], Tuple[float, float, float]] = {}
    for sample in campaign.log:
        positions.setdefault(
            (sample.uav_name, sample.waypoint_index), sample.true_position
        )
    for (uav, waypoint), count in sorted(counts.items()):
        per_location.setdefault(uav, []).append(
            (waypoint, count, positions[(uav, waypoint)])
        )
    return Figure6Result(per_location=per_location)


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
@dataclass
class Figure7Result:
    """Histograms of samples per 0.5 m bin along x and y."""

    x_histogram: Histogram
    y_histogram: Histogram

    def increasing_in_x(self) -> bool:
        """Trend check: more samples in the +x half than the −x half."""
        return _half_split_trend(self.x_histogram) > 0

    def decreasing_in_y(self) -> bool:
        """Trend check: fewer samples in the +y half than the −y half."""
        return _half_split_trend(self.y_histogram) < 0


def _half_split_trend(hist: Histogram) -> float:
    """Upper-half minus lower-half sample mass.

    A half-split comparison is robust to the lattice/bin aliasing that a
    per-bin linear fit is sensitive to (a 0.5 m bin can contain one or
    two waypoint columns, or only hover-jitter spillover).
    """
    counts = hist.counts.astype(float)
    total = counts.sum()
    if total == 0:
        return 0.0
    midpoint = (hist.edges[0] + hist.edges[-1]) / 2.0
    upper = counts[hist.centers > midpoint].sum()
    lower = counts[hist.centers < midpoint].sum()
    return float(upper - lower)


def figure7(campaign: CampaignResult, bin_width_m: float = 0.5) -> Figure7Result:
    """Reproduce Fig. 7 from a campaign result."""
    positions = np.array([s.true_position for s in campaign.log])
    return Figure7Result(
        x_histogram=bin_by_axis(positions, axis=0, bin_width=bin_width_m),
        y_histogram=bin_by_axis(positions, axis=1, bin_width=bin_width_m),
    )


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
@dataclass
class Figure8Result:
    """RMSE of each evaluated predictor, paper values alongside."""

    rmse_dbm: Dict[str, float]
    paper_rmse_dbm: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_FIG8_RMSE)
    )
    preprocess_stats: Dict[str, int] = field(default_factory=dict)

    def best(self) -> Tuple[str, float]:
        """The winning estimator."""
        name = min(self.rmse_dbm, key=self.rmse_dbm.get)
        return name, self.rmse_dbm[name]

    def ladder_matches_paper(self) -> bool:
        """The paper's qualitative ordering:

        baseline worst; the scaled-one-hot k-NN best of the paper's
        estimators; the neural network in between.
        """
        r = self.rmse_dbm
        return (
            r["knn-onehot3-k16"] < r["neural-network"] < r["baseline-mean-per-mac"]
            and r["knn-base"] < r["baseline-mean-per-mac"]
        )


def default_fig8_models(seed: int = 3) -> Dict[str, Predictor]:
    """The paper's four estimator configurations plus the extension."""
    return {
        "baseline-mean-per-mac": MeanPerMacBaseline(),
        "knn-base": KnnRegressor(n_neighbors=3, weights="distance", p=2.0),
        "knn-onehot3-k16": KnnRegressor(
            n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0
        ),
        "knn-per-mac": PerMacKnnRegressor(n_neighbors=3, weights="distance", p=2.0),
        "neural-network": MlpRegressor(hidden_units=16, seed=seed, epochs=250),
        "ordinary-kriging": OrdinaryKrigingRegressor(n_neighbors=16),
    }


def figure8(
    log: SampleLog,
    models: Optional[Dict[str, Predictor]] = None,
    preprocess_config: Optional[PreprocessConfig] = None,
) -> Figure8Result:
    """Reproduce Fig. 8: preprocess, fit every model, score RMSE."""
    prep = preprocess(log, preprocess_config)
    models = models or default_fig8_models()
    scores: Dict[str, float] = {}
    for name, model in models.items():
        model.fit(prep.train)
        predictions = model.predict(prep.test)
        scores[name] = rmse(prep.test.rssi_dbm, predictions)
    return Figure8Result(
        rmse_dbm=scores,
        preprocess_stats={
            "retained": prep.retained_samples,
            "dropped_samples": prep.dropped_samples,
            "dropped_macs": prep.dropped_macs,
            "train": len(prep.train),
            "test": len(prep.test),
        },
    )


# ----------------------------------------------------------------------
# In-text campaign statistics
# ----------------------------------------------------------------------
@dataclass
class CampaignStats:
    """The §III-A in-text numbers, paper values alongside."""

    total_samples: int
    samples_by_uav: Dict[str, int]
    distinct_macs: int
    distinct_ssids: int
    mean_rss_dbm: float
    active_time_by_uav: Dict[str, float]

    PAPER = {
        "total_samples": 2696,
        "samples_uav_a": 1495,
        "samples_uav_b": 1201,
        "distinct_macs": 73,
        "distinct_ssids": 49,
        "mean_rss_dbm": -73.0,
        "active_time_a_s": 303.0,
        "active_time_b_s": 300.0,
    }


def campaign_stats(campaign: CampaignResult) -> CampaignStats:
    """Collect the §III-A statistics from a campaign result."""
    return CampaignStats(
        total_samples=len(campaign.log),
        samples_by_uav=campaign.samples_by_uav(),
        distinct_macs=len(campaign.log.macs()),
        distinct_ssids=len(campaign.log.ssids()),
        mean_rss_dbm=campaign.log.mean_rss_dbm(),
        active_time_by_uav={r.uav_name: r.active_time_s for r in campaign.reports},
    )
