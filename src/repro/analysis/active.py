"""Analysis of active-sampling campaigns: ground truth and comparisons.

Two jobs:

* score any fitted predictor's map against the simulator's *ground
  truth* (:meth:`IndoorEnvironment.mean_rss_dbm` — the long-term mean a
  perfect survey would converge to), which no real deployment can do
  but a reproduction should;
* compare an active campaign against the paper's fixed 72-waypoint
  lattice — the waypoints-to-target-RMSE curve the benchmark records
  and the CLI renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..radio.environment import IndoorEnvironment
from .report import table

__all__ = [
    "ground_truth_fields",
    "ground_truth_map_rmse",
    "ActiveComparison",
    "compare_to_fixed_lattice",
    "render_active_trajectory",
]


def ground_truth_fields(
    environment: IndoorEnvironment,
    macs: Sequence[str],
    points: np.ndarray,
    cache=None,
    cache_key: Optional[str] = None,
) -> Dict[str, np.ndarray]:
    """True mean RSS per MAC over the probe points.

    One batched :meth:`IndoorEnvironment.mean_rss_dbm_many` call: the
    wall set is crossed once for the whole (MAC, probe) block and the
    environment's wall-loss cache remembers the block, so scoring every
    round of a campaign against the same probes pays geometry once.
    Passing a precomputed result to :func:`ground_truth_map_rmse` is
    still worthwhile — it skips even the cache lookup.

    With a :class:`repro.radio.scenario_cache.ScenarioCache` (and a
    ``cache_key`` content-addressing the world + probe lattice, e.g.
    :func:`repro.radio.scenario_cache.scenario_digest`), the stacked
    ``(n_macs, n_points)`` field block goes through the cache's
    ``.npy`` tier — parallel scoring processes memory-map it instead
    of re-crossing the walls.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 3)
    macs = list(macs)
    if cache is not None and cache_key is not None:
        fields = cache.fields(
            cache_key,
            lambda: environment.mean_rss_dbm_many(macs, points),
        )
    else:
        fields = environment.mean_rss_dbm_many(macs, points)
    return {mac: fields[i] for i, mac in enumerate(macs)}


def ground_truth_map_rmse(
    predictor,
    vocabulary: Sequence[str],
    environment: IndoorEnvironment,
    macs: Sequence[str],
    points: np.ndarray,
    fallback_dbm: Optional[float] = None,
    truth: Optional[Dict[str, np.ndarray]] = None,
) -> float:
    """RMSE of a predictor's map against the environment's true mean RSS.

    Evaluates every MAC of ``macs`` at every probe point.  MACs the
    predictor never trained on (absent from ``vocabulary``) are charged
    at ``fallback_dbm`` — what an honest system would report without
    data; with ``fallback_dbm=None`` they are skipped instead, which
    flatters under-explored maps and is only appropriate when both
    sides of a comparison know every MAC.  Pass a precomputed
    :func:`ground_truth_fields` result as ``truth`` when scoring many
    maps against the same probes.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 3)
    if truth is None:
        truth = ground_truth_fields(environment, macs, points)
    index = {mac: i for i, mac in enumerate(vocabulary)}
    known = [mac for mac in macs if mac in index]
    predictions = {}
    if known:
        rows = predictor.predict_mac_grid(
            points, [index[mac] for mac in known]
        )
        predictions = dict(zip(known, rows))
    errors: List[np.ndarray] = []
    for mac in macs:
        if mac not in predictions and fallback_dbm is None:
            continue
        predicted = predictions.get(mac)
        if predicted is None:
            predicted = np.full(len(points), float(fallback_dbm))
        errors.append(predicted - truth[mac])
    if not errors:
        raise ValueError("no MAC could be evaluated")
    stacked = np.concatenate(errors)
    return float(np.sqrt(np.mean(stacked**2)))


@dataclass
class ActiveComparison:
    """Active campaign vs the fixed lattice, on equal ground truth."""

    #: Fixed-lattice reference: waypoints flown and its map RMSE.
    fixed_waypoints: int
    fixed_rmse_dbm: float
    #: Active learning curve: (waypoints flown, ground-truth RMSE).
    trajectory: List[Tuple[int, float]]

    @property
    def waypoints_to_match(self) -> Optional[int]:
        """Fewest active waypoints whose map is at least as good as the
        fixed lattice's (``None`` if never reached)."""
        for waypoints, rmse in self.trajectory:
            if rmse <= self.fixed_rmse_dbm:
                return waypoints
        return None

    @property
    def waypoint_savings_fraction(self) -> Optional[float]:
        """Fraction of the fixed lattice's flights saved at match."""
        matched = self.waypoints_to_match
        if matched is None:
            return None
        return 1.0 - matched / self.fixed_waypoints

    def summary(self) -> dict:
        """JSON-friendly record (the BENCH file's core payload)."""
        return {
            "fixed_waypoints": self.fixed_waypoints,
            "fixed_rmse_dbm": self.fixed_rmse_dbm,
            "trajectory": [
                {"waypoints": w, "rmse_dbm": r} for w, r in self.trajectory
            ],
            "waypoints_to_match": self.waypoints_to_match,
            "waypoint_savings_fraction": self.waypoint_savings_fraction,
        }


def compare_to_fixed_lattice(
    fixed_waypoints: int,
    fixed_rmse_dbm: float,
    trajectory: Sequence[Tuple[int, float]],
) -> ActiveComparison:
    """Bundle a measured active trajectory against the fixed reference."""
    return ActiveComparison(
        fixed_waypoints=int(fixed_waypoints),
        fixed_rmse_dbm=float(fixed_rmse_dbm),
        trajectory=[(int(w), float(r)) for w, r in trajectory],
    )


def render_active_trajectory(
    rounds,
    reference_rmse_dbm: Optional[float] = None,
) -> str:
    """ASCII learning curve of an active campaign.

    ``rounds`` is a sequence of :class:`~repro.station.active
    .ActiveRound`; pass the fixed lattice's RMSE as the reference to
    mark the first round that beats it.
    """
    headers = ["round", "waypoints", "samples", "holdout RMSE (dB)", "mean std (dB)"]
    rows = []
    matched = False
    for round_ in rounds:
        rmse = round_.holdout_rmse_dbm
        rmse_cell = "-" if rmse is None else f"{rmse:.3f}"
        if (
            not matched
            and reference_rmse_dbm is not None
            and rmse is not None
            and rmse <= reference_rmse_dbm
        ):
            rmse_cell += " <= fixed"
            matched = True
        std = round_.mean_candidate_uncertainty_db
        rows.append(
            [
                round_.round_index,
                round_.total_waypoints,
                round_.samples_ingested,
                rmse_cell,
                "-" if std is None else f"{std:.3f}",
            ]
        )
    return table(headers, rows)
