"""ASCII rendering of the reproduced figures and tables.

The benches print these so that a terminal run of the benchmark suite
shows the same series the paper plots.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "table", "render_figure5", "render_figure7", "render_figure8"]


def bar_chart(
    items: Mapping[str, float],
    width: int = 48,
    unit: str = "",
    precision: int = 2,
) -> str:
    """Horizontal ASCII bar chart, one row per item."""
    if not items:
        return "(empty)"
    max_value = max(max(items.values()), 1e-12)
    label_width = max(len(k) for k in items)
    lines = []
    for label, value in items.items():
        bar = "#" * int(round(width * value / max_value))
        lines.append(f"{label:<{label_width}} | {bar} {value:.{precision}f}{unit}")
    return "\n".join(lines)


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    out = []
    for r, row in enumerate(cells):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def render_figure5(result) -> str:
    """Fig. 5 as a table: rows = radio settings, columns = channels."""
    channels = result.channels_with_detections()
    headers = ["setting"] + [f"ch{c}" for c in channels] + ["total"]
    rows = []
    for label, counts in result.series.items():
        rows.append(
            [label]
            + [f"{counts.get(c, 0.0):.1f}" for c in channels]
            + [f"{sum(counts.values()):.1f}"]
        )
    return table(headers, rows)


def render_figure7(result) -> str:
    """Fig. 7 as two ASCII histograms."""
    out = ["samples per 0.5 m bin along x:"]
    x_edges = result.x_histogram.edges
    x_items = {
        f"[{x_edges[i]:.1f},{x_edges[i+1]:.1f})": float(c)
        for i, c in enumerate(result.x_histogram.counts)
    }
    out.append(bar_chart(x_items, precision=0))
    out.append("samples per 0.5 m bin along y:")
    y_edges = result.y_histogram.edges
    y_items = {
        f"[{y_edges[i]:.1f},{y_edges[i+1]:.1f})": float(c)
        for i, c in enumerate(result.y_histogram.counts)
    }
    out.append(bar_chart(y_items, precision=0))
    return "\n".join(out)


def render_figure8(result) -> str:
    """Fig. 8 as a bar chart plus the paper's reference values."""
    lines = [bar_chart(result.rmse_dbm, unit=" dBm", precision=4)]
    lines.append("")
    lines.append("paper reference values:")
    for name, value in result.paper_rmse_dbm.items():
        lines.append(f"  {name}: {value:.4f} dBm")
    return "\n".join(lines)
