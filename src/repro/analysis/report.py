"""ASCII rendering of the reproduced figures, tables and sweep reports.

The benches print these so that a terminal run of the benchmark suite
shows the same series the paper plots.  The sweep-report half
(:func:`artifact_rows`, :func:`group_stats`, :func:`render_sweep_report`)
is the raw→CSV→figures stage behind ``repro report``: it aggregates the
provenance sidecars of an :class:`~repro.serve.ArtifactStore` into tidy
rows — no artifact tensors are loaded and nothing is re-simulated.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "bar_chart",
    "table",
    "render_figure5",
    "render_figure7",
    "render_figure8",
    "SWEEP_COLUMNS",
    "artifact_rows",
    "group_stats",
    "stage_stats",
    "render_sweep_report",
]


def bar_chart(
    items: Mapping[str, float],
    width: int = 48,
    unit: str = "",
    precision: int = 2,
) -> str:
    """Horizontal ASCII bar chart, one row per item."""
    if not items:
        return "(empty)"
    max_value = max(max(items.values()), 1e-12)
    label_width = max(len(k) for k in items)
    lines = []
    for label, value in items.items():
        bar = "#" * int(round(width * value / max_value))
        lines.append(f"{label:<{label_width}} | {bar} {value:.{precision}f}{unit}")
    return "\n".join(lines)


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    out = []
    for r, row in enumerate(cells):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


#: Tidy-row column order of :func:`artifact_rows` (and the CSV header).
SWEEP_COLUMNS = (
    "digest",
    "scenario",
    "seed",
    "predictor",
    "acquisition",
    "resolution_m",
    "dtype",
    "samples",
    "retained_samples",
    "test_rmse_dbm",
    "n_macs",
    "wall_time_s",
)


def artifact_rows(records: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    """Tidy rows (one dict per artifact) from store sidecar records.

    ``records`` is what :meth:`~repro.serve.ArtifactStore.list` returns;
    each row carries the :data:`SWEEP_COLUMNS` drawn from the sidecar's
    spec and provenance — everything the report stage needs without
    loading a single tensor.  Rows come back sorted by
    (scenario, predictor, acquisition, resolution, seed, digest) so
    CSV output is deterministic regardless of store iteration order.
    """
    rows = []
    for record in records:
        spec = record.get("spec", {})
        provenance = record.get("provenance", {})
        rows.append(
            {
                "digest": record.get("digest", ""),
                "scenario": spec.get("scenario", ""),
                "seed": spec.get("seed"),
                "predictor": spec.get("predictor", ""),
                "acquisition": spec.get("acquisition", ""),
                "resolution_m": spec.get("resolution_m"),
                "dtype": record.get("dtype", ""),
                "samples": provenance.get("samples"),
                "retained_samples": provenance.get("retained_samples"),
                "test_rmse_dbm": provenance.get("test_rmse_dbm"),
                "n_macs": provenance.get("n_macs"),
                "wall_time_s": provenance.get("wall_time_s"),
            }
        )
    rows.sort(
        key=lambda r: (
            str(r["scenario"]),
            str(r["predictor"]),
            str(r["acquisition"]),
            float(r["resolution_m"] or 0.0),
            int(r["seed"] or 0),
            str(r["digest"]),
        )
    )
    return rows


def group_stats(
    rows: Sequence[Mapping[str, object]],
    by: str,
    value: str = "test_rmse_dbm",
) -> Dict[str, Dict[str, float]]:
    """Mean/std/min/max/n of ``value`` grouped by the ``by`` column.

    Rows whose ``value`` is missing (``None``) are dropped from their
    group; a group with no usable rows is omitted entirely.  Groups
    come back sorted by key.
    """
    groups: Dict[str, List[float]] = {}
    for row in rows:
        raw = row.get(value)
        if raw is None:
            continue
        groups.setdefault(str(row.get(by, "")), []).append(float(raw))
    stats = {}
    for key in sorted(groups):
        values = groups[key]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        stats[key] = {
            "mean": mean,
            "std": math.sqrt(var),
            "min": min(values),
            "max": max(values),
            "n": float(len(values)),
        }
    return stats


def stage_stats(
    records: Sequence[Mapping[str, object]],
) -> Dict[str, Dict[str, float]]:
    """Aggregate per-stage build wall times across store sidecars.

    Sums the ``provenance["stage_wall_s"]`` breakdowns that
    :func:`repro.serve.jobs.run_job` records (scenario / campaign /
    preprocess / fit / rem / uncertainty, via
    :class:`repro.perf.StageTimer`) into ``{stage: {total_s, mean_s,
    n}}``, sorted by descending total.  Artifacts built before the
    breakdown existed are skipped; an empty dict means no record
    carries one.
    """
    totals: Dict[str, List[float]] = {}
    for record in records:
        provenance = record.get("provenance", {})
        breakdown = provenance.get("stage_wall_s")
        if not isinstance(breakdown, Mapping):
            continue
        for stage, seconds in breakdown.items():
            totals.setdefault(str(stage), []).append(float(seconds))
    stats = {
        stage: {
            "total_s": sum(values),
            "mean_s": sum(values) / len(values),
            "n": float(len(values)),
        }
        for stage, values in totals.items()
    }
    return dict(
        sorted(stats.items(), key=lambda kv: -kv[1]["total_s"])
    )


def render_sweep_report(
    rows: Sequence[Mapping[str, object]],
    by: str = "predictor",
    value: str = "test_rmse_dbm",
    title: Optional[str] = None,
) -> str:
    """Markdown sweep report: stats table plus an ASCII mean-value chart.

    This is the "figures" stage of raw→CSV→figures: ``rows`` are tidy
    :func:`artifact_rows`, the rendered report groups them by ``by``
    (predictor-vs-RMSE in the default configuration).
    """
    heading = title or f"Sweep report — {value} by {by}"
    lines = [f"# {heading}", ""]
    lines.append(f"{len(rows)} artifact(s)")
    lines.append("")
    stats = group_stats(rows, by=by, value=value)
    if not stats:
        lines.append(f"(no rows carry {value!r})")
        return "\n".join(lines)
    lines.append("```")
    lines.append(
        table(
            [by, "n", "mean", "std", "min", "max"],
            [
                [
                    key,
                    int(s["n"]),
                    f"{s['mean']:.4f}",
                    f"{s['std']:.4f}",
                    f"{s['min']:.4f}",
                    f"{s['max']:.4f}",
                ]
                for key, s in stats.items()
            ],
        )
    )
    lines.append("```")
    lines.append("")
    lines.append(f"mean {value} by {by}:")
    lines.append("")
    lines.append("```")
    lines.append(
        bar_chart({key: s["mean"] for key, s in stats.items()}, precision=4)
    )
    lines.append("```")
    return "\n".join(lines)


def render_figure5(result) -> str:
    """Fig. 5 as a table: rows = radio settings, columns = channels."""
    channels = result.channels_with_detections()
    headers = ["setting"] + [f"ch{c}" for c in channels] + ["total"]
    rows = []
    for label, counts in result.series.items():
        rows.append(
            [label]
            + [f"{counts.get(c, 0.0):.1f}" for c in channels]
            + [f"{sum(counts.values()):.1f}"]
        )
    return table(headers, rows)


def render_figure7(result) -> str:
    """Fig. 7 as two ASCII histograms."""
    out = ["samples per 0.5 m bin along x:"]
    x_edges = result.x_histogram.edges
    x_items = {
        f"[{x_edges[i]:.1f},{x_edges[i+1]:.1f})": float(c)
        for i, c in enumerate(result.x_histogram.counts)
    }
    out.append(bar_chart(x_items, precision=0))
    out.append("samples per 0.5 m bin along y:")
    y_edges = result.y_histogram.edges
    y_items = {
        f"[{y_edges[i]:.1f},{y_edges[i+1]:.1f})": float(c)
        for i, c in enumerate(result.y_histogram.counts)
    }
    out.append(bar_chart(y_items, precision=0))
    return "\n".join(out)


def render_figure8(result) -> str:
    """Fig. 8 as a bar chart plus the paper's reference values."""
    lines = [bar_chart(result.rmse_dbm, unit=" dBm", precision=4)]
    lines.append("")
    lines.append("paper reference values:")
    for name, value in result.paper_rmse_dbm.items():
        lines.append(f"  {name}: {value:.4f} dBm")
    return "\n".join(lines)
