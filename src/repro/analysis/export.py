"""Machine-readable export of the reproduced figure data.

ASCII rendering (:mod:`repro.analysis.report`) is for terminals; these
exporters emit the same series as JSON/CSV so external tooling (the
user's own plotting stack) can regenerate publication-grade figures.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Sequence

from .figures import (
    CampaignStats,
    Figure5Result,
    Figure6Result,
    Figure7Result,
    Figure8Result,
)

__all__ = [
    "figure5_to_dict",
    "figure6_to_dict",
    "figure7_to_dict",
    "figure8_to_dict",
    "campaign_stats_to_dict",
    "save_json",
    "save_csv_rows",
]


def figure5_to_dict(result: Figure5Result) -> Dict:
    """Fig. 5 series as a JSON-ready dict."""
    return {
        "figure": 5,
        "scans_per_setting": result.scans_per_setting,
        "series": {
            label: {str(channel): count for channel, count in counts.items()}
            for label, counts in result.series.items()
        },
    }


def figure6_to_dict(result: Figure6Result) -> Dict:
    """Fig. 6 series as a JSON-ready dict."""
    return {
        "figure": 6,
        "per_location": {
            uav: [
                {
                    "waypoint": waypoint,
                    "samples": count,
                    "position": list(position),
                }
                for waypoint, count, position in sorted(rows)
            ]
            for uav, rows in result.per_location.items()
        },
        "totals": result.totals(),
    }


def figure7_to_dict(result: Figure7Result) -> Dict:
    """Fig. 7 histograms as a JSON-ready dict."""
    return {
        "figure": 7,
        "x_histogram": result.x_histogram.as_dict(),
        "y_histogram": result.y_histogram.as_dict(),
        "increasing_in_x": result.increasing_in_x(),
        "decreasing_in_y": result.decreasing_in_y(),
    }


def figure8_to_dict(result: Figure8Result) -> Dict:
    """Fig. 8 RMSE ladder as a JSON-ready dict."""
    return {
        "figure": 8,
        "rmse_dbm": dict(result.rmse_dbm),
        "paper_rmse_dbm": dict(result.paper_rmse_dbm),
        "preprocess": dict(result.preprocess_stats),
        "ladder_matches_paper": result.ladder_matches_paper(),
    }


def campaign_stats_to_dict(stats: CampaignStats) -> Dict:
    """§III-A statistics as a JSON-ready dict, paper values alongside."""
    return {
        "measured": {
            "total_samples": stats.total_samples,
            "samples_by_uav": dict(stats.samples_by_uav),
            "distinct_macs": stats.distinct_macs,
            "distinct_ssids": stats.distinct_ssids,
            "mean_rss_dbm": stats.mean_rss_dbm,
            "active_time_by_uav_s": dict(stats.active_time_by_uav),
        },
        "paper": dict(CampaignStats.PAPER),
    }


def save_json(data: Dict, path) -> Path:
    """Write a dict as pretty JSON; returns the path."""
    target = Path(path)
    with open(target, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return target


def save_csv_rows(headers: Sequence[str], rows: Sequence[Sequence], path) -> Path:
    """Write rows as CSV; returns the path."""
    target = Path(path)
    with open(target, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return target
