"""Binning and descriptive statistics shared by the figure builders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["Histogram", "histogram", "bin_by_axis"]


@dataclass
class Histogram:
    """A 1-D histogram with explicit bin edges."""

    edges: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.counts) + 1:
            raise ValueError("edges must be one longer than counts")

    @property
    def centers(self) -> np.ndarray:
        """Bin centers."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def total(self) -> int:
        """Sum of counts."""
        return int(self.counts.sum())

    def as_dict(self) -> Dict[str, List[float]]:
        """JSON-friendly representation."""
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
        }


def histogram(
    values: Sequence[float], bin_width: float, start: float = 0.0
) -> Histogram:
    """Fixed-width histogram starting at ``start`` (paper: 0.5 m bins)."""
    if bin_width <= 0:
        raise ValueError(f"bin width must be positive, got {bin_width}")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return Histogram(
            edges=np.array([start, start + bin_width]), counts=np.array([0])
        )
    n_bins = int(np.ceil((data.max() - start) / bin_width)) or 1
    edges = start + bin_width * np.arange(n_bins + 1)
    counts, _ = np.histogram(data, bins=edges)
    return Histogram(edges=edges, counts=counts)


def bin_by_axis(
    positions: np.ndarray, axis: int, bin_width: float = 0.5, start: float = 0.0
) -> Histogram:
    """Histogram of sample positions along one axis (Fig. 7)."""
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"expected (N, 3) positions, got {pts.shape}")
    return histogram(pts[:, axis], bin_width=bin_width, start=start)
