"""Figure reproduction and reporting.

One builder per paper figure (5-8) plus the in-text campaign
statistics, and ASCII renderers for terminal-friendly output.
"""

from .active import (
    ActiveComparison,
    compare_to_fixed_lattice,
    ground_truth_fields,
    ground_truth_map_rmse,
    render_active_trajectory,
)
from .figures import (
    FIG5_FREQUENCIES_MHZ,
    PAPER_FIG8_RMSE,
    CampaignStats,
    Figure5Result,
    Figure6Result,
    Figure7Result,
    Figure8Result,
    campaign_stats,
    default_fig8_models,
    figure5,
    figure6,
    figure7,
    figure8,
)
from .export import (
    campaign_stats_to_dict,
    figure5_to_dict,
    figure6_to_dict,
    figure7_to_dict,
    figure8_to_dict,
    save_csv_rows,
    save_json,
)
from .report import (
    SWEEP_COLUMNS,
    artifact_rows,
    bar_chart,
    group_stats,
    render_figure5,
    render_figure7,
    render_figure8,
    render_sweep_report,
    stage_stats,
    table,
)
from .stats import Histogram, bin_by_axis, histogram

__all__ = [
    "ActiveComparison",
    "compare_to_fixed_lattice",
    "ground_truth_fields",
    "ground_truth_map_rmse",
    "render_active_trajectory",
    "FIG5_FREQUENCIES_MHZ",
    "PAPER_FIG8_RMSE",
    "CampaignStats",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "campaign_stats",
    "default_fig8_models",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "bar_chart",
    "SWEEP_COLUMNS",
    "artifact_rows",
    "group_stats",
    "stage_stats",
    "render_sweep_report",
    "render_figure5",
    "render_figure7",
    "render_figure8",
    "table",
    "campaign_stats_to_dict",
    "figure5_to_dict",
    "figure6_to_dict",
    "figure7_to_dict",
    "figure8_to_dict",
    "save_csv_rows",
    "save_json",
    "Histogram",
    "bin_by_axis",
    "histogram",
]
