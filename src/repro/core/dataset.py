"""The ML-facing dataset: numeric views over a campaign sample log.

:class:`REMDataset` converts a :class:`repro.station.SampleLog` into
aligned numpy arrays (positions, MAC indices, channels, RSS targets)
and provides the feature encodings the paper's estimators consume —
coordinates plus one-hot encoded MAC addresses (optionally scaled, the
paper's "multiplied by the factor of 3" trick).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = ["REMDataset"]


@dataclass
class REMDataset:
    """Aligned numeric arrays for RSS regression.

    Attributes
    ----------
    positions:
        (N, 3) sample locations (the UWB-annotated estimates).
    mac_indices:
        (N,) integer MAC index into :attr:`mac_vocabulary`.
    channels:
        (N,) Wi-Fi channel of each observation.
    rssi_dbm:
        (N,) regression targets.
    mac_vocabulary:
        Sorted distinct MAC addresses; defines the one-hot layout.
    """

    positions: np.ndarray
    mac_indices: np.ndarray
    channels: np.ndarray
    rssi_dbm: np.ndarray
    mac_vocabulary: Tuple[str, ...]

    def __post_init__(self) -> None:
        n = len(self.rssi_dbm)
        if not (
            self.positions.shape == (n, 3)
            and self.mac_indices.shape == (n,)
            and self.channels.shape == (n,)
        ):
            raise ValueError("misaligned dataset arrays")
        if n and int(self.mac_indices.max()) >= len(self.mac_vocabulary):
            raise ValueError("mac index out of vocabulary range")

    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, samples: Iterable) -> "REMDataset":
        """Build from an iterable of :class:`repro.station.Sample`."""
        samples = list(samples)
        vocabulary = tuple(sorted({s.mac for s in samples}))
        index = {mac: i for i, mac in enumerate(vocabulary)}
        n = len(samples)
        positions = np.zeros((n, 3))
        mac_indices = np.zeros(n, dtype=int)
        channels = np.zeros(n, dtype=int)
        rssi = np.zeros(n)
        for i, s in enumerate(samples):
            positions[i] = s.position
            mac_indices[i] = index[s.mac]
            channels[i] = s.channel
            rssi[i] = s.rssi_dbm
        return cls(
            positions=positions,
            mac_indices=mac_indices,
            channels=channels,
            rssi_dbm=rssi,
            mac_vocabulary=vocabulary,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rssi_dbm)

    @property
    def n_macs(self) -> int:
        """Vocabulary size."""
        return len(self.mac_vocabulary)

    def subset(self, indices: Sequence[int]) -> "REMDataset":
        """Row-subset view (keeps the full MAC vocabulary)."""
        idx = np.asarray(indices, dtype=int)
        return REMDataset(
            positions=self.positions[idx],
            mac_indices=self.mac_indices[idx],
            channels=self.channels[idx],
            rssi_dbm=self.rssi_dbm[idx],
            mac_vocabulary=self.mac_vocabulary,
        )

    def samples_per_mac(self) -> Dict[str, int]:
        """MAC address → observation count."""
        counts = np.bincount(self.mac_indices, minlength=self.n_macs)
        return {mac: int(counts[i]) for i, mac in enumerate(self.mac_vocabulary)}

    # ------------------------------------------------------------------
    # feature encodings
    # ------------------------------------------------------------------
    def mac_onehot(self, scale: float = 1.0) -> np.ndarray:
        """(N, n_macs) one-hot MAC encoding, optionally scaled.

        Scaling by ``s`` makes two samples with different MACs at least
        ``s * sqrt(2)`` apart in feature space — the paper's factor-3
        variant of the k-NN regressor.
        """
        onehot = np.zeros((len(self), self.n_macs))
        onehot[np.arange(len(self)), self.mac_indices] = scale
        return onehot

    def features(self, onehot_scale: float = 1.0) -> np.ndarray:
        """The paper's k-NN feature matrix: [x, y, z, one-hot(MAC)]."""
        return np.hstack([self.positions, self.mac_onehot(onehot_scale)])

    def channel_onehot(self) -> np.ndarray:
        """(N, 13) one-hot channel encoding (channels 1-13)."""
        onehot = np.zeros((len(self), 13))
        onehot[np.arange(len(self)), self.channels - 1] = 1.0
        return onehot
