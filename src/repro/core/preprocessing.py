"""The §III-B preprocessing pipeline.

Steps, exactly as the paper describes them:

1. group readings by MAC address (SSIDs are shared between devices and
   are therefore not used as keys);
2. discard timestamps (the campaign spans < 10 minutes);
3. drop MACs with fewer than 16 samples — the goal is predicting RSS
   of APs with a sufficient number of measurements (the paper retains
   2565 of 2696 samples at this step);
4. treat MAC (and channel) as categorical, one-hot encoded;
5. split 75 % / 25 % into training and test sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .dataset import REMDataset

__all__ = ["PreprocessConfig", "PreprocessResult", "preprocess", "train_test_split"]


@dataclass(frozen=True)
class PreprocessConfig:
    """Tunables of the preprocessing pipeline (paper defaults)."""

    min_samples_per_mac: int = 16
    test_fraction: float = 0.25
    split_seed: int = 7


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    dataset: REMDataset
    train: REMDataset
    test: REMDataset
    dropped_samples: int
    dropped_macs: int

    @property
    def retained_samples(self) -> int:
        """Samples surviving the per-MAC threshold."""
        return len(self.dataset)


def train_test_split(
    dataset: REMDataset, test_fraction: float, seed: int
) -> Tuple[REMDataset, REMDataset]:
    """Random (seeded) row split into train and test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test fraction must be in (0,1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    order = rng.permutation(n)
    n_test = int(round(n * test_fraction))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)


def preprocess(
    samples, config: Optional[PreprocessConfig] = None
) -> PreprocessResult:
    """Run the paper's preprocessing over raw campaign samples.

    ``samples`` is any iterable of :class:`repro.station.Sample` (e.g. a
    :class:`repro.station.SampleLog`).
    """
    config = config or PreprocessConfig()
    samples = list(samples)
    counts: Dict[str, int] = {}
    for s in samples:
        counts[s.mac] = counts.get(s.mac, 0) + 1
    keep_macs = {mac for mac, c in counts.items() if c >= config.min_samples_per_mac}
    kept = [s for s in samples if s.mac in keep_macs]
    dataset = REMDataset.from_samples(kept)
    train, test = train_test_split(dataset, config.test_fraction, config.split_seed)
    return PreprocessResult(
        dataset=dataset,
        train=train,
        test=test,
        dropped_samples=len(samples) - len(kept),
        dropped_macs=len(counts) - len(keep_macs),
    )
