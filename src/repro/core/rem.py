"""The Radio Environmental Map: the toolchain's end product.

A :class:`RadioEnvironmentMap` holds, for every AP of interest, a 3-D
lattice of predicted RSS over the mapped volume.  It supports the uses
the paper motivates in its introduction:

* point queries (trilinear interpolation) for e.g. fingerprinting
  databases or relay placement;
* per-AP coverage fractions;
* "dark region" extraction — sub-volumes where *no* AP exceeds a
  service threshold, i.e. where the operator should add an AP (§I).

Internally all per-AP fields live in one stacked ``(n_macs, nx, ny,
nz)`` tensor, so every consumer-facing operation — :meth:`query_many`,
:meth:`strongest_ap_many`, the coverage and dark-region reductions —
is a vectorized reduction over that tensor rather than a per-point
Python loop.  :func:`build_rem` fills the tensor with **one** batched
predictor call (:meth:`Predictor.predict_mac_grid`) instead of one
full lattice pass per MAC.

Maps serialize to plain dicts (JSON-compatible) for archival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..radio.geometry import Cuboid
from .dataset import REMDataset
from .predictors.base import Predictor

__all__ = ["RemGrid", "RadioEnvironmentMap", "build_rem", "build_uncertainty_rem"]


@dataclass(frozen=True)
class RemGrid:
    """The lattice geometry of a REM."""

    volume: Cuboid
    resolution_m: float

    def __post_init__(self) -> None:
        if self.resolution_m <= 0:
            raise ValueError(f"resolution must be positive, got {self.resolution_m}")

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Lattice dimensions (nx, ny, nz), always >= 2 per axis."""
        size = self.volume.size
        return tuple(
            max(2, int(round(s / self.resolution_m)) + 1) for s in size
        )  # type: ignore[return-value]

    @property
    def n_points(self) -> int:
        """Total number of lattice points."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    def axes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis coordinate vectors (cached — the grid is frozen)."""
        cached = getattr(self, "_axes_cache", None)
        if cached is None:
            lo = np.asarray(self.volume.min_corner, dtype=float)
            hi = np.asarray(self.volume.max_corner, dtype=float)
            nx, ny, nz = self.shape
            cached = (
                np.linspace(lo[0], hi[0], nx),
                np.linspace(lo[1], hi[1], ny),
                np.linspace(lo[2], hi[2], nz),
            )
            object.__setattr__(self, "_axes_cache", cached)
        return cached

    def lerp_params(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Cached interpolation constants ``(lo, step, top, degenerate)``.

        The lattice is a uniform linspace per axis, so a query point's
        cell index is plain arithmetic — ``(x - lo) / step`` — instead
        of a per-axis ``searchsorted``.  ``top`` is the largest valid
        cell index per axis and ``degenerate`` marks zero-extent axes
        (``None`` when there are none, the overwhelmingly common case).
        """
        cached = getattr(self, "_lerp_cache", None)
        if cached is None:
            lo = np.asarray(self.volume.min_corner, dtype=float)
            hi = np.asarray(self.volume.max_corner, dtype=float)
            n = np.asarray(self.shape)
            step = (hi - lo) / (n - 1)
            degenerate = step == 0
            cached = (
                lo,
                np.where(degenerate, 1.0, step),
                n - 2,
                degenerate if degenerate.any() else None,
            )
            object.__setattr__(self, "_lerp_cache", cached)
        return cached

    def points(self) -> np.ndarray:
        """All lattice points as an (N, 3) array (x fastest to slowest)."""
        ax, ay, az = self.axes()
        xs, ys, zs = np.meshgrid(ax, ay, az, indexing="ij")
        return np.column_stack([xs.ravel(), ys.ravel(), zs.ravel()])


class RadioEnvironmentMap:
    """Per-AP predicted RSS over a 3-D lattice, stored as one tensor.

    Fields of individual APs may be filled incrementally with
    :meth:`set_field` or in bulk with :meth:`set_fields`; :attr:`macs`
    lists the APs whose fields are present, in vocabulary order.
    """

    def __init__(self, grid: RemGrid, mac_vocabulary: Sequence[str]):
        self.grid = grid
        self.mac_vocabulary: Tuple[str, ...] = tuple(mac_vocabulary)
        self._index: Dict[str, int] = {
            mac: i for i, mac in enumerate(self.mac_vocabulary)
        }
        # The stack holds one row per *stored* field (not per vocabulary
        # entry — vocabularies can be much wider than the mapped subset).
        self._stack = np.empty((0,) + grid.shape)
        self._row_of: Dict[str, int] = {}
        #: Lazy caches for the serving hot path, invalidated by the
        #: field setters: (identity, rows) for the every-AP query and
        #: the sorted present-MAC tuple.
        self._rows_cache: Optional[Tuple[bool, np.ndarray]] = None
        self._macs_cache: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    def set_field(self, mac: str, values: np.ndarray) -> None:
        """Store the lattice field for one AP (shape must match grid)."""
        if mac not in self._index:
            raise KeyError(f"unknown MAC {mac!r}")
        expected = self.grid.shape
        if values.shape != expected:
            raise ValueError(f"field shape {values.shape} != grid shape {expected}")
        self._rows_cache = None
        self._macs_cache = None
        row = self._row_of.get(mac)
        if row is None:
            self._row_of[mac] = len(self._stack)
            self._stack = np.concatenate(
                [self._stack, values[None].astype(float)], axis=0
            )
        else:
            self._stack[row] = values.astype(float)

    def set_fields(self, macs: Sequence[str], tensor: np.ndarray) -> None:
        """Bulk store: ``tensor`` is ``(len(macs), nx, ny, nz)``."""
        expected = (len(macs),) + self.grid.shape
        if tensor.shape != expected:
            raise ValueError(f"tensor shape {tensor.shape} != expected {expected}")
        for mac in macs:
            if mac not in self._index:
                raise KeyError(f"unknown MAC {mac!r}")
        self._rows_cache = None
        self._macs_cache = None
        fresh = [mac for mac in macs if mac not in self._row_of]
        if len(fresh) == len(macs) and len(set(macs)) == len(macs):
            # Common case (build_rem): one allocation for the whole batch.
            for offset, mac in enumerate(macs):
                self._row_of[mac] = len(self._stack) + offset
            self._stack = np.concatenate(
                [self._stack, tensor.astype(float)], axis=0
            )
        else:
            for mac, values in zip(macs, tensor):
                self.set_field(mac, values)

    @classmethod
    def from_stack(
        cls,
        grid: RemGrid,
        mac_vocabulary: Sequence[str],
        macs: Sequence[str],
        stack: np.ndarray,
    ) -> "RadioEnvironmentMap":
        """Wrap an existing ``(len(macs), nx, ny, nz)`` tensor, no copy.

        Unlike :meth:`set_fields` — which casts to float64 and copies —
        this attaches ``stack`` as the backing tensor verbatim, so a
        memory-mapped array (``np.load(mmap_mode="r")``) stays a map:
        N serving processes share one page-cache copy of the artifact
        instead of N private heap copies.  The stack's dtype (float64
        or float32 artifacts) is preserved.
        """
        rem = cls(grid, mac_vocabulary)
        expected = (len(macs),) + grid.shape
        if stack.shape != expected:
            raise ValueError(f"stack shape {stack.shape} != expected {expected}")
        for row, mac in enumerate(macs):
            if mac not in rem._index:
                raise KeyError(f"unknown MAC {mac!r}")
            rem._row_of[mac] = row
        if len(rem._row_of) != len(macs):
            raise ValueError("duplicate MACs in stack")
        rem._stack = stack
        return rem

    def astype(self, dtype) -> "RadioEnvironmentMap":
        """A copy of this map with the field tensor cast to ``dtype``."""
        macs = self.macs
        return RadioEnvironmentMap.from_stack(
            self.grid,
            self.mac_vocabulary,
            macs,
            self.field_tensor(macs).astype(dtype),
        )

    def field(self, mac: str) -> np.ndarray:
        """The (nx, ny, nz) RSS lattice of one AP (read-only view).

        The view is marked non-writeable because storing another field
        may reallocate the backing tensor, which would silently detach
        in-place writes; use :meth:`set_field` to replace a field.
        """
        row = self._row_of.get(mac)
        if row is None:
            raise KeyError(mac)
        view = self._stack[row]
        view.flags.writeable = False
        return view

    def field_tensor(
        self, macs: Optional[Sequence[str]] = None
    ) -> np.ndarray:
        """The stacked ``(M, nx, ny, nz)`` tensor over ``macs``.

        Defaults to every present AP in vocabulary order.
        """
        rows = self._rows(macs)
        return self._stack[rows]

    @property
    def macs(self) -> Tuple[str, ...]:
        """APs with stored fields, in vocabulary order (cached)."""
        cached = self._macs_cache
        if cached is None:
            cached = self._macs_cache = tuple(
                sorted(self._row_of, key=self._index.__getitem__)
            )
        return cached

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the backing field tensor (float64 or float32)."""
        return self._stack.dtype

    def _rows(self, macs: Optional[Sequence[str]]) -> np.ndarray:
        """Stack rows for the requested (or all present) MACs."""
        if macs is None:
            macs = self.macs
        rows = []
        for mac in macs:
            row = self._row_of.get(mac)
            if row is None:
                raise KeyError(mac)
            rows.append(row)
        return np.asarray(rows, dtype=int)

    def _all_rows(self) -> Tuple[bool, np.ndarray]:
        """Cached ``(identity, rows)`` for the every-AP query path.

        ``identity`` is True when the stored rows already sit in
        vocabulary order (the overwhelmingly common layout), letting
        :meth:`query_many` skip both the per-call sort in :attr:`macs`
        and the whole-tensor gather.  Invalidated by the field setters.
        """
        cached = self._rows_cache
        if cached is None:
            rows = self._rows(None)
            identity = len(rows) == len(self._stack) and np.array_equal(
                rows, np.arange(len(rows))
            )
            cached = self._rows_cache = (identity, rows)
        return cached

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, position: Sequence[float], mac: str) -> float:
        """Trilinearly interpolated RSS of ``mac`` at ``position``."""
        return float(self.query_many([position], [mac])[0, 0])

    def query_many(
        self,
        positions: Union[np.ndarray, Sequence[Sequence[float]]],
        macs: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Trilinear interpolation of many positions against many APs.

        Returns an ``(N, M)`` array — one row per position, one column
        per MAC (all present APs when ``macs`` is omitted).  Positions
        outside the mapped volume are clipped onto its boundary, like
        the scalar query always did.
        """
        # The fancy-index gather would duplicate the whole tensor per
        # call — and materialize mmap-backed stacks, defeating
        # cross-process page sharing — so use the stack as-is whenever
        # the requested rows are already everything, in order.
        if macs is None:
            identity, rows = self._all_rows()
        else:
            rows = self._rows(macs)
            identity = len(rows) == len(self._stack) and np.array_equal(
                rows, np.arange(len(rows))
            )
        stack = self._stack if identity else self._stack[rows]
        pts = np.asarray(positions, dtype=float).reshape(-1, 3)

        # Cell index and in-cell fraction per axis, by arithmetic on the
        # uniform lattice (no per-axis searchsorted).  Truncation toward
        # zero equals floor after the clip: out-of-volume points land on
        # the boundary with fraction 0 or 1, exactly like the legacy
        # clipping behavior.
        lo, step, top, degenerate = self.grid.lerp_params()
        t = (pts - lo) / step
        cell = np.clip(t.astype(np.intp), 0, top)
        frac = np.clip(t - cell, 0.0, 1.0)
        if degenerate is not None:
            frac = np.where(degenerate, 0.0, frac)

        # Blend the 8 cell corners for every (mac, point) pair as one
        # flat gather + weight contraction: separate per-corner
        # fancy-index passes cost ~8x the fixed numpy dispatch
        # overhead, which dominates small (single-point) queries on the
        # serving path.
        _, ny, nz = stack.shape[1:]
        base = (cell[:, 0] * ny + cell[:, 1]) * nz + cell[:, 2]
        offsets = np.array(
            [0, 1, nz, nz + 1, ny * nz, ny * nz + 1, ny * nz + nz, ny * nz + nz + 1]
        )
        remainder = 1.0 - frac
        wx = np.stack([remainder[:, 0], frac[:, 0]])
        wy = np.stack([remainder[:, 1], frac[:, 1]])
        wz = np.stack([remainder[:, 2], frac[:, 2]])
        weights = (
            wx[:, None, None] * wy[None, :, None] * wz[None, None, :]
        ).reshape(8, -1)
        corners = stack.reshape(stack.shape[0], -1)[:, base + offsets[:, None]]
        return (corners * weights).sum(axis=1).T

    def strongest_ap(self, position: Sequence[float]) -> Tuple[str, float]:
        """The best-serving AP and its RSS at ``position``."""
        macs, rss = self.strongest_ap_many([position])
        return macs[0], float(rss[0])

    def strongest_ap_many(
        self, positions: Union[np.ndarray, Sequence[Sequence[float]]]
    ) -> Tuple[List[str], np.ndarray]:
        """Best-serving AP and RSS for every position.

        Returns ``(macs, rss)``: a list of N MAC strings and the
        matching ``(N,)`` RSS array.  Ties resolve to the earliest MAC
        in vocabulary order (the legacy iteration order).
        """
        if not self._row_of:
            raise ValueError("REM has no fields")
        present = self.macs
        values = self.query_many(positions)  # (N, M)
        best = values.argmax(axis=1)
        rss = values[np.arange(len(values)), best]
        return [present[b] for b in best], rss

    # ------------------------------------------------------------------
    # coverage reductions
    # ------------------------------------------------------------------
    def coverage_fraction(self, mac: str, threshold_dbm: float) -> float:
        """Fraction of lattice points where ``mac`` exceeds ``threshold``."""
        return float((self.field(mac) >= threshold_dbm).mean())

    def coverage_by_mac(self, threshold_dbm: float) -> Dict[str, float]:
        """Coverage fraction of every present AP in one reduction."""
        stack = self.field_tensor()
        fractions = (stack >= threshold_dbm).mean(axis=(1, 2, 3))
        return {mac: float(f) for mac, f in zip(self.macs, fractions)}

    def best_rss_field(self) -> np.ndarray:
        """Point-wise maximum RSS over all present APs (nx, ny, nz)."""
        if not self._row_of:
            return np.full(self.grid.shape, -np.inf)
        return self._stack.max(axis=0)

    def dark_fraction(self, threshold_dbm: float) -> float:
        """Fraction of lattice points where *no* AP reaches ``threshold``.

        The planning primitive of §I: dark regions are where the
        operator should consider adding infrastructure.
        """
        if not self._row_of:
            return 1.0
        return float((self.best_rss_field() < threshold_dbm).mean())

    def dark_points(self, threshold_dbm: float) -> np.ndarray:
        """Lattice points of the dark region, as an (N, 3) array."""
        if not self._row_of:
            return self.grid.points()
        mask = (self.best_rss_field() < threshold_dbm).ravel()
        return self.grid.points()[mask]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-compatible serialization."""
        return {
            "volume_min": list(self.grid.volume.min_corner),
            "volume_max": list(self.grid.volume.max_corner),
            "resolution_m": self.grid.resolution_m,
            "macs": list(self.mac_vocabulary),
            "fields": {mac: self.field(mac).tolist() for mac in self.macs},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RadioEnvironmentMap":
        """Inverse of :meth:`to_dict`."""
        grid = RemGrid(
            volume=Cuboid(tuple(data["volume_min"]), tuple(data["volume_max"])),
            resolution_m=float(data["resolution_m"]),
        )
        rem = cls(grid, data["macs"])
        fields = data["fields"]
        if fields:
            # One stacked allocation instead of a concatenate per MAC.
            rem.set_fields(
                list(fields),
                np.asarray(list(fields.values()), dtype=float),
            )
        return rem

    def save_npz(self, path) -> None:
        """Compact compressed binary serialization (exact float64).

        Unlike :meth:`to_dict` — which inflates every float tensor into
        Python lists — this writes the stacked field tensor as a
        compressed ``.npz`` and round-trips bit-exactly.  ``numpy``
        appends the ``.npz`` suffix when ``path`` lacks one.
        """
        np.savez_compressed(path, **_rem_npz_payload(self))

    @classmethod
    def load_npz(cls, path) -> "RadioEnvironmentMap":
        """Inverse of :meth:`save_npz`."""
        with np.load(path) as data:
            return _rem_from_npz_payload(data)


def _rem_npz_payload(
    rem: "RadioEnvironmentMap", prefix: str = ""
) -> Dict[str, np.ndarray]:
    """The array dict behind :meth:`RadioEnvironmentMap.save_npz`.

    ``prefix`` namespaces the keys so several maps (e.g. an artifact's
    RSS and uncertainty layers) can share one archive.
    """
    return {
        f"{prefix}volume_min": np.asarray(rem.grid.volume.min_corner, dtype=float),
        f"{prefix}volume_max": np.asarray(rem.grid.volume.max_corner, dtype=float),
        f"{prefix}resolution_m": np.asarray(rem.grid.resolution_m, dtype=float),
        f"{prefix}vocabulary": np.asarray(rem.mac_vocabulary, dtype=np.str_),
        f"{prefix}macs": np.asarray(rem.macs, dtype=np.str_),
        f"{prefix}stack": rem.field_tensor(),
    }


def _rem_from_npz_payload(data, prefix: str = "") -> "RadioEnvironmentMap":
    """Rebuild a map from a :func:`_rem_npz_payload` archive.

    The stored stack dtype is preserved (float32 artifacts stay
    float32), so save/load round trips are byte-exact for any dtype.
    """
    grid = RemGrid(
        volume=Cuboid(
            tuple(float(v) for v in data[f"{prefix}volume_min"]),
            tuple(float(v) for v in data[f"{prefix}volume_max"]),
        ),
        resolution_m=float(data[f"{prefix}resolution_m"]),
    )
    return RadioEnvironmentMap.from_stack(
        grid,
        [str(m) for m in data[f"{prefix}vocabulary"]],
        [str(m) for m in data[f"{prefix}macs"]],
        np.asarray(data[f"{prefix}stack"]),
    )


def build_rem(
    predictor: Predictor,
    train: REMDataset,
    volume: Cuboid,
    resolution_m: float = 0.25,
    macs: Optional[Sequence[str]] = None,
) -> RadioEnvironmentMap:
    """Build a REM with one batched predictor call over the lattice.

    ``macs`` restricts the map to a subset of APs (defaults to the
    training vocabulary).  All selected MACs are evaluated through
    :meth:`Predictor.predict_mac_grid`, which estimators implement as a
    shared-work fast path (the one-hot k-NN computes a single 3-D
    distance matrix for every MAC).
    """
    grid = RemGrid(volume=volume, resolution_m=resolution_m)
    rem = RadioEnvironmentMap(grid, train.mac_vocabulary)
    selected = tuple(macs) if macs is not None else train.mac_vocabulary
    mac_to_index = {mac: i for i, mac in enumerate(train.mac_vocabulary)}
    for mac in selected:
        if mac not in mac_to_index:
            raise KeyError(f"MAC {mac!r} not in training vocabulary")
    indices = np.array([mac_to_index[mac] for mac in selected], dtype=int)
    # Legacy subclasses fitted before the batched API recorded no
    # vocabulary; bind the training one so the base shims build
    # correctly-shaped dataset views.
    if hasattr(predictor, "bind_vocabulary"):
        predictor.bind_vocabulary(train.mac_vocabulary)
    fields = predictor.predict_mac_grid(grid.points(), indices)
    rem.set_fields(selected, fields.reshape((len(selected),) + grid.shape))
    return rem


def build_uncertainty_rem(
    predictor: Predictor,
    train: REMDataset,
    volume: Cuboid,
    resolution_m: float = 0.25,
    macs: Optional[Sequence[str]] = None,
) -> RadioEnvironmentMap:
    """A map of predictive *uncertainty* (std, dB) instead of RSS.

    Same lattice machinery as :func:`build_rem`, but fields come from
    :meth:`Predictor.uncertainty_grid` — kriging variance where native,
    distance/disagreement proxies elsewhere.  The active-sampling
    planner reads this map to decide where the fleet flies next; its
    ``dark_points`` / ``coverage`` reductions double as "where is the
    map still unreliable" queries (with an uncertainty threshold).
    """
    grid = RemGrid(volume=volume, resolution_m=resolution_m)
    rem = RadioEnvironmentMap(grid, train.mac_vocabulary)
    selected = tuple(macs) if macs is not None else train.mac_vocabulary
    mac_to_index = {mac: i for i, mac in enumerate(train.mac_vocabulary)}
    for mac in selected:
        if mac not in mac_to_index:
            raise KeyError(f"MAC {mac!r} not in training vocabulary")
    indices = np.array([mac_to_index[mac] for mac in selected], dtype=int)
    if hasattr(predictor, "bind_vocabulary"):
        predictor.bind_vocabulary(train.mac_vocabulary)
    fields = predictor.uncertainty_grid(grid.points(), indices)
    rem.set_fields(selected, fields.reshape((len(selected),) + grid.shape))
    return rem
