"""The Radio Environmental Map: the toolchain's end product.

A :class:`RadioEnvironmentMap` holds, for every AP of interest, a 3-D
lattice of predicted RSS over the mapped volume.  It supports the uses
the paper motivates in its introduction:

* point queries (trilinear interpolation) for e.g. fingerprinting
  databases or relay placement;
* per-AP coverage fractions;
* "dark region" extraction — sub-volumes where *no* AP exceeds a
  service threshold, i.e. where the operator should add an AP (§I).

Maps serialize to plain dicts (JSON-compatible) for archival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..radio.geometry import Cuboid
from .dataset import REMDataset
from .predictors.base import Predictor

__all__ = ["RemGrid", "RadioEnvironmentMap", "build_rem"]


@dataclass(frozen=True)
class RemGrid:
    """The lattice geometry of a REM."""

    volume: Cuboid
    resolution_m: float

    def __post_init__(self) -> None:
        if self.resolution_m <= 0:
            raise ValueError(f"resolution must be positive, got {self.resolution_m}")

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Lattice dimensions (nx, ny, nz), always >= 2 per axis."""
        size = self.volume.size
        return tuple(
            max(2, int(round(s / self.resolution_m)) + 1) for s in size
        )  # type: ignore[return-value]

    def axes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis coordinate vectors."""
        lo = np.asarray(self.volume.min_corner, dtype=float)
        hi = np.asarray(self.volume.max_corner, dtype=float)
        nx, ny, nz = self.shape
        return (
            np.linspace(lo[0], hi[0], nx),
            np.linspace(lo[1], hi[1], ny),
            np.linspace(lo[2], hi[2], nz),
        )

    def points(self) -> np.ndarray:
        """All lattice points as an (N, 3) array (x fastest to slowest)."""
        ax, ay, az = self.axes()
        xs, ys, zs = np.meshgrid(ax, ay, az, indexing="ij")
        return np.column_stack([xs.ravel(), ys.ravel(), zs.ravel()])


class RadioEnvironmentMap:
    """Per-AP predicted RSS over a 3-D lattice."""

    def __init__(self, grid: RemGrid, mac_vocabulary: Sequence[str]):
        self.grid = grid
        self.mac_vocabulary: Tuple[str, ...] = tuple(mac_vocabulary)
        self._fields: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def set_field(self, mac: str, values: np.ndarray) -> None:
        """Store the lattice field for one AP (shape must match grid)."""
        if mac not in self.mac_vocabulary:
            raise KeyError(f"unknown MAC {mac!r}")
        expected = self.grid.shape
        if values.shape != expected:
            raise ValueError(f"field shape {values.shape} != grid shape {expected}")
        self._fields[mac] = values.astype(float)

    def field(self, mac: str) -> np.ndarray:
        """The (nx, ny, nz) RSS lattice of one AP."""
        return self._fields[mac]

    @property
    def macs(self) -> Tuple[str, ...]:
        """APs with stored fields."""
        return tuple(self._fields)

    # ------------------------------------------------------------------
    def query(self, position: Sequence[float], mac: str) -> float:
        """Trilinearly interpolated RSS of ``mac`` at ``position``."""
        values = self._fields[mac]
        ax, ay, az = self.grid.axes()
        p = np.asarray(position, dtype=float)
        idx = []
        frac = []
        for axis_values, coord in zip((ax, ay, az), p):
            i = int(np.clip(np.searchsorted(axis_values, coord) - 1, 0, len(axis_values) - 2))
            span = axis_values[i + 1] - axis_values[i]
            t = 0.0 if span == 0 else float((coord - axis_values[i]) / span)
            idx.append(i)
            frac.append(np.clip(t, 0.0, 1.0))
        (i, j, k), (tx, ty, tz) = idx, frac
        c = values[i : i + 2, j : j + 2, k : k + 2]
        cx = c[0] * (1 - tx) + c[1] * tx
        cy = cx[0] * (1 - ty) + cx[1] * ty
        return float(cy[0] * (1 - tz) + cy[1] * tz)

    def strongest_ap(self, position: Sequence[float]) -> Tuple[str, float]:
        """The best-serving AP and its RSS at ``position``."""
        if not self._fields:
            raise ValueError("REM has no fields")
        best_mac, best_rss = "", -np.inf
        for mac in self._fields:
            rss = self.query(position, mac)
            if rss > best_rss:
                best_mac, best_rss = mac, rss
        return best_mac, best_rss

    # ------------------------------------------------------------------
    def coverage_fraction(self, mac: str, threshold_dbm: float) -> float:
        """Fraction of lattice points where ``mac`` exceeds ``threshold``."""
        values = self._fields[mac]
        return float((values >= threshold_dbm).mean())

    def dark_fraction(self, threshold_dbm: float) -> float:
        """Fraction of lattice points where *no* AP reaches ``threshold``.

        The planning primitive of §I: dark regions are where the
        operator should consider adding infrastructure.
        """
        if not self._fields:
            return 1.0
        best = np.full(self.grid.shape, -np.inf)
        for values in self._fields.values():
            best = np.maximum(best, values)
        return float((best < threshold_dbm).mean())

    def dark_points(self, threshold_dbm: float) -> np.ndarray:
        """Lattice points of the dark region, as an (N, 3) array."""
        if not self._fields:
            return self.grid.points()
        best = np.full(self.grid.shape, -np.inf)
        for values in self._fields.values():
            best = np.maximum(best, values)
        mask = (best < threshold_dbm).ravel()
        return self.grid.points()[mask]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-compatible serialization."""
        return {
            "volume_min": list(self.grid.volume.min_corner),
            "volume_max": list(self.grid.volume.max_corner),
            "resolution_m": self.grid.resolution_m,
            "macs": list(self.mac_vocabulary),
            "fields": {mac: values.tolist() for mac, values in self._fields.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RadioEnvironmentMap":
        """Inverse of :meth:`to_dict`."""
        grid = RemGrid(
            volume=Cuboid(tuple(data["volume_min"]), tuple(data["volume_max"])),
            resolution_m=float(data["resolution_m"]),
        )
        rem = cls(grid, data["macs"])
        for mac, values in data["fields"].items():
            rem.set_field(mac, np.asarray(values, dtype=float))
        return rem


def build_rem(
    predictor: Predictor,
    train: REMDataset,
    volume: Cuboid,
    resolution_m: float = 0.25,
    macs: Optional[Sequence[str]] = None,
) -> RadioEnvironmentMap:
    """Build a REM by querying a fitted predictor over a lattice.

    ``macs`` restricts the map to a subset of APs (defaults to the
    training vocabulary).
    """
    grid = RemGrid(volume=volume, resolution_m=resolution_m)
    rem = RadioEnvironmentMap(grid, train.mac_vocabulary)
    points = grid.points()
    n_points = len(points)
    selected = tuple(macs) if macs is not None else train.mac_vocabulary
    mac_to_index = {mac: i for i, mac in enumerate(train.mac_vocabulary)}
    for mac in selected:
        if mac not in mac_to_index:
            raise KeyError(f"MAC {mac!r} not in training vocabulary")
        query = REMDataset(
            positions=points,
            mac_indices=np.full(n_points, mac_to_index[mac], dtype=int),
            channels=np.zeros(n_points, dtype=int) + 1,
            rssi_dbm=np.zeros(n_points),
            mac_vocabulary=train.mac_vocabulary,
        )
        predictions = predictor.predict(query)
        rem.set_field(mac, predictions.reshape(grid.shape))
    return rem
