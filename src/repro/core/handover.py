"""Handover planning on a REM — the paper's §I use case [3].

"...for optimizing network discovery and handover procedures."  Given a
REM and a motion path through the mapped volume, this module computes
the best-serving-AP sequence and plans handovers under a hysteresis
policy, quantifying the classic trade-off: a small hysteresis margin
tracks the strongest AP closely but ping-pongs; a large margin is
stable but serves a weaker AP for longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .rem import RadioEnvironmentMap

__all__ = ["HandoverEvent", "HandoverPlan", "plan_handovers", "hysteresis_tradeoff"]


@dataclass(frozen=True)
class HandoverEvent:
    """One switch of serving AP along the path."""

    path_index: int
    position: Tuple[float, float, float]
    from_mac: str
    to_mac: str
    from_rss_dbm: float
    to_rss_dbm: float


@dataclass
class HandoverPlan:
    """Serving sequence and events for one path/policy."""

    serving_macs: List[str]
    serving_rss_dbm: List[float]
    events: List[HandoverEvent]
    hysteresis_db: float

    @property
    def n_handovers(self) -> int:
        """Number of serving-AP switches."""
        return len(self.events)

    @property
    def mean_serving_rss_dbm(self) -> float:
        """Average RSS of the serving AP along the path."""
        return float(np.mean(self.serving_rss_dbm))

    def rss_regret_db(self, best_rss: Sequence[float]) -> float:
        """Mean dB lost versus always using the instantaneous best AP."""
        return float(np.mean(np.asarray(best_rss) - np.asarray(self.serving_rss_dbm)))


def plan_handovers(
    rem: RadioEnvironmentMap,
    path: Sequence[Sequence[float]],
    hysteresis_db: float = 3.0,
    macs: Optional[Sequence[str]] = None,
) -> HandoverPlan:
    """Simulate hysteresis-based handover along ``path``.

    The device stays on its serving AP until a candidate is more than
    ``hysteresis_db`` stronger, then switches (the classic policy).
    """
    if hysteresis_db < 0:
        raise ValueError(f"hysteresis must be >= 0, got {hysteresis_db}")
    mac_list: Tuple[str, ...] = tuple(macs) if macs is not None else rem.macs
    if not mac_list:
        raise ValueError("no APs to hand over between")
    points = [tuple(float(v) for v in p) for p in path]
    if not points:
        raise ValueError("empty path")

    # One batched query for the whole path × candidate set.
    rss_matrix = rem.query_many(points, mac_list)  # (n_points, n_macs)
    best_columns = rss_matrix.argmax(axis=1)

    serving_col: Optional[int] = None
    serving_sequence: List[str] = []
    serving_rss: List[float] = []
    events: List[HandoverEvent] = []
    for index, point in enumerate(points):
        best_col = int(best_columns[index])
        if serving_col is None:
            serving_col = best_col
        else:
            current = float(rss_matrix[index, serving_col])
            challenger = float(rss_matrix[index, best_col])
            if best_col != serving_col and challenger > current + hysteresis_db:
                events.append(
                    HandoverEvent(
                        path_index=index,
                        position=point,
                        from_mac=mac_list[serving_col],
                        to_mac=mac_list[best_col],
                        from_rss_dbm=current,
                        to_rss_dbm=challenger,
                    )
                )
                serving_col = best_col
        serving_sequence.append(mac_list[serving_col])
        serving_rss.append(float(rss_matrix[index, serving_col]))
    return HandoverPlan(
        serving_macs=serving_sequence,
        serving_rss_dbm=serving_rss,
        events=events,
        hysteresis_db=hysteresis_db,
    )


def hysteresis_tradeoff(
    rem: RadioEnvironmentMap,
    path: Sequence[Sequence[float]],
    margins_db: Sequence[float] = (0.0, 1.0, 3.0, 6.0, 10.0),
    macs: Optional[Sequence[str]] = None,
) -> List[Tuple[float, int, float]]:
    """(margin, handovers, mean serving RSS) per hysteresis setting.

    Larger margins must yield monotonically fewer (or equal) handovers;
    mean serving RSS degrades as the margin grows — the planning curve
    an operator reads off the REM.
    """
    rows: List[Tuple[float, int, float]] = []
    for margin in margins_db:
        plan = plan_handovers(rem, path, hysteresis_db=margin, macs=macs)
        rows.append((float(margin), plan.n_handovers, plan.mean_serving_rss_dbm))
    return rows
