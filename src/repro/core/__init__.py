"""The paper's primary contribution: the REM-generation toolchain.

Data containers (:class:`REMDataset`), the §III-B preprocessing
pipeline, the predictor families of Fig. 8, the REM product itself, and
the end-to-end :func:`generate_rem` pipeline.
"""

from . import predictors
from .dataset import REMDataset
from .density import DensityPoint, DensityStudyResult, density_sweep
from .fingerprinting import (
    FingerprintEvaluation,
    FingerprintLocalizer,
    evaluate_fingerprinting,
)
from .handover import HandoverEvent, HandoverPlan, hysteresis_tradeoff, plan_handovers
from .relay import RelayPlacement, place_relay, relay_gain_db
from .pipeline import (
    DEFAULT_KNN_GRID,
    ToolchainConfig,
    ToolchainResult,
    generate_rem,
)
from .preprocessing import (
    PreprocessConfig,
    PreprocessResult,
    preprocess,
    train_test_split,
)
from .rem import RadioEnvironmentMap, RemGrid, build_rem, build_uncertainty_rem

__all__ = [
    "predictors",
    "REMDataset",
    "DensityPoint",
    "DensityStudyResult",
    "density_sweep",
    "FingerprintEvaluation",
    "FingerprintLocalizer",
    "evaluate_fingerprinting",
    "HandoverEvent",
    "HandoverPlan",
    "hysteresis_tradeoff",
    "plan_handovers",
    "RelayPlacement",
    "place_relay",
    "relay_gain_db",
    "ToolchainConfig",
    "ToolchainResult",
    "generate_rem",
    "DEFAULT_KNN_GRID",
    "PreprocessConfig",
    "PreprocessResult",
    "preprocess",
    "train_test_split",
    "RadioEnvironmentMap",
    "RemGrid",
    "build_rem",
    "build_uncertainty_rem",
]
