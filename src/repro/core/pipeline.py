"""The end-to-end toolchain: campaign → preprocessing → model → REM.

One call reproduces the whole system of the paper: fly the (simulated)
fleet, preprocess the samples, tune and fit a predictor, and build the
fine-grained 3-D REM of the flight volume.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..perf import StageTimer, maybe_span
from ..radio.scenario_cache import cache_enabled, default_cache
from ..radio.scenarios import DemoScenario, build_scenario
from ..station.campaign import CampaignConfig, CampaignResult, run_campaign
from .predictors import (
    GridSearchResult,
    KnnRegressor,
    ParamGrid,
    Predictor,
    grid_search,
    rmse,
)
from .preprocessing import PreprocessConfig, PreprocessResult, preprocess
from .rem import RadioEnvironmentMap, build_rem

__all__ = ["ToolchainConfig", "ToolchainResult", "generate_rem"]

#: The paper's k-NN hyper-parameter grid (§III-B): neighbor counts,
#: weighting schemes, Minkowski exponents and one-hot scales.
DEFAULT_KNN_GRID = ParamGrid(
    n_neighbors=[3, 8, 16],
    weights=["uniform", "distance"],
    p=[1.0, 2.0],
    onehot_scale=[1.0, 3.0],
)


@dataclass(frozen=True)
class ToolchainConfig:
    """Configuration of the full REM-generation pipeline."""

    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    rem_resolution_m: float = 0.25
    tune_hyperparameters: bool = True
    cv_folds: int = 4


@dataclass
class ToolchainResult:
    """Everything the pipeline produced, stage by stage."""

    scenario: DemoScenario
    campaign: CampaignResult
    preprocessing: PreprocessResult
    predictor: Predictor
    test_rmse_dbm: float
    rem: RadioEnvironmentMap
    search: Optional[GridSearchResult] = None

    def summary(self) -> Dict[str, float]:
        """Headline numbers of the run."""
        return {
            "samples": float(len(self.campaign.log)),
            "retained": float(self.preprocessing.retained_samples),
            "test_rmse_dbm": self.test_rmse_dbm,
            "rem_macs": float(len(self.rem.macs)),
        }


def generate_rem(
    scenario: Optional[DemoScenario] = None,
    predictor: Optional[Predictor] = None,
    config: Optional[ToolchainConfig] = None,
) -> ToolchainResult:
    """Run the complete toolchain and return the REM plus diagnostics.

    .. deprecated::
        ``generate_rem`` is a thin alias kept for source compatibility;
        :func:`repro.serve.jobs.run_job` with a
        :class:`~repro.serve.spec.RemJobSpec` is the sole supported
        build path (content-addressed, cache-hit aware, sweepable via
        :class:`~repro.serve.jobset.JobSetSpec`).  Calling this emits a
        :class:`DeprecationWarning`.

    Whenever the call is fully described by its config (no live
    scenario or predictor objects, nothing a JSON spec cannot carry),
    it routes through a :class:`~repro.serve.spec.RemJobSpec` so the
    two entry points cannot drift apart.  Calls carrying live objects
    take the direct implementation path (:func:`_run_toolchain`).

    Parameters
    ----------
    scenario:
        RF world; built from ``config.campaign.scenario`` (the registry
        name) when omitted.
    predictor:
        Estimator to use.  When omitted, a k-NN regressor is grid-search
        tuned exactly as in §III-B (unless ``tune_hyperparameters`` is
        off, in which case the paper's best configuration is used).
    config:
        Pipeline configuration.
    """
    warnings.warn(
        "generate_rem is deprecated; build through repro.serve.run_job "
        "with a RemJobSpec (see repro.serve.jobset for sweeps)",
        DeprecationWarning,
        stacklevel=2,
    )
    config = config or ToolchainConfig()
    if scenario is None and predictor is None:
        # Imported lazily: repro.serve sits above core in the layering.
        from ..serve.jobs import run_job
        from ..serve.spec import RemJobSpec

        spec = RemJobSpec.from_toolchain_config(config, with_uncertainty=False)
        if spec is not None:
            return run_job(spec).result
    return _run_toolchain(scenario=scenario, predictor=predictor, config=config)


def _run_toolchain(
    scenario: Optional[DemoScenario],
    predictor: Optional[Predictor],
    config: ToolchainConfig,
    timer: Optional[StageTimer] = None,
) -> ToolchainResult:
    """The toolchain implementation behind :func:`generate_rem`/``run_job``.

    When no live ``scenario`` object is passed, the world construction
    and the campaign sim route through the process-level
    :class:`repro.radio.scenario_cache.ScenarioCache` — both are pure
    functions of the campaign config, so sweep cells sharing a
    ``(scenario, seed, acquisition)`` triple fly once and reuse the
    result (set ``REPRO_SCENARIO_CACHE=0`` to disable).  An optional
    :class:`repro.perf.StageTimer` receives per-stage wall spans.
    """
    cache = default_cache() if scenario is None and cache_enabled() else None
    if scenario is None:
        with maybe_span(timer, "scenario"):
            if cache is not None:
                scenario = cache.scenario(
                    config.campaign.scenario, config.campaign.seed
                )
            else:
                scenario = build_scenario(
                    config.campaign.scenario, seed=config.campaign.seed
                )
    with maybe_span(timer, "campaign"):
        if cache is not None:
            campaign = cache.campaign(
                config.campaign, scenario, fly=run_campaign
            )
        else:
            campaign = run_campaign(scenario=scenario, config=config.campaign)
    with maybe_span(timer, "preprocess"):
        prep = preprocess(campaign.log, config.preprocess)

    search: Optional[GridSearchResult] = None
    with maybe_span(timer, "fit"):
        if predictor is None:
            if config.tune_hyperparameters:
                search = grid_search(
                    KnnRegressor(),
                    prep.train,
                    DEFAULT_KNN_GRID,
                    k_folds=config.cv_folds,
                )
                predictor = search.best
            else:
                predictor = KnnRegressor(
                    n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0
                ).fit(prep.train)
        else:
            predictor.fit(prep.train)

    test_rmse = rmse(prep.test.rssi_dbm, predictor.predict(prep.test))
    with maybe_span(timer, "rem"):
        rem = build_rem(
            predictor,
            prep.dataset,
            scenario.flight_volume,
            resolution_m=config.rem_resolution_m,
        )
    return ToolchainResult(
        scenario=scenario,
        campaign=campaign,
        preprocessing=prep,
        predictor=predictor,
        test_rmse_dbm=test_rmse,
        rem=rem,
        search=search,
    )
