"""RSS fingerprinting on top of the REM — the paper's §I use case.

"These REMs and the data they hold can then be used for a variety of
purposes, for example ... for RF-based localization [2]" and the
closest related work [11] builds Wi-Fi fingerprinting databases with a
nano-UAV.  This module closes that loop: the generated REM *is* the
fingerprint database.  A device reporting an RSS vector (MAC → dBm) is
located by k-nearest-neighbors in signal space over the REM lattice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .rem import RadioEnvironmentMap

__all__ = ["FingerprintLocalizer", "FingerprintEvaluation"]


class FingerprintLocalizer:
    """Signal-space k-NN localization against a REM.

    Parameters
    ----------
    rem:
        The radio map; every stored AP field becomes one fingerprint
        dimension.
    macs:
        Restrict the fingerprint space to these APs (defaults to all).
    floor_dbm:
        Value standing in for "AP not heard" on both sides of the
        comparison (a common fingerprinting convention).
    """

    def __init__(
        self,
        rem: RadioEnvironmentMap,
        macs: Optional[Sequence[str]] = None,
        floor_dbm: float = -95.0,
    ):
        self.rem = rem
        self.macs: Tuple[str, ...] = tuple(macs) if macs is not None else rem.macs
        if not self.macs:
            raise ValueError("REM holds no AP fields to fingerprint against")
        self.floor_dbm = float(floor_dbm)
        self._points = rem.grid.points()
        fields = []
        for mac in self.macs:
            fields.append(rem.field(mac).ravel())
        # (n_points, n_macs) fingerprint database.
        self._database = np.column_stack(fields)

    # ------------------------------------------------------------------
    @property
    def database_size(self) -> int:
        """Number of reference fingerprints (lattice points)."""
        return len(self._points)

    def locate(
        self, observation: Dict[str, float], k: int = 4
    ) -> Tuple[np.ndarray, float]:
        """Estimate the position producing ``observation``.

        Returns ``(position, signal_distance)`` where the distance is
        the RMS dB mismatch of the best match — a confidence indicator.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        vector = np.full(len(self.macs), self.floor_dbm)
        seen = 0
        for i, mac in enumerate(self.macs):
            if mac in observation:
                vector[i] = observation[mac]
                seen += 1
        if seen == 0:
            raise ValueError("observation shares no APs with the fingerprint space")
        deltas = self._database - vector
        distances = np.sqrt(np.mean(deltas**2, axis=1))
        k = min(k, len(distances))
        nearest = np.argpartition(distances, k - 1)[:k]
        weights = 1.0 / np.maximum(distances[nearest], 1e-6)
        weighted = (self._points[nearest] * weights[:, None]).sum(axis=0)
        position = weighted / weights.sum()
        return position, float(distances[nearest].min())


@dataclass
class FingerprintEvaluation:
    """Monte-Carlo localization accuracy of a REM-backed fingerprinter."""

    mean_error_m: float
    median_error_m: float
    p95_error_m: float
    n_queries: int


def evaluate_fingerprinting(
    localizer: FingerprintLocalizer,
    environment,
    volume,
    rng: np.random.Generator,
    n_queries: int = 100,
    detection_floor_dbm: float = -89.0,
    k: int = 4,
) -> FingerprintEvaluation:
    """Locate simulated devices at random true positions in ``volume``.

    Each query observes the environment's (faded) RSS of every REM AP
    above the detection floor, then asks the localizer for a fix.
    """
    lo = np.asarray(volume.min_corner, dtype=float)
    hi = np.asarray(volume.max_corner, dtype=float)
    # All queries in two vectorized draws: the true positions, then one
    # (n_macs, n_queries) faded-RSS block from the batched link budget.
    truths = rng.uniform(lo, hi, size=(n_queries, 3))
    rss_block = environment.sample_rss_dbm_many(localizer.macs, truths, rng)
    heard = rss_block >= detection_floor_dbm
    errors: List[float] = []
    for q in range(n_queries):
        if not heard[:, q].any():
            continue
        observation: Dict[str, float] = {
            mac: float(rss_block[i, q])
            for i, mac in enumerate(localizer.macs)
            if heard[i, q]
        }
        estimate, _ = localizer.locate(observation, k=k)
        errors.append(float(np.linalg.norm(estimate - truths[q])))
    if not errors:
        raise RuntimeError("no query produced an observation")
    errors_arr = np.asarray(errors)
    return FingerprintEvaluation(
        mean_error_m=float(errors_arr.mean()),
        median_error_m=float(np.median(errors_arr)),
        p95_error_m=float(np.percentile(errors_arr, 95)),
        n_queries=len(errors),
    )


__all__ += ["evaluate_fingerprinting"]
