"""UAV relay placement on a REM — the paper's §I use case [12].

"...for example in optimizing the positioning of UAVs serving as
mobile relays" (citing Rubin & Zhang).  Given a REM, a gateway AP and a
client location, the relay problem is: hover a UAV somewhere in the
mapped volume so the *worse* of its two links (AP→relay from the REM,
relay→client by short-range free space) is as good as possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..radio.propagation import fspl_db
from .rem import RadioEnvironmentMap

__all__ = ["RelayPlacement", "place_relay", "relay_gain_db"]


@dataclass(frozen=True)
class RelayPlacement:
    """The optimized relay position and its link budget."""

    position: Tuple[float, float, float]
    ap_to_relay_dbm: float
    relay_to_client_dbm: float
    direct_dbm: float

    @property
    def bottleneck_dbm(self) -> float:
        """The weaker of the two relayed hops."""
        return min(self.ap_to_relay_dbm, self.relay_to_client_dbm)

    @property
    def gain_over_direct_db(self) -> float:
        """Improvement of the relayed bottleneck over the direct link."""
        return self.bottleneck_dbm - self.direct_dbm


def _relay_link_dbm(
    relay: np.ndarray,
    client: Sequence[float],
    relay_tx_power_dbm: float,
    freq_mhz: float,
) -> float:
    distance = float(np.linalg.norm(relay - np.asarray(client, dtype=float)))
    return relay_tx_power_dbm - fspl_db(distance, freq_mhz)


def place_relay(
    rem: RadioEnvironmentMap,
    mac: str,
    client_position: Sequence[float],
    relay_tx_power_dbm: float = 10.0,
    freq_mhz: float = 2442.0,
    min_clearance_m: float = 0.3,
) -> RelayPlacement:
    """Find the lattice point maximizing the relayed bottleneck RSS.

    The AP→relay leg reads the REM (it includes every wall the campaign
    measured); the relay→client leg is in-room short range, modelled as
    free space.  ``min_clearance_m`` keeps the relay off the client so
    the free-space model stays sane.
    """
    if mac not in rem.macs:
        raise KeyError(f"MAC {mac!r} has no field in this REM")
    client = np.asarray(client_position, dtype=float)
    points = rem.grid.points()
    field = rem.field(mac).ravel()

    # Vectorized sweep of the whole lattice: free-space downlink per
    # point, bottleneck against the REM field, clearance as a mask.
    distances = np.linalg.norm(points - client, axis=1)
    feasible = distances >= min_clearance_m
    if not feasible.any():
        raise ValueError("no feasible relay position (clearance too large?)")
    downlink = relay_tx_power_dbm - fspl_db(distances, freq_mhz)
    bottleneck = np.minimum(field, downlink)
    bottleneck[~feasible] = -np.inf
    best_index = int(bottleneck.argmax())

    relay_point = points[best_index]
    return RelayPlacement(
        position=tuple(float(v) for v in relay_point),
        ap_to_relay_dbm=float(field[best_index]),
        relay_to_client_dbm=_relay_link_dbm(
            relay_point, client, relay_tx_power_dbm, freq_mhz
        ),
        direct_dbm=rem.query(client, mac),
    )


def relay_gain_db(
    rem: RadioEnvironmentMap,
    mac: str,
    client_position: Sequence[float],
    **kwargs,
) -> float:
    """Convenience: bottleneck improvement of the best relay placement."""
    return place_relay(rem, mac, client_position, **kwargs).gain_over_direct_db
