"""REM density study: how many scan locations does a map need?

The paper's future work targets "deriving the fundamental limitations
on the density of 3D REMs".  This module provides the experiment: hold
out a set of scan *locations* (not random samples — spatial holdout is
the honest question), train on progressively fewer of the remaining
locations, and trace held-out RMSE versus sampling density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .dataset import REMDataset
from .predictors import KnnRegressor, Predictor, rmse

__all__ = ["DensityPoint", "DensityStudyResult", "density_sweep"]


@dataclass(frozen=True)
class DensityPoint:
    """One point of the density curve."""

    n_locations: int
    n_train_samples: int
    rmse_dbm: float


@dataclass
class DensityStudyResult:
    """The full density sweep."""

    points: List[DensityPoint]
    n_test_locations: int
    n_test_samples: int

    def as_series(self) -> Tuple[List[int], List[float]]:
        """(locations, RMSE) arrays for plotting."""
        ordered = sorted(self.points, key=lambda p: p.n_locations)
        return [p.n_locations for p in ordered], [p.rmse_dbm for p in ordered]

    def knee_locations(self, tolerance_db: float = 0.2) -> int:
        """Smallest location count within ``tolerance_db`` of the best RMSE.

        This is the "density limit": sampling more densely than this
        buys less than ``tolerance_db`` of accuracy.
        """
        ordered = sorted(self.points, key=lambda p: p.n_locations)
        best = min(p.rmse_dbm for p in ordered)
        for point in ordered:
            if point.rmse_dbm <= best + tolerance_db:
                return point.n_locations
        return ordered[-1].n_locations


def _location_key(sample) -> Tuple[str, int]:
    return (sample.uav_name, sample.waypoint_index)


def density_sweep(
    samples: Sequence,
    location_counts: Sequence[int],
    predictor_factory: Optional[Callable[[], Predictor]] = None,
    test_fraction: float = 0.25,
    seed: int = 11,
    min_samples_per_mac: int = 16,
) -> DensityStudyResult:
    """Trace held-out RMSE vs number of training scan locations.

    Parameters
    ----------
    samples:
        Campaign samples (a :class:`repro.station.SampleLog` works).
    location_counts:
        Training-location counts to evaluate (each ≤ the number of
        available non-test locations).
    predictor_factory:
        Builds a fresh estimator per point; defaults to the paper's
        best k-NN configuration.
    test_fraction:
        Fraction of *locations* held out for evaluation (fixed across
        the sweep so the points are comparable).
    """
    if predictor_factory is None:
        predictor_factory = lambda: KnnRegressor(
            n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0
        )
    samples = list(samples)
    if not samples:
        raise ValueError("no samples given")

    # The paper's MAC-count filter, applied once on the full set.
    counts: Dict[str, int] = {}
    for s in samples:
        counts[s.mac] = counts.get(s.mac, 0) + 1
    samples = [s for s in samples if counts[s.mac] >= min_samples_per_mac]

    locations = sorted({_location_key(s) for s in samples})
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(locations))
    n_test = max(1, int(round(len(locations) * test_fraction)))
    test_locations = {locations[i] for i in order[:n_test]}
    train_pool = [locations[i] for i in order[n_test:]]

    dataset = REMDataset.from_samples(samples)
    keys = [_location_key(s) for s in samples]
    test_idx = np.array([i for i, k in enumerate(keys) if k in test_locations])
    test_view = dataset.subset(test_idx)

    points: List[DensityPoint] = []
    for count in location_counts:
        if count < 1 or count > len(train_pool):
            raise ValueError(
                f"location count {count} out of range (1..{len(train_pool)})"
            )
        chosen = set(train_pool[:count])
        train_idx = np.array([i for i, k in enumerate(keys) if k in chosen])
        train_view = dataset.subset(train_idx)
        model = predictor_factory()
        model.fit(train_view)
        score = rmse(test_view.rssi_dbm, model.predict(test_view))
        points.append(
            DensityPoint(
                n_locations=count,
                n_train_samples=len(train_view),
                rmse_dbm=score,
            )
        )
    return DensityStudyResult(
        points=points,
        n_test_locations=len(test_locations),
        n_test_samples=len(test_view),
    )
