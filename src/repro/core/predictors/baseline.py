"""The paper's baseline estimator: predict the mean RSS per MAC address.

"In order to assess more elaborate estimators we used a baseline
estimator that always returns the mean per MAC address" — §III-B.  Its
RMSE (4.8107 dBm in the paper) is the bar every spatial model must
clear: beating it proves the estimator extracts *location* information,
not just per-AP averages.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["MeanPerMacBaseline"]


class MeanPerMacBaseline(Predictor):
    """Predicts each sample's RSS as its AP's training mean."""

    PARAM_NAMES = ()
    name = "baseline-mean-per-mac"
    supports_partial_fit = True

    def __init__(self):
        super().__init__()
        self._means: Dict[int, float] = {}
        self._means_table: np.ndarray = np.zeros(0)
        self._stds_table: np.ndarray = np.zeros(0)
        self._global_mean = 0.0
        self._global_std = 1.0

    def fit(self, train: REMDataset) -> "MeanPerMacBaseline":
        """Compute per-MAC and global training means."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._global_mean = float(train.rssi_dbm.mean())
        self._means = {}
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            self._means[int(mac_index)] = float(train.rssi_dbm[mask].mean())
        # Dense lookup table over the vocabulary for the batched paths
        # (vocabulary entries never observed in training keep the global
        # mean, matching the dict's .get() fallback).
        self._global_std = max(float(train.rssi_dbm.std()), 1e-6)
        self._means_table = np.full(train.n_macs, self._global_mean)
        self._stds_table = np.full(train.n_macs, self._global_std)
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            self._means_table[mac_index] = self._means[int(mac_index)]
            self._stds_table[mac_index] = max(
                float(train.rssi_dbm[mask].std()), 1e-6
            )
        self._mark_fitted(train)
        return self

    def partial_fit(self, delta: REMDataset) -> "MeanPerMacBaseline":
        """Fold new rows in without re-scanning untouched MACs.

        The global mean/std shift with every delta (full-array
        reductions, O(n)); per-MAC statistics are recomputed only for
        the MACs the delta touched — untouched MACs keep their entries,
        which equal a from-scratch fit bit for bit because appending
        preserves row order.
        """
        if not self._check_partial_fit(delta):
            return self
        self._extend_fitted(delta)
        assert self._train_support is not None and self._train_rssi is not None
        macs = self._train_support[1]
        rssi = self._train_rssi
        self._global_mean = float(rssi.mean())
        self._global_std = max(float(rssi.std()), 1e-6)
        means = np.full(len(self._means_table), self._global_mean)
        stds = np.full(len(self._stds_table), self._global_std)
        for mac_index, value in self._means.items():
            means[mac_index] = value
            stds[mac_index] = self._stds_table[mac_index]
        for mac_index in np.unique(delta.mac_indices):
            mask = macs == mac_index
            self._means[int(mac_index)] = float(rssi[mask].mean())
            means[mac_index] = self._means[int(mac_index)]
            stds[mac_index] = max(float(rssi[mask].std()), 1e-6)
        self._means_table = means
        self._stds_table = stds
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Per-MAC training mean; global mean for unseen MACs."""
        self._require_fitted()
        return self._lookup(data.mac_indices)

    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Vectorized table lookup (positions are irrelevant here)."""
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        return self._lookup(mac_indices)

    def predict_mac_grid(self, points: np.ndarray, mac_indices) -> np.ndarray:
        """Each MAC's field is a constant plane at its training mean."""
        self._require_fitted()
        points, macs = self._coerce_grid_query(points, mac_indices)
        return np.repeat(self._lookup(macs)[:, None], len(points), axis=1)

    def predict_points_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Each MAC's training RSS spread — position-independent.

        The baseline has no spatial structure, so its honest uncertainty
        is the scatter it averages over (global spread for unseen MACs).
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        out = np.full(mac_indices.shape, self._global_std)
        known = (mac_indices >= 0) & (mac_indices < len(self._stds_table))
        out[known] = self._stds_table[mac_indices[known]]
        return out

    def _lookup(self, mac_indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(mac_indices, dtype=int)
        out = np.full(indices.shape, self._global_mean)
        known = (indices >= 0) & (indices < len(self._means_table))
        out[known] = self._means_table[indices[known]]
        return out
